"""Shared report plumbing for the ``bench_*.py`` drivers.

Every benchmark in this directory follows the same contract: build a
JSON-shaped report dict, collect human-readable ``failures`` strings
from whatever floors it enforces, then stamp ``pass``/``failures``,
write the file next to the repository root, and exit non-zero when a
floor broke (that exit is the CI gate).  The helpers here are that
contract in one place — the *schemas* of the individual reports are
untouched, each benchmark still owns its own keys and floors.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

#: Default location reports are written to (the repository root).
REPO_ROOT = Path(__file__).resolve().parent.parent


def platform_fields() -> dict[str, str]:
    """The machine-identity keys every report carries.

    Committed baselines are only comparable on a similar machine; these
    fields are what the reader (and some gates) check.
    """
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def load_baseline(baseline: Path | None) -> dict[str, Any] | None:
    """The committed baseline report, or ``None`` when absent.

    A missing file is not an error — first runs on a new machine and
    ``--no-baseline`` CI lanes simply have nothing to compare against.
    """
    if baseline is None or not baseline.exists():
        return None
    data: dict[str, Any] = json.loads(baseline.read_text())
    return data


def finalize(
    report: dict[str, Any],
    failures: list[str],
    output: Path,
    label: str,
) -> dict[str, Any]:
    """Stamp the verdict, write the report, and gate.

    Appends ``pass`` and ``failures`` (in that order, matching every
    committed report), writes ``output`` with a trailing newline, and
    raises :class:`SystemExit` listing the failures — the non-zero exit
    CI keys on.  ``label`` names the floor family in that message
    (e.g. ``"service floors not met"``).
    """
    report["pass"] = not failures
    report["failures"] = failures
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")
    if failures:
        raise SystemExit(f"{label}:\n  " + "\n  ".join(failures))
    return report
