"""Capacity benchmark: max sustainable load at a p99 SLO, open loop.

The question the serving-layer SLO work exists to answer: *how many
operations per second can one service sustain while still meeting its
latency objective — and what happens when it is offered twice that?*

Method, per parameter set:

1. **probe** — a short closed-loop burst (16 workers hammering
   ``encaps``) estimates the service's raw capacity;
2. **sweep** — open-loop Poisson arrivals (``repro.loadgen``) at
   increasing fractions of the probe rate, each rung scored against
   the SLO: p99 of ``ok`` latencies (measured from *scheduled*
   arrival — no coordinated omission) must stay under ``SLO_P99_S``
   and at least ``OK_RATE_FLOOR`` of offered requests must succeed.
   The **max sustainable rate** is the highest rung that passes;
3. **overload** — ``OVERLOAD_FACTOR``x the sustainable rate, every
   request carrying a wire deadline and split across priority tiers.
   The service is expected to *shed* (``busy``/``timeout``) rather
   than serve late: the p99 of the requests it did accept and answer
   ``ok`` must still meet the SLO.  This assertion is active even
   under ``--no-baseline`` — it checks a correctness property of the
   shedding logic, not a machine-dependent throughput number.

Results are written to ``BENCH_capacity.json`` at the repository
root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_capacity.py            # full
    PYTHONPATH=src python benchmarks/bench_capacity.py --smoke    # CI

``--baseline BENCH_capacity.json`` additionally fails if the measured
sustainable rate drops below ``BASELINE_FLOOR`` of the committed
number for any common parameter set; ``--no-baseline`` skips that
comparison (the overload SLO property is still asserted).

See the capacity-planning section of ``docs/PERFORMANCE.md`` and the
SLO section of ``docs/SERVICE.md`` for the knobs being exercised.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time
from pathlib import Path

from _report import finalize, load_baseline, platform_fields

from repro.lac.params import ALL_PARAMS, LAC_256, LacParams
from repro.loadgen import LatencyRecorder, OpenLoopLoadGen, PoissonProcess, TierSpec
from repro.serve import AsyncKemClient, KemService, ServiceConfig

#: the latency objective: p99 of ok responses, scheduled-time latency.
#: Deliberately generous — CI shares one vCPU with the service; the
#: *shape* of the verdicts (sustainable rung, shed-don't-serve-late)
#: is the claim, absolute numbers come from the committed baseline
SLO_P99_S = 0.5

#: a rung also fails when fewer than this fraction of offered
#: requests come back ok (meeting p99 by shedding half the traffic is
#: not "sustaining" the load)
OK_RATE_FLOOR = 0.90

#: offered-load rungs as fractions of the closed-loop probe estimate
RUNG_FRACTIONS = (0.5, 0.75, 0.9, 1.1)

#: overload multiple applied to the sustainable rate
OVERLOAD_FACTOR = 2.0

#: --baseline gate: fail when the sustainable rate drops below this
#: fraction of the committed number
BASELINE_FLOOR = 0.60

#: concurrent workers in the closed-loop capacity probe
PROBE_WORKERS = 16


async def _connect_pool(
    service: KemService, key_id: int, params: LacParams, n: int
) -> list[AsyncKemClient]:
    pool = []
    for _ in range(n):
        reader, writer = await service.connect()
        client = AsyncKemClient(reader, writer)
        client.register_key(key_id, params)
        pool.append(client)
    return pool


async def _probe_capacity(
    pool: list[AsyncKemClient], key_id: int, probe_s: float
) -> float:
    """Closed-loop burst estimate of raw ops/s (not the SLO number)."""
    stop = time.perf_counter() + probe_s
    done = [0] * PROBE_WORKERS

    async def worker(i: int) -> None:
        client = pool[i % len(pool)]
        while time.perf_counter() < stop:
            await client.encaps(key_id)
            done[i] += 1

    start = time.perf_counter()
    await asyncio.gather(*[worker(i) for i in range(PROBE_WORKERS)])
    return sum(done) / (time.perf_counter() - start)


async def _open_loop(
    pool: list[AsyncKemClient],
    key_id: int,
    rate: float,
    duration_s: float,
    tiers: tuple[TierSpec, ...],
    seed: int,
) -> tuple[LatencyRecorder, float]:
    """One open-loop Poisson run; returns (recorder, elapsed seconds)."""
    turn = 0

    async def send(spec: TierSpec) -> None:
        nonlocal turn
        client = pool[turn % len(pool)]
        turn += 1
        await client.encaps(key_id, deadline_s=spec.deadline_s, tier=spec.tier)

    gen = OpenLoopLoadGen(
        send,
        PoissonProcess(rate, seed=seed),
        duration_s=duration_s,
        tiers=tiers,
        seed=seed,
        hang_timeout_s=max(10.0, 20 * SLO_P99_S),
    )
    recorder = await gen.run()
    return recorder, gen.elapsed_s


async def bench_param(
    params: LacParams, probe_s: float, rung_s: float, seed: int
) -> dict:
    """The probe → sweep → overload sequence for one parameter set."""
    service = KemService(
        ServiceConfig(
            max_batch=32,
            shed_deadlines=True,
            # a privately owned pool so the autoscaler has something to
            # resize under the overload phase
            backend_workers=2,
            autoscale=True,
            autoscale_max_workers=max(2, min(8, os.cpu_count() or 2)),
        )
    )
    await service.start()
    key_id = service.add_keypair(params)
    pool = await _connect_pool(service, key_id, params, 8)
    # warm-up wave: thread spin-up and transform-cache fill stay out
    # of every measured window
    await asyncio.gather(*[c.encaps(key_id) for c in pool])

    probe_rate = await _probe_capacity(pool, key_id, probe_s)

    no_deadline = (TierSpec(tier=0, weight=1.0, deadline_s=None),)
    rungs = []
    sustainable: float | None = None
    for frac in RUNG_FRACTIONS:
        rate = probe_rate * frac
        recorder, elapsed = await _open_loop(
            pool, key_id, rate, rung_s, no_deadline, seed
        )
        p99 = recorder.latency_percentile(99.0)
        ok_rate = recorder.ok_rate()
        meets = p99 is not None and p99 <= SLO_P99_S and ok_rate >= OK_RATE_FLOOR
        rungs.append(
            {
                "offered_frac": frac,
                "offered_ops_per_s": round(rate, 1),
                "achieved_ok_per_s": round(recorder.counts["ok"] / elapsed, 1),
                "p99_ok_s": round(p99, 4) if p99 is not None else None,
                "ok_rate": round(ok_rate, 4),
                "counts": dict(recorder.counts),
                "meets_slo": meets,
            }
        )
        if meets:
            sustainable = rate
        print(
            f"  {params.name}: offered {rate:7.0f} ops/s -> "
            f"p99 {0.0 if p99 is None else p99 * 1e3:6.1f} ms, "
            f"ok {ok_rate:5.1%} {'PASS' if meets else 'FAIL'}",
            flush=True,
        )

    # 2x overload: deadlines on the wire, two priority tiers — the SLO
    # defense must shed the excess, not serve everybody late
    overload_rate = (sustainable or probe_rate) * OVERLOAD_FACTOR
    # wire deadlines at a quarter of the SLO: the server enforces its
    # budget from admission, so the remaining three quarters absorb
    # driver-side scheduling lag (scheduled-time latency accounting
    # charges that lag to the request, and under 2x overload — tens of
    # thousands of tasks on the one shared event loop — it is real)
    tiers = (
        TierSpec(tier=0, weight=0.7, deadline_s=SLO_P99_S / 4),
        TierSpec(tier=2, weight=0.3, deadline_s=SLO_P99_S / 4),
    )
    recorder, elapsed = await _open_loop(
        pool, key_id, overload_rate, rung_s, tiers, seed + 1
    )
    overload_p99 = recorder.latency_percentile(99.0)
    info = await pool[0].info()
    assert isinstance(info, dict)
    overload = {
        "offered_ops_per_s": round(overload_rate, 1),
        "achieved_ok_per_s": round(recorder.counts["ok"] / elapsed, 1),
        "p99_accepted_ok_s": (
            round(overload_p99, 4) if overload_p99 is not None else None
        ),
        "ok_rate": round(recorder.ok_rate(), 4),
        "counts": dict(recorder.counts),
        "summary": recorder.summary(elapsed),
        "sheds": info.get("sheds", {}),
        "autoscale_events": info.get("autoscale_events", {}),
    }
    print(
        f"  {params.name}: overload {overload_rate:7.0f} ops/s -> "
        f"p99(ok) {0.0 if overload_p99 is None else overload_p99 * 1e3:6.1f} ms, "
        f"ok {recorder.ok_rate():5.1%}, sheds {sum(info.get('sheds', {}).values())}",
        flush=True,
    )

    for client in pool:
        await client.aclose()
    await service.shutdown()

    return {
        "params": params.name,
        "slo_p99_s": SLO_P99_S,
        "probe_ops_per_s": round(probe_rate, 1),
        "rungs": rungs,
        "max_sustainable_ops_per_s": (
            round(sustainable, 1) if sustainable is not None else None
        ),
        "overload": overload,
    }


def run(
    smoke: bool,
    probe_s: float,
    rung_s: float,
    seed: int,
    output: Path,
    baseline: Path | None,
    gate: bool = True,
) -> dict:
    """Sweep every parameter set, write the report, gate."""
    param_sets = (LAC_256,) if smoke else ALL_PARAMS
    rows = []
    for params in param_sets:
        print(f"{params.name}:", flush=True)
        rows.append(asyncio.run(bench_param(params, probe_s, rung_s, seed)))

    report = {
        "benchmark": "open-loop capacity sweep at p99 SLO",
        "smoke": smoke,
        "slo_p99_s": SLO_P99_S,
        "ok_rate_floor": OK_RATE_FLOOR,
        "overload_factor": OVERLOAD_FACTOR,
        "rung_s": rung_s,
        "cpu_count": os.cpu_count() or 1,
        **platform_fields(),
        "capacity": rows,
    }

    print(f"\n{'set':8} {'probe':>10} {'sustainable':>12} {'overload p99':>13}")
    for row in rows:
        sustainable = row["max_sustainable_ops_per_s"]
        p99 = row["overload"]["p99_accepted_ok_s"]
        print(
            f"{row['params']:8} {row['probe_ops_per_s']:7.0f} ops/s "
            f"{(f'{sustainable:9.0f} ops/s' if sustainable else '       --')} "
            f"{(f'{p99 * 1e3:10.1f} ms' if p99 is not None else '         --')}"
        )

    failures = []
    for row in rows:
        # the shedding-correctness property: always asserted, even with
        # --no-baseline — accepted-and-served requests meet the SLO or
        # the deadline logic is broken, machine speed notwithstanding
        p99 = row["overload"]["p99_accepted_ok_s"]
        if p99 is None:
            failures.append(
                f"{row['params']}: overload run produced no ok responses"
            )
        elif p99 > SLO_P99_S:
            failures.append(
                f"{row['params']}: overload p99 of accepted-ok "
                f"{p99 * 1e3:.1f} ms exceeds the {SLO_P99_S * 1e3:.0f} ms SLO "
                "(the service served late instead of shedding)"
            )
        if gate and row["max_sustainable_ops_per_s"] is None:
            failures.append(
                f"{row['params']}: no offered-load rung met the SLO"
            )
    committed = load_baseline(baseline) if gate else None
    if committed is not None:
        old_rows = {row["params"]: row for row in committed["capacity"]}
        for row in rows:
            old = old_rows.get(row["params"])
            if old is None or old.get("max_sustainable_ops_per_s") is None:
                continue
            mine = row["max_sustainable_ops_per_s"]
            floor = BASELINE_FLOOR * old["max_sustainable_ops_per_s"]
            if mine is not None and mine < floor:
                failures.append(
                    f"{row['params']}: sustainable {mine:.0f} ops/s is below "
                    f"{BASELINE_FLOOR:.0%} of the committed "
                    f"{old['max_sustainable_ops_per_s']:.0f} ops/s"
                )

    return finalize(report, failures, output, "capacity floors not met")


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--probe-s", type=float, default=None,
                        help="closed-loop probe window (default 2.0, smoke 0.8)")
    parser.add_argument("--rung-s", type=float, default=None,
                        help="open-loop seconds per load rung (default 4.0, smoke 1.5)")
    parser.add_argument("--seed", type=int, default=42,
                        help="arrival/tier seed (default 42)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: LAC-256 only, short windows")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_capacity.json to regression-check against")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the baseline and sustainable-rung floors "
                             "(the overload SLO property is still asserted)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_capacity.json")
    args = parser.parse_args()
    probe_s = args.probe_s if args.probe_s is not None else (0.8 if args.smoke else 2.0)
    rung_s = args.rung_s if args.rung_s is not None else (1.5 if args.smoke else 4.0)
    run(
        args.smoke, probe_s, rung_s, args.seed, args.output,
        None if args.no_baseline else args.baseline,
        gate=not args.no_baseline,
    )


if __name__ == "__main__":
    main()
