"""Cluster scaling benchmark: routed throughput vs member count.

Brings up a :class:`repro.cluster.ClusterRouter` over 1, 2 and 4
process members (each its own OS process, the production shape), hosts
one LAC key per member-count × 4 so every member owns work, fires N
concurrent protocol clients at the single routed endpoint, and
measures aggregate ENCAPS throughput — the scaling claim of this
repo's ROADMAP: consistent-hash routing over process members turns
cores into throughput while keeping the one-endpoint protocol surface.

Results — per member count: aggregate ops/s, the scaling factor
against the 1-member baseline, p99 service time from the router's own
``INFO`` metrics — are printed and written to ``BENCH_cluster.json``
at the repository root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster.py            # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke    # CI

The scaling *floor* (>= MIN_SCALING_AT_4 aggregate throughput at 4
members vs 1) binds only on machines with at least 4 CPUs: process
members scale with real cores, and on a single-vCPU box the curve is
honestly flat-to-negative (every member time-slices one core while
the router adds a forwarding hop) — the report records ``cpu_count``
so a committed single-core curve is never mistaken for the claim.
``--baseline`` additionally gates against the committed numbers
(``BASELINE_FLOOR``) for matching member counts on comparable
machines; ``--no-baseline`` measures and reports only.

See ``docs/CLUSTER.md`` for the architecture being measured.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import time
from pathlib import Path

from _report import finalize, load_baseline, platform_fields

from repro.cluster import ClusterConfig, ClusterRouter
from repro.lac.params import LAC_256, LacParams
from repro.serve import AsyncKemClient, ServiceConfig

#: member counts measured, in order (the 1->2->4 scaling curve)
MEMBER_COUNTS = (1, 2, 4)

#: acceptance floor: aggregate routed throughput at 4 members must be
#: at least this multiple of the 1-member figure — enforced only when
#: the machine has >= GATE_MIN_CPUS cores (process members cannot
#: outscale the cores they are given)
MIN_SCALING_AT_4 = 1.6

#: minimum CPU count for the scaling floor to bind
GATE_MIN_CPUS = 4

#: --baseline gate: fail when routed ops/s drop below this fraction of
#: the committed numbers (only rows with matching cpu_count regimes)
BASELINE_FLOOR = 0.70

#: keys hosted per member (spreads load across the whole ring)
KEYS_PER_MEMBER = 4


async def bench_members(
    params: LacParams,
    members: int,
    clients: int,
    requests: int,
    max_batch: int,
) -> dict:
    """Aggregate routed ENCAPS throughput with ``members`` processes."""
    config = ClusterConfig(
        members=members,
        launch="process",
        member_config=ServiceConfig(max_batch=max_batch),
        # replication 1: the scaling measurement wants each op to cost
        # one member, not R; durability is measured by the chaos suite
        replication=1,
        health_interval_s=2.0,
    )
    router = await ClusterRouter(config).start()
    key_ids = []
    setup = AsyncKemClient(*(await router.connect()))
    for _ in range(members * KEYS_PER_MEMBER):
        key_id, _pk = await setup.keygen(params)
        key_ids.append(key_id)

    pool: list[AsyncKemClient] = []
    for _ in range(clients):
        client = AsyncKemClient(*(await router.connect()))
        for key_id in key_ids:
            client.register_key(key_id, params)
        pool.append(client)

    async def worker(client: AsyncKemClient, index: int, ops: int) -> None:
        for op in range(ops):
            await client.encaps(key_ids[(index + op) % len(key_ids)])

    # two warm-up waves: member process pools spin up their kernels
    # and per-key transform caches on first contact
    for _ in range(2):
        await asyncio.gather(
            *[worker(c, i, len(key_ids)) for i, c in enumerate(pool)]
        )

    total_ops = clients * requests
    start = time.perf_counter()
    await asyncio.gather(
        *[worker(c, i, requests) for i, c in enumerate(pool)]
    )
    elapsed = time.perf_counter() - start

    info = await setup.info()
    await setup.aclose()
    for client in pool:
        await client.aclose()
    await router.shutdown()

    latency = info["latency_us"].get("ENCAPS", {})
    return {
        "params": params.name,
        "members": members,
        "clients": clients,
        "requests_per_client": requests,
        "keys": len(key_ids),
        "cluster_ops_per_s": total_ops / elapsed,
        "cluster_ms_per_op": elapsed / total_ops * 1e3,
        "latency_p50_us": latency.get("p50_us"),
        "latency_p99_us": latency.get("p99_us"),
        "failovers": info["cluster"]["counters"].get("forward_failovers", 0),
    }


def run(
    clients: int,
    requests: int,
    max_batch: int,
    smoke: bool,
    output: Path,
    baseline: Path | None,
    gate: bool = True,
    member_counts: tuple[int, ...] = MEMBER_COUNTS,
) -> dict:
    """Measure the scaling curve, write the report, gate conditionally."""
    cpu_count = os.cpu_count() or 1
    rows = []
    for members in member_counts:
        row = asyncio.run(
            bench_members(LAC_256, members, clients, requests, max_batch)
        )
        rows.append(row)
        print(
            f"members={members}: {row['cluster_ops_per_s']:7.0f} ops/s  "
            f"p99 {row['latency_p99_us']:.0f} us",
            flush=True,
        )

    base = rows[0]["cluster_ops_per_s"]
    for row in rows:
        row["scaling_vs_1"] = round(row["cluster_ops_per_s"] / base, 3)

    gate_binds = cpu_count >= GATE_MIN_CPUS
    report = {
        "benchmark": "cluster routed throughput vs member count",
        "smoke": smoke,
        "clients": clients,
        "max_batch": max_batch,
        "cpu_count": cpu_count,
        "scaling_gate_binds": gate_binds,
        **platform_fields(),
        "cluster": rows,
    }

    print(f"\n{'members':>8} {'ops/s':>10} {'scaling':>8} {'p99 (us)':>9}")
    for row in rows:
        print(
            f"{row['members']:>8} {row['cluster_ops_per_s']:10.0f} "
            f"{row['scaling_vs_1']:7.2f}x {row['latency_p99_us']:9.0f}"
        )

    failures = []
    if gate and gate_binds:
        at_4 = next((r for r in rows if r["members"] == 4), None)
        if at_4 is not None and at_4["scaling_vs_1"] < MIN_SCALING_AT_4:
            failures.append(
                f"4-member scaling {at_4['scaling_vs_1']:.2f}x "
                f"< {MIN_SCALING_AT_4:.1f}x (cpu_count={cpu_count})"
            )
    elif gate:
        print(
            f"\nscaling floor not enforced: {cpu_count} CPU(s) < "
            f"{GATE_MIN_CPUS} (process members cannot outscale their cores)"
        )
    committed = load_baseline(baseline) if gate else None
    if committed is not None:
        if committed.get("cpu_count") == cpu_count:
            old_rows = {row["members"]: row for row in committed["cluster"]}
            for row in rows:
                old = old_rows.get(row["members"])
                if old is None:
                    continue
                floor = BASELINE_FLOOR * old["cluster_ops_per_s"]
                if row["cluster_ops_per_s"] < floor:
                    failures.append(
                        f"{row['members']} members: "
                        f"{row['cluster_ops_per_s']:.0f} ops/s is below "
                        f"{BASELINE_FLOOR:.0%} of the committed "
                        f"{old['cluster_ops_per_s']:.0f} ops/s"
                    )
        else:
            print(
                "\nbaseline skipped: committed numbers are from a "
                f"{committed.get('cpu_count')}-CPU machine, this one has "
                f"{cpu_count}"
            )
    return finalize(report, failures, output, "cluster floors not met")


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent protocol clients (default 32, smoke 8)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 24, smoke 6)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="member scheduler flush-on-size threshold")
    parser.add_argument("--members", type=str, default=None,
                        help="comma-separated member counts "
                             "(default 1,2,4; smoke 1,2)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: fewer clients/requests, 2-node curve")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_cluster.json to regression-check against")
    parser.add_argument("--no-baseline", action="store_true",
                        help="measure and report only: skip every floor (chaos CI)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_cluster.json")
    args = parser.parse_args()
    clients = args.clients if args.clients is not None else (8 if args.smoke else 32)
    requests = args.requests if args.requests is not None else (6 if args.smoke else 24)
    if args.members is not None:
        member_counts = tuple(int(m) for m in args.members.split(","))
    else:
        member_counts = (1, 2) if args.smoke else MEMBER_COUNTS
    run(
        clients, requests, args.max_batch, args.smoke, args.output,
        None if args.no_baseline else args.baseline,
        gate=not args.no_baseline,
        member_counts=member_counts,
    )


if __name__ == "__main__":
    main()
