"""Cosim benchmark: served-path cycle counts on the simulated ISE core.

The :class:`repro.backend.CosimBackend` claims its per-request cycle
tallies are *not approximations*: a request served through the full
protocol path (wire framing, scheduler, backend dispatch) with the
deterministic KAT inputs must reproduce the offline Table I/II model
predictions (:func:`repro.backend.cosim.model_cycles`) **exactly**,
and the answers themselves must be bit-identical to the frozen
known-answer vectors.  This driver pins both claims, per parameter set
and per profile:

1. **serve** — a :class:`~repro.serve.ThreadedService` on a
   ``CosimBackend`` runs the KAT sequence (``keygen(SEED)`` →
   ``encaps(MESSAGE)`` → ``decaps``) and the response digests are
   checked against the committed known-answer vectors;
2. **pin** — the backend's per-op ``last_cycles`` tallies are compared
   to the offline :class:`repro.cosim.CycleModel` predictions with
   **exact equality** (cycles are modelled, not timed, so there is no
   tolerance — a one-cycle drift is a real behavioural change);
3. **speedup** — the ref/ise total-cycle ratio is recorded next to the
   paper's Table II figure (:data:`repro.eval.table2.PAPER_SPEEDUPS`).

All numbers are deterministic and machine-independent, so
``--baseline BENCH_cosim.json`` gates with exact equality against the
committed report.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_cosim.py            # full
    PYTHONPATH=src python benchmarks/bench_cosim.py --smoke    # CI

``--smoke`` covers LAC-128 only (both profiles); the full run covers
every parameter set.  See ``docs/COSIM.md`` for the backend and
``docs/PERFORMANCE.md`` for where these numbers sit in the story.
"""

from __future__ import annotations

import argparse
import hashlib
from pathlib import Path

from _report import finalize, load_baseline, platform_fields

from repro.backend import CosimBackend
from repro.backend.cosim import model_cycles
from repro.eval.table2 import PAPER_SPEEDUPS
from repro.lac.params import ALL_PARAMS, LAC_128, LacParams
from repro.serve import KemClient, ServiceConfig, ThreadedService

#: the deterministic KAT inputs — identical to the offline cycle
#: model's (``seed = bytes(range(64))``, ``message = seed[:32]``), which
#: is what makes exact served-vs-offline equality possible: DECAPS
#: cycles are data-dependent through the FO re-encryption
SEED = bytes(range(64))
MESSAGE = bytes(range(32))

#: scheme -> (sha256(pk), sha256(ct), shared_secret) — the served
#: answers must match the frozen vectors (tests/test_known_answers.py)
KAT_DIGESTS = {
    "LAC-128": (
        "fedbba391357ba4930e01b9bbaf39933b95501e5052dd94b2a3583e7e14b4403",
        "528aa646e159d82061cbcb9c610ec0c79ef0bdf0fe012fab60777e8a9ab3fa1b",
        "7380bf05d14ad10198673274599fcb4d85c39e19a026d4f9a2f50866eac4e6fc",
    ),
    "LAC-192": (
        "87284a6ac90bf08f6d02dfaf2520627e6ed8c8b6826e62a7056318b42cddb9ec",
        "342a3be463df82337d6cf6afc01c91199c3145465285652c8566265be6311243",
        "e8cef10478833b616ac60b5475c403382e4d5b884e340b81ef00b59fb98f4eb9",
    ),
    "LAC-256": (
        "d5b22ed9495fb6fed321c24a0877e225ae033add7926eff7a80e40686ea9113d",
        "e9cbd7590bd1b2ac0472e6c262d54c46cc7ea221fad6dec97ba2c635a5a4317a",
        "a507e318dc2b91d213e78b231fb35b2ceb64397b148cdde036da5b1e3204eaec",
    ),
}

#: the two Table II columns the speedup claim is built from
PROFILES = ("ref", "ise")

OPS = ("KEYGEN", "ENCAPS", "DECAPS")


def serve_kat(params: LacParams, profile: str) -> tuple[dict[str, int], list[str]]:
    """Serve the KAT sequence on a cosim backend; return served cycles.

    The returned dict maps op name to the backend's ``last_cycles`` for
    that op — the modelled cost of the one KAT request.  ``failures``
    collects any bit-identity violations.
    """
    failures: list[str] = []
    pk_digest, ct_digest, shared_hex = KAT_DIGESTS[params.name]
    backend = CosimBackend(profile=profile)
    with ThreadedService(ServiceConfig(max_batch=4), backend=backend) as svc:
        client = KemClient(svc.connect())
        key_id, pk = client.keygen(params, SEED)
        if hashlib.sha256(pk.to_bytes()).hexdigest() != pk_digest:
            failures.append(f"{params.name}/{profile}: served public key drifted")
        ct_bytes, shared = client.encaps(key_id, MESSAGE)
        if hashlib.sha256(ct_bytes).hexdigest() != ct_digest:
            failures.append(f"{params.name}/{profile}: served ciphertext drifted")
        if shared.hex() != shared_hex:
            failures.append(f"{params.name}/{profile}: served shared secret drifted")
        if client.decaps(key_id, ct_bytes).hex() != shared_hex:
            failures.append(f"{params.name}/{profile}: served decaps drifted")
        client.close()
        tallies = backend.cycle_tallies()
    served = {op: tallies[f"{op}:{params.name}"]["last_cycles"] for op in OPS}
    return served, failures


def bench_param(params: LacParams) -> tuple[dict, list[str]]:
    """Both profiles for one parameter set: serve, pin, speedup."""
    failures: list[str] = []
    profiles: dict[str, dict] = {}
    for profile in PROFILES:
        served, kat_failures = serve_kat(params, profile)
        failures.extend(kat_failures)
        predicted = model_cycles(params, profile)
        ops = {}
        for op, field in (
            ("KEYGEN", "key_generation"),
            ("ENCAPS", "encapsulation"),
            ("DECAPS", "decapsulation"),
        ):
            offline = int(getattr(predicted, field))
            ops[op] = {"served_cycles": served[op], "offline_cycles": offline}
            if served[op] != offline:
                failures.append(
                    f"{params.name}/{profile}/{op}: served {served[op]} != "
                    f"offline model {offline} (must be exactly equal)"
                )
        profiles[profile] = {
            "ops": ops,
            "total_cycles": sum(served.values()),
        }
        print(
            f"  {params.name:8} {profile:4}  "
            + "  ".join(f"{op} {served[op]:>9,}" for op in OPS),
            flush=True,
        )

    speedup = profiles["ref"]["total_cycles"] / profiles["ise"]["total_cycles"]
    row = {
        "params": params.name,
        "profiles": profiles,
        "speedup_ref_over_ise": round(speedup, 2),
        "paper_speedup": PAPER_SPEEDUPS[params.name],
    }
    return row, failures


def run(smoke: bool, output: Path, baseline: Path | None) -> dict:
    """Serve every (parameter set, profile) pair, write the report, gate."""
    param_sets = (LAC_128,) if smoke else ALL_PARAMS
    rows = []
    failures: list[str] = []
    for params in param_sets:
        print(f"{params.name}:", flush=True)
        row, row_failures = bench_param(params)
        rows.append(row)
        failures.extend(row_failures)

    report = {
        "benchmark": "served-path cosim cycle counts (Table I/II regression)",
        "smoke": smoke,
        **platform_fields(),
        "cosim": rows,
    }

    print(f"\n{'set':8} {'ref total':>12} {'ise total':>12} {'speedup':>8} {'paper':>6}")
    for row in rows:
        print(
            f"{row['params']:8} "
            f"{row['profiles']['ref']['total_cycles']:>12,} "
            f"{row['profiles']['ise']['total_cycles']:>12,} "
            f"{row['speedup_ref_over_ise']:>7.2f}x "
            f"{row['paper_speedup']:>5.2f}x"
        )

    # cycles are modelled, not timed: the committed baseline is gated
    # with exact equality, machine speed notwithstanding
    committed = load_baseline(baseline)
    if committed is not None:
        old_rows = {row["params"]: row for row in committed["cosim"]}
        for row in rows:
            old = old_rows.get(row["params"])
            if old is None:
                continue
            for profile, measured in row["profiles"].items():
                old_profile = old["profiles"].get(profile)
                if old_profile is None:
                    continue
                for op, cycles in measured["ops"].items():
                    old_cycles = old_profile["ops"][op]["served_cycles"]
                    if cycles["served_cycles"] != old_cycles:
                        failures.append(
                            f"{row['params']}/{profile}/{op}: served "
                            f"{cycles['served_cycles']} != committed "
                            f"{old_cycles} (cycle model drifted)"
                        )

    return finalize(report, failures, output, "cosim cycle pins not met")


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: LAC-128 only (both profiles)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_cosim.json to compare exactly against")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the committed-baseline comparison "
                             "(served-vs-offline equality is still asserted)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_cosim.json")
    args = parser.parse_args()
    run(args.smoke, args.output, None if args.no_baseline else args.baseline)


if __name__ == "__main__":
    main()
