"""Service load benchmark: concurrent clients vs the sequential KEM.

Starts an in-process :class:`repro.serve.KemService`, fires N
concurrent protocol clients at it (default 64, each pipelining
encapsulations against one hosted LAC key), and compares the sustained
throughput against sequential single-shot ``LacKem.encaps`` on the
same machine — the serving claim of this repo's ROADMAP: micro-batching
keeps the vectorized kernels fed even though every caller sends one
operation at a time.

Results — per parameter set and execution backend: sequential and
served ops/s, speedup, the achieved batch-size distribution and
service-time percentiles straight from the service's own ``INFO``
metrics — are printed and written to ``BENCH_service.json`` at the
repository root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI

``--backend`` picks the :mod:`repro.backend` execution backend behind
the service — ``thread`` (the default pool), ``process`` (the
supervised multi-process pool) or ``both`` (the default: one row per
backend, the thread-vs-process comparison of ``docs/PERFORMANCE.md``).

``--scheme`` picks which registered KEM families to measure —
``lac`` (the default, and the only one the speedup floor binds),
``newhope`` (the sequential-Python reference scheme served through the
generic registry path) or ``all``.  NewHope rows run with reduced
request counts (its pure-Python CCA transform is ~30-50 ms/op) and
carry a ``scheme`` field; the floors never bind them.

``--smoke`` keeps the 64-way concurrency (the speedup depends on it)
but trims request counts and parameter sets so the job finishes in
seconds.  ``--baseline BENCH_service.json`` additionally fails if the
measured served throughput drops more than 30% below the committed
numbers for any common (scheme, parameter set, backend) triple — the
CI regression gate.  Baselines written before the backend axis existed
are treated as thread-backend numbers; rows written before the scheme
axis existed are treated as LAC numbers.

See ``docs/SERVICE.md`` for the architecture being measured.
"""

from __future__ import annotations

import argparse
import asyncio
import secrets
import time
from pathlib import Path

from _report import finalize, load_baseline, platform_fields

from repro.lac.kem import LacKem
from repro.lac.params import ALL_PARAMS, LAC_256
from repro.newhope.params import NEWHOPE_512, NEWHOPE_1024
from repro.schemes import resolve
from repro.serve import AsyncKemClient, KemService, ServiceConfig

#: acceptance floor: served throughput under 64 concurrent clients
#: must beat sequential scalar encaps by at least this factor at
#: LAC-256 — enforced on the thread backend only (the process backend
#: pays IPC serialization per batch and needs real cores to win; see
#: docs/PERFORMANCE.md)
MIN_SERVICE_SPEEDUP = 5.0

#: --baseline gate: fail when served ops/s drop below this fraction
#: of the committed numbers
BASELINE_FLOOR = 0.70

#: per-scheme parameter sets: (full sweep, smoke subset)
SCHEME_PARAM_SETS = {
    "lac": (tuple(ALL_PARAMS), (LAC_256,)),
    "newhope": ((NEWHOPE_512, NEWHOPE_1024), (NEWHOPE_512,)),
}

#: non-LAC schemes run their pure-Python reference transform per op
#: (~30-50 ms each), so their rows use ``requests // NON_LAC_DIVISOR``
#: requests per client to keep the sweep bounded
NON_LAC_DIVISOR = 8


def bench_sequential(params, ops: int) -> float:
    """Sequential single-shot scalar encaps throughput (ops/s)."""
    scheme, params = resolve(params)
    if scheme.name == "lac":
        kem = LacKem(params)
        pair = kem.keygen(b"\x2a" * (params.seed_bytes + 32))
        kem.encaps(pair.public_key)  # warm caches outside the timed window
        start = time.perf_counter()
        for _ in range(ops):
            kem.encaps(pair.public_key)
        return ops / (time.perf_counter() - start)
    # generic registry path: the same encaps_one the service dispatches
    pair = scheme.keygen(params, bytes(range(scheme.seed_len(params))))
    message_bytes = scheme.message_bytes(params)
    scheme.encaps_one(params, pair, secrets.token_bytes(message_bytes))
    start = time.perf_counter()
    for _ in range(ops):
        scheme.encaps_one(params, pair, secrets.token_bytes(message_bytes))
    return ops / (time.perf_counter() - start)


async def _client_worker(client: AsyncKemClient, key_id: int, requests: int) -> None:
    for _ in range(requests):
        await client.encaps(key_id)


async def bench_service(
    params, clients: int, requests: int, max_batch: int, max_wait_us: float,
    tracer=None, client_tracer=None, backend: str = "thread",
) -> dict:
    """Served encaps throughput under ``clients`` concurrent callers.

    ``backend`` names the :mod:`repro.backend` execution backend the
    service dispatches batches to.  ``tracer`` / ``client_tracer`` are
    optional :class:`repro.trace.Tracer` instances for the service and
    the client pool — ``benchmarks/trace_report.py`` reuses this loop
    with both enabled to collect a span dump under real load.
    """
    service = KemService(
        ServiceConfig(
            max_batch=max_batch, max_wait_us=max_wait_us, backend=backend
        ),
        tracer=tracer,
    )
    await service.start()
    key_id = service.add_keypair(params)
    pool = []
    for _ in range(clients):
        reader, writer = await service.connect()
        client = AsyncKemClient(reader, writer, tracer=client_tracer)
        client.register_key(key_id, params)
        pool.append(client)

    # one warm-up wave so thread-pool spin-up stays out of the window
    await asyncio.gather(*[c.encaps(key_id) for c in pool])
    if backend == "process":
        # the process pool spawns and table-warms its workers on first
        # contact; a second wave lets every worker finish initializing
        # before the timed window opens
        await asyncio.gather(*[c.encaps(key_id) for c in pool])

    total_ops = clients * requests
    start = time.perf_counter()
    await asyncio.gather(
        *[_client_worker(c, key_id, requests) for c in pool]
    )
    elapsed = time.perf_counter() - start

    info = await pool[0].info()
    for client in pool:
        await client.aclose()
    await service.shutdown()

    encaps_latency = info["latency_us"].get("ENCAPS", {})
    backend_stats = info.get("backend") or {}
    cache_stats = backend_stats.get("transform_cache")
    cache_lookups = (
        (cache_stats["hits"] + cache_stats["misses"]) if cache_stats else 0
    )
    return {
        "params": params.name,
        "clients": clients,
        "requests_per_client": requests,
        "service_ops_per_s": total_ops / elapsed,
        "service_ms_per_op": elapsed / total_ops * 1e3,
        "batch_sizes": info["batch_sizes"],
        "mean_batch_size": info["mean_batch_size"],
        "flushes": info["flushes"],
        "latency_p50_us": encaps_latency.get("p50_us"),
        "latency_p99_us": encaps_latency.get("p99_us"),
        "ewma_gap_us": info["service"]["ewma_gap_us"],
        # per-run execution-backend internals: the transform cache
        # (hits/misses/evictions), the ship-once key wire and the
        # shared-memory wire state — what the speedup is made of
        "transform_cache": cache_stats,
        "cache_hit_rate": (
            round(cache_stats["hits"] / cache_lookups, 4)
            if cache_lookups
            else None
        ),
        "worker_keys": backend_stats.get("worker_keys"),
        "shm": backend_stats.get("shm"),
        "worker_restarts": backend_stats.get("restarts"),
    }


def run(
    clients: int,
    requests: int,
    seq_ops: int,
    max_batch: int,
    max_wait_us: float,
    smoke: bool,
    output: Path,
    baseline: Path | None,
    gate: bool = True,
    backends: tuple[str, ...] = ("thread", "process"),
    schemes: tuple[str, ...] = ("lac",),
) -> dict:
    """Measure every (scheme, parameter set, backend), write, gate.

    With ``gate=False`` (the ``--no-baseline`` escape hatch) the report
    is still written but no floor — speedup or baseline — is enforced:
    chaos/fault-injection CI runs share the machine with the service
    under test and must not be perf-gated.
    """
    rows = []
    for scheme_name in schemes:
        full, smoke_subset = SCHEME_PARAM_SETS[scheme_name]
        param_sets = smoke_subset if smoke else full
        scheme_requests = (
            requests if scheme_name == "lac"
            else max(1, requests // NON_LAC_DIVISOR)
        )
        scheme_seq_ops = (
            seq_ops if scheme_name == "lac"
            else max(4, seq_ops // NON_LAC_DIVISOR)
        )
        for params in param_sets:
            sequential = bench_sequential(params, scheme_seq_ops)
            for backend in backends:
                row = asyncio.run(
                    bench_service(
                        params, clients, scheme_requests, max_batch,
                        max_wait_us, backend=backend,
                    )
                )
                row["scheme"] = scheme_name
                row["backend"] = backend
                row["sequential_ops_per_s"] = sequential
                row["speedup"] = row["service_ops_per_s"] / sequential
                rows.append(row)

    # the thread-vs-process comparison of docs/PERFORMANCE.md, made
    # explicit per parameter set (None when only one backend measured)
    by_key = {(r["params"], r["backend"]): r for r in rows}
    for row in rows:
        if row["backend"] == "process":
            thread_row = by_key.get((row["params"], "thread"))
            row["vs_thread"] = (
                round(row["service_ops_per_s"] / thread_row["service_ops_per_s"], 3)
                if thread_row
                else None
            )

    report = {
        "benchmark": "async KEM service vs sequential scalar encaps",
        "smoke": smoke,
        "clients": clients,
        "max_batch": max_batch,
        "max_wait_us": max_wait_us,
        "backends": list(backends),
        "schemes": list(schemes),
        **platform_fields(),
        "service": rows,
    }

    print(
        f"{'set':12} {'backend':>8} {'sequential':>12} {'served':>12} "
        f"{'speedup':>8} {'mean batch':>11} {'p99 (us)':>9} {'cache':>6}"
    )
    for row in rows:
        hit_rate = row.get("cache_hit_rate")
        print(
            f"{row['params']:12} {row['backend']:>8} "
            f"{row['sequential_ops_per_s']:6.0f} ops/s "
            f"{row['service_ops_per_s']:6.0f} ops/s {row['speedup']:7.1f}x "
            f"{row['mean_batch_size']:10.1f} {row['latency_p99_us']:9.0f} "
            f"{('%5.0f%%' % (hit_rate * 100)) if hit_rate is not None else '   --'}"
        )

    failures = []
    for row in rows if gate else []:
        # the speedup floor binds LAC on the default (thread) backend
        # only; non-LAC schemes run the sequential reference transform
        # and are measured, never floor-gated
        if (
            row["params"] == LAC_256.name
            and row["backend"] == "thread"
            and row["speedup"] < MIN_SERVICE_SPEEDUP
        ):
            failures.append(
                f"{row['params']}: service speedup {row['speedup']:.1f}x "
                f"< {MIN_SERVICE_SPEEDUP:.0f}x"
            )
    baseline_report = load_baseline(baseline) if gate else None
    if baseline_report is not None:
        committed = {
            (
                row.get("scheme", "lac"),
                row["params"],
                row.get("backend", "thread"),
            ): row
            for row in baseline_report["service"]
        }
        for row in rows:
            old = committed.get((row["scheme"], row["params"], row["backend"]))
            if old is None:
                continue
            floor = BASELINE_FLOOR * old["service_ops_per_s"]
            if row["service_ops_per_s"] < floor:
                failures.append(
                    f"{row['params']}/{row['backend']}: served "
                    f"{row['service_ops_per_s']:.0f} ops/s "
                    f"is below {BASELINE_FLOOR:.0%} of the committed "
                    f"{old['service_ops_per_s']:.0f} ops/s"
                )
    return finalize(report, failures, output, "service floors not met")


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=64,
                        help="concurrent protocol clients (default 64)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 24, smoke 8)")
    parser.add_argument("--seq-ops", type=int, default=None,
                        help="sequential baseline operations (default 150, smoke 40)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="scheduler flush-on-size threshold (default 64)")
    parser.add_argument("--max-wait-us", type=float, default=2000.0,
                        help="scheduler deadline upper bound (default 2000)")
    parser.add_argument("--backend", choices=("thread", "process", "both"),
                        default="both",
                        help="execution backend(s) to measure (default both)")
    parser.add_argument("--scheme", choices=("lac", "newhope", "all"),
                        default="lac",
                        help="KEM scheme(s) to measure (default lac)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: one parameter set per "
                             "scheme, fewer requests")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed BENCH_service.json to regression-check against")
    parser.add_argument("--no-baseline", action="store_true",
                        help="measure and report only: skip the baseline "
                             "comparison and the speedup floor (chaos CI)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_service.json")
    args = parser.parse_args()
    requests = args.requests if args.requests is not None else (8 if args.smoke else 24)
    seq_ops = args.seq_ops if args.seq_ops is not None else (40 if args.smoke else 150)
    backends = (
        ("thread", "process") if args.backend == "both" else (args.backend,)
    )
    schemes = (
        ("lac", "newhope") if args.scheme == "all" else (args.scheme,)
    )
    run(
        args.clients, requests, seq_ops, args.max_batch, args.max_wait_us,
        args.smoke, args.output,
        None if args.no_baseline else args.baseline,
        gate=not args.no_baseline,
        backends=backends,
        schemes=schemes,
    )


if __name__ == "__main__":
    main()
