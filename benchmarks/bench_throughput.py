"""Throughput benchmark: batched fast path vs the scalar reference.

Measures, for each LAC parameter set:

* batched ``LacKem.encaps_many`` / ``decaps_many`` against looping the
  scalar ``encaps`` / ``decaps`` (same messages, outputs asserted
  bit-identical before timing);
* the vectorized constant-time BCH decoder against the scalar engine
  (same decoder class with ``vectorized=False``), at the full error
  budget t.

Results are printed as a table and written to ``BENCH_throughput.json``
in the repository root (override with ``--output``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke    # CI

``--smoke`` keeps the batch size (the speedups are batch-size
dependent) but trims repetitions and parameter sets so the job
finishes in seconds; it still asserts the headline speedup floors.
See ``docs/PERFORMANCE.md`` for discussion of the numbers.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from _report import finalize, platform_fields

from repro.bch.ct_decoder import ConstantTimeBCHDecoder
from repro.lac.kem import LacKem
from repro.lac.params import ALL_PARAMS, LAC_128

#: acceptance floors (also asserted by tests/test_batch_kem.py)
MIN_ENCAPS_SPEEDUP = 10.0
MIN_BCH_SPEEDUP = 5.0


def _best_of(fn, repeats: int) -> float:
    """Best-of-N wall-clock of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _make_noisy_word(code, n_errors: int, seed: int = 1234) -> np.ndarray:
    """A random codeword with ``n_errors`` bit flips."""
    rng = np.random.default_rng(seed)
    from repro.bch.encoder import BCHEncoder

    message = rng.integers(0, 2, code.k, dtype=np.uint8)
    word = BCHEncoder(code).encode(message).copy()
    flips = rng.choice(code.n, size=n_errors, replace=False)
    word[flips] ^= 1
    return word


def bench_kem(params, batch: int, repeats: int) -> dict:
    """Scalar-vs-batch encaps/decaps timings for one parameter set."""
    kem = LacKem(params)
    pair = kem.keygen(b"\x2a" * (params.seed_bytes + 32))
    pk, sk = pair.public_key, pair.secret_key
    messages = [bytes([i & 0xFF]) * params.message_bytes for i in range(batch)]

    # correctness gate before timing: batch must equal the scalar loop
    scalar_results = [kem.encaps(pk, m) for m in messages]
    batch_results = kem.encaps_many(pk, messages)
    for a, b in zip(scalar_results, batch_results):
        assert a.ciphertext.to_bytes() == b.ciphertext.to_bytes()
        assert a.shared_secret == b.shared_secret
    ciphertexts = [r.ciphertext for r in batch_results]
    assert [kem.decaps(sk, c) for c in ciphertexts] == kem.decaps_many(sk, ciphertexts)

    t_encaps_scalar = _best_of(
        lambda: [kem.encaps(pk, m) for m in messages], max(1, repeats // 2)
    )
    t_encaps_batch = _best_of(lambda: kem.encaps_many(pk, messages), repeats)
    t_decaps_scalar = _best_of(
        lambda: [kem.decaps(sk, c) for c in ciphertexts], max(1, repeats // 2)
    )
    t_decaps_batch = _best_of(lambda: kem.decaps_many(sk, ciphertexts), repeats)

    return {
        "params": params.name,
        "batch": batch,
        "encaps_scalar_ms_per_op": t_encaps_scalar / batch * 1e3,
        "encaps_batch_ms_per_op": t_encaps_batch / batch * 1e3,
        "encaps_speedup": t_encaps_scalar / t_encaps_batch,
        "encaps_batch_ops_per_s": batch / t_encaps_batch,
        "decaps_scalar_ms_per_op": t_decaps_scalar / batch * 1e3,
        "decaps_batch_ms_per_op": t_decaps_batch / batch * 1e3,
        "decaps_speedup": t_decaps_scalar / t_decaps_batch,
        "decaps_batch_ops_per_s": batch / t_decaps_batch,
    }


def bench_executor_reuse(params, batch: int, repeats: int) -> dict:
    """Shared fan-out pool vs a fresh ``ThreadPoolExecutor`` per call.

    PR 1 spawned a fresh pool inside every ``workers=N`` batch call;
    PR 2 reuses the process-wide shared pool (now owned by
    :func:`repro.backend.default_thread_backend`; the serve scheduler
    dispatches onto it).  This records both so the PR 1 and PR 2
    numbers stay comparable.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.backend import default_thread_backend

    workers = 4
    kem = LacKem(params)
    pair = kem.keygen(b"\x2a" * (params.seed_bytes + 32))
    pk = pair.public_key
    messages = [bytes([i & 0xFF]) * params.message_bytes for i in range(batch)]
    default_thread_backend()  # spin the shared pool up outside the timed window

    t_shared = _best_of(
        lambda: kem.encaps_many(pk, messages, workers=workers), repeats
    )

    def fresh_pool_call():
        # the pre-PR-2 behaviour: pool per call, torn down afterwards
        with ThreadPoolExecutor(max_workers=workers) as pool:
            kem.encaps_many(pk, messages, workers=workers, executor=pool)

    t_fresh = _best_of(fresh_pool_call, repeats)
    return {
        "params": params.name,
        "batch": batch,
        "workers": workers,
        "encaps_shared_pool_ms": t_shared * 1e3,
        "encaps_fresh_pool_ms": t_fresh * 1e3,
        "executor_reuse_speedup": t_fresh / t_shared,
    }


def bench_bch(params, repeats: int) -> dict:
    """Vectorized vs scalar constant-time BCH decode at full error load."""
    code = params.bch
    word = _make_noisy_word(code, code.t)
    fast = ConstantTimeBCHDecoder(code, vectorized=True)
    slow = ConstantTimeBCHDecoder(code, vectorized=False)
    assert np.array_equal(fast.decode(word).codeword, slow.decode(word).codeword)

    t_fast = _best_of(lambda: fast.decode(word), repeats)
    t_slow = _best_of(lambda: slow.decode(word), max(1, repeats // 2))
    return {
        "params": params.name,
        "code": f"BCH({code.n},{code.k},{code.t})",
        "errors": code.t,
        "decode_scalar_ms": t_slow * 1e3,
        "decode_vectorized_ms": t_fast * 1e3,
        "decode_speedup": t_slow / t_fast,
    }


def run(batch: int, repeats: int, smoke: bool, output: Path) -> dict:
    param_sets = (LAC_128,) if smoke else ALL_PARAMS
    report = {
        "benchmark": "batched KEM + vectorized BCH throughput",
        "smoke": smoke,
        "batch": batch,
        **platform_fields(),
        "kem": [bench_kem(p, batch, repeats) for p in param_sets],
        "bch": [bench_bch(p, repeats) for p in param_sets],
        "executor": [bench_executor_reuse(p, batch, repeats) for p in param_sets],
    }

    print(f"{'set':8} {'encaps scalar':>14} {'batch':>9} {'speedup':>8} "
          f"{'decaps speedup':>15}")
    for row in report["kem"]:
        print(
            f"{row['params']:8} {row['encaps_scalar_ms_per_op']:11.3f} ms "
            f"{row['encaps_batch_ms_per_op']:6.3f} ms {row['encaps_speedup']:7.1f}x "
            f"{row['decaps_speedup']:14.1f}x"
        )
    for row in report["bch"]:
        print(
            f"{row['params']:8} {row['code']} decode: "
            f"{row['decode_scalar_ms']:.2f} ms scalar -> "
            f"{row['decode_vectorized_ms']:.2f} ms vectorized "
            f"({row['decode_speedup']:.1f}x)"
        )
    for row in report["executor"]:
        print(
            f"{row['params']:8} workers={row['workers']} encaps batch: "
            f"{row['encaps_fresh_pool_ms']:.2f} ms fresh pool -> "
            f"{row['encaps_shared_pool_ms']:.2f} ms shared pool "
            f"({row['executor_reuse_speedup']:.2f}x)"
        )

    failures = []
    for row in report["kem"]:
        if row["encaps_speedup"] < MIN_ENCAPS_SPEEDUP:
            failures.append(
                f"{row['params']}: encaps speedup {row['encaps_speedup']:.1f}x "
                f"< {MIN_ENCAPS_SPEEDUP:.0f}x"
            )
    for row in report["bch"]:
        if row["decode_speedup"] < MIN_BCH_SPEEDUP:
            failures.append(
                f"{row['params']}: BCH decode speedup {row['decode_speedup']:.1f}x "
                f"< {MIN_BCH_SPEEDUP:.0f}x"
            )
    return finalize(report, failures, output, "speedup floors not met")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64,
                        help="operations per batch (default 64)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of repetitions (default 5, smoke 2)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: LAC-128 only, fewer repeats")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_throughput.json")
    args = parser.parse_args()
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 5)
    run(args.batch, repeats, args.smoke, args.output)


if __name__ == "__main__":
    main()
