"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables, prints the
model's numbers next to the paper's (with ratios), and asserts the
*shape* conditions the reproduction must preserve.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a report block (visible with -s / captured otherwise)."""
    print()
    print(text)


@pytest.fixture(scope="session")
def table2_rows():
    """All nine measured Table II rows (expensive: measured once)."""
    from repro.eval.table2 import generate_table2

    return generate_table2()
