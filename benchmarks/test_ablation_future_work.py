"""Ablations for the paper's two explicit future-work items.

* **Keccak swap** (Sec. VI-B): replace the SHA256 accelerator with the
  Keccak core and measure what GenA / Sample-poly gain — and what the
  swap costs in area.
* **Karatsuba** (Sec. IV-A): quantify the multiplication-count saving
  Karatsuba would bring to the splitting, and why the ternary
  accelerator cannot execute it.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.eval.ablations import karatsuba_ablation, keccak_generation_ablation
from repro.eval.reporting import format_table
from repro.ring.karatsuba import base_multiplications, karatsuba_ring_mul
from repro.ring.poly import PolyRing


def test_keccak_future_work_report():
    report = keccak_generation_ablation()
    emit(format_table(
        ["Kernel", "SHA256 accel", "Keccak accel", "speedup"],
        [
            ("GenA", report.gen_a_sha256, report.gen_a_keccak,
             report.gen_a_speedup),
            ("Sample poly", report.sample_sha256, report.sample_keccak,
             report.sample_speedup),
        ],
        title=f"Future work: Keccak core for {report.scheme} "
              f"(area cost: +{report.area_delta_luts:,} LUTs)",
    ))
    # the swap helps (the future-work premise)...
    assert report.gen_a_speedup > 1.0
    assert report.sample_speedup > 1.0
    # ...but only modestly, because the reference wrapper's per-byte
    # stream management survives — the same effect that capped the
    # SHA256 accelerator's benefit at ~3% in Table II
    assert report.gen_a_speedup < 1.3
    # and it costs roughly the Keccak-vs-SHA area gap of Table III
    # (10,435 - 1,031 = 9,404 LUTs)
    assert 6_000 < report.area_delta_luts < 12_000


def test_karatsuba_report():
    report = karatsuba_ablation(512)
    emit(format_table(
        ["Quantity", "plain split", "Karatsuba"],
        [
            ("base coefficient mults (n=512)",
             report.base_mults_schoolbook, report.base_mults_karatsuba),
            ("sub-products per n=1024 split",
             report.split_products_plain, report.split_products_karatsuba),
            ("software cycles (n=512 ring mult)",
             report.ternary_schoolbook_cycles, report.karatsuba_software_cycles),
        ],
        title="Future work: Karatsuba vs. the four-way split",
    ))
    # Karatsuba cuts the base multiplication count to (3/4)^levels
    assert report.base_mults_karatsuba < report.base_mults_schoolbook / 2
    # and the 16 unit-runs of Algorithm 1/2 would drop to 9
    assert report.split_products_karatsuba == 9
    # in software it beats even the add-only ternary schedule...
    assert report.karatsuba_software_cycles < report.ternary_schoolbook_cycles
    # ...but it is nowhere near the accelerator (6.6k cycles): the
    # hardware win stands even against the better algorithm
    assert report.karatsuba_software_cycles > 100 * 6_624 / 100  # > 6,624
    assert report.karatsuba_software_cycles > 50 * 6_624


def test_karatsuba_breaks_ternary_property():
    """Why MUL TER cannot run Karatsuba: (a^l + a^h) is not ternary."""
    rng = np.random.default_rng(0)
    ternary = rng.integers(-1, 2, 512)
    folded = ternary[:256] + ternary[256:]
    assert folded.min() <= -2 or folded.max() >= 2  # leaves {-1,0,1}


def test_bench_karatsuba_mult(benchmark):
    ring = PolyRing(512)
    rng = np.random.default_rng(2)
    a, b = ring.random(rng), ring.random(rng)
    result = benchmark.pedantic(
        lambda: karatsuba_ring_mul(ring, a, b), rounds=3, iterations=1
    )
    assert np.array_equal(result, ring.mul(a, b))


def test_bench_keccak_ablation(benchmark):
    benchmark.pedantic(keccak_generation_ablation, rounds=2, iterations=1)
