"""Ablation: the timing side channel that motivates Table I (Sec. VI-A).

Runs the TVLA-style fixed-vs-fixed leakage test and the error-count
distinguisher against both decoders, demonstrating why the paper
rejects the round-2 submission decoder as its baseline.
"""

from benchmarks.conftest import emit
from repro.eval.leakage import error_count_distinguisher, leakage_test
from repro.eval.reporting import format_table


def test_leakage_report():
    reports = [
        leakage_test(constant_time=False, samples=10),
        leakage_test(constant_time=True, samples=10),
    ]
    emit(format_table(
        ["Decoder", "mean (0 err)", "mean (16 err)", "|t|", "leaks"],
        [(r.decoder, r.mean_low, r.mean_high, abs(r.t_statistic), r.leaks)
         for r in reports],
        title="Leakage test — Welch t between 0-error and 16-error decodes",
    ))
    submission, walters = reports
    assert submission.leaks          # [14]'s attack surface exists
    assert not walters.leaks         # [15]'s countermeasure closes it
    assert submission.mean_high > submission.mean_low
    assert walters.std_low == walters.std_high == 0.0


def test_distinguisher_report():
    reports = [
        error_count_distinguisher(constant_time=False, attempts=12),
        error_count_distinguisher(constant_time=True, attempts=12),
    ]
    emit(format_table(
        ["Decoder", "attempts", "exact hits", "mean abs error"],
        [(r.decoder, r.attempts, r.exact_hits, r.mean_absolute_error)
         for r in reports],
        title="Error-count recovery from decode timing",
    ))
    submission, walters = reports
    # timing fully reveals the error count for the submission decoder...
    assert submission.exact_hits >= 10
    # ...and gives nothing better than chance for the constant-time one
    assert walters.exact_hits <= submission.exact_hits
    assert walters.mean_absolute_error >= 2.0


def test_bench_leakage_test(benchmark):
    benchmark.pedantic(
        lambda: leakage_test(constant_time=False, samples=4),
        rounds=2, iterations=1,
    )
