"""Ablation: MUL TER unit length vs. performance and area (Sec. IV-A).

The paper fixes the unit at length 512 as "a good trade-off between
performance and area"; this ablation quantifies the claim by sweeping
256/512/1024 and checking the two arguments the paper gives:

* a length-512 unit already pushes multiplication below the polynomial
  generation cost, so doubling the unit would not speed LAC up much;
* halving the unit saves ~50% area but multiplies the cycle cost of
  every multiplication by an order of magnitude (quadratic splitting).
"""

from benchmarks.conftest import emit
from repro.cosim.protocol import CycleModel
from repro.eval.ablations import generation_crossover, sweep_mul_ter_lengths
from repro.eval.reporting import format_table
from repro.lac.params import LAC_128, LAC_256


def test_sweep_report():
    points = sweep_mul_ter_lengths((256, 512, 1024))
    emit(format_table(
        ["Unit length", "LUTs", "Registers", "mult n=512", "mult n=1024"],
        [(p.length, p.luts, p.registers, p.cycles_n512, p.cycles_n1024)
         for p in points],
        title="Ablation — MUL TER length sweep",
    ))
    by_length = {p.length: p for p in points}
    # area roughly halves/doubles with the unit length
    assert 0.4 < by_length[256].luts / by_length[512].luts < 0.6
    assert 1.8 < by_length[1024].luts / by_length[512].luts < 2.2
    # a half-size unit pays quadratically in cycles
    assert by_length[256].cycles_n512 > 10 * by_length[512].cycles_n512
    # a double-size unit helps n=1024 by >10x but the kernel is already
    # below the generation bottleneck at 512 (checked below)
    assert by_length[1024].cycles_n1024 < by_length[512].cycles_n1024 / 10


def test_protocol_level_sweep():
    """End-to-end protocol totals per unit length — the number the
    designer actually trades against area (possible here because the
    generalized splitting serves every power-of-two ratio)."""
    from repro.eval.ablations import protocol_level_sweep

    points = protocol_level_sweep(params_list=(LAC_128, LAC_256))
    emit(format_table(
        ["Scheme", "Unit length", "LUTs", "Protocol total", "Mult kernel"],
        [(p.scheme, p.unit_length, p.luts, p.protocol_total, p.multiplication)
         for p in points],
        title="Ablation — protocol totals vs. MUL TER length",
    ))
    by_key = {(p.scheme, p.unit_length): p for p in points}
    # halving the unit costs ~25% protocol time on LAC-128
    assert by_key[("LAC-128", 256)].protocol_total > 1.15 * by_key[
        ("LAC-128", 512)
    ].protocol_total
    # doubling it does NOT help LAC-128 (padding overhead dominates):
    # the generation kernels bound the protocol, the paper's argument
    assert by_key[("LAC-128", 1024)].protocol_total > 0.95 * by_key[
        ("LAC-128", 512)
    ].protocol_total
    # LAC-256 gains from the bigger unit, but less than the 2x area
    gain = (
        by_key[("LAC-256", 512)].protocol_total
        / by_key[("LAC-256", 1024)].protocol_total
    )
    assert 1.1 < gain < 1.6


def test_crossover_claims():
    for params in (LAC_128, LAC_256):
        kernels = CycleModel(params, "ise").measure_kernels()
        emit(
            f"{params.name}: mult={kernels.multiplication:,} "
            f"GenA={kernels.gen_a:,} Sample={kernels.sample_poly:,}"
        )
        # Sec. IV-A: the accelerated multiplication is already cheaper
        # than polynomial generation, so a bigger unit cannot move the
        # protocol totals much
        assert kernels.multiplication < kernels.gen_a
        assert kernels.multiplication < kernels.sample_poly
    check = generation_crossover()
    assert check.mult_is_cheapest


def test_coefficient_width_ablation():
    """Why q = 251: the single-byte data path halves the multiplier.

    Rebuilds the MUL TER inventory at the widths larger lattice moduli
    would force (Kyber's 12 bits, NewHope's 14) — the hardware payoff
    of the BCH code that the paper's introduction argues for.
    """
    from repro.eval.ablations import coefficient_width_ablation

    points = coefficient_width_ablation()
    emit(format_table(
        ["q", "coefficient bits", "LUTs", "registers"],
        [(p.q, p.width_bits, p.luts, p.registers) for p in points],
        title="Ablation — ternary multiplier area vs. coefficient width",
    ))
    by_q = {p.q: p for p in points}
    # byte coefficients (q=251) vs NewHope's 14-bit: ~40% area saved
    assert by_q[12289].luts > 1.5 * by_q[251].luts
    assert by_q[12289].registers > 1.5 * by_q[251].registers
    # monotone in the width
    assert by_q[251].luts < by_q[3329].luts < by_q[12289].luts


def test_bench_sweep(benchmark):
    benchmark.pedantic(
        lambda: sweep_mul_ter_lengths((256, 512)), rounds=2, iterations=1
    )
