"""Ablation: decryption noise vs. the BCH correction budget.

LAC's design premise (Sec. I) is that a strong error-correcting code
buys single-byte coefficients; this benchmark measures the actual
noise the decoder absorbs, the D2 effect at level V, and the
ciphertext-compression trade-off.
"""

from benchmarks.conftest import emit
from repro.eval.noise import (
    channel_error_distribution,
    compression_sweep,
    d2_ablation,
    h_sweep,
)
from repro.eval.reporting import format_table
from repro.lac.params import ALL_PARAMS


def test_noise_budget_report():
    reports = [channel_error_distribution(p, trials=12) for p in ALL_PARAMS]
    emit(format_table(
        ["Scheme", "mean errors", "max errors", "BER", "t", "reliable"],
        [(r.scheme, r.mean_errors, r.max_errors,
          f"{r.bit_error_rate:.5f}", r.correction_capacity, r.decodes_reliably)
         for r in reports],
        title="Channel errors handed to the BCH decoder",
    ))
    for report in reports:
        assert report.decodes_reliably
        # the design margin: worst case stays below half the capacity
        assert report.max_errors <= report.correction_capacity // 2


def test_d2_report():
    with_d2, without_d2 = d2_ablation(trials=10)
    emit(format_table(
        ["Encoding", "mean errors", "max errors"],
        [("D2 (shipped)", with_d2.mean_errors, with_d2.max_errors),
         ("plain", without_d2.mean_errors, without_d2.max_errors)],
        title="LAC-256: D2 redundant encoding vs. plain",
    ))
    # D2 strictly reduces the error rate at the shipped h = 384
    assert with_d2.mean_errors <= without_d2.mean_errors
    assert with_d2.decodes_reliably and without_d2.decodes_reliably


def test_h_sweep_report():
    points = h_sweep(weights=(384, 512, 640, 768), trials=6)
    emit(format_table(
        ["h", "D2 mean", "D2 max", "plain mean", "plain max", "plain fails"],
        [(p.h, p.d2_mean, p.d2_max,
          "-" if p.plain_mean is None else p.plain_mean,
          "-" if p.plain_max is None else p.plain_max,
          p.plain_failed)
         for p in points],
        title="Secret weight vs. channel errors (LAC-256 geometry)",
    ))
    by_h = {p.h: p for p in points}
    # D2 always at or below plain where both decode
    for p in points:
        if p.plain_max is not None:
            assert p.d2_max <= p.plain_max
    # the design justification: plain encoding collapses first as h grows
    assert by_h[768].plain_failed or by_h[768].plain_max > 2 * by_h[768].d2_max
    # while D2 still decodes at h = 768
    assert by_h[768].d2_max <= 16


def test_compression_sweep_report():
    reports = compression_sweep(bit_widths=(3, 4, 8), trials=8)
    emit(format_table(
        ["Variant", "v bits", "mean errors", "max errors"],
        [(r.scheme, r.v_bits, r.mean_errors, r.max_errors) for r in reports],
        title="Ciphertext compression vs. noise (LAC-256)",
    ))
    by_bits = {r.v_bits: r for r in reports}
    # uncompressed is never worse than the shipped 4-bit variant
    assert by_bits[8].mean_errors <= by_bits[4].mean_errors
    # everything still decodes with margin
    for report in reports:
        assert report.decodes_reliably


def test_bench_noise_monte_carlo(benchmark):
    from repro.lac.params import LAC_128

    benchmark.pedantic(
        lambda: channel_error_distribution(LAC_128, trials=5),
        rounds=2, iterations=1,
    )
