"""The NewHope comparison row of Tables II and III, from our own baseline.

The paper carries [8]'s NewHope co-design as its comparison point; this
benchmark regenerates that row from the NewHope implementation in
``repro.newhope`` (NTT accelerator + Keccak accelerator models) and
verifies the cross-scheme claims of Sec. VI-B.
"""

import pytest

from benchmarks.conftest import emit
from repro.cosim.newhope_model import NewHopeCycleModel, PAPER_NEWHOPE_ROW
from repro.eval.reporting import format_table
from repro.hw.area import AreaModel, NEWHOPE_KECCAK_ACCELERATOR, NEWHOPE_NTT_ACCELERATOR
from repro.hw.keccak_accel import KeccakUnit
from repro.hw.ntt_accel import NttAccelUnit
from repro.lac.params import LAC_256
from repro.newhope.params import NEWHOPE_1024


@pytest.fixture(scope="module")
def newhope_row():
    return NewHopeCycleModel().measure_protocol()


def test_newhope_row_report(newhope_row):
    paper = PAPER_NEWHOPE_ROW
    emit(format_table(
        ["Operation", "measured", "paper [8]", "ratio"],
        [
            ("Key-Generation", newhope_row.key_generation,
             paper["key_generation"],
             newhope_row.key_generation / paper["key_generation"]),
            ("Encapsulation", newhope_row.encapsulation,
             paper["encapsulation"],
             newhope_row.encapsulation / paper["encapsulation"]),
            ("Decapsulation", newhope_row.decapsulation,
             paper["decapsulation"],
             newhope_row.decapsulation / paper["decapsulation"]),
            ("GenA", newhope_row.kernels.gen_a, paper["gen_a"],
             newhope_row.kernels.gen_a / paper["gen_a"]),
            ("Sample poly", newhope_row.kernels.sample_poly, paper["sample_poly"],
             newhope_row.kernels.sample_poly / paper["sample_poly"]),
            ("Multiplication", newhope_row.kernels.multiplication,
             paper["multiplication"],
             newhope_row.kernels.multiplication / paper["multiplication"]),
        ],
        title="NewHope1024 CPA on RISC-V (model vs. [8])",
    ))
    # kernel cells: tight bands (the accelerator schedules dominate)
    assert 0.7 < newhope_row.kernels.gen_a / paper["gen_a"] < 1.4
    assert 0.6 < newhope_row.kernels.sample_poly / paper["sample_poly"] < 1.4
    # [8] reports the multiplication as a lower bound (3 NTTs)
    assert 0.85 < newhope_row.kernels.multiplication / paper["multiplication"] < 1.3
    # protocol cells: [8]'s totals include driver software we don't
    # model, so only order-of-magnitude bands
    assert 0.25 < newhope_row.key_generation / paper["key_generation"] < 1.5
    assert 0.25 < newhope_row.decapsulation / paper["decapsulation"] < 1.5


def test_cross_scheme_claims(newhope_row, table2_rows):
    """Sec. VI-B's LAC-vs-NewHope comparisons."""
    lac_row = next(r for r in table2_rows if r.scheme == "LAC-256 opt.")
    total_gap = lac_row.total - newhope_row.total
    emit(f"LAC-256 CCA total {lac_row.total:,} vs NewHope1024 CPA total "
         f"{newhope_row.total:,} (paper: ~3.12M extra cycles for LAC)")
    # LAC (CCA, with error correction, SHA256) costs millions more
    assert 1_500_000 < total_gap < 6_000_000
    # NewHope's CPA decapsulation is far cheaper than LAC's CCA one
    # (no re-encryption, no BCH decode)
    assert newhope_row.decapsulation < lac_row.decapsulation / 5
    # but LAC wins on every wire size (the paper's closing argument)
    assert LAC_256.public_key_bytes < NEWHOPE_1024.public_key_bytes
    assert LAC_256.secret_key_bytes < NEWHOPE_1024.secret_key_bytes
    assert LAC_256.ciphertext_bytes < NEWHOPE_1024.ciphertext_bytes


def test_cca_fairness(newhope_row, table2_rows):
    """The comparison the paper could not make: CCA vs. CCA.

    [8]'s NewHope row is CPA; LAC's rows are CCA (with re-encryption).
    Wrapping NewHope in the same FO transform shows how much of the
    LAC-vs-NewHope decapsulation gap is the security notion rather
    than the scheme."""
    cca_decaps = NewHopeCycleModel().measure_cca_decapsulation()
    cpa_decaps = newhope_row.decapsulation
    lac_decaps = next(
        r for r in table2_rows if r.scheme == "LAC-256 opt."
    ).decapsulation
    emit(format_table(
        ["Decapsulation", "cycles"],
        [("NewHope1024 CPA (as in [8])", cpa_decaps),
         ("NewHope1024 CCA (FO, ours)", cca_decaps),
         ("LAC-256 CCA (Table II)", lac_decaps)],
        title="CCA fairness — the re-encryption cost [8] does not pay",
    ))
    # the FO transform multiplies NewHope's decapsulation severalfold
    assert cca_decaps > 3 * cpa_decaps
    # and closes most of the LAC-vs-NewHope decapsulation gap
    assert lac_decaps / cca_decaps < 0.6 * (lac_decaps / cpa_decaps)


def test_accelerator_area_contrast():
    """Table III: NTT needs DSP/BRAM, MUL TER needs LUTs; Keccak is 10x SHA."""
    model = AreaModel()
    ntt = model.estimate(NttAccelUnit().inventory())
    keccak = model.estimate(KeccakUnit().inventory())
    lac = model.pq_alu_report()
    emit(format_table(
        ["Accelerator", "LUTs", "FF", "BRAM", "DSP"],
        [
            ("NTT (model)", ntt.luts, ntt.registers, ntt.brams, ntt.dsps),
            ("NTT (paper)", NEWHOPE_NTT_ACCELERATOR.luts,
             NEWHOPE_NTT_ACCELERATOR.registers, 1, 26),
            ("Keccak (model)", keccak.luts, keccak.registers,
             keccak.brams, keccak.dsps),
            ("Keccak (paper)", NEWHOPE_KECCAK_ACCELERATOR.luts,
             NEWHOPE_KECCAK_ACCELERATOR.registers, 0, 0),
            ("LAC Ternary Mult", lac["Ternary Multiplier"].luts,
             lac["Ternary Multiplier"].registers, 0, 0),
            ("LAC SHA256", lac["SHA256"].luts, lac["SHA256"].registers, 0, 0),
        ],
        title="Accelerator area contrast (Table III)",
    ))
    assert ntt.dsps == 26 and ntt.brams == 1
    assert lac["Ternary Multiplier"].dsps == 0
    assert 0.5 < ntt.luts / NEWHOPE_NTT_ACCELERATOR.luts < 2.0
    assert 0.6 < keccak.luts / NEWHOPE_KECCAK_ACCELERATOR.luts < 1.5
    assert keccak.luts > 8 * lac["SHA256"].luts


def test_ntt_transform_cycles_near_paper():
    unit = NttAccelUnit(1024)
    emit(f"NTT transform: {unit.transform_cycles:,} cycles "
         f"(paper [8]: 24,609 incl. driver)")
    assert 0.7 < unit.transform_cycles / 24_609 < 1.1


def test_bench_newhope_protocol(benchmark):
    model = NewHopeCycleModel()
    benchmark.pedantic(model.measure_protocol, rounds=2, iterations=1)


def test_bench_ntt_accelerated_multiply(benchmark):
    import numpy as np

    unit = NttAccelUnit(1024)
    rng = np.random.default_rng(1)
    a = rng.integers(0, 12289, 1024)
    b = rng.integers(0, 12289, 1024)
    benchmark.pedantic(lambda: unit.multiply(a, b), rounds=3, iterations=1)
