"""Sensitivity analysis: the conclusions vs. the calibrated prices.

Re-prices the recorded operation counts under +-2x perturbations of
every calibrated cost constant and verifies the paper's structural
claims survive all of them (see docs/CYCLEMODEL.md).
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.reporting import format_table
from repro.eval.sensitivity import CALIBRATED_PARAMETERS, SensitivityAnalysis


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis()


@pytest.fixture(scope="module")
def sweep(analysis):
    return analysis.sweep()


def test_sensitivity_report(sweep):
    by_parameter = {}
    for point in sweep:
        by_parameter.setdefault(point.parameter, []).append(point)
    rows = []
    for parameter, points in by_parameter.items():
        speedups = [p.speedup for p in points]
        rows.append((
            parameter,
            min(speedups), max(speedups),
            min(p.ct_overhead for p in points),
            max(p.ct_overhead for p in points),
        ))
    emit(format_table(
        ["Perturbed price (x0.5..x2)", "speedup min", "speedup max",
         "CT cost min", "CT cost max"],
        rows,
        title="Sensitivity of the headline conclusions (LAC-128)",
    ))
    assert set(by_parameter) == set(CALIBRATED_PARAMETERS)


def test_speedup_conclusion_robust(sweep):
    """The accelerators win by >4x under every single-price 2x shift."""
    for point in sweep:
        assert point.speedup > 4.0, point
        assert point.speedup < 12.0, point


def test_ct_overhead_conclusion_robust(sweep):
    """Constant time always costs extra; never more than ~6x."""
    for point in sweep:
        assert 1.5 < point.ct_overhead < 6.5, point


def test_design_argument_robust(sweep):
    """Accelerated mult stays below GenA for every perturbation
    (the Sec. IV-A argument for the length-512 unit)."""
    for point in sweep:
        assert point.mult_below_generation, point


def test_nominal_point(analysis):
    from repro.cosim.costs import ISE_COSTS, REFERENCE_COSTS

    nominal = analysis.evaluate(REFERENCE_COSTS, ISE_COSTS)
    emit(f"nominal headline speedup: {nominal.speedup:.2f} (paper: 7.66)")
    assert 6.0 < nominal.speedup < 9.0


def test_bench_sweep(benchmark, analysis):
    """Re-pricing is cheap: a full sweep is pure arithmetic."""
    benchmark.pedantic(analysis.sweep, rounds=3, iterations=1)
