"""Table I: cycle count of BCH(511,367,16) decoding on RISC-V.

Regenerates the submission-decoder vs. Walters-decoder comparison at 0
and 16 errors, printing model-vs-paper per phase, and benchmarks the
wall-clock of one cycle-accounted decode of each kind.
"""

import pytest

from benchmarks.conftest import emit
from repro.eval.reporting import format_table
from repro.eval.table1 import PAPER_TABLE1, generate_table1, measure_decode


@pytest.fixture(scope="module")
def rows():
    return generate_table1()


def _comparison_table(rows):
    lines = []
    for model, paper in zip(rows, PAPER_TABLE1):
        lines.append((
            model.scheme, model.fails,
            model.syndrome, paper.syndrome,
            model.error_locator, paper.error_locator,
            model.chien, paper.chien,
            model.decode, paper.decode,
            model.decode / paper.decode,
        ))
    return format_table(
        ["Scheme", "Fails",
         "Syndr.", "(paper)", "ErrLoc", "(paper)",
         "Chien", "(paper)", "Decode", "(paper)", "ratio"],
        lines,
        title="Table I — BCH(511,367,16) decode cycles on RISC-V",
    )


def test_table1_report(rows):
    emit(_comparison_table(rows))
    # shape assertions: what the paper's Table I demonstrates
    subm0, subm16, ct0, ct16 = rows
    # 1. the submission decoder is NOT constant time
    assert subm16.decode - subm0.decode > 1_000
    assert subm16.error_locator > 10 * subm0.error_locator
    # 2. the Walters decoder IS constant time
    assert ct0.decode == ct16.decode
    # 3. the protection costs ~3x
    assert 2.5 < ct0.decode / subm0.decode < 4.0
    # 4. absolute totals within +-25% of the paper
    for model, paper in zip(rows, PAPER_TABLE1):
        assert 0.75 < model.decode / paper.decode < 1.25


def test_bench_submission_decode(benchmark):
    result = benchmark.pedantic(
        lambda: measure_decode(constant_time=False, errors=16),
        rounds=3, iterations=1,
    )
    assert result.decode > 0


def test_bench_constant_time_decode(benchmark):
    result = benchmark.pedantic(
        lambda: measure_decode(constant_time=True, errors=16),
        rounds=3, iterations=1,
    )
    assert result.decode > 0
