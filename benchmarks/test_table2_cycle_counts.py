"""Table II: protocol and kernel cycle counts for every configuration.

Regenerates all nine RISC-V rows (LAC-{128,192,256} x {ref, const-BCH,
ISE}) on the cycle model, prints them against the paper's values, and
verifies the headline speedups (7.66 / 14.42 / 13.36).
"""

import pytest

from benchmarks.conftest import emit
from repro.cosim.protocol import CycleModel
from repro.eval.reporting import format_table
from repro.eval.table2 import PAPER_SPEEDUPS, PAPER_TABLE2
from repro.lac.params import ALL_PARAMS, LAC_128


def _paper_row(scheme: str):
    return next(r for r in PAPER_TABLE2 if r.scheme == scheme)


_PROFILE_SUFFIX = {"ref.": "ref.", "const. BCH": "const. BCH", "opt.": "opt."}


def test_table2_report(table2_rows):
    lines = []
    for row in table2_rows:
        paper = _paper_row(row.scheme)
        lines.append((
            row.scheme,
            row.key_generation, paper.key_generation,
            row.encapsulation, paper.encapsulation,
            row.decapsulation, paper.decapsulation,
            row.total / paper.total,
        ))
    emit(format_table(
        ["Scheme", "KeyGen", "(paper)", "Encaps", "(paper)",
         "Decaps", "(paper)", "ratio"],
        lines,
        title="Table II — protocol cycle counts (model vs. paper)",
    ))
    # every cell within +-30% of the paper
    for row in table2_rows:
        paper = _paper_row(row.scheme)
        for field in ("key_generation", "encapsulation", "decapsulation"):
            measured, reference = getattr(row, field), getattr(paper, field)
            assert 0.70 < measured / reference < 1.30, (row.scheme, field)


def test_table2_kernel_report(table2_rows):
    lines = []
    for row in table2_rows:
        paper = _paper_row(row.scheme)
        lines.append((
            row.scheme,
            row.gen_a, paper.gen_a,
            row.sample_poly, paper.sample_poly,
            row.multiplication, paper.multiplication,
            row.bch_decode, paper.bch_decode,
        ))
    emit(format_table(
        ["Scheme", "GenA", "(paper)", "Sample", "(paper)",
         "Mult", "(paper)", "BCH Dec", "(paper)"],
        lines,
        title="Table II — bottleneck kernels (model vs. paper)",
    ))
    for row in table2_rows:
        paper = _paper_row(row.scheme)
        # kernel cells within a 2x band (Sample-256 is the loosest)
        for field in ("gen_a", "sample_poly", "multiplication", "bch_decode"):
            measured, reference = getattr(row, field), getattr(paper, field)
            assert 0.5 < measured / reference < 2.0, (row.scheme, field)


def test_headline_speedups(table2_rows):
    by_scheme = {r.scheme: r for r in table2_rows}
    lines = []
    for params in ALL_PARAMS:
        baseline = by_scheme[f"{params.name} const. BCH"]
        optimized = by_scheme[f"{params.name} opt."]
        factor = baseline.total / optimized.total
        paper = PAPER_SPEEDUPS[params.name]
        lines.append((params.name, factor, paper, factor / paper))
        # the headline factors within +-20%
        assert 0.8 < factor / paper < 1.2, params.name
    emit(format_table(
        ["Scheme", "speedup (model)", "speedup (paper)", "ratio"],
        lines,
        title="Headline speedups: const-BCH baseline / ISE-optimized",
    ))


def test_kernel_shape_claims(table2_rows):
    """The qualitative claims of Sec. VI-B."""
    by_scheme = {r.scheme: r for r in table2_rows}
    for params in ALL_PARAMS:
        ref = by_scheme[f"{params.name} ref."]
        opt = by_scheme[f"{params.name} opt."]
        # multiplication gains two orders of magnitude (n=512) / >50x (1024)
        assert ref.multiplication / opt.multiplication > 50
        # GenA barely moves (the modest SHA256 accelerator)
        assert ref.gen_a / opt.gen_a < 1.2
        # accelerated mult is cheaper than polynomial generation (Sec. IV-A)
        assert opt.multiplication < opt.gen_a


def test_table2_internal_decomposition(table2_rows):
    """The structural arithmetic of Table II, which the paper's own
    numbers satisfy and our measurement must too:

    * keygen  ~ GenA + 2 x Sample + Mult            (+ small glue)
    * encaps  ~ GenA + 3 x Sample + Mult + trunc    (+ small glue)
    * decaps  ~ Mult + BCH decode + encaps          (+ small glue)

    where `trunc` is the v-component multiplication, proportional to
    v_slots/n of a full multiplication on the reference profile.
    """
    from repro.lac.params import ALL_PARAMS

    params_by_name = {p.name: p for p in ALL_PARAMS}
    lines = []
    for row in table2_rows:
        scheme_name = row.scheme.rsplit(" ", 1)[0].replace(" const.", "")
        params = params_by_name[row.scheme.split(" ")[0]]
        is_ise = row.scheme.endswith("opt.")
        trunc = (
            row.multiplication  # the unit always runs full-length
            if is_ise
            else round(row.multiplication * params.v_slots / params.n)
        )
        kg_model = row.gen_a + 2 * row.sample_poly + row.multiplication
        enc_model = row.gen_a + 3 * row.sample_poly + row.multiplication + trunc
        dec_model = row.multiplication + row.bch_decode + row.encapsulation
        lines.append((
            row.scheme,
            row.key_generation / kg_model,
            row.encapsulation / enc_model,
            row.decapsulation / dec_model,
        ))
        # the totals decompose into the kernels with only small glue
        # (the sub-1.0 slack comes from rejection-sampling draw counts
        # differing between the standalone kernel and in-protocol runs)
        assert 0.92 <= row.key_generation / kg_model < 1.25, row.scheme
        assert 0.92 <= row.encapsulation / enc_model < 1.25, row.scheme
        assert 0.92 <= row.decapsulation / dec_model < 1.25, row.scheme
    emit(format_table(
        ["Scheme", "KG / model", "Enc / model", "Dec / model"],
        lines,
        title="Table II decomposition (total / sum-of-kernels; glue = excess)",
    ))


@pytest.mark.parametrize("profile", ["ref", "const_bch", "ise"])
def test_bench_lac128_decapsulation(benchmark, profile):
    """Wall-clock of one cycle-accounted decapsulation measurement."""
    model = CycleModel(LAC_128, profile)

    def measure():
        pair = model.kem.keygen(seed=model.seed)
        enc = model.kem.encaps(pair.public_key, message=model.seed[:32])
        return model.kem.decaps(pair.secret_key, enc.ciphertext)

    benchmark.pedantic(measure, rounds=2, iterations=1)


def test_bench_full_table2(benchmark):
    """Wall-clock of regenerating one full Table II row."""
    benchmark.pedantic(
        lambda: CycleModel(LAC_128, "ise").measure_protocol(),
        rounds=2, iterations=1,
    )
