"""Table III: FPGA resource utilization from the structural area model."""

from benchmarks.conftest import emit
from repro.eval.reporting import format_table
from repro.eval.table3 import PAPER_TABLE3, generate_table3, pq_alu_overhead
from repro.hw.area import AreaModel
from repro.hw.mul_ter import MulTerUnit


def test_table3_report():
    rows = generate_table3()
    paper = {r.block: r for r in PAPER_TABLE3}
    lines = []
    for row in rows:
        reference = paper[row.block]
        lines.append((
            row.block,
            row.luts, reference.luts,
            row.registers, reference.registers,
            row.brams, row.dsps,
        ))
    emit(format_table(
        ["Block", "LUTs", "(paper)", "Regs", "(paper)", "BRAM", "DSP"],
        lines,
        title="Table III — resource utilization (model vs. paper)",
    ))
    by_block = {r.block: r for r in rows}
    # shape: the ternary multiplier dominates everything
    mul_ter = by_block["- Ternary Multiplier"]
    assert mul_ter.luts > 20 * by_block["- SHA256"].luts
    assert mul_ter.registers > 5 * by_block["- SHA256"].registers
    # Barrett has the only DSPs; the PQ-ALU uses no BRAM
    assert by_block["- Modulo (Barrett)"].dsps == 2
    assert all(
        r.brams == 0 for r in rows if r.block.startswith("-")
    )
    # BRAM/DSP columns match the paper exactly
    for row in rows:
        reference = paper[row.block]
        assert row.brams == reference.brams, row.block
        assert row.dsps == reference.dsps, row.block


def test_abstract_overhead():
    overhead = pq_alu_overhead()
    emit(
        f"PQ-ALU overhead: {overhead.luts:,} LUTs / {overhead.registers:,} "
        f"registers / {overhead.dsps} DSPs "
        f"(paper: 32,617 / 11,019 / 2)"
    )
    assert abs(overhead.luts - 32_617) / 32_617 < 0.10
    assert abs(overhead.registers - 11_019) / 11_019 < 0.05
    assert overhead.dsps == 2


def test_bench_area_estimation(benchmark):
    benchmark.pedantic(generate_table3, rounds=5, iterations=1)


def test_bench_inventory_extraction(benchmark):
    model = AreaModel()
    unit = MulTerUnit(512)
    benchmark.pedantic(lambda: model.estimate(unit.inventory()), rounds=5, iterations=2)
