"""Validation: the analytical cycle model against the real ISS.

Every kernel runs twice — as RISC-V machine code on the instruction-set
simulator (through the full pq.* operand-packing protocol) and as an
instruction-schedule prediction priced with the same RISCY cost model.
The benchmark asserts bit-exact functional results and cycle-exact
agreement, closing the loop between Tables I/II (operation-count
models) and actual execution.
"""

from benchmarks.conftest import emit
from repro.cosim.validation import (
    run_all,
    validate_modq_kernel,
    validate_mul_ter_kernel,
)
from repro.eval.reporting import format_table


def test_validation_report():
    results = run_all()
    emit(format_table(
        ["Kernel", "ISS cycles", "Predicted", "Exact", "Functional"],
        [(v.name, v.iss_cycles, v.predicted_cycles, v.exact, v.functional_ok)
         for v in results],
        title="ISS validation — machine code vs. analytical model",
    ))
    for v in results:
        assert v.functional_ok, v.name
        assert v.exact, v.name


def test_modq_speedup_on_iss():
    """pq.modq vs. the RV32M divider, end to end on the simulator."""
    ise = validate_modq_kernel(count=128, use_ise=True)
    sw = validate_modq_kernel(count=128, use_ise=False)
    factor = sw.iss_cycles / ise.iss_cycles
    emit(f"mod-q reduction speedup on ISS: {factor:.2f}x "
         f"({sw.iss_cycles:,} -> {ise.iss_cycles:,} cycles)")
    assert factor > 3.5


def test_decrypt_core_on_iss():
    """A complete LAC-128 decryption front-end as one machine-code
    program: u*s through pq.mul_ter, noise subtraction through
    pq.modq, branchless threshold decode — bit-exact against the
    Python codec and self-measured through rdcycle."""
    from repro.cosim.decrypt_kernel import run_decrypt_kernel

    result = run_decrypt_kernel()
    emit(
        f"on-target decrypt front-end: {result.iss_cycles:,} cycles "
        f"({result.instructions:,} instructions, self-measured "
        f"{result.self_measured_cycles:,}); bits match codec: "
        f"{result.matches_codec}"
    )
    assert result.matches_codec
    # vs. 2.36M cycles for the software multiplication alone
    assert result.iss_cycles < 20_000


def test_bench_mul_ter_on_iss(benchmark):
    """Wall-clock of a full MUL TER transaction through the ISS."""
    result = benchmark.pedantic(
        lambda: validate_mul_ter_kernel(512), rounds=2, iterations=1
    )
    assert result.functional_ok


def test_bench_modq_kernel_on_iss(benchmark):
    result = benchmark.pedantic(
        lambda: validate_modq_kernel(count=64, use_ise=True),
        rounds=3, iterations=1,
    )
    assert result.exact
