"""End-to-end latency attribution for the KEM service, from trace spans.

Runs the same concurrent-client load as ``bench_service.py`` (default
64 pipelined protocol clients) with tracing enabled on both the
service and the clients, dumps every span as JSON Lines, and prints
the per-stage attribution table of :mod:`repro.trace.report` — the
serving analogue of the paper's Table II per-stage cycle breakdown::

    PYTHONPATH=src python benchmarks/trace_report.py             # full
    PYTHONPATH=src python benchmarks/trace_report.py --smoke     # CI

The table shows, for each serving stage (``admission`` → ``queue`` →
``dispatch`` → ``kernel`` → ``reply``), exact p50/p95/p99 durations
and the stage's share of total request time.  Because the server's
stage spans telescope, the run **self-checks**: stage durations must
sum to within 10% of the measured end-to-end request time (they sum
exactly by construction; real drift would mean dropped spans or an
instrumentation regression) and the run fails otherwise.

``--overhead`` additionally measures the same load untraced and
reports the throughput ratio — the "near-zero cost when disabled"
claim, checked against real numbers.

Outputs: the span dump (``BENCH_trace.jsonl``) and a JSON summary
(``BENCH_trace.json``) at the repository root.

See ``docs/OBSERVABILITY.md`` for the span model.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
from pathlib import Path

from bench_service import bench_service
from repro.lac.params import ALL_PARAMS, LAC_256
from repro.trace import (
    InMemoryRecorder,
    Tracer,
    format_stage_table,
    stage_breakdown,
)

#: Acceptance bound: summed stage time must land within this fraction
#: of summed end-to-end request time.
COVERAGE_TOLERANCE = 0.10


def run_traced(
    params, clients: int, requests: int, max_batch: int, max_wait_us: float
) -> tuple[dict, list[dict]]:
    """One traced load run; returns (throughput row, span dicts)."""
    server_rec = InMemoryRecorder()
    client_rec = InMemoryRecorder()
    row = asyncio.run(
        bench_service(
            params, clients, requests, max_batch, max_wait_us,
            tracer=Tracer(recorder=server_rec),
            client_tracer=Tracer(recorder=client_rec),
        )
    )
    spans = server_rec.to_dicts() + client_rec.to_dicts()
    if server_rec.dropped or client_rec.dropped:
        print(
            f"WARNING: recorder dropped "
            f"{server_rec.dropped + client_rec.dropped} spans - "
            "stage shares below are computed from a truncated dump"
        )
    return row, spans


def run(
    clients: int,
    requests: int,
    max_batch: int,
    max_wait_us: float,
    smoke: bool,
    overhead: bool,
    output: Path,
    spans_output: Path,
) -> dict:
    """Trace one load run per parameter set; print and write the report."""
    param_sets = (LAC_256,) if smoke else ALL_PARAMS
    rows = []
    all_spans: list[dict] = []
    failures: list[str] = []
    for params in param_sets:
        traced_row, spans = run_traced(
            params, clients, requests, max_batch, max_wait_us
        )
        all_spans.extend(spans)
        breakdown = stage_breakdown(spans)
        print(f"\n=== {params.name}: {clients} clients x {requests} requests ===")
        print(format_stage_table(breakdown))
        coverage = breakdown["coverage"]
        if abs(coverage - 1.0) > COVERAGE_TOLERANCE:
            failures.append(
                f"{params.name}: stage coverage {coverage:.1%} is outside "
                f"100% +/- {COVERAGE_TOLERANCE:.0%} of end-to-end time"
            )
        row = {
            "params": params.name,
            "traced_ops_per_s": traced_row["service_ops_per_s"],
            "coverage": coverage,
            "requests": breakdown["requests"],
            "stages": [s.to_dict() for s in breakdown["stages"]],
        }
        if overhead:
            plain_row = asyncio.run(
                bench_service(params, clients, requests, max_batch, max_wait_us)
            )
            row["untraced_ops_per_s"] = plain_row["service_ops_per_s"]
            row["tracing_overhead"] = 1.0 - (
                traced_row["service_ops_per_s"] / plain_row["service_ops_per_s"]
            )
            print(
                f"throughput: traced {traced_row['service_ops_per_s']:.0f} ops/s, "
                f"untraced {plain_row['service_ops_per_s']:.0f} ops/s "
                f"(overhead {row['tracing_overhead']:+.1%})"
            )
        rows.append(row)

    with open(spans_output, "w", encoding="utf-8") as stream:
        for span in all_spans:
            stream.write(json.dumps(span, separators=(",", ":")) + "\n")

    report = {
        "benchmark": "per-stage latency attribution of the traced KEM service",
        "smoke": smoke,
        "clients": clients,
        "requests_per_client": requests,
        "max_batch": max_batch,
        "max_wait_us": max_wait_us,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "span_count": len(all_spans),
        "results": rows,
        "pass": not failures,
        "failures": failures,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {len(all_spans)} spans to {spans_output}")
    print(f"wrote {output}")
    if failures:
        raise SystemExit(
            "stage attribution out of bounds:\n  " + "\n  ".join(failures)
        )
    return report


def main() -> None:
    """CLI entry point."""
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=64,
                        help="concurrent protocol clients (default 64)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client (default 16, smoke 6)")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="scheduler flush-on-size threshold (default 64)")
    parser.add_argument("--max-wait-us", type=float, default=2000.0,
                        help="scheduler deadline upper bound (default 2000)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI mode: LAC-256 only, fewer requests")
    parser.add_argument("--overhead", action="store_true",
                        help="also measure the same load untraced and report "
                             "the throughput delta")
    parser.add_argument("--output", type=Path, default=root / "BENCH_trace.json")
    parser.add_argument("--spans-output", type=Path,
                        default=root / "BENCH_trace.jsonl")
    args = parser.parse_args()
    requests = args.requests if args.requests is not None else (6 if args.smoke else 16)
    run(
        args.clients, requests, args.max_batch, args.max_wait_us,
        args.smoke, args.overhead, args.output, args.spans_output,
    )


if __name__ == "__main__":
    main()
