#!/usr/bin/env python3
"""Exploring the accelerator design space (Sec. IV-A and Table III).

The paper fixes the MUL TER unit at 512 coefficients, arguing it is "a
good trade-off between performance and area" because the accelerated
multiplication already undercuts polynomial generation.  This example
reproduces that design reasoning quantitatively:

* sweeps the unit length over 256 / 512 / 1024;
* prints cycles-per-multiplication and estimated FPGA area per point;
* regenerates the full Table III resource report;
* checks the generation-vs-multiplication crossover for each LAC level.

Run:  python examples/design_space.py
"""

from repro.cosim.protocol import CycleModel
from repro.eval.ablations import sweep_mul_ter_lengths
from repro.eval.reporting import format_table
from repro.eval.table3 import PAPER_TABLE3, generate_table3
from repro.lac.params import ALL_PARAMS


def sweep() -> None:
    print("--- MUL TER length sweep ---")
    points = sweep_mul_ter_lengths((256, 512, 1024))
    print(format_table(
        ["length", "LUTs", "registers", "cycles mult n=512", "cycles mult n=1024"],
        [(p.length, p.luts, p.registers, p.cycles_n512, p.cycles_n1024)
         for p in points],
    ))
    print("\nReading: halving the unit saves ~50% LUTs but costs >10x in")
    print("cycles (quadratic splitting); doubling it helps n=1024 but the")
    print("kernel is already below the generation bottleneck at 512.")


def crossover() -> None:
    print("\n--- is multiplication still the bottleneck? (ISE profile) ---")
    rows = []
    for params in ALL_PARAMS:
        kernels = CycleModel(params, "ise").measure_kernels()
        rows.append((
            params.name,
            kernels.multiplication,
            kernels.gen_a,
            kernels.sample_poly,
            kernels.multiplication < min(kernels.gen_a, kernels.sample_poly),
        ))
    print(format_table(
        ["scheme", "mult", "GenA", "Sample", "mult cheapest"],
        rows,
    ))
    print("\nWith the length-512 unit, multiplication sits below polynomial")
    print("generation at every security level — enlarging the multiplier")
    print("cannot improve the protocol totals much (the paper's argument).")


def table3() -> None:
    print("\n--- Table III: estimated resource utilization ---")
    paper = {r.block: r for r in PAPER_TABLE3}
    rows = []
    for row in generate_table3():
        reference = paper[row.block]
        rows.append((
            row.block, row.luts, reference.luts,
            row.registers, reference.registers, row.brams, row.dsps,
        ))
    print(format_table(
        ["block", "LUTs", "(paper)", "regs", "(paper)", "BRAM", "DSP"],
        rows,
    ))


def main() -> None:
    print("=" * 64)
    print("Accelerator design-space exploration")
    print("=" * 64 + "\n")
    sweep()
    crossover()
    table3()


if __name__ == "__main__":
    main()
