#!/usr/bin/env python3
"""The KEM cluster end to end: one endpoint, N member services.

Starts a :class:`repro.api.ClusterRouter` over two member services,
hosts a handful of LAC keys (consistent-hashed across the members,
replicated twice), drives traffic through the single routed endpoint,
then SIGKILLs a member mid-session to show the failure story: requests
keep completing bit-identically off the surviving replica, the dead
member is ejected, respawned, readmitted, and the key set rebalances
back to full replication — all visible in the cluster ``info()``.

Run:  python examples/kem_cluster.py
"""

import time

# everything an application needs comes from the stable facade
from repro.api import (
    LAC_128,
    ClusterConfig,
    ClusterClient,
    LacKem,
    ServiceConfig,
    ThreadedCluster,
)

KEYS = 6
SEED = bytes(range(64))  # seeded keygen: replicas are bit-identical


def show_topology(info: dict) -> None:
    """Print the routing table the cluster reports about itself."""
    cluster = info["cluster"]
    print(f"  members={len(cluster['members'])} "
          f"replication={cluster['replication']} "
          f"keys={cluster['keys']} launch={cluster['launch']}")
    for name, member in sorted(cluster["members"].items()):
        state = "in-ring" if member["in_ring"] else "ejected"
        print(f"  {name}: alive={member['alive']} {state} "
              f"hosts {member['keys']} key placement(s)")


def main() -> None:
    print("=" * 64)
    print(f"KEM cluster: 2 members, replication 2, {LAC_128.name}")
    print("=" * 64)

    config = ClusterConfig(
        members=2,
        launch="local",  # in-process members; launch="process" for real cores
        member_config=ServiceConfig(max_batch=8),
        replication=2,
        health_interval_s=0.2,
    )
    with ThreadedCluster(config) as cluster:
        with ClusterClient.connect(cluster) as client:
            # one seeded key we can check against the scalar reference,
            # plus a spread of random keys to populate the ring
            key_id, pk = client.keygen(LAC_128, SEED)
            spread = [client.keygen(LAC_128)[0] for _ in range(KEYS - 1)]

            reference = LacKem(LAC_128).keygen(SEED)
            assert pk.to_bytes() == reference.public_key.to_bytes(), (
                "routed keygen must match the scalar reference bit for bit"
            )
            print(f"\nhosted {KEYS} keys through one endpoint "
                  f"(seeded key id {key_id})")
            show_topology(client.info())

            ct, shared = client.encaps(key_id)
            assert client.decaps(key_id, ct) == shared
            for other in spread:
                ct2, shared2 = client.encaps(other)
                assert client.decaps(other, ct2) == shared2
            print(f"\nencaps/decaps roundtrips OK on all {KEYS} keys")

            # --- the failure story -----------------------------------
            victim = cluster.member_names()[0]
            print(f"\nSIGKILL {victim} (a live member, mid-session)...")
            cluster.kill_member(victim)

            # the surviving replica answers, bit-identical as ever
            ct3, shared3 = client.encaps(key_id)
            assert client.decaps(key_id, ct3) == shared3
            print("  routed traffic survived: replica served bit-identical "
                  "results")

            # wait for eject -> respawn -> readmit -> rebalance
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                counters = cluster.router.counters
                replicated = all(
                    len(placements) == 2
                    for placements in cluster.router.hosted_keys().values()
                )
                if counters.get("members_readmitted", 0) >= 1 and replicated:
                    break
                time.sleep(0.1)
            counters = dict(cluster.router.counters)
            print(f"  recovery counters: "
                  f"ejected={counters.get('members_ejected', 0)} "
                  f"restarts={counters.get('member_restarts', 0)} "
                  f"readmitted={counters.get('members_readmitted', 0)} "
                  f"placements rebalanced="
                  f"{counters.get('placements_rebalanced', 0)}")

            print("\ntopology after recovery:")
            show_topology(client.info())

            ct4, shared4 = client.encaps(key_id)
            assert client.decaps(key_id, ct4) == shared4
            print("\npost-recovery roundtrip OK — cluster healed itself")
    print("cluster drained cleanly")


if __name__ == "__main__":
    main()
