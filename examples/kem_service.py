#!/usr/bin/env python3
"""The KEM service end to end: micro-batching under concurrent load.

Starts an in-process :class:`repro.serve.KemService`, fires a fleet of
concurrent protocol clients at one hosted LAC key, and shows what the
adaptive micro-batch scheduler did with the traffic: the batch-size
histogram it achieved, the flush triggers, service-time percentiles,
and the throughput against sequential single-shot ``encaps`` on the
same machine.  Ends with the synchronous client for scripts that want
no asyncio.

The execution backend is a config choice: swap
``ServiceConfig(backend="cosim")`` into either demo to serve the same
traffic on the simulated ISE core, where every response also carries
the modelled cycle cost (``docs/COSIM.md``) — slower, serial, but
cycle-exact against Tables I/II.

Run:  python examples/kem_service.py
"""

import asyncio
import time

# everything an application needs comes from the stable facade
from repro.api import (
    LAC_128,
    AsyncKemClient,
    KemClient,
    KemService,
    LacKem,
    ServiceConfig,
    ThreadedService,
)

CLIENTS = 32
REQUESTS = 6
SEQUENTIAL_OPS = 40


async def serve_concurrent_load() -> None:
    """64-way style load demo (sized down to finish in seconds)."""
    print("=" * 64)
    print(f"async KEM service: {CLIENTS} concurrent clients, {LAC_128.name}")
    print("=" * 64)

    service = KemService(ServiceConfig(max_batch=32, max_wait_us=2000.0))
    await service.start()
    key_id = service.add_keypair(LAC_128)
    print(f"hosted key id {key_id} ({LAC_128.name}), max_batch=32")

    clients = []
    for _ in range(CLIENTS):
        reader, writer = await service.connect()
        client = AsyncKemClient(reader, writer)
        client.register_key(key_id, LAC_128)
        clients.append(client)

    async def worker(client: AsyncKemClient) -> list[tuple[bytes, bytes]]:
        return [await client.encaps(key_id) for _ in range(REQUESTS)]

    start = time.perf_counter()
    per_client = await asyncio.gather(*[worker(c) for c in clients])
    elapsed = time.perf_counter() - start
    total_ops = CLIENTS * REQUESTS
    served_rate = total_ops / elapsed

    # every shared secret decapsulates correctly through the service
    checks = [
        await clients[0].decaps(key_id, ct) == shared
        for ct, shared in per_client[0]
    ]
    assert all(checks)

    info = await clients[0].info()
    print(f"\nserved {total_ops} encapsulations in {elapsed * 1e3:.0f} ms "
          f"({served_rate:.0f} ops/s)")
    print("\nbatch-size histogram (what the scheduler coalesced):")
    for size, count in info["batch_sizes"].items():
        print(f"  batch of {size:>3}: {'#' * count} ({count})")
    print(f"  mean batch size: {info['mean_batch_size']}")
    print(f"  flush triggers:  {info['flushes']}")
    latency = info["latency_us"]["ENCAPS"]
    print(f"  service time:    p50 ≤ {latency['p50_us']:.0f} us, "
          f"p99 ≤ {latency['p99_us']:.0f} us")

    for client in clients:
        await client.aclose()
    await service.shutdown()
    print("service drained cleanly")

    # the comparison point: one caller, one operation at a time
    kem = LacKem(LAC_128)
    pair = kem.keygen()
    start = time.perf_counter()
    for _ in range(SEQUENTIAL_OPS):
        kem.encaps(pair.public_key)
    sequential_rate = SEQUENTIAL_OPS / (time.perf_counter() - start)
    print(f"\nsequential scalar encaps: {sequential_rate:.0f} ops/s")
    print(f"service speedup:          {served_rate / sequential_rate:.1f}x "
          f"(micro-batching feeds the vectorized kernels)")


def sync_client_demo() -> None:
    """The no-asyncio path: ThreadedService + blocking KemClient."""
    print()
    print("=" * 64)
    print("synchronous client (service on a background thread)")
    print("=" * 64)
    with ThreadedService(ServiceConfig(max_batch=8, max_wait_us=500.0)) as service:
        with KemClient(service.connect()) as client:
            key_id, pk = client.keygen(LAC_128)
            ct, shared = client.encaps(key_id)
            assert client.decaps(key_id, ct) == shared
            print(f"keygen -> encaps -> decaps roundtrip OK "
                  f"(key id {key_id}, |pk| = {len(pk.to_bytes())} B, "
                  f"|ct| = {len(ct)} B)")
            dump = client.info(text=True)
            print("\nfirst lines of the /metrics-style dump:")
            for line in dump.splitlines()[:6]:
                print(f"  {line}")


def main() -> None:
    """Run both demos."""
    asyncio.run(serve_concurrent_load())
    sync_client_demo()


if __name__ == "__main__":
    main()
