#!/usr/bin/env python3
"""LAC vs. NewHope: the paper's comparison, end to end (Sec. VI-B).

Runs both KEMs from this repository — the LAC co-design and the
NewHope baseline of [8] — and reproduces every axis of the paper's
comparison:

* protocol cycle counts (CCA LAC vs. CPA NewHope, per Table II);
* accelerator area (ternary multiplier vs. NTT; SHA256 vs. Keccak,
  per Table III);
* wire sizes, where LAC wins across the board (the closing argument
  of Sec. VI-B).

Run:  python examples/newhope_comparison.py
"""

from repro.cosim.newhope_model import NewHopeCycleModel
from repro.cosim.protocol import CycleModel
from repro.eval.reporting import format_table
from repro.hw.area import AreaModel
from repro.hw.keccak_accel import KeccakUnit
from repro.hw.ntt_accel import NttAccelUnit
from repro.lac import LAC_256, LacKem
from repro.newhope import NEWHOPE_1024, NewHopeCpaKem


def functional_runs() -> None:
    print("--- both schemes, functionally ---")
    lac = LacKem(LAC_256)
    lac_keys = lac.keygen()
    lac_enc = lac.encaps(lac_keys.public_key)
    assert lac.decaps(lac_keys.secret_key, lac_enc.ciphertext) == lac_enc.shared_secret
    print("LAC-256 CCA KEM: roundtrip OK")

    newhope = NewHopeCpaKem(NEWHOPE_1024)
    nh_keys = newhope.keygen(bytes(range(32)))
    nh_ct, nh_shared = newhope.encaps(nh_keys)
    assert newhope.decaps(nh_keys, nh_ct) == nh_shared
    print("NewHope1024 CPA KEM: roundtrip OK")


def cycles() -> None:
    print("\n--- protocol cycles (both on our cycle models) ---")
    lac_row = CycleModel(LAC_256, "ise").measure_protocol()
    nh_row = NewHopeCycleModel().measure_protocol()
    print(format_table(
        ["Operation", "LAC-256 (CCA)", "NewHope1024 (CPA)"],
        [
            ("Key-Generation", lac_row.key_generation, nh_row.key_generation),
            ("Encapsulation", lac_row.encapsulation, nh_row.encapsulation),
            ("Decapsulation", lac_row.decapsulation, nh_row.decapsulation),
            ("Total", lac_row.total, nh_row.total),
        ],
    ))
    print(f"\nLAC overhead: {lac_row.total - nh_row.total:,} cycles "
          "(paper: ~3.12M; the SHA256 core, the error-correcting code,")
    print("and the CCA re-encryption step account for the difference)")


def area() -> None:
    print("\n--- accelerator area ---")
    model = AreaModel()
    lac_units = model.pq_alu_report()
    ntt = model.estimate(NttAccelUnit().inventory())
    keccak = model.estimate(KeccakUnit().inventory())
    rows = [
        ("LAC Ternary Multiplier", lac_units["Ternary Multiplier"].luts,
         lac_units["Ternary Multiplier"].registers, 0, 0),
        ("LAC SHA256", lac_units["SHA256"].luts,
         lac_units["SHA256"].registers, 0, 0),
        ("NewHope NTT", ntt.luts, ntt.registers, ntt.brams, ntt.dsps),
        ("NewHope Keccak", keccak.luts, keccak.registers, 0, 0),
    ]
    print(format_table(["Accelerator", "LUTs", "FF", "BRAM", "DSP"], rows))
    print("\nThe structural trade the paper describes: the ternary")
    print("multiplier burns LUTs where the NTT burns DSPs and BRAM;")
    print("LAC's SHA256 is 10x smaller than NewHope's Keccak core.")


def sizes() -> None:
    print("\n--- wire sizes at NIST level V (bytes) ---")
    print(format_table(
        ["Object", "LAC-256", "NewHope1024"],
        [
            ("public key", LAC_256.public_key_bytes, NEWHOPE_1024.public_key_bytes),
            ("secret key", LAC_256.secret_key_bytes, NEWHOPE_1024.secret_key_bytes),
            ("ciphertext", LAC_256.ciphertext_bytes, NEWHOPE_1024.ciphertext_bytes),
        ],
    ))
    print("\n(paper: LAC/NewHope pk 1054/1824, sk 1024/1792, ct 1424/2176 —")
    print(" LAC's q = 251 packs one byte per coefficient, NewHope's")
    print(" q = 12289 needs fourteen bits)")


def main() -> None:
    print("=" * 64)
    print("LAC vs. NewHope — reproducing the paper's comparison")
    print("=" * 64 + "\n")
    functional_runs()
    cycles()
    area()
    sizes()


if __name__ == "__main__":
    main()
