#!/usr/bin/env python3
"""LAC decryption running as machine code, traced instruction by instruction.

The deepest demo in the repository: a message is encrypted with the
Python library, then the decryption front-end — u*s through the MUL TER
transfer protocol, noise subtraction through pq.modq, branchless
threshold decoding — executes as ONE RISC-V program on the
instruction-set simulator, self-measured with rdcycle, and the
recovered codeword bits are fed back into the Python BCH decoder to
complete the plaintext recovery.

Run:  python examples/on_target_decrypt.py
"""

import numpy as np

from repro.bitutils import bits_to_bytes
from repro.cosim.decrypt_kernel import run_decrypt_kernel
from repro.lac import LAC_128
from repro.lac.pke import LacPke
from repro.riscv import Assembler, Cpu, Memory
from repro.riscv.trace import Tracer


def main() -> None:
    print("=" * 64)
    print("LAC-128 decryption on the RISC-V simulator")
    print("=" * 64 + "\n")

    print("1. Encrypting with the Python library, decrypting on-target...")
    result = run_decrypt_kernel(seed=2024)
    print(f"   machine code retired {result.instructions:,} instructions "
          f"in {result.iss_cycles:,} cycles")
    print(f"   (self-measured via rdcycle: {result.self_measured_cycles:,})")
    print(f"   hard bits match the Python codec: {result.matches_codec}")

    print("\n2. Completing the decryption: BCH decode of the on-target bits")
    pke = LacPke(LAC_128)
    decode = pke.codec.ct_decoder.decode(result.hard_bits.copy())
    print(f"   BCH corrected {decode.errors_found} channel error(s); "
          f"success = {decode.success}")
    message = bits_to_bytes(decode.message)
    rng = np.random.default_rng(2024)
    original = bytes(rng.integers(0, 256, 32, dtype=np.uint8))
    print(f"   recovered plaintext matches: {message == original}")

    print("\n3. What the accelerator bought (same data path, by the numbers):")
    software_mult = 512 * 512 * 9
    print(f"   software u*s multiplication alone : {software_mult:>9,} cycles")
    print(f"   whole on-target decrypt front-end : {result.iss_cycles:>9,} cycles")
    print(f"   -> {software_mult / result.iss_cycles:.0f}x before the BCH decoder runs")

    print("\n4. A peek at the pipeline (first instructions, traced):")
    # re-run the first instructions under the tracer for illustration
    from repro.cosim.decrypt_kernel import DATA_BASE, _DECRYPT_SOURCE

    source = _DECRYPT_SOURCE.format(
        u_base=DATA_BASE, s_base=DATA_BASE + 515, v_base=DATA_BASE + 1030,
        out_base=DATA_BASE + 1430, n=512, slots=400, transfers=103,
        start_ctrl=1 << 28, read_ctrl=2 << 28,
    )
    program = Assembler().assemble(source)
    cpu = Cpu(Memory(1 << 20))
    cpu.memory.write_bytes(0, program.image)
    cpu.reset(pc=0)
    tracer = Tracer(cpu)
    for _ in range(10):
        tracer.step()
    print(tracer.format())
    print("   ...")


if __name__ == "__main__":
    main()
