#!/usr/bin/env python3
"""Quickstart: the LAC KEM in five minutes.

Generates a key pair, encapsulates a shared secret, decapsulates it,
and shows the wire sizes the paper highlights (LAC's small keys and
ciphertexts are its selling point against NewHope, Sec. VI-B).

Run:  python examples/quickstart.py
"""

from repro.lac import ALL_PARAMS, LAC_256, LacKem
from repro.lac.pke import Ciphertext


def main() -> None:
    print("=" * 64)
    print("LAC key encapsulation, all NIST security levels")
    print("=" * 64)

    for params in ALL_PARAMS:
        kem = LacKem(params)

        # Alice generates a key pair and publishes the public key.
        pair = kem.keygen()
        pk_bytes = pair.public_key.to_bytes()

        # Bob encapsulates a fresh shared secret under Alice's key.
        encapsulated = kem.encaps(pair.public_key)
        ct_bytes = encapsulated.ciphertext.to_bytes()

        # Alice decapsulates.
        shared = kem.decaps(pair.secret_key, encapsulated.ciphertext)
        assert shared == encapsulated.shared_secret, "KEM roundtrip failed"

        print(f"\n{params.name}  (NIST level {params.nist_level}, "
              f"n={params.n}, h={params.h}, {params.bch.describe()}"
              f"{', D2' if params.d2 else ''})")
        print(f"  public key : {len(pk_bytes):5d} bytes")
        print(f"  secret key : {params.secret_key_bytes:5d} bytes")
        print(f"  ciphertext : {len(ct_bytes):5d} bytes")
        print(f"  shared key : {shared.hex()[:32]}...")

    # Tampering with the ciphertext triggers implicit rejection: the
    # FO re-encryption check fails and a decoy key comes back.
    kem = LacKem(LAC_256)
    pair = kem.keygen()
    enc = kem.encaps(pair.public_key)
    tampered = bytearray(enc.ciphertext.to_bytes())
    tampered[0] = (tampered[0] + 1) % 251
    bad = Ciphertext.from_bytes(LAC_256, bytes(tampered))
    rejected = kem.decaps(pair.secret_key, bad)
    print("\nCCA check: tampered ciphertext decapsulates to a different key:",
          rejected != enc.shared_secret)

    print("\npaper reference sizes (level V): pk=1054, sk=1024, ct=1424 bytes")


if __name__ == "__main__":
    main()
