#!/usr/bin/env python3
"""Driving the PQ instruction-set extension from RISC-V machine code.

Assembles real RV32IM+PQ programs, runs them on the instruction-set
simulator, and compares against software baselines — the zoomed-in
version of what Table II measures:

* mod-q reduction: the RV32M divider vs. the single-cycle pq.modq;
* a complete MUL TER transaction (operand transfer, negative wrapped
  convolution, result readback) vs. the O(n^2) software loop;
* a SHA-256 compression through the pq.sha256 byte interface.

Run:  python examples/riscv_acceleration.py
"""

import numpy as np

from repro.cosim.validation import (
    validate_modadd_kernel,
    validate_modq_kernel,
    validate_mul_ter_kernel,
    validate_sha256_kernel,
)
from repro.riscv import Assembler, Cpu, Memory
from repro.riscv.pq_alu import PqAlu


def hand_written_demo() -> None:
    """A self-contained PQ program, written and explained by hand."""
    source = """
    # Reduce the 32-bit value in a1 mod 251 twice: once with the
    # M-extension divider, once with the PQ-ALU's Barrett unit, and
    # return 1 iff they agree.
    _start:
        li   t0, 251
        li   a1, 0x12345678
        remu a2, a1, t0        # 35-cycle serial divide
        pq.modq a3, a1         # 1-cycle Barrett reduction
        bne  a2, a3, fail
        li   a0, 1
        ecall
    fail:
        li   a0, 0
        ecall
    """
    program = Assembler().assemble(source)
    cpu = Cpu(Memory(1 << 16), PqAlu())
    cpu.memory.write_bytes(program.base, program.image)
    cpu.reset(pc=program.entry())
    result = cpu.run()
    print("hand-written pq.modq demo:",
          "agree" if result.exit_code == 1 else "DISAGREE",
          f"({result.instructions} instructions, {result.cycles} cycles)")
    print(f"  0x12345678 mod 251 = {cpu.regs[13]}")


def main() -> None:
    print("=" * 64)
    print("RISC-V ISE kernels on the instruction-set simulator")
    print("=" * 64 + "\n")

    hand_written_demo()

    print("\n--- mod-q array reduction (128 words) ---")
    sw = validate_modq_kernel(count=128, use_ise=False)
    hw = validate_modq_kernel(count=128, use_ise=True)
    print(f"  remu loop   : {sw.iss_cycles:7,} cycles")
    print(f"  pq.modq loop: {hw.iss_cycles:7,} cycles "
          f"({sw.iss_cycles / hw.iss_cycles:.1f}x faster)")

    print("\n--- ternary polynomial multiplication, n = 512 ---")
    hw = validate_mul_ter_kernel(512)
    # the software inner loop costs ~9 cycles per n^2 iteration
    sw_cycles_model = 512 * 512 * 9
    print(f"  SW schedule (model)   : {sw_cycles_model:9,} cycles "
          f"(paper measures 2,381,843)")
    print(f"  pq.mul_ter transaction: {hw.iss_cycles:9,} cycles on the ISS")
    print(f"  bit-exact vs. golden model: {hw.functional_ok}")
    print(f"  ISS == analytical prediction: {hw.exact}")

    print("\n--- one SHA-256 compression through pq.sha256 ---")
    sha = validate_sha256_kernel()
    print(f"  {sha.iss_cycles} cycles end to end "
          f"(65 busy + transfers), digest correct: {sha.functional_ok}")

    print("\n--- the calibration anchor: mod-add inner loop ---")
    anchor = validate_modadd_kernel(count=256)
    per_element = (anchor.iss_cycles - 16) / 256
    print(f"  naive loop: {per_element:.1f} cycles/element on the ISS "
          f"(the Table II model uses 9 for the unrolled form)")

    rng = np.random.default_rng(0)
    print("\nAll kernel results verified against numpy golden models.")


if __name__ == "__main__":
    main()
