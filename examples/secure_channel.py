#!/usr/bin/env python3
"""A post-quantum secure channel built on the LAC KEM.

The scenario the paper's introduction motivates: two embedded devices
establishing a quantum-resistant session over an insecure link.  The
example layers a complete (toy) record protocol on the public API:

* session setup: LAC-256 KEM handshake (CCA security via the FO
  transform, so a tampering network cannot extract anything);
* record protection: SHA-256 in counter mode as the stream cipher and
  an encrypt-then-MAC tag, both keyed from the KEM shared secret —
  everything running on this repository's own SHA-256.

Run:  python examples/secure_channel.py
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.hashes.sha256 import sha256
from repro.lac import LAC_256, LacKem
from repro.lac.pke import Ciphertext, PublicKey


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 in counter mode (one block of stream per compression)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += sha256(key + nonce + counter.to_bytes(8, "little"))
        counter += 1
    return bytes(out[:length])


def _tag(key: bytes, data: bytes) -> bytes:
    """Encrypt-then-MAC tag (hash-based, keyed)."""
    return sha256(key + sha256(key + data))


@dataclass
class Record:
    """One protected message on the wire."""

    nonce: bytes
    body: bytes
    tag: bytes


class SecureChannel:
    """A unidirectional record channel keyed from a KEM shared secret."""

    def __init__(self, shared_secret: bytes):
        self.enc_key = sha256(shared_secret + b"enc")
        self.mac_key = sha256(shared_secret + b"mac")

    def seal(self, plaintext: bytes) -> Record:
        nonce = secrets.token_bytes(12)
        body = bytes(
            p ^ k for p, k in zip(plaintext, _keystream(self.enc_key, nonce, len(plaintext)))
        )
        return Record(nonce, body, _tag(self.mac_key, nonce + body))

    def open(self, record: Record) -> bytes:
        if _tag(self.mac_key, record.nonce + record.body) != record.tag:
            raise ValueError("record authentication failed")
        stream = _keystream(self.enc_key, record.nonce, len(record.body))
        return bytes(c ^ k for c, k in zip(record.body, stream))


def main() -> None:
    kem = LacKem(LAC_256)

    # --- handshake ------------------------------------------------------
    print("1. Alice generates a LAC-256 key pair and publishes pk")
    alice_keys = kem.keygen()
    pk_wire = alice_keys.public_key.to_bytes()

    print(f"2. Bob encapsulates under Alice's pk ({len(pk_wire)} bytes)")
    bob_pk = PublicKey.from_bytes(LAC_256, pk_wire)  # from the wire
    encapsulated = kem.encaps(bob_pk)
    ct_wire = encapsulated.ciphertext.to_bytes()

    print(f"3. Alice decapsulates the {len(ct_wire)}-byte ciphertext")
    alice_secret = kem.decaps(
        alice_keys.secret_key, Ciphertext.from_bytes(LAC_256, ct_wire)
    )
    assert alice_secret == encapsulated.shared_secret
    print(f"   session key: {alice_secret.hex()[:32]}...")

    # --- protected records ----------------------------------------------
    bob_channel = SecureChannel(encapsulated.shared_secret)
    alice_channel = SecureChannel(alice_secret)

    message = b"firmware image v2.1 follows; reboot after verification"
    record = bob_channel.seal(message)
    print(f"\n4. Bob seals {len(message)} bytes "
          f"-> {len(record.body) + len(record.nonce) + len(record.tag)} on the wire")

    received = alice_channel.open(record)
    print(f"5. Alice opens the record: {received.decode()!r}")
    assert received == message

    # --- tamper evidence --------------------------------------------------
    tampered = Record(record.nonce, record.body[:-1] + b"\x00", record.tag)
    try:
        alice_channel.open(tampered)
    except ValueError as exc:
        print(f"6. Tampered record rejected: {exc}")

    # an attacker replaying the handshake ciphertext to a different key
    mallory_keys = kem.keygen()
    mallory_secret = kem.decaps(
        mallory_keys.secret_key, Ciphertext.from_bytes(LAC_256, ct_wire)
    )
    print("7. Wrong private key yields a useless session key:",
          mallory_secret != alice_secret)


if __name__ == "__main__":
    main()
