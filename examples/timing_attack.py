#!/usr/bin/env python3
"""The BCH timing side channel, demonstrated end to end (Sec. VI-A).

D'Anvers et al. [14] showed that a non-constant-time error-correcting
decoder leaks the decryption error count through its running time, and
that this correlates with the secret key.  This example plays the
attacker against both decoders on the cycle model:

1. profile decode time as a function of the injected error count;
2. recover hidden error counts from (averaged) decode timings;
3. run the TVLA-style Welch t-test that [15] used to certify the
   constant-time decoder.

Run:  python examples/timing_attack.py
"""

import numpy as np

from repro.eval.leakage import (
    cycle_distribution,
    error_count_distinguisher,
    leakage_test,
)


def profile_curve() -> None:
    print("--- decode cycles vs. injected error count ---")
    print(f"{'errors':>8} {'submission':>14} {'constant-time':>14}")
    for errors in (0, 4, 8, 12, 16):
        submission = cycle_distribution(False, errors, samples=5, seed=errors)
        walters = cycle_distribution(True, errors, samples=2, seed=errors)
        print(f"{errors:>8} {submission.mean():>14,.0f} {walters.mean():>14,.0f}")
    print("(the submission column climbs with the error count; the")
    print(" constant-time column is one flat value)")


def run_distinguisher() -> None:
    print("\n--- recovering hidden error counts from timing ---")
    for constant_time in (False, True):
        report = error_count_distinguisher(constant_time, attempts=12)
        print(f"{report.decoder:15s}: {report.exact_hits}/{report.attempts} "
              f"exact recoveries, mean abs. error {report.mean_absolute_error:.1f}")
    print("(error counts leak the decryption noise, which [14] turns")
    print(" into secret-key recovery over many queries)")


def run_tvla() -> None:
    print("\n--- Welch t-test, 0 errors vs. 16 errors ---")
    for constant_time in (False, True):
        report = leakage_test(constant_time, samples=10)
        verdict = "LEAKS" if report.leaks else "constant time"
        print(f"{report.decoder:15s}: |t| = {abs(report.t_statistic):8.2f} "
              f"-> {verdict}")
    print("(|t| > 4.5 rejects the constant-time hypothesis; this is the")
    print(" test that motivates the paper's choice of [15] as baseline)")


def main() -> None:
    print("=" * 64)
    print("Timing side channel in BCH(511,367,16) decoding")
    print("=" * 64 + "\n")
    profile_curve()
    run_distinguisher()
    run_tvla()

    print("\nConclusion: the round-2 submission decoder is exploitable;")
    print("the Walters/Roy decoder closes the channel at ~3x the cycle")
    print("cost — which the paper's MUL CHIEN accelerator then wins back")
    print("(Table II: 514,280 -> 160,295 cycles for LAC-128).")


if __name__ == "__main__":
    main()
