#!/usr/bin/env python3
"""Dump the accelerators' register-transfer schedules as VCD waveforms.

Writes standard Value Change Dump files for the GF(2^9) multiplier
(Fig. 3) and the ternary polynomial multiplier (Fig. 2) — open them in
GTKWave (or any waveform viewer) to watch the shift-and-add reduction
and the rotating-accumulator convolution clock by clock, exactly the
view a hardware engineer uses to diff a behavioral model against RTL.

Run:  python examples/waveforms.py [output-dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.gf.field import GF512
from repro.hw.vcd import dump_mul_gf_trace, dump_mul_ter_trace, parse_vcd
from repro.ring.poly import PolyRing


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp/lac-waveforms")
    out_dir.mkdir(parents=True, exist_ok=True)

    print("=" * 64)
    print("Accelerator waveforms (VCD)")
    print("=" * 64 + "\n")

    # --- MUL GF: one GF(2^9) product, 9 clocks --------------------------
    a, b = GF512.alpha_pow(100), GF512.alpha_pow(200)
    gf_path = dump_mul_gf_trace(a, b, out_dir / "mul_gf.vcd")
    product = GF512.mul(a, b)
    print(f"MUL GF: alpha^100 * alpha^200 = alpha^300 = {product:#011b}")
    trace = parse_vcd(gf_path.read_text())
    print("  c register per clock:")
    for time, value in trace.timeline("c"):
        print(f"    t={time:>2}  c = {value:09b}")
    print(f"  -> {gf_path}")

    # --- MUL TER: a small ternary convolution ---------------------------
    n = 16
    rng = np.random.default_rng(7)
    ternary = rng.integers(-1, 2, n).astype(np.int64)
    general = rng.integers(0, 251, n).astype(np.int64)
    ter_path = dump_mul_ter_trace(ternary, general, out_dir / "mul_ter.vcd")
    golden = PolyRing(n).mul(np.mod(ternary, 251), general)
    trace = parse_vcd(ter_path.read_text())
    print(f"\nMUL TER (n={n}): final c0..c3 on the wave vs. golden model:")
    for i in range(4):
        final = trace.timeline(f"c{i}")[-1][1]
        print(f"    c{i}: waveform={final:3d}  golden={golden[i]:3d}  "
              f"{'ok' if final == golden[i] else 'MISMATCH'}")
    print(f"  -> {ter_path}")

    print(f"\nView with:  gtkwave {out_dir}/mul_ter.vcd")


if __name__ == "__main__":
    main()
