"""Reproduction of "Extending the RISC-V Instruction Set for Hardware
Acceleration of the Post-Quantum Scheme LAC" (DATE 2020).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.lac` — the LAC KEM/PKE (the paper's workload);
* :mod:`repro.bch`, :mod:`repro.gf`, :mod:`repro.ring`,
  :mod:`repro.hashes` — the cryptographic substrates;
* :mod:`repro.hw` — cycle-accurate accelerator models and area;
* :mod:`repro.riscv` — the RV32IM+PQ instruction-set simulator;
* :mod:`repro.cosim` — the HW/SW co-design cycle models;
* :mod:`repro.eval` — the Table I/II/III evaluation harness.
"""

from repro.lac import ALL_PARAMS, LAC_128, LAC_192, LAC_256, LacKem, LacPke

__version__ = "1.0.0"

__all__ = [
    "ALL_PARAMS",
    "LAC_128",
    "LAC_192",
    "LAC_256",
    "LacKem",
    "LacPke",
    "__version__",
]
