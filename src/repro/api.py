"""The stable public facade of the repro package.

One import site for everything a *user* of the stack needs — the KEM
and its parameter sets, the batched fast path, the execution backends,
the service with its clients and configuration, the cluster router
that shards keys over member services, tracing, fault plans and the
unified error hierarchy::

    from repro.api import (
        LAC_128, LacKem,                       # the KEM itself
        resolve, ParamId, KemScheme,           # the scheme registry
        ServiceConfig, ThreadedService,        # serving
        TenantQuota,                           # multi-tenancy
        KemClient, RetryPolicy,                # clients
        create_backend, ProcessBackend,        # execution backends
        KemError,                              # catch-all error base
    )

Key registration and dispatch are scheme-aware: anywhere the stack
accepts a parameter spec (``ThreadedService.add_keypair``, client
``keygen``/``encaps``/``decaps``, ``resolve`` itself), a ``ParamId``
such as ``ParamId("newhope", "newhope1024")``, a registered params
object (``LAC_128``, ``NEWHOPE_1024``), a bare name (``"lac-256"``)
or a wire id all work.  Bare ``LacParams`` values keep working
unchanged — they resolve to the registered LAC scheme — and the old
LAC-only protocol helpers (``id_for_params``/``params_for_id``) remain
importable as ``DeprecationWarning`` shims.

Everything re-exported here is covered by the deprecation policy in
``docs/SERVICE.md``: names stay importable from this module across
minor versions, and behavior changes are announced with a
``DeprecationWarning`` for at least one release first.  Internal
modules (``repro.serve.server``, ``repro.backend.base``, …) remain
importable but are *not* part of the stable surface — prefer this
facade in application code, as ``examples/kem_service.py`` does.
"""

from repro.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    CosimBackend,
    InlineBackend,
    KemBackend,
    ProcessBackend,
    ThreadBackend,
    create_backend,
    default_thread_backend,
    resolve_backend_name,
)
from repro.cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterRouter,
    HashRing,
    ThreadedCluster,
    open_cluster_client,
)
from repro.errors import (
    BackendError,
    BadRequest,
    DeadlineExceeded,
    InjectedFault,
    KemError,
    KeyNotFound,
    ProtocolError,
    RequestTimedOut,
    ServiceBusy,
    ServiceClosed,
    ServiceDraining,
    ServiceError,
    UnsupportedScheme,
    WorkerCrashed,
)
from repro.faults import FaultPlan, FaultSpec, random_plan
from repro.lac import (
    ALL_PARAMS,
    LAC_128,
    LAC_192,
    LAC_256,
    Ciphertext,
    KemKeyPair,
    KemSecretKey,
    LacKem,
    LacParams,
    LacPke,
    PublicKey,
)
from repro.lac.kem import EncapsResult
from repro.newhope import NEWHOPE_512, NEWHOPE_1024, NewHopeParams
from repro.schemes import (
    LAC_SCHEME,
    NEWHOPE_SCHEME,
    KemScheme,
    ParamId,
    SchemeId,
    all_schemes,
    resolve,
    scheme_for,
    wire_id_for_params,
)
from repro.serve import (
    DEFAULT_TENANT,
    AsyncKemClient,
    KemClient,
    KemService,
    RetryPolicy,
    ServiceConfig,
    TenantQuota,
    ThreadedService,
)
from repro.trace import NULL_TRACER, Tracer, stage_breakdown

__all__ = [
    # parameter sets and the KEM
    "ALL_PARAMS",
    "LAC_128",
    "LAC_192",
    "LAC_256",
    "Ciphertext",
    "EncapsResult",
    "KemKeyPair",
    "KemSecretKey",
    "LacKem",
    "LacParams",
    "LacPke",
    "PublicKey",
    # the scheme registry
    "KemScheme",
    "LAC_SCHEME",
    "NEWHOPE_1024",
    "NEWHOPE_512",
    "NEWHOPE_SCHEME",
    "NewHopeParams",
    "ParamId",
    "SchemeId",
    "all_schemes",
    "resolve",
    "scheme_for",
    "wire_id_for_params",
    # execution backends
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "CosimBackend",
    "DEFAULT_BACKEND",
    "InlineBackend",
    "KemBackend",
    "ProcessBackend",
    "ThreadBackend",
    "create_backend",
    "default_thread_backend",
    "resolve_backend_name",
    # serving
    "AsyncKemClient",
    "DEFAULT_TENANT",
    "KemClient",
    "KemService",
    "RetryPolicy",
    "ServiceConfig",
    "TenantQuota",
    "ThreadedService",
    # clustering
    "ClusterClient",
    "ClusterConfig",
    "ClusterRouter",
    "HashRing",
    "ThreadedCluster",
    "open_cluster_client",
    # observability and chaos
    "NULL_TRACER",
    "FaultPlan",
    "FaultSpec",
    "Tracer",
    "random_plan",
    "stage_breakdown",
    # errors
    "BackendError",
    "BadRequest",
    "DeadlineExceeded",
    "InjectedFault",
    "KemError",
    "KeyNotFound",
    "ProtocolError",
    "RequestTimedOut",
    "ServiceBusy",
    "ServiceClosed",
    "ServiceDraining",
    "ServiceError",
    "UnsupportedScheme",
    "WorkerCrashed",
]
