"""Pluggable execution backends for batched LAC KEM kernels.

Where batched kernels *execute* is a deployment decision, not an API
one — this package pins the contract (:class:`KemBackend`) and ships
four implementations:

============  =========================================================
``inline``    :class:`InlineBackend` — synchronous, caller's thread
``thread``    :class:`ThreadBackend` — pool threads (the default;
              behavior-identical to the old ``shared_executor()`` path)
``process``   :class:`ProcessBackend` — supervised worker processes
              (GIL-free, per-worker warmup, bounded crash restart)
``cosim``     :class:`CosimBackend` — the simulated ISE core: annotated
              scalar drivers with per-request cycle counting, priced
              by the calibrated Table I/II model
============  =========================================================

Select by name with :func:`create_backend`, by configuration with
``ServiceConfig(backend=...)``, or globally with the
``REPRO_KEM_BACKEND`` environment variable.  All backends produce
results bit-identical to the scalar :class:`repro.lac.LacKem`.
"""

from repro.backend.base import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    KemBackend,
    KernelWrapper,
    create_backend,
    resolve_backend_name,
)
from repro.backend.cosim import (
    COSIM_PROFILE_ENV_VAR,
    DEFAULT_COSIM_PROFILE,
    CosimBackend,
    model_cycles,
)
from repro.backend.inline import InlineBackend
from repro.backend.process import ProcessBackend, WorkerKeyMiss
from repro.backend.shm import SegmentPool, shm_available
from repro.backend.thread import (
    DEFAULT_THREAD_WORKERS,
    ThreadBackend,
    default_thread_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "COSIM_PROFILE_ENV_VAR",
    "CosimBackend",
    "DEFAULT_BACKEND",
    "DEFAULT_COSIM_PROFILE",
    "DEFAULT_THREAD_WORKERS",
    "InlineBackend",
    "KemBackend",
    "KernelWrapper",
    "ProcessBackend",
    "SegmentPool",
    "ThreadBackend",
    "WorkerKeyMiss",
    "create_backend",
    "default_thread_backend",
    "model_cycles",
    "resolve_backend_name",
    "shm_available",
]
