"""The :class:`KemBackend` execution interface and the backend registry.

The paper moves LAC's hot kernels onto dedicated execution units behind
a fixed ISA; this module is the software analogue of that seam.  A
backend is *where batched KEM kernels execute* — behind a fixed,
swappable submission API, so the batch layer, the service and the
benchmarks never hard-wire a particular pool again:

* :class:`repro.backend.InlineBackend` — synchronous, in the caller's
  thread (tests, cycle-model paths, debugging);
* :class:`repro.backend.ThreadBackend` — a thread pool (the default;
  behavior-identical to the pre-backend ``shared_executor()`` path);
* :class:`repro.backend.ProcessBackend` — a supervised process pool
  (GIL-free parallelism; workers warm their own GF/ring tables, crash
  detection with bounded restart);
* :class:`repro.backend.CosimBackend` — the simulated ISE core: every
  request runs through the annotated cosim drivers with a per-request
  cycle counter, priced by the calibrated Table I/II model.

Every implementation provides the same contract:

``submit_encaps(params, pk, messages) -> Future[list[EncapsResult]]``
``submit_decaps(params, keys, ciphertexts) -> Future[list[bytes]]``
``submit_keygen(params, seeds) -> Future[list[KemKeyPair]]``
``keygen(params, seed)``  — synchronous single-key convenience
``warmup()``              — pay table-building/spawn cost up front
``close()``               — graceful drain; idempotent
``stats()``               — submission/restart/cache counters for metrics
``register_key(...)``     — warm the per-key transform cache
``invalidate_key(...)``   — reclaim cache entries on key removal

Backends own a per-key :class:`repro.ring.KeyTransformCache`: batches
under a hosted key reuse the forward FFT of the key-side ring operands
(and skip GenA on a hit) instead of recomputing them per batch.

Results are **bit-identical to the scalar** :class:`repro.lac.LacKem`
across every backend — the conformance suite in
``tests/test_backend.py`` pins that invariant, the way the paper's
accelerated kernels are validated against the reference software.

Backends are selected by name through :func:`create_backend` (used by
``ServiceConfig``/CLI) or the ``REPRO_KEM_BACKEND`` environment
variable; see ``docs/SERVICE.md`` for the trade-offs.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future
from typing import Any

from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey, LacKem
from repro.lac.params import ALL_PARAMS, LacParams
from repro.lac.pke import Ciphertext, PublicKey
from repro.ring.cache import DEFAULT_CACHE_ENTRIES, KeyTransformCache

#: Environment variable consulted when no backend name is given
#: explicitly (``ServiceConfig.backend=None`` and no ``backend=`` arg).
BACKEND_ENV_VAR = "REPRO_KEM_BACKEND"

#: The backend used when neither configuration nor environment names one.
DEFAULT_BACKEND = "thread"

#: A hook run *inside the backend's execution context* around the
#: kernel call — the service passes one that draws chaos faults and
#: stamps tracing boundaries, so "kernel time" means the same thing
#: regardless of which backend ran the batch.
KernelWrapper = Callable[[Callable[[], Any]], Any]

#: Deterministic warmup seed (warmup must not consume OS entropy in
#: ways that differ between runs; the generated key is discarded).
_WARMUP_SEED = b"\x2a"


class KemBackend(ABC):
    """Abstract execution backend for batched LAC KEM kernels.

    Subclasses implement the three ``submit_*`` hooks; everything else
    (the synchronous :meth:`keygen` convenience, :meth:`warmup`,
    :meth:`stats` bookkeeping, the cached per-parameter-set
    :class:`LacKem` instances) is shared.

    The optional ``wrapper`` argument of the ``submit_*`` methods runs
    around the kernel call in the backend's execution context (worker
    thread for :class:`ThreadBackend`, supervisor thread for
    :class:`ProcessBackend`, the caller for :class:`InlineBackend`);
    the serving layer uses it for fault injection and trace stamps.
    """

    #: Registry/metrics name of the implementation.
    name: str = "abstract"

    def __init__(self, cache_entries: int | None = None) -> None:
        self._kems_lock = threading.Lock()
        self._kems: dict[str, LacKem] = {}
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._closed = False
        #: The backend-owned per-key transform cache
        #: (:class:`repro.ring.KeyTransformCache`).  ``cache_entries``
        #: sizes it; ``0`` disables caching entirely (cold baseline for
        #: benchmarks), ``None`` takes the default capacity.
        self.transform_cache: KeyTransformCache | None = (
            None
            if cache_entries == 0
            else KeyTransformCache(cache_entries or DEFAULT_CACHE_ENTRIES)
        )

    # ------------------------------------------------------------------
    # the contract
    # ------------------------------------------------------------------

    @abstractmethod
    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages`` under ``pk``; resolves positionally."""

    @abstractmethod
    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts``; resolves to the shared secrets."""

    @abstractmethod
    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate one key pair per seed (``None`` = OS randomness)."""

    def keygen(self, params: LacParams, seed: bytes | None = None) -> KemKeyPair:
        """Generate a single key pair synchronously (convenience)."""
        return self.submit_keygen(params, [seed]).result()[0]

    # ------------------------------------------------------------------
    # the scheme seam (generic, non-LAC execution)
    # ------------------------------------------------------------------

    def supports_scheme(self, scheme: Any) -> bool:
        """Whether this backend can faithfully execute ``scheme``.

        The default is permissive: generic work routed through
        :meth:`submit_task` runs any registered
        :class:`repro.schemes.KemScheme`.  Backends whose results
        carry model-derived semantics beyond the bytes (the cosim
        backend's cycle tallies) override this to decline schemes
        their model does not cover.
        """
        return True

    def register_scheme_key(self, scheme: Any, params: Any, pair: Any) -> list[bytes]:
        """Scheme-aware twin of :meth:`register_key`.

        Raises :class:`repro.errors.UnsupportedScheme` when
        :meth:`supports_scheme` declines — at *registration*, so a
        misconfigured deployment fails before any traffic does.  LAC
        pairs take the historical cache-warming path; other schemes
        currently have no backend-side cache and return no
        fingerprints.
        """
        if not self.supports_scheme(scheme):
            from repro.errors import UnsupportedScheme

            raise UnsupportedScheme(
                f"backend {self.name!r} does not support scheme {scheme.name!r}"
            )
        if isinstance(params, LacParams):
            return self.register_key(params, pair.public_key, pair.secret_key)
        return []

    def submit_task(
        self,
        fn: Callable[[], Any],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[Any]:
        """Run an arbitrary kernel closure in this backend's context.

        The generic execution hook for non-LAC schemes: the serving
        layer submits ``scheme.encaps_many``/``decaps_many`` closures
        here, keeping the typed LAC fast path untouched.  The base
        implementation runs inline in the caller's thread (correct for
        every backend, concurrent for none); pool backends override it
        to use their workers.  Process pools keep the inline default —
        ad-hoc closures are not picklable, and the numpy kernels the
        closures wrap release the GIL anyway.
        """
        self._check_open()
        future: Future[Any] = Future()
        if not future.set_running_or_notify_cancel():  # pragma: no cover
            return future
        try:
            future.set_result(self._tracked(wrapper, fn))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def warmup(self, params_list: Sequence[LacParams] | None = None) -> None:
        """Run one tiny roundtrip per parameter set through the backend.

        Pays one-time costs — GF log/antilog tables, ring FFT plans,
        the BCH parity matrix, worker spawn for process pools — outside
        any measured or latency-sensitive window.
        """
        for params in params_list if params_list is not None else ALL_PARAMS:
            seed = _WARMUP_SEED * (params.seed_bytes + 32)
            pair = self.keygen(params, seed)
            results = self.submit_encaps(
                params, pair.public_key, [b"\x00" * params.message_bytes]
            ).result()
            self.submit_decaps(
                params, pair.secret_key, [r.ciphertext for r in results]
            ).result()

    def close(self, wait: bool = True) -> None:
        """Release backend resources; idempotent.

        With ``wait=True`` (the default) the call drains gracefully:
        already-submitted batches finish and their futures resolve.
        """
        self._closed = True

    def register_key(
        self,
        params: LacParams,
        pk: PublicKey,
        keys: KemSecretKey | None = None,
    ) -> list[bytes]:
        """Warm the transform cache for a key this backend will host.

        Pays GenA and the key-side forward FFTs at registration time so
        the first batch under the key already hits.  Returns the
        fingerprints populated — keep them for :meth:`invalidate_key`
        on removal.  With caching disabled the fingerprints are still
        returned (they are content-derived, not cache state).
        """
        from repro.batch.kem import key_fingerprints, warm_cache

        if self.transform_cache is None:
            return key_fingerprints(params, pk, keys)
        return warm_cache(self.transform_cache, params, pk, keys)

    def invalidate_key(self, fingerprints: Iterable[bytes]) -> int:
        """Reclaim cache entries for a removed key; returns entries dropped.

        Purely memory hygiene — content-derived fingerprints already
        make stale hits impossible (see :mod:`repro.ring.cache`).
        """
        if self.transform_cache is None:
            return 0
        return self.transform_cache.invalidate(fingerprints)

    def kill_worker(self) -> bool:
        """Chaos hook: kill one worker, if the backend has killable ones.

        Returns whether a worker was actually killed — the ``backend``
        fault site treats ``False`` (inline/thread backends) as a
        counted no-op.
        """
        return False

    @property
    def workers(self) -> int | None:
        """Current worker-pool size; ``None`` = unsized/not resizable.

        The autoscaler (:mod:`repro.serve.slo`) reads this before
        every :meth:`resize` decision; a ``None`` (inline backend,
        borrowed executor, the shared default pool) opts the backend
        out of autoscaling entirely.
        """
        return None

    def resize(self, workers: int) -> bool:
        """Grow or shrink the worker pool to ``workers``; ``False`` =
        unsupported.

        Implementations must keep already-submitted batches running to
        completion — a resize changes capacity, never correctness.
        The base implementation (and any backend without a resizable
        pool) declines.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return False

    def stats(self) -> dict[str, Any]:
        """Counters for metrics/INFO: submissions, failures, restarts."""
        with self._stats_lock:
            out: dict[str, Any] = {
                "name": self.name,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "restarts": 0,
            }
        out["transform_cache"] = (
            self.transform_cache.stats()
            if self.transform_cache is not None
            else None
        )
        return out

    # ------------------------------------------------------------------
    # shared plumbing for implementations
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _kem_for(self, params: LacParams) -> LacKem:
        """The backend's cached scalar :class:`LacKem` per parameter set."""
        with self._kems_lock:
            kem = self._kems.get(params.name)
            if kem is None:
                kem = self._kems[params.name] = LacKem(params)
            return kem

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"{self.name} backend is closed")

    def _tracked(self, wrapper: KernelWrapper | None, work: Callable[[], Any]) -> Any:
        """Run ``work`` (through ``wrapper``) updating the stat counters."""
        with self._stats_lock:
            self._submitted += 1
        try:
            result = wrapper(work) if wrapper is not None else work()
        except BaseException:
            with self._stats_lock:
                self._failed += 1
            raise
        with self._stats_lock:
            self._completed += 1
        return result

    @staticmethod
    def _done(value: Any) -> Future[Any]:
        """An already-resolved future (empty batches never hit a pool)."""
        future: Future[Any] = Future()
        future.set_result(value)
        return future


def _positive(name: str, value: int | None) -> int | None:
    if value is not None and value < 1:
        raise ValueError(f"{name} must be >= 1")
    return value


def resolve_backend_name(name: str | None = None) -> str:
    """The backend name to use: explicit, else env, else the default."""
    resolved = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if resolved not in BACKEND_NAMES:
        raise ValueError(
            f"unknown KEM backend {resolved!r} (choose from {sorted(BACKEND_NAMES)})"
        )
    return resolved


def create_backend(
    name: str | None = None,
    workers: int | None = None,
    fan_out: int | None = None,
    cache_entries: int | None = None,
) -> KemBackend:
    """Create (or share) a backend by name.

    ``name`` of ``None`` falls back to ``$REPRO_KEM_BACKEND``, then to
    ``"thread"``.  ``workers`` sizes the pool; ``fan_out`` adds
    intra-batch fan-out (thread backend only); ``cache_entries`` sizes
    the per-key transform cache (``0`` disables it).  A plain
    ``"thread"`` request with no knob at all returns the process-wide
    shared default backend — the executor-reuse behavior the serving
    layer has always had — whose :meth:`~KemBackend.close` is a no-op.
    """
    from repro.backend.cosim import CosimBackend
    from repro.backend.inline import InlineBackend
    from repro.backend.process import ProcessBackend
    from repro.backend.thread import ThreadBackend, default_thread_backend

    resolved = resolve_backend_name(name)
    _positive("workers", workers)
    _positive("fan_out", fan_out)
    if cache_entries is not None and cache_entries < 0:
        raise ValueError("cache_entries must be >= 0")
    if resolved == "inline":
        return InlineBackend(cache_entries=cache_entries)
    if resolved == "process":
        return ProcessBackend(workers=workers, cache_entries=cache_entries)
    if resolved == "cosim":
        # one simulated in-order core: sizing knobs do not apply (the
        # profile comes from $REPRO_COSIM_PROFILE or the constructor)
        return CosimBackend()
    if workers is None and fan_out is None and cache_entries is None:
        return default_thread_backend()
    return ThreadBackend(
        workers=workers, fan_out=fan_out, cache_entries=cache_entries
    )


#: Names accepted by :func:`create_backend` / ``ServiceConfig.backend``.
BACKEND_NAMES = ("inline", "thread", "process", "cosim")
