"""The cosimulation backend: serve traffic on the simulated ISE core.

Every other backend executes the vectorized numpy kernels; this one
routes each request through the *annotated scalar drivers* of the
paper's co-design (:class:`repro.cosim.accelerated.IseMultiplier`,
:class:`repro.cosim.accelerated.IseBchDecoder` and the counted
reference paths), with one :class:`repro.metrics.OpCounter` per
request, and prices the recorded operations with the calibrated
:mod:`repro.cosim.costs` tables.  The results are **bit-identical** to
the scalar :class:`repro.lac.LacKem` — only the execution schedule
(and therefore the modelled cycle count) differs per profile:

* ``"ise"`` (default) — MUL TER transactions, MUL CHIEN-backed
  constant-time decoding, accelerator-priced SHA-256 and ``pq.modq``;
* ``"ref"`` — the reference software schedule (Table II's baseline);
* ``"const_bch"`` — the reference with the constant-time BCH decoder.

Batches run serially on one owned worker thread — the software
analogue of a single in-order RISC-V core — so the event loop stays
responsive while a request "executes on the hardware".  Per-op cycle
tallies surface through :meth:`CosimBackend.stats` (and from there the
service's ``kem_cosim_cycles_total`` metrics) and, when tracing is on,
as ``cycles_ref``/``cycles_ise`` span tags on the ``kernel`` stage.

The tallies are not approximations: a request served with the
deterministic KAT inputs reproduces the offline Table I/II model
predictions *exactly* (``tests/test_cosim_backend_cycles.py`` and
``benchmarks/bench_cosim.py`` pin that equality).
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from repro.backend.base import KemBackend, KernelWrapper
from repro.cosim.costs import ISE_COSTS, REFERENCE_COSTS, CycleCosts, price
from repro.cosim.protocol import PROFILES, CycleModel, ProtocolCycles
from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey, LacKem
from repro.lac.params import LacParams
from repro.lac.pke import Ciphertext, PublicKey
from repro.metrics import OpCounter
from repro.trace import annotate, current_tags

#: Environment variable selecting the cosim profile when the backend is
#: created by name (``create_backend("cosim")`` / ``ServiceConfig``).
COSIM_PROFILE_ENV_VAR = "REPRO_COSIM_PROFILE"

#: The profile used when neither argument nor environment names one.
DEFAULT_COSIM_PROFILE = "ise"

#: ``ProtocolCycles`` field per wire op name.
_OP_FIELDS = {
    "KEYGEN": "key_generation",
    "ENCAPS": "encapsulation",
    "DECAPS": "decapsulation",
}

_MODEL_LOCK = threading.Lock()
_MODEL_CYCLES: dict[tuple[str, str], ProtocolCycles] = {}


def model_cycles(params: LacParams, profile: str) -> ProtocolCycles:
    """The offline Table II prediction for ``(params, profile)``, cached.

    One :meth:`repro.cosim.CycleModel.measure_protocol` run per pair per
    process: the predictions are deterministic (fixed seed/message), so
    the cache makes repeated services, benchmarks and the SLO priors
    share a single measurement.
    """
    key = (params.name, profile)
    with _MODEL_LOCK:
        cached = _MODEL_CYCLES.get(key)
    if cached is not None:
        return cached
    measured = CycleModel(params, profile).measure_protocol()
    with _MODEL_LOCK:
        return _MODEL_CYCLES.setdefault(key, measured)


class CosimBackend(KemBackend):
    """Execute KEM kernels on the cycle-counted simulated ISE core."""

    name = "cosim"

    def __init__(self, profile: str | None = None) -> None:
        resolved = (
            profile
            or os.environ.get(COSIM_PROFILE_ENV_VAR)
            or DEFAULT_COSIM_PROFILE
        )
        if resolved not in PROFILES:
            raise ValueError(
                f"cosim profile must be one of {PROFILES}, got {resolved!r}"
            )
        # The simulated core runs the scalar drivers; the vectorized
        # per-key transform cache never participates, so it stays off.
        super().__init__(cache_entries=0)
        self.profile = resolved
        self.costs: CycleCosts = ISE_COSTS if resolved == "ise" else REFERENCE_COSTS
        self._models_lock = threading.Lock()
        self._models: dict[str, CycleModel] = {}
        self._executor: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-cosim"
        )
        self._cycles_lock = threading.Lock()
        self._cycles: dict[tuple[str, str], dict[str, int]] = {}
        self._last_counters: dict[tuple[str, str], OpCounter] = {}

    # ------------------------------------------------------------------
    # the simulated core
    # ------------------------------------------------------------------

    def _model_for(self, params: LacParams) -> CycleModel:
        """The per-parameter-set cycle model (same construction as offline)."""
        with self._models_lock:
            model = self._models.get(params.name)
            if model is None:
                model = self._models[params.name] = CycleModel(
                    params, self.profile
                )
            return model

    def _record(self, op: str, params: LacParams, counter: OpCounter) -> int:
        """Price one request's counter into the per-(op, params) tallies."""
        cycles = price(counter, self.costs)
        key = (op, params.name)
        with self._cycles_lock:
            record = self._cycles.get(key)
            if record is None:
                record = self._cycles[key] = {
                    "ops": 0,
                    "cycles": 0,
                    "last_cycles": 0,
                }
            record["ops"] += 1
            record["cycles"] += cycles
            record["last_cycles"] = cycles
            self._last_counters[key] = counter
        return cycles

    def _run_batch(
        self,
        op: str,
        params: LacParams,
        items: Sequence[Any],
        run_one: Callable[[LacKem, Any, OpCounter], Any],
    ) -> list[Any]:
        """Execute ``items`` serially with one counter per request."""
        kem = self._model_for(params).kem
        results: list[Any] = []
        batch_cycles = 0
        for item in items:
            counter = OpCounter()
            results.append(run_one(kem, item, counter))
            batch_cycles += self._record(op, params, counter)
        if current_tags() is not None:
            # span tags for the kernel stage; the reference prediction
            # is computed (and cached) only when a trace sink is active
            tags: dict[str, Any] = {
                "cosim_profile": self.profile,
                "cosim_cycles": batch_cycles,
            }
            if self.profile == "ise":
                tags["cycles_ise"] = batch_cycles
                reference = model_cycles(params, "ref")
                tags["cycles_ref"] = len(results) * getattr(
                    reference, _OP_FIELDS[op]
                )
            else:
                tags["cycles_ref"] = batch_cycles
            annotate(**tags)
        return results

    def _submit(
        self, wrapper: KernelWrapper | None, work: Callable[[], Any]
    ) -> Future[Any]:
        self._check_open()
        executor = self._executor
        assert executor is not None
        return executor.submit(self._tracked, wrapper, work)

    # ------------------------------------------------------------------
    # the contract
    # ------------------------------------------------------------------

    def supports_scheme(self, scheme: Any) -> bool:
        """Only LAC: the Table I/II cycle model covers nothing else.

        Running another scheme here would return correct bytes with
        *wrong* (unmodelled) cycle tallies — worse than failing, since
        the tallies are the backend's whole point.  Registration of a
        non-LAC key therefore raises
        :class:`repro.errors.UnsupportedScheme` (via
        :meth:`~repro.backend.base.KemBackend.register_scheme_key`).
        """
        return getattr(scheme, "name", None) == "lac"

    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages`` on the simulated core, one by one."""
        batch = list(messages)
        if not batch:
            return self._done([])
        return self._submit(
            wrapper,
            lambda: self._run_batch(
                "ENCAPS",
                params,
                batch,
                lambda kem, message, counter: kem.encaps(
                    pk, message=message, counter=counter
                ),
            ),
        )

    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts`` on the simulated core, one by one."""
        batch = list(ciphertexts)
        if not batch:
            return self._done([])
        return self._submit(
            wrapper,
            lambda: self._run_batch(
                "DECAPS",
                params,
                batch,
                lambda kem, ciphertext, counter: kem.decaps(
                    keys, ciphertext, counter
                ),
            ),
        )

    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate one key pair per seed on the simulated core."""
        batch = list(seeds)
        if not batch:
            return self._done([])
        return self._submit(
            wrapper,
            lambda: self._run_batch(
                "KEYGEN",
                params,
                batch,
                lambda kem, seed, counter: kem.keygen(
                    seed=seed, counter=counter
                ),
            ),
        )

    def submit_task(
        self,
        fn: Callable[[], Any],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[Any]:
        """Run a generic closure serially on the simulated core's thread.

        No cycle accounting — only LAC work routed through the typed
        ``submit_*`` hooks is priced (and key registration already
        rejects non-LAC schemes on this backend).
        """
        return self._submit(wrapper, fn)

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Drain the simulated core's worker thread; idempotent."""
        if self._closed:
            return
        super().close(wait)
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=wait)

    def cycle_tallies(self) -> dict[str, dict[str, int]]:
        """Per-``(op, params)`` cycle tallies, keyed ``"OP:params-name"``.

        Each entry carries ``ops`` (requests executed), ``cycles``
        (total modelled cycles) and ``last_cycles`` (the most recent
        request — what the golden regression tests compare against the
        offline model predictions).
        """
        with self._cycles_lock:
            return {
                f"{op}:{name}": dict(record)
                for (op, name), record in sorted(self._cycles.items())
            }

    def last_counter(self, op: str, params: LacParams) -> OpCounter | None:
        """The most recent request's counter for ``(op, params)``.

        Keeps the full phase-attributed breakdown reachable, so tests
        can compare served-path *phase* cycles (Table I's columns)
        against the offline model, not just the totals.
        """
        with self._cycles_lock:
            return self._last_counters.get((op, params.name))

    def stats(self) -> dict[str, Any]:
        """Base counters plus the per-op cycle tallies and the profile."""
        out = super().stats()
        out["cosim"] = {
            "profile": self.profile,
            "cycles": self.cycle_tallies(),
        }
        return out
