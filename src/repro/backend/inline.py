"""The synchronous backend: kernels run in the caller's thread.

No pools, no handoffs, no concurrency — ``submit_*`` executes the
batch before returning an already-resolved future.  This is the
backend for tests that want determinism, for debugging (stack traces
end in your frame), and for cycle-model workflows where wall-clock
parallelism would only add noise.  It is also the degenerate case that
keeps the :class:`~repro.backend.base.KemBackend` contract honest:
everything that works here must work identically on the pooled
backends.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future
from typing import Any

from repro.backend.base import KemBackend, KernelWrapper
from repro.batch.kem import _decaps_chunk, _encaps_chunk
from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey
from repro.lac.params import LacParams
from repro.lac.pke import Ciphertext, PublicKey


class InlineBackend(KemBackend):
    """Run batched kernels synchronously in the submitting thread."""

    name = "inline"

    def _run_now(
        self, wrapper: KernelWrapper | None, work: Callable[[], Any]
    ) -> Future[Any]:
        self._check_open()
        future: Future[Any] = Future()
        try:
            future.set_result(self._tracked(wrapper, work))
        except BaseException as exc:  # noqa: BLE001 - surfaced via the future
            future.set_exception(exc)
        return future

    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages`` now; returns a resolved future."""
        batch = list(messages)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)
        return self._run_now(
            wrapper,
            lambda: _encaps_chunk(kem, pk, batch, self.transform_cache),
        )

    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts`` now; returns a resolved future."""
        batch = list(ciphertexts)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)
        return self._run_now(
            wrapper,
            lambda: _decaps_chunk(kem, keys, batch, self.transform_cache),
        )

    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate one key pair per seed now; returns a resolved future."""
        batch = list(seeds)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)
        return self._run_now(
            wrapper, lambda: [kem.keygen(seed) for seed in batch]
        )
