"""The multi-process backend: GIL-free batch execution with supervision.

A :class:`ProcessBackend` runs batched KEM kernels on a
``ProcessPoolExecutor``.  The thread backend already overlaps the
numpy array work of neighbouring batches (numpy drops the GIL), but
the *Python* half of a batch — hashing loops, object construction,
serialization — serializes on one interpreter lock; Imran et al.'s
systematic study of lattice KEMs found exactly this reference-
implementation overhead, not the math, dominating cost.  Processes
remove that ceiling: each submitted batch is split into sub-chunks
fanned across worker processes, so one 64-operation batch uses many
interpreters at once.

Design points:

* **zero-copy wire** — bulk payloads (ciphertext blobs down for
  decapsulation, ciphertext + shared-secret pairs back up for
  encapsulation) travel through pooled shared-memory segments
  (:mod:`repro.backend.shm`); the pipe carries only a segment name
  and a count.  Fixed per-parameter-set sizes make every offset
  computable on both sides.  When shared memory is unusable the
  backend falls back to the original pickled-``bytes`` wire
  (``wire="bytes"`` forces it);
* **ship-once key material** — workers keep a fingerprint-addressed
  cache of hydrated keys, so a hosted key's serialized blob crosses
  the pipe roughly once per worker; later calls send the 16-byte
  fingerprint.  A worker that restarted (and lost its cache) raises
  the picklable :class:`WorkerKeyMiss` and the parent retries that
  chunk with the full blob — correctness never depends on the
  bookkeeping being right;
* **per-worker transform cache** — each worker owns a
  :class:`repro.ring.KeyTransformCache`, so repeated batches under a
  hosted key skip GenA and the key-side forward FFTs in the worker
  too; hit/miss deltas ride back piggybacked on each result and are
  aggregated parent-side into stats and trace tags;
* **per-worker warmup** — each worker's initializer builds its own
  GF log/antilog tables, ring FFT state and BCH parity matrix by
  running a one-operation roundtrip per configured parameter set, so
  no serving batch ever pays table construction;
* **supervision** — a worker crash (OOM-kill, segfault, chaos
  ``kill_worker``) breaks the pool; the supervisor detects
  ``BrokenProcessPool``, replaces the pool (bounded by
  ``max_restarts``), counts the restart (surfaced as
  ``kem_worker_restarts_total``) and fails the in-flight batch with
  the typed :class:`repro.errors.WorkerCrashed` — which the service
  maps to the existing ``INTERNAL`` response.  Shared-memory segments
  are parent-owned, survive the restart, and are reused by the new
  pool;
* **graceful drain** — :meth:`close` stops intake, lets submitted
  batches finish, shuts both pools down, then unlinks every
  shared-memory segment; idempotent.

The default ``mp_context`` is ``"spawn"``: forking a process that
already runs pool threads (every server does) inherits locked mutexes
and is deprecated on modern CPythons.  Spawn start-up is paid once and
can be fronted with :meth:`~repro.backend.base.KemBackend.warmup`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.backend.base import KemBackend, KernelWrapper
from repro.backend.shm import Segment, SegmentPool, attach_segment, shm_available
from repro.batch.kem import _annotate_cache, _decaps_chunk, _encaps_chunk
from repro.errors import WorkerCrashed
from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey, LacKem
from repro.lac.params import ALL_PARAMS, LacParams
from repro.lac.pke import Ciphertext, PublicKey
from repro.ring.cache import DEFAULT_CACHE_ENTRIES, KeyTransformCache, fingerprint

#: Smallest per-process sub-chunk worth the dispatch round trip; a
#: 64-op batch on 8 workers still lands at 8 ops per process.
MIN_CHUNK = 8

#: Default bound on pool rebuilds after worker crashes.
DEFAULT_MAX_RESTARTS = 3

#: Bytes of shared secret per encapsulation result on the wire.
_SHARED_BYTES = 32

#: Hydrated keys a worker retains (LRU); key blobs are ~1 KiB so this
#: bounds the worker key cache around a megabyte.
_WORKER_KEY_LIMIT = 1024

#: Entries in the parent's ship-once table before the oldest are
#: forgotten (forgetting is safe: the worker-side miss retry recovers).
_SHIP_TABLE_LIMIT = 4096

#: Wire selection accepted by :class:`ProcessBackend`.
WIRE_MODES = ("auto", "shm", "bytes")


class WorkerKeyMiss(RuntimeError):
    """A fingerprint-only key reference missed the worker's key cache.

    Raised worker-side, pickled back to the parent, which retries the
    chunk with the full key blob attached.  Routine after a worker
    restart (fresh interpreters have empty caches) — never an error
    the caller sees.
    """

    def __init__(self, fp: bytes) -> None:
        super().__init__(f"worker key cache miss for {fp.hex()}")
        self.fp = fp

    def __reduce__(self) -> tuple[Any, tuple[bytes]]:
        return (WorkerKeyMiss, (self.fp,))


def _params_by_name(name: str) -> LacParams:
    for params in ALL_PARAMS:
        if params.name == name:
            return params
    raise KeyError(f"unknown parameter set {name!r}")


# ---------------------------------------------------------------------------
# worker-side code (everything below the pipe)
# ---------------------------------------------------------------------------

_WORKER_KEMS: dict[str, LacKem] = {}

#: Fingerprint-addressed LRU of hydrated key objects (ship-once wire).
_WORKER_KEYS: OrderedDict[bytes, Any] = OrderedDict()

#: This worker's per-key transform cache (sized by the initializer).
_WORKER_CACHE: KeyTransformCache | None = None


def _worker_kem(params_name: str) -> LacKem:
    kem = _WORKER_KEMS.get(params_name)
    if kem is None:
        kem = _WORKER_KEMS[params_name] = LacKem(_params_by_name(params_name))
    return kem


def _worker_init(param_names: Sequence[str], cache_entries: int) -> None:
    """Per-worker warmup: build this process's GF/ring/BCH tables.

    Runs in each worker as it spawns — a one-operation keygen/encaps/
    decaps roundtrip per configured parameter set touches every lazy
    table (GF(2^9) log/antilog, ring FFT twiddles, the BCH parity
    matrix), so serving batches never pay construction cost.  Also
    creates the worker's transform cache (``cache_entries == 0``
    disables caching).
    """
    global _WORKER_CACHE
    _WORKER_CACHE = (
        KeyTransformCache(cache_entries) if cache_entries > 0 else None
    )
    for name in param_names:
        kem = _worker_kem(name)
        params = kem.params
        pair = kem.keygen(b"\x2a" * (params.seed_bytes + 32))
        results = _encaps_chunk(kem, pair.public_key, [b"\x00" * params.message_bytes])
        _decaps_chunk(kem, pair.secret_key, [r.ciphertext for r in results])


def _resolve_key(
    kind: str, params_name: str, key_ref: tuple[str, bytes, bytes | None]
) -> tuple[Any, bool]:
    """Hydrate (or recall) a key from its wire reference.

    ``key_ref`` is ``(kind, fingerprint, blob-or-None)``.  Returns the
    hydrated object and whether it was a cache hit; raises
    :class:`WorkerKeyMiss` when a fingerprint-only reference finds an
    empty slot (the parent retries with the blob).
    """
    ref_kind, fp, blob = key_ref
    if ref_kind != kind:  # pragma: no cover - parent always matches
        raise ValueError(f"expected a {kind} reference, got {ref_kind}")
    cached = _WORKER_KEYS.get(fp)
    if cached is not None:
        _WORKER_KEYS.move_to_end(fp)
        return cached, True
    if blob is None:
        raise WorkerKeyMiss(fp)
    params = _worker_kem(params_name).params
    obj: Any = (
        PublicKey.from_bytes(params, blob)
        if kind == "pk"
        else KemSecretKey.from_bytes(params, blob)
    )
    _WORKER_KEYS[fp] = obj
    while len(_WORKER_KEYS) > _WORKER_KEY_LIMIT:
        _WORKER_KEYS.popitem(last=False)
    return obj, False


def _cache_counters() -> tuple[int, int, int]:
    return _WORKER_CACHE.counters() if _WORKER_CACHE is not None else (0, 0, 0)


def _stats_delta(before: tuple[int, int, int], key_hit: bool) -> dict[str, int]:
    """The piggyback stats envelope returned with every kernel result."""
    after = _cache_counters()
    return {
        "cache_hits": after[0] - before[0],
        "cache_misses": after[1] - before[1],
        "cache_evictions": after[2] - before[2],
        "key_hits": int(key_hit),
    }


def _worker_encaps(
    params_name: str,
    key_ref: tuple[str, bytes, bytes | None],
    messages: list[bytes],
    out_seg: str | None,
) -> tuple[Any, dict[str, int]]:
    """Encapsulate a chunk; results go to shared memory when offered.

    With ``out_seg`` the fixed-stride layout is ``ciphertext ||
    shared`` per message and the payload is just the count; without it
    (bytes wire) the payload is the pickled ``(ct, shared)`` pairs.
    """
    kem = _worker_kem(params_name)
    pk, key_hit = _resolve_key("pk", params_name, key_ref)
    before = _cache_counters()
    results = _encaps_chunk(kem, pk, messages, _WORKER_CACHE)
    stats = _stats_delta(before, key_hit)
    if out_seg is None:
        return [(r.ciphertext.to_bytes(), r.shared_secret) for r in results], stats
    stride = kem.params.ciphertext_bytes + _SHARED_BYTES
    segment = attach_segment(out_seg)
    try:
        buf = segment.buf
        for i, result in enumerate(results):
            offset = i * stride
            ct = result.ciphertext.to_bytes()
            buf[offset : offset + len(ct)] = ct
            buf[offset + len(ct) : offset + stride] = result.shared_secret
    finally:
        segment.close()
    return len(results), stats


def _worker_decaps(
    params_name: str,
    key_ref: tuple[str, bytes, bytes | None],
    ct_blobs: list[bytes] | None,
    in_seg: tuple[str, int] | None,
) -> tuple[list[bytes], dict[str, int]]:
    """Decapsulate a chunk; ciphertexts arrive via shared memory when
    ``in_seg`` names a segment (fixed ``ciphertext_bytes`` stride)."""
    kem = _worker_kem(params_name)
    keys, key_hit = _resolve_key("sk", params_name, key_ref)
    if in_seg is not None:
        seg_name, count = in_seg
        stride = kem.params.ciphertext_bytes
        segment = attach_segment(seg_name)
        try:
            buf = segment.buf
            ct_blobs = [
                bytes(buf[i * stride : (i + 1) * stride]) for i in range(count)
            ]
        finally:
            segment.close()
    assert ct_blobs is not None
    before = _cache_counters()
    ciphertexts = [Ciphertext.from_bytes(kem.params, blob) for blob in ct_blobs]
    shared = _decaps_chunk(kem, keys, ciphertexts, _WORKER_CACHE)
    return shared, _stats_delta(before, key_hit)


def _worker_keygen(
    params_name: str, seeds: list[bytes | None]
) -> list[tuple[bytes, bytes]]:
    kem = _worker_kem(params_name)
    out = []
    for seed in seeds:
        pair = kem.keygen(seed)
        out.append((pair.public_key.to_bytes(), pair.secret_key.to_bytes()))
    return out


def _worker_pid() -> int:
    return os.getpid()


# ---------------------------------------------------------------------------
# parent-side supervisor
# ---------------------------------------------------------------------------


class ProcessBackend(KemBackend):
    """Batched KEM kernels on a supervised worker-process pool.

    ``workers`` sizes the pool (default: CPU count, capped at 8 — the
    kernels saturate memory bandwidth well before that on small
    hosts).  ``warm_params`` restricts the per-worker warmup to the
    parameter sets actually served (tests pass one set to keep spawn
    cheap).  ``max_restarts`` bounds pool rebuilds after crashes;
    beyond it the backend declares itself broken and fails fast.
    ``cache_entries`` sizes each worker's per-key transform cache
    (``0`` disables it).  ``wire`` selects the payload transport:
    ``"auto"`` (shared memory when the host supports it), ``"shm"``
    (require it), or ``"bytes"`` (the original pickled wire).
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        mp_context: str = "spawn",
        warm_params: Sequence[LacParams] | None = None,
        min_chunk: int = MIN_CHUNK,
        cache_entries: int | None = None,
        wire: str = "auto",
    ) -> None:
        super().__init__(cache_entries=cache_entries)
        if wire not in WIRE_MODES:
            raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
        self._workers = workers or max(1, min(8, os.cpu_count() or 1))
        self._max_restarts = max_restarts
        self._min_chunk = max(1, min_chunk)
        self._ctx = multiprocessing.get_context(mp_context)
        self._warm_names = tuple(
            p.name for p in (warm_params if warm_params is not None else ALL_PARAMS)
        )
        self._cache_entries = (
            0 if cache_entries == 0 else (cache_entries or DEFAULT_CACHE_ENTRIES)
        )
        self._use_shm = shm_available() if wire == "auto" else wire == "shm"
        self._segments = SegmentPool()
        self._ship_lock = threading.Lock()
        self._shipped: OrderedDict[bytes, int] = OrderedDict()
        self._worker_stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "key_hits": 0,
            "key_ships": 0,
            "key_miss_retries": 0,
        }
        self._pool_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._restarts = 0
        self._broken = False
        # supervisor threads: one per concurrently in-flight batch —
        # they only fan chunks out, block on worker results and
        # re-hydrate the answers, so a couple above the worker count
        # keeps submission from queueing behind result collection
        self._supervisor = ThreadPoolExecutor(
            max_workers=self._workers + 2,
            thread_name_prefix="repro-backend-sup",
        )

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> tuple[ProcessPoolExecutor, int]:
        with self._pool_lock:
            if self._broken:
                raise WorkerCrashed(
                    f"process backend exceeded {self._max_restarts} worker restarts"
                )
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=self._ctx,
                    initializer=_worker_init,
                    initargs=(self._warm_names, self._cache_entries),
                )
            return self._pool, self._generation

    @property
    def workers(self) -> int | None:
        """Configured worker-process count (the pool tracks it lazily)."""
        with self._pool_lock:
            return self._workers

    def resize(self, workers: int) -> bool:
        """Retarget the pool at ``workers`` processes.

        The running pool is retired without waiting — chunks already
        submitted to it finish; the next batch lazily spawns a pool of
        the new size via ``_ensure_pool``.  The generation bump keeps a
        late ``BrokenProcessPool`` from the retired pool from counting
        as a crash restart.  The supervisor thread pool keeps its
        original sizing (threads are cheap; it only bounds concurrent
        in-flight batches, not kernel parallelism).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if self._closed:
            return False
        with self._pool_lock:
            if self._broken:
                return False
            if workers == self._workers:
                return True
            self._workers = workers
            pool, self._pool = self._pool, None
            self._generation += 1
        with self._ship_lock:
            # the replacement workers spawn with empty key caches
            self._shipped.clear()
        if pool is not None:
            pool.shutdown(wait=False)
        return True

    def _on_broken_pool(self, generation: int) -> None:
        """Replace a broken pool exactly once per crash incident.

        ``BrokenProcessPool`` fans out to every future of the incident;
        the generation check makes sure one crash costs one restart.
        The ship-once table resets too — the replacement workers spawn
        with empty key caches.  Shared-memory segments are parent-owned
        and survive for the next pool.
        """
        with self._pool_lock:
            if generation != self._generation:
                return  # a sibling batch already handled this incident
            self._generation += 1
            self._restarts += 1
            pool, self._pool = self._pool, None
            if self._restarts > self._max_restarts:
                self._broken = True
        with self._ship_lock:
            self._shipped.clear()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- ship-once key wire ---------------------------------------------

    def _key_ref(
        self, kind: str, fp: bytes, blob: bytes
    ) -> tuple[str, bytes, bytes | None]:
        """Build a wire key reference, shipping the blob until every
        worker has plausibly seen it (the miss retry covers the rest)."""
        with self._ship_lock:
            count = self._shipped.get(fp, 0)
            if count >= self._workers:
                return (kind, fp, None)
            self._shipped[fp] = count + 1
            self._shipped.move_to_end(fp)
            while len(self._shipped) > _SHIP_TABLE_LIMIT:
                self._shipped.popitem(last=False)
        with self._stats_lock:
            self._worker_stats["key_ships"] += 1
        return (kind, fp, blob)

    def _note_retry(self, fp: bytes) -> None:
        with self._ship_lock:
            self._shipped[fp] = self._shipped.get(fp, 0) + 1
            self._shipped.move_to_end(fp)
        with self._stats_lock:
            self._worker_stats["key_miss_retries"] += 1
            self._worker_stats["key_ships"] += 1

    def _merge_worker_stats(self, stats: dict[str, int]) -> None:
        """Aggregate a piggybacked stats envelope; cache counters also
        land on the ambient trace-tag sink (the supervisor thread runs
        inside the service's kernel wrapper)."""
        with self._stats_lock:
            for key in ("cache_hits", "cache_misses", "cache_evictions", "key_hits"):
                self._worker_stats[key] += stats.get(key, 0)
        _annotate_cache(stats.get("cache_hits", 0), stats.get("cache_misses", 0))

    # -- segment plumbing ------------------------------------------------

    def _acquire_segment(self, nbytes: int) -> Segment | None:
        """A pooled segment, or ``None`` on the bytes wire (including
        after a runtime shared-memory failure, which disables shm)."""
        if not self._use_shm:
            return None
        try:
            return self._segments.acquire(nbytes)
        except (OSError, RuntimeError):
            self._use_shm = False
            return None

    def _release_segments(self, segments: Sequence[Segment | None]) -> None:
        for segment in segments:
            if segment is not None:
                self._segments.release(segment)

    def _fan(
        self,
        fn: Callable[..., Any],
        calls: Sequence[tuple[Any, ...]],
        reship: Callable[[tuple[Any, ...]], tuple[Any, ...]] | None = None,
    ) -> list[Any]:
        """Run ``fn(*args)`` per call tuple across the worker pool.

        ``reship`` rebuilds a call with the full key blob attached; it
        handles the :class:`WorkerKeyMiss` a restarted (or LRU-evicted)
        worker raises for fingerprint-only references.
        """
        pool, generation = self._ensure_pool()
        try:
            try:
                futures = [pool.submit(fn, *args) for args in calls]
            except RuntimeError:
                # lost a race with resize(): the captured pool was
                # retired between _ensure_pool and submit — re-resolve
                # once and land the whole fan on the replacement
                pool, generation = self._ensure_pool()
                futures = [pool.submit(fn, *args) for args in calls]
            out = []
            for future, args in zip(futures, calls):
                try:
                    out.append(future.result())
                except WorkerKeyMiss as miss:
                    if reship is None:
                        raise
                    self._note_retry(miss.fp)
                    out.append(pool.submit(fn, *reship(args)).result())
            return out
        except BrokenProcessPool as exc:
            self._on_broken_pool(generation)
            raise WorkerCrashed("kem worker process died mid-batch") from exc

    def _chunk(self, items: list[Any]) -> list[list[Any]]:
        chunks = max(1, min(self._workers, len(items) // self._min_chunk))
        bounds = [len(items) * i // chunks for i in range(chunks + 1)]
        return [
            items[bounds[i] : bounds[i + 1]]
            for i in range(chunks)
            if bounds[i] < bounds[i + 1]
        ]

    def _submit(
        self, wrapper: KernelWrapper | None, work: Callable[[], Any]
    ) -> Future[Any]:
        self._check_open()
        return self._supervisor.submit(self._tracked, wrapper, work)

    # -- the contract ---------------------------------------------------

    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages``, split across worker processes.

        Messages go down the pipe (32 bytes each); the bulky results
        come back through a pooled shared-memory segment per chunk.
        """
        batch = [bytes(m) for m in messages]
        if not batch:
            return self._done([])
        pk_bytes = pk.to_bytes()
        fp = fingerprint(b"wire-pk", params.name.encode(), pk_bytes)
        name = params.name
        stride = params.ciphertext_bytes + _SHARED_BYTES

        def reship(args: tuple[Any, ...]) -> tuple[Any, ...]:
            return (args[0], ("pk", fp, pk_bytes), args[2], args[3])

        def work() -> list[EncapsResult]:
            chunks = self._chunk(batch)
            segments = [
                self._acquire_segment(len(chunk) * stride) for chunk in chunks
            ]
            try:
                calls = [
                    (
                        name,
                        self._key_ref("pk", fp, pk_bytes),
                        chunk,
                        segment.name if segment is not None else None,
                    )
                    for chunk, segment in zip(chunks, segments)
                ]
                out: list[EncapsResult] = []
                for part, segment, chunk in zip(
                    self._fan(_worker_encaps, calls, reship), segments, chunks
                ):
                    payload, stats = part
                    self._merge_worker_stats(stats)
                    if segment is None:
                        out.extend(
                            EncapsResult(
                                Ciphertext.from_bytes(params, ct_bytes), shared
                            )
                            for ct_bytes, shared in payload
                        )
                        continue
                    buf = segment.buf
                    for i in range(payload):
                        offset = i * stride
                        ct_bytes = bytes(
                            buf[offset : offset + params.ciphertext_bytes]
                        )
                        shared = bytes(
                            buf[offset + params.ciphertext_bytes : offset + stride]
                        )
                        out.append(
                            EncapsResult(
                                Ciphertext.from_bytes(params, ct_bytes), shared
                            )
                        )
                return out
            finally:
                self._release_segments(segments)

        return self._submit(wrapper, work)

    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts``, split across worker processes.

        The ciphertext blobs go down through a pooled shared-memory
        segment per chunk; the 32-byte shared secrets come back on the
        pipe.
        """
        blobs = [ct.to_bytes() for ct in ciphertexts]
        if not blobs:
            return self._done([])
        sk_bytes = keys.to_bytes()
        fp = fingerprint(b"wire-sk", params.name.encode(), sk_bytes)
        name = params.name
        stride = params.ciphertext_bytes

        def reship(args: tuple[Any, ...]) -> tuple[Any, ...]:
            return (args[0], ("sk", fp, sk_bytes), args[2], args[3])

        def work() -> list[bytes]:
            chunks = self._chunk(blobs)
            segments = [
                self._acquire_segment(len(chunk) * stride) for chunk in chunks
            ]
            try:
                calls = []
                for chunk, segment in zip(chunks, segments):
                    if segment is not None:
                        buf = segment.buf
                        for i, blob in enumerate(chunk):
                            buf[i * stride : (i + 1) * stride] = blob
                        calls.append(
                            (
                                name,
                                self._key_ref("sk", fp, sk_bytes),
                                None,
                                (segment.name, len(chunk)),
                            )
                        )
                    else:
                        calls.append(
                            (name, self._key_ref("sk", fp, sk_bytes), chunk, None)
                        )
                out: list[bytes] = []
                for part in self._fan(_worker_decaps, calls, reship):
                    shared, stats = part
                    self._merge_worker_stats(stats)
                    out.extend(shared)
                return out
            finally:
                self._release_segments(segments)

        return self._submit(wrapper, work)

    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate key pairs in worker processes; re-hydrated parent-side.

        Keygen stays on the bytes wire: batches are rare, small, and
        dominated by sampling rather than serialization.
        """
        batch = list(seeds)
        if not batch:
            return self._done([])
        name = params.name

        def work() -> list[KemKeyPair]:
            calls = [(name, chunk) for chunk in self._chunk(batch)]
            out: list[KemKeyPair] = []
            for part in self._fan(_worker_keygen, calls):
                out.extend(
                    KemKeyPair(
                        PublicKey.from_bytes(params, pk_bytes),
                        KemSecretKey.from_bytes(params, sk_bytes),
                    )
                    for pk_bytes, sk_bytes in part
                )
            return out

        return self._submit(wrapper, work)

    # -- key lifecycle ---------------------------------------------------

    def register_key(
        self,
        params: LacParams,
        pk: PublicKey,
        keys: KemSecretKey | None = None,
    ) -> list[bytes]:
        """Fingerprints only — worker caches warm lazily on first use.

        The parent cannot target individual workers, so eager warming
        is impossible; the content-addressed worker caches plus the
        ship-once wire achieve the same steady state after one batch.
        """
        from repro.batch.kem import key_fingerprints

        return key_fingerprints(params, pk, keys)

    # -- chaos + observability ------------------------------------------

    def kill_worker(self, sig: int = signal.SIGKILL) -> bool:
        """Kill one live worker process (the ``backend`` fault site).

        Returns ``False`` when no pool is up.  The next interaction
        with the broken pool surfaces :class:`WorkerCrashed` and the
        supervisor rebuilds it (counted in ``restarts``).
        """
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return False
        processes = getattr(pool, "_processes", None)
        if not processes:
            return False
        pid = next(iter(processes))
        try:
            os.kill(pid, sig)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    def stats(self) -> dict[str, Any]:
        """Submission counters plus worker-pool health, the aggregated
        worker cache counters, and the shared-memory wire state."""
        out = super().stats()
        with self._pool_lock:
            out["workers"] = self._workers
            out["restarts"] = self._restarts
            out["broken"] = self._broken
        with self._stats_lock:
            worker_stats = dict(self._worker_stats)
        # kernels run in the workers, so the meaningful transform-cache
        # counters are the aggregated per-worker ones, not the parent's
        out["transform_cache"] = (
            {
                "capacity": self._cache_entries,
                "hits": worker_stats["cache_hits"],
                "misses": worker_stats["cache_misses"],
                "evictions": worker_stats["cache_evictions"],
                "invalidations": 0,
                "scope": "workers",
            }
            if self._cache_entries
            else None
        )
        out["worker_keys"] = {
            "hits": worker_stats["key_hits"],
            "ships": worker_stats["key_ships"],
            "miss_retries": worker_stats["key_miss_retries"],
        }
        out["shm"] = {"enabled": self._use_shm, **self._segments.stats()}
        return out

    def close(self, wait: bool = True) -> None:
        """Graceful drain: stop intake, finish in-flight batches, shut
        down both pools, then unlink every shared-memory segment."""
        if self._closed:
            return
        super().close(wait)
        # the supervisor drains first (its tasks still need the worker
        # pool), then the workers go down
        self._supervisor.shutdown(wait=wait)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        self._segments.close()
