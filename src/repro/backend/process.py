"""The multi-process backend: GIL-free batch execution with supervision.

A :class:`ProcessBackend` runs batched KEM kernels on a
``ProcessPoolExecutor``.  The thread backend already overlaps the
numpy array work of neighbouring batches (numpy drops the GIL), but
the *Python* half of a batch — hashing loops, object construction,
serialization — serializes on one interpreter lock; Imran et al.'s
systematic study of lattice KEMs found exactly this reference-
implementation overhead, not the math, dominating cost.  Processes
remove that ceiling: each submitted batch is split into sub-chunks
fanned across worker processes, so one 64-operation batch uses many
interpreters at once.

Design points:

* **compact wire format** — only ``bytes`` and small tuples cross the
  pipe (parameter-set *name*, serialized keys, messages, ciphertext
  blobs), never numpy arrays or parameter objects, keeping pickling a
  memcpy; results come back as ``(ct_bytes, shared)`` pairs and are
  re-hydrated parent-side;
* **per-worker warmup** — each worker's initializer builds its own
  GF log/antilog tables, ring FFT state and BCH parity matrix by
  running a one-operation roundtrip per configured parameter set, so
  no serving batch ever pays table construction;
* **supervision** — a worker crash (OOM-kill, segfault, chaos
  ``kill_worker``) breaks the pool; the supervisor detects
  ``BrokenProcessPool``, replaces the pool (bounded by
  ``max_restarts``), counts the restart (surfaced as
  ``kem_worker_restarts_total``) and fails the in-flight batch with
  the typed :class:`repro.errors.WorkerCrashed` — which the service
  maps to the existing ``INTERNAL`` response;
* **graceful drain** — :meth:`close` stops intake, lets submitted
  batches finish, then shuts both pools down; idempotent.

The default ``mp_context`` is ``"spawn"``: forking a process that
already runs pool threads (every server does) inherits locked mutexes
and is deprecated on modern CPythons.  Spawn start-up is paid once and
can be fronted with :meth:`~repro.backend.base.KemBackend.warmup`.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from collections.abc import Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.backend.base import KemBackend, KernelWrapper
from repro.batch.kem import _decaps_chunk, _encaps_chunk
from repro.errors import WorkerCrashed
from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey, LacKem
from repro.lac.params import ALL_PARAMS, LacParams
from repro.lac.pke import Ciphertext, PublicKey

#: Smallest per-process sub-chunk worth the pickling round trip; a
#: 64-op batch on 8 workers still lands at 8 ops per process.
MIN_CHUNK = 8

#: Default bound on pool rebuilds after worker crashes.
DEFAULT_MAX_RESTARTS = 3


def _params_by_name(name: str) -> LacParams:
    for params in ALL_PARAMS:
        if params.name == name:
            return params
    raise KeyError(f"unknown parameter set {name!r}")


# ---------------------------------------------------------------------------
# worker-side code (everything below the pipe)
# ---------------------------------------------------------------------------

_WORKER_KEMS: dict[str, LacKem] = {}


def _worker_kem(params_name: str) -> LacKem:
    kem = _WORKER_KEMS.get(params_name)
    if kem is None:
        kem = _WORKER_KEMS[params_name] = LacKem(_params_by_name(params_name))
    return kem


def _worker_init(param_names: Sequence[str]) -> None:
    """Per-worker warmup: build this process's GF/ring/BCH tables.

    Runs in each worker as it spawns — a one-operation keygen/encaps/
    decaps roundtrip per configured parameter set touches every lazy
    table (GF(2^9) log/antilog, ring FFT twiddles, the BCH parity
    matrix), so serving batches never pay construction cost.
    """
    for name in param_names:
        kem = _worker_kem(name)
        params = kem.params
        pair = kem.keygen(b"\x2a" * (params.seed_bytes + 32))
        results = _encaps_chunk(kem, pair.public_key, [b"\x00" * params.message_bytes])
        _decaps_chunk(kem, pair.secret_key, [r.ciphertext for r in results])


def _worker_encaps(
    params_name: str, pk_bytes: bytes, messages: list[bytes]
) -> list[tuple[bytes, bytes]]:
    kem = _worker_kem(params_name)
    pk = PublicKey.from_bytes(kem.params, pk_bytes)
    results = _encaps_chunk(kem, pk, messages)
    return [(r.ciphertext.to_bytes(), r.shared_secret) for r in results]


def _worker_decaps(
    params_name: str, sk_bytes: bytes, ct_blobs: list[bytes]
) -> list[bytes]:
    kem = _worker_kem(params_name)
    keys = KemSecretKey.from_bytes(kem.params, sk_bytes)
    ciphertexts = [Ciphertext.from_bytes(kem.params, blob) for blob in ct_blobs]
    return _decaps_chunk(kem, keys, ciphertexts)


def _worker_keygen(
    params_name: str, seeds: list[bytes | None]
) -> list[tuple[bytes, bytes]]:
    kem = _worker_kem(params_name)
    out = []
    for seed in seeds:
        pair = kem.keygen(seed)
        out.append((pair.public_key.to_bytes(), pair.secret_key.to_bytes()))
    return out


def _worker_pid() -> int:
    return os.getpid()


# ---------------------------------------------------------------------------
# parent-side supervisor
# ---------------------------------------------------------------------------


class ProcessBackend(KemBackend):
    """Batched KEM kernels on a supervised worker-process pool.

    ``workers`` sizes the pool (default: CPU count, capped at 8 — the
    kernels saturate memory bandwidth well before that on small
    hosts).  ``warm_params`` restricts the per-worker warmup to the
    parameter sets actually served (tests pass one set to keep spawn
    cheap).  ``max_restarts`` bounds pool rebuilds after crashes;
    beyond it the backend declares itself broken and fails fast.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        mp_context: str = "spawn",
        warm_params: Sequence[LacParams] | None = None,
        min_chunk: int = MIN_CHUNK,
    ) -> None:
        super().__init__()
        self._workers = workers or max(2, min(8, os.cpu_count() or 2))
        self._max_restarts = max_restarts
        self._min_chunk = max(1, min_chunk)
        self._ctx = multiprocessing.get_context(mp_context)
        self._warm_names = tuple(
            p.name for p in (warm_params if warm_params is not None else ALL_PARAMS)
        )
        self._pool_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._restarts = 0
        self._broken = False
        # supervisor threads: one per concurrently in-flight batch —
        # they only fan chunks out, block on worker results and
        # re-hydrate the answers, so a couple above the worker count
        # keeps submission from queueing behind result collection
        self._supervisor = ThreadPoolExecutor(
            max_workers=self._workers + 2,
            thread_name_prefix="repro-backend-sup",
        )

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self) -> tuple[ProcessPoolExecutor, int]:
        with self._pool_lock:
            if self._broken:
                raise WorkerCrashed(
                    f"process backend exceeded {self._max_restarts} worker restarts"
                )
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=self._ctx,
                    initializer=_worker_init,
                    initargs=(self._warm_names,),
                )
            return self._pool, self._generation

    def _on_broken_pool(self, generation: int) -> None:
        """Replace a broken pool exactly once per crash incident.

        ``BrokenProcessPool`` fans out to every future of the incident;
        the generation check makes sure one crash costs one restart.
        """
        with self._pool_lock:
            if generation != self._generation:
                return  # a sibling batch already handled this incident
            self._generation += 1
            self._restarts += 1
            pool, self._pool = self._pool, None
            if self._restarts > self._max_restarts:
                self._broken = True
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _fan(
        self, fn: Callable[..., Any], calls: Sequence[tuple[Any, ...]]
    ) -> list[Any]:
        """Run ``fn(*args)`` per call tuple across the worker pool."""
        pool, generation = self._ensure_pool()
        try:
            futures = [pool.submit(fn, *args) for args in calls]
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            self._on_broken_pool(generation)
            raise WorkerCrashed("kem worker process died mid-batch") from exc

    def _chunk(self, items: list[Any]) -> list[list[Any]]:
        chunks = max(1, min(self._workers, len(items) // self._min_chunk))
        bounds = [len(items) * i // chunks for i in range(chunks + 1)]
        return [
            items[bounds[i] : bounds[i + 1]]
            for i in range(chunks)
            if bounds[i] < bounds[i + 1]
        ]

    def _submit(
        self, wrapper: KernelWrapper | None, work: Callable[[], Any]
    ) -> Future[Any]:
        self._check_open()
        return self._supervisor.submit(self._tracked, wrapper, work)

    # -- the contract ---------------------------------------------------

    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages``, split across worker processes."""
        batch = [bytes(m) for m in messages]
        if not batch:
            return self._done([])
        pk_bytes = pk.to_bytes()
        name = params.name

        def work() -> list[EncapsResult]:
            calls = [(name, pk_bytes, chunk) for chunk in self._chunk(batch)]
            out: list[EncapsResult] = []
            for part in self._fan(_worker_encaps, calls):
                out.extend(
                    EncapsResult(Ciphertext.from_bytes(params, ct_bytes), shared)
                    for ct_bytes, shared in part
                )
            return out

        return self._submit(wrapper, work)

    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts``, split across worker processes."""
        blobs = [ct.to_bytes() for ct in ciphertexts]
        if not blobs:
            return self._done([])
        sk_bytes = keys.to_bytes()
        name = params.name

        def work() -> list[bytes]:
            calls = [(name, sk_bytes, chunk) for chunk in self._chunk(blobs)]
            out: list[bytes] = []
            for part in self._fan(_worker_decaps, calls):
                out.extend(part)
            return out

        return self._submit(wrapper, work)

    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate key pairs in worker processes; re-hydrated parent-side."""
        batch = list(seeds)
        if not batch:
            return self._done([])
        name = params.name

        def work() -> list[KemKeyPair]:
            calls = [(name, chunk) for chunk in self._chunk(batch)]
            out: list[KemKeyPair] = []
            for part in self._fan(_worker_keygen, calls):
                out.extend(
                    KemKeyPair(
                        PublicKey.from_bytes(params, pk_bytes),
                        KemSecretKey.from_bytes(params, sk_bytes),
                    )
                    for pk_bytes, sk_bytes in part
                )
            return out

        return self._submit(wrapper, work)

    # -- chaos + observability ------------------------------------------

    def kill_worker(self, sig: int = signal.SIGKILL) -> bool:
        """Kill one live worker process (the ``backend`` fault site).

        Returns ``False`` when no pool is up.  The next interaction
        with the broken pool surfaces :class:`WorkerCrashed` and the
        supervisor rebuilds it (counted in ``restarts``).
        """
        with self._pool_lock:
            pool = self._pool
        if pool is None:
            return False
        processes = getattr(pool, "_processes", None)
        if not processes:
            return False
        pid = next(iter(processes))
        try:
            os.kill(pid, sig)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    def stats(self) -> dict[str, Any]:
        """Submission counters plus worker-pool health."""
        out = super().stats()
        with self._pool_lock:
            out["workers"] = self._workers
            out["restarts"] = self._restarts
            out["broken"] = self._broken
        return out

    def close(self, wait: bool = True) -> None:
        """Graceful drain: stop intake, finish in-flight batches, shut down."""
        if self._closed:
            return
        super().close(wait)
        # the supervisor drains first (its tasks still need the worker
        # pool), then the workers go down
        self._supervisor.shutdown(wait=wait)
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
