"""Shared-memory segment pooling for the process backend's wire.

The original process-backend wire pickled every payload through the
pool's pipes: ciphertext blobs down for decapsulation, ciphertext +
shared-secret pairs back up for encapsulation.  Pickling a list of a
few hundred ~1 KiB byte strings per batch is pure overhead — the exact
"reference implementation cost, not math" tax the paper attacks in
hardware with memory-mapped operand registers.  This module is the
software analogue: bulk payloads move through POSIX shared memory
(``multiprocessing.shared_memory``), so the pipe carries only a
segment name and a count.

Ownership model (deliberately asymmetric, to keep cleanup exact):

* the **parent owns every segment**.  :class:`SegmentPool` creates
  them, hands them to one in-flight chunk at a time, and re-pools them
  afterwards; ``close()`` unlinks everything.  Should the parent die
  without closing, its ``resource_tracker`` unlinks the segments at
  interpreter exit — the safety net.
* **workers only borrow**.  :func:`attach_segment` maps an existing
  segment by name and immediately *unregisters* it from the worker's
  ``resource_tracker`` — otherwise every worker exit would try to
  unlink parent-owned segments (double-unlink warnings, and races with
  reuse).  Workers close their mapping before returning.

Segments are bucketed by power-of-two size class and reused across
batches and across pool restarts (a worker crash kills mappings, not
the parent's segments), so steady-state serving allocates nothing.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import Any

#: Smallest segment ever allocated: one size class covers all small
#: chunks, maximizing reuse (a 64 KiB segment holds a 46-ciphertext
#: LAC-256 chunk).
MIN_SEGMENT_BYTES = 1 << 16


def shm_available() -> bool:
    """Probe whether POSIX shared memory actually works here.

    Containers occasionally mount ``/dev/shm`` unusable (size 0, or
    not at all); the backend falls back to the bytes wire when this
    probe fails rather than crashing on the first batch.
    """
    try:
        probe = shared_memory.SharedMemory(create=True, size=MIN_SEGMENT_BYTES)
    except (OSError, ValueError):
        return False
    probe.close()
    probe.unlink()
    return True


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach that leaves ownership with the parent.

    Pool workers inherit the parent's ``resource_tracker`` (spawn
    passes its fd in the preparation data), so the attach-side
    ``register`` is a set-add of a name the parent already registered
    — a no-op.  Crucially we must **not** ``unregister`` here: in the
    shared tracker that would cancel the parent's registration, making
    the parent's eventual unlink warn (``KeyError`` in the tracker)
    and dropping the crash-cleanup safety net.  Python 3.13's
    ``track=False`` expresses the same intent explicitly.
    """
    return shared_memory.SharedMemory(name=name)


class Segment:
    """A pooled parent-side segment: the mapping plus its size class.

    The size class (our power-of-two bucket) can differ from
    ``shm.size`` (the kernel may round up), so it travels with the
    handle to key the free list deterministically.
    """

    __slots__ = ("shm", "size_class")

    def __init__(self, shm: shared_memory.SharedMemory, size_class: int) -> None:
        self.shm = shm
        self.size_class = size_class

    @property
    def name(self) -> str:
        """The name workers attach by."""
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        """The parent-side mapping."""
        return self.shm.buf


class SegmentPool:
    """A thread-safe pool of reusable parent-owned segments.

    ``acquire`` hands out a segment of at least the requested size
    (rounding up to a power-of-two class so different chunk sizes
    share buckets); ``release`` re-pools it; ``close`` unlinks every
    segment ever created — the single place shared memory is returned
    to the OS.
    """

    def __init__(self, min_bytes: int = MIN_SEGMENT_BYTES) -> None:
        self._min_bytes = min_bytes
        self._lock = threading.Lock()
        self._free: dict[int, list[Segment]] = {}
        self._all: list[Segment] = []
        self._closed = False
        self._created = 0
        self._reused = 0

    def _size_class(self, nbytes: int) -> int:
        size = self._min_bytes
        while size < nbytes:
            size *= 2
        return size

    def acquire(self, nbytes: int) -> Segment:
        """A segment holding at least ``nbytes`` (reused when possible)."""
        if nbytes < 0:
            raise ValueError("segment size must be non-negative")
        size_class = self._size_class(nbytes)
        with self._lock:
            if self._closed:
                raise RuntimeError("segment pool is closed")
            bucket = self._free.get(size_class)
            if bucket:
                self._reused += 1
                return bucket.pop()
        shm = shared_memory.SharedMemory(create=True, size=size_class)
        segment = Segment(shm, size_class)
        with self._lock:
            if self._closed:
                # lost the race with close(): don't leak the newcomer
                shm.close()
                shm.unlink()
                raise RuntimeError("segment pool is closed")
            self._all.append(segment)
            self._created += 1
        return segment

    def release(self, segment: Segment) -> None:
        """Return a segment to the free list (no-op after close)."""
        with self._lock:
            if self._closed:
                return
            self._free.setdefault(segment.size_class, []).append(segment)

    def close(self) -> None:
        """Unlink every segment; idempotent.  After this the /dev/shm
        footprint of the pool is zero."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments, self._all = self._all, []
            self._free.clear()
        for segment in segments:
            try:
                segment.shm.close()
                segment.shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover - already gone
                pass

    def stats(self) -> dict[str, Any]:
        """Segment counts and bytes for metrics/INFO export."""
        with self._lock:
            return {
                "segments": len(self._all),
                "bytes": sum(s.size_class for s in self._all),
                "created": self._created,
                "reused": self._reused,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._all)


__all__ = [
    "MIN_SEGMENT_BYTES",
    "Segment",
    "SegmentPool",
    "attach_segment",
    "shm_available",
]
