"""The thread-pool backend (the default) and the process-wide default.

One submitted batch runs on one pool thread — the numpy/hashlib
kernels drop the GIL there, so neighbouring batches overlap — exactly
the execution model the serving layer had when it reached into
``repro.batch.shared_executor()`` directly.  :class:`ThreadBackend`
wraps that model behind the :class:`~repro.backend.base.KemBackend`
contract; :func:`default_thread_backend` is the process-wide shared
instance that replaces the old module-global executor (reuse matters:
spawning a pool per call costs more than the fan-out saves, which
``benchmarks/bench_throughput.py`` records as
``executor_reuse_speedup``).

``fan_out=N`` additionally splits each submitted batch across ``N``
threads of a backend-owned inner pool (two levels, so dispatch and
fan-out cannot deadlock) — the old ``kernel_workers`` service knob.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from typing import Any

from repro.backend.base import KemBackend, KernelWrapper
from repro.batch.kem import _decaps_chunk, _encaps_chunk, _fan_out
from repro.lac.kem import EncapsResult, KemKeyPair, KemSecretKey
from repro.lac.params import LacParams
from repro.lac.pke import Ciphertext, PublicKey

#: Thread count of a default-sized pool.  Capped: the kernels are
#: memory-bandwidth-bound well before 32 threads.
DEFAULT_THREAD_WORKERS = min(32, (os.cpu_count() or 4))


class ThreadBackend(KemBackend):
    """Run batched kernels on a thread pool.

    ``executor`` borrows an existing pool (never shut down by
    :meth:`close`); otherwise the backend owns a fresh pool of
    ``workers`` threads (default :data:`DEFAULT_THREAD_WORKERS`).
    ``fan_out`` > 1 splits every batch across that many threads of a
    separate backend-owned inner pool.
    """

    name = "thread"

    def __init__(
        self,
        executor: Executor | None = None,
        workers: int | None = None,
        fan_out: int | None = None,
        cache_entries: int | None = None,
    ) -> None:
        super().__init__(cache_entries=cache_entries)
        if executor is not None and workers is not None:
            raise ValueError("pass either executor= or workers=, not both")
        self._owns_executor = executor is None
        self._executor: Executor = (
            executor
            if executor is not None
            else ThreadPoolExecutor(
                max_workers=workers or DEFAULT_THREAD_WORKERS,
                thread_name_prefix="repro-backend",
            )
        )
        self._fan_out = fan_out if fan_out is not None and fan_out > 1 else None
        self._fan_pool = (
            ThreadPoolExecutor(
                max_workers=self._fan_out, thread_name_prefix="repro-backend-fan"
            )
            if self._fan_out
            else None
        )
        self._pool_workers = workers or DEFAULT_THREAD_WORKERS
        self._resize_lock = threading.Lock()

    @property
    def executor(self) -> Executor:
        """The pool batches dispatch onto (borrowed or owned)."""
        return self._executor

    @property
    def workers(self) -> int | None:
        """Owned-pool size (``None`` for a borrowed executor)."""
        return self._pool_workers if self._owns_executor else None

    def resize(self, workers: int) -> bool:
        """Swap in a pool of ``workers`` threads (owned pools only).

        The old pool is shut down without waiting — batches already
        queued on it still run to completion; only *new* submissions
        land on the fresh pool.  Borrowed executors (and the shared
        default backend) are never resized.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not self._owns_executor or self._closed:
            return False
        with self._resize_lock:
            if workers == self._pool_workers:
                return True
            old = self._executor
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-backend"
            )
            self._pool_workers = workers
        assert isinstance(old, ThreadPoolExecutor)
        old.shutdown(wait=False)
        return True

    def _submit(
        self, wrapper: KernelWrapper | None, work: Callable[[], Any]
    ) -> Future[Any]:
        self._check_open()
        try:
            return self._executor.submit(self._tracked, wrapper, work)
        except RuntimeError:
            # lost a race with resize(): the attribute read and the
            # submit straddled the pool swap — one retry lands on the
            # replacement (close() re-raises via _check_open)
            self._check_open()
            return self._executor.submit(self._tracked, wrapper, work)

    def submit_encaps(
        self,
        params: LacParams,
        pk: PublicKey,
        messages: Sequence[bytes],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[EncapsResult]]:
        """Encapsulate ``messages`` on a pool thread."""
        batch = list(messages)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)

        def work() -> list[EncapsResult]:
            return _fan_out(
                lambda ms: _encaps_chunk(kem, pk, ms, self.transform_cache),
                batch,
                self._fan_out,
                self._fan_pool,
            )

        return self._submit(wrapper, work)

    def submit_decaps(
        self,
        params: LacParams,
        keys: KemSecretKey,
        ciphertexts: Sequence[Ciphertext],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[bytes]]:
        """Decapsulate ``ciphertexts`` on a pool thread."""
        batch = list(ciphertexts)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)

        def work() -> list[bytes]:
            return _fan_out(
                lambda cts: _decaps_chunk(kem, keys, cts, self.transform_cache),
                batch,
                self._fan_out,
                self._fan_pool,
            )

        return self._submit(wrapper, work)

    def submit_keygen(
        self,
        params: LacParams,
        seeds: Sequence[bytes | None],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[list[KemKeyPair]]:
        """Generate one key pair per seed on a pool thread."""
        batch = list(seeds)
        if not batch:
            return self._done([])
        kem = self._kem_for(params)
        return self._submit(
            wrapper, lambda: [kem.keygen(seed) for seed in batch]
        )

    def submit_task(
        self,
        fn: Callable[[], Any],
        *,
        wrapper: KernelWrapper | None = None,
    ) -> Future[Any]:
        """Run a generic kernel closure on a pool thread."""
        return self._submit(wrapper, fn)

    def stats(self) -> dict[str, Any]:
        """Submission counters plus the pool size."""
        out = super().stats()
        out["workers"] = self._pool_workers if self._owns_executor else None
        out["fan_out"] = self._fan_out
        return out

    def close(self, wait: bool = True) -> None:
        """Shut down owned pools (borrowed executors are left running)."""
        if self._closed:
            return
        super().close(wait)
        if self._fan_pool is not None:
            self._fan_pool.shutdown(wait=wait)
        if self._owns_executor:
            assert isinstance(self._executor, ThreadPoolExecutor)
            self._executor.shutdown(wait=wait)


class _SharedThreadBackend(ThreadBackend):
    """The process-wide default: lives for the life of the process.

    ``close()`` is deliberately a no-op — many services and batch
    callers share this instance (that sharing *is* the point), so no
    single owner may tear it down.
    """

    def close(self, wait: bool = True) -> None:
        """No-op: the shared default outlives any single user."""

    @property
    def workers(self) -> int | None:
        """``None``: the shared pool is not any one service's to size."""
        return None

    def resize(self, workers: int) -> bool:
        """Declined: many services share this pool, so no single
        autoscaler may resize it (configure ``backend_workers`` to get
        a privately owned, resizable pool)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return False


_default_backend: _SharedThreadBackend | None = None
_default_backend_lock = threading.Lock()


def default_thread_backend() -> ThreadBackend:
    """The process-wide shared :class:`ThreadBackend` (created lazily).

    The successor of ``repro.batch.shared_executor()``: one pool of
    :data:`DEFAULT_THREAD_WORKERS` threads, reused by every
    ``workers=N`` batch call and every service that does not configure
    its own backend.  Its :meth:`~ThreadBackend.close` is a no-op.
    """
    global _default_backend
    if _default_backend is None:
        with _default_backend_lock:
            if _default_backend is None:
                _default_backend = _SharedThreadBackend()
    return _default_backend
