"""Batched fast-path execution of the LAC KEM.

The cycle-model reference code in :mod:`repro.lac` processes one
operation at a time; this package stacks whole batches of operations
into 2-D numpy arrays — batched negacyclic multiplication, matrix BCH
encoding, vectorized sampling — and produces results bit-identical to
looping the scalar API.  See ``docs/PERFORMANCE.md`` for the
architecture and measured speedups.
"""

from repro.batch.encode import bch_encode_many, encode_many, parity_matrix
from repro.batch.kem import (
    decaps_many,
    encaps_many,
    key_fingerprints,
    shared_executor,
    warm_cache,
)
from repro.batch.sampling import (
    gen_a_vec,
    sample_secret_and_error_vec,
    sample_ternary_fixed_weight_vec,
)

__all__ = [
    "bch_encode_many",
    "encode_many",
    "parity_matrix",
    "encaps_many",
    "decaps_many",
    "key_fingerprints",
    "shared_executor",
    "warm_cache",
    "gen_a_vec",
    "sample_secret_and_error_vec",
    "sample_ternary_fixed_weight_vec",
]
