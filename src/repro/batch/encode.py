"""Batched message encoding: matrix BCH encode + ring embedding.

Systematic BCH encoding is GF(2)-linear: the parity of a message is
the XOR of the parities of its set bits, i.e. ``parity = m @ P (mod 2)``
for the k-by-(n-k) matrix P whose row j is the remainder of
``x^{parity_bits + j}`` modulo the generator polynomial.  One uint8
matmul therefore encodes a whole batch of messages — bit-identical to
the shift-register model in :class:`repro.bch.encoder.BCHEncoder` (a
tested invariant), at a fraction of the per-message cost.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bch.code import BCHCode
from repro.bitutils import bytes_to_bits, mask_to_bits
from repro.gf.poly2 import Poly2
from repro.lac.params import LacParams


@lru_cache(maxsize=None)
def parity_matrix(code: BCHCode) -> np.ndarray:
    """The k-by-parity_bits GF(2) parity generator matrix of ``code``.

    Row j is ``x^{parity_bits + j} mod g(x)`` as a bit row; built once
    per code and cached (the build does k polynomial reductions).
    """
    rows = [
        mask_to_bits(
            (Poly2(1 << (code.parity_bits + j)) % code.generator).mask,
            code.parity_bits,
        )
        for j in range(code.k)
    ]
    matrix = np.array(rows, dtype=np.uint8)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=None)
def _parity_matrix_f64(code: BCHCode) -> np.ndarray:
    matrix = parity_matrix(code).astype(np.float64)
    matrix.setflags(write=False)
    return matrix


def bch_encode_many(code: BCHCode, message_bits: np.ndarray) -> np.ndarray:
    """Encode a (B, k) bit matrix into a (B, n) codeword matrix."""
    message_bits = np.atleast_2d(np.asarray(message_bits, dtype=np.uint8))
    if message_bits.shape[1] != code.k:
        raise ValueError(f"messages must be {code.k} bits wide")
    # float64 matmul goes through BLAS; column sums are at most k < 2^53
    # so the product is exact before the parity reduction
    parity = (
        np.rint(message_bits.astype(np.float64) @ _parity_matrix_f64(code))
        .astype(np.uint8)
        & 1
    )
    out = np.empty((message_bits.shape[0], code.n), dtype=np.uint8)
    out[:, : code.parity_bits] = parity
    out[:, code.parity_bits :] = message_bits
    return out


def encode_many(params: LacParams, messages: list[bytes]) -> np.ndarray:
    """Embed a batch of 32-byte messages into stacked ring elements.

    Returns a (B, n) int64 matrix: codeword bits scaled to floor(q/2),
    duplicated at offset ``codeword_bits`` for D2 parameter sets, zero
    elsewhere — row-for-row identical to
    :meth:`repro.lac.encoding.MessageCodec.encode`.
    """
    for message in messages:
        if len(message) != params.message_bytes:
            raise ValueError(f"messages must be {params.message_bytes} bytes")
    bits = np.stack([bytes_to_bits(m, params.bch.k) for m in messages])
    codewords = bch_encode_many(params.bch, bits)

    out = np.zeros((len(messages), params.n), dtype=np.int64)
    cw_len = params.codeword_bits
    out[:, :cw_len] = codewords.astype(np.int64) * params.half_q
    if params.d2:
        out[:, cw_len : 2 * cw_len] = out[:, :cw_len]
    return out
