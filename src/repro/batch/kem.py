"""Batched LAC KEM operations (the production fast path).

The scalar :class:`repro.lac.kem.LacKem` methods process one operation
at a time through the cycle-model reference code.  This module stacks a
whole batch of operations into 2-D numpy arrays and runs the ring
arithmetic as batched negacyclic multiplications
(:meth:`repro.ring.poly.PolyRing.mul_many`, one FFT for the whole
stack), the BCH encode as one GF(2) matmul, and the samplers through
their vectorized twins — while producing ciphertexts and shared
secrets bit-identical to looping the scalar API (a tested invariant
across all three LAC parameter sets).

Amortization wins on top of vectorization:

* ``a = GenA(seed_a)`` is expanded **once per batch** instead of once
  per operation (both in encapsulation and in the decapsulation
  re-encryption);
* the public-key digest is hashed once per batch;
* SHA-256 runs through the hashlib-backed fast path throughout.

An optional ``workers`` argument fans sub-batches out across a
``concurrent.futures`` thread pool; the numpy/hashlib kernels drop the
GIL, so this overlaps the array work of neighbouring sub-batches.  The
pool comes from the process-wide shared
:func:`repro.backend.default_thread_backend` (created lazily, reused
across calls — spawning threads per call costs more than the fan-out
saves at serving batch sizes); callers that manage their own lifecycle
can inject any ``Executor``, or pass ``backend=`` to run the whole
batch through a :class:`repro.backend.KemBackend` (e.g. the
multi-process one).
"""

from __future__ import annotations

import os
import secrets
import warnings
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.batch.encode import encode_many
from repro.batch.sampling import gen_a_vec, sample_secret_rows
from repro.lac.kem import EncapsResult, KemSecretKey, _hash3
from repro.lac.pke import Ciphertext, PublicKey
from repro.ring.cache import KeyTransformCache, fingerprint
from repro.trace import current_tags

if TYPE_CHECKING:  # pragma: no cover - type-only (repro.backend imports us)
    from repro.backend.base import KemBackend


def _shift(params) -> int:
    return 8 - params.v_bits


# ---------------------------------------------------------------------------
# per-key transform caching
# ---------------------------------------------------------------------------


def pk_fingerprints(params, pk: PublicKey) -> tuple[bytes, bytes]:
    """Content fingerprints of a public key's cacheable ring operands.

    Returns ``(fp_a, fp_b)``: the GenA expansion ``a`` is a pure
    function of ``seed_a``, so its fingerprint is seed-derived and a
    cache hit skips the expansion entirely; ``b`` is fingerprinted by
    value.
    """
    return (
        fingerprint(b"gen-a", params.name.encode(), pk.seed_a),
        fingerprint(b"pk-b", params.name.encode(), pk.b.astype(np.uint8).tobytes()),
    )


def sk_fingerprint(params, keys: KemSecretKey) -> bytes:
    """Content fingerprint of the hosted secret polynomial ``s``."""
    return fingerprint(
        b"sk-s", params.name.encode(), keys.sk.to_bytes()
    )


def key_fingerprints(params, pk: PublicKey, keys: KemSecretKey | None = None) -> list[bytes]:
    """Every cache fingerprint a hosted key can populate (pk, and sk if given)."""
    fps = list(pk_fingerprints(params, pk))
    if keys is not None:
        fps.append(sk_fingerprint(params, keys))
    return fps


def warm_cache(
    cache: KeyTransformCache,
    params,
    pk: PublicKey,
    keys: KemSecretKey | None = None,
) -> list[bytes]:
    """Eagerly populate the transform cache for a hosted key.

    Pays the GenA expansion and the forward FFTs outside any serving
    window (key registration), so the first batch under the key already
    hits.  The secret row is stored in the same ``[1, n]`` shape
    :func:`_decaps_chunk` uses, keeping the cached transform reusable
    there.  Returns the fingerprints populated — the handle the owner
    keeps for later :meth:`~repro.ring.cache.KeyTransformCache.invalidate`.
    """
    ring = params.ring
    fp_a, fp_b = pk_fingerprints(params, pk)
    cache.operand(ring, fp_a, lambda: gen_a_vec(pk.seed_a, params))
    cache.operand(ring, fp_b, lambda: pk.b)
    fps = [fp_a, fp_b]
    if keys is not None:
        fp_s = sk_fingerprint(params, keys)
        cache.operand(
            ring, fp_s, lambda: keys.sk.s.coeffs.astype(np.int64)[None, :]
        )
        fps.append(fp_s)
    return fps


def _annotate_cache(hits: int, misses: int) -> None:
    """Accumulate cache counters into the ambient trace-tag sink.

    Additive (not a plain overwrite) because decapsulation touches the
    cache twice per chunk — once for ``u*s``, once for the FO
    re-encryption — and fan-out chunks may share one sink.
    """
    tags = current_tags()
    if tags is not None and (hits or misses):
        tags["cache_hits"] = tags.get("cache_hits", 0) + hits
        tags["cache_misses"] = tags.get("cache_misses", 0) + misses


def _pk_operands(
    kem, pk: PublicKey, cache: KeyTransformCache | None, a: np.ndarray | None
):
    """Resolve ``(a, fa, b, fb)`` for the encryption products.

    Without a cache this is the historical behaviour (``a`` expanded
    per batch, no precomputed transforms).  With one, both operands and
    their forward transforms come from the cache; on a hit the GenA
    expansion is skipped entirely.
    """
    params = kem.params
    if cache is None:
        if a is None:
            a = gen_a_vec(pk.seed_a, params)
        return a, None, pk.b, None
    fp_a, fp_b = pk_fingerprints(params, pk)
    got_a = cache.operand(
        params.ring,
        fp_a,
        lambda: a if a is not None else gen_a_vec(pk.seed_a, params),
    )
    got_b = cache.operand(params.ring, fp_b, lambda: pk.b)
    hits = int(got_a.hit) + int(got_b.hit)
    _annotate_cache(hits, 2 - hits)
    return got_a.raw, got_a.transform, got_b.raw, got_b.transform


def _compress_rows(params, v_rows: np.ndarray) -> np.ndarray:
    """Row-wise twin of :meth:`MessageCodec.compress_v` (elementwise ops)."""
    return (np.mod(v_rows, params.q).astype(np.int64) >> _shift(params)).astype(
        np.uint8
    )


def _encrypt_batch(
    kem,
    pk: PublicKey,
    messages: Sequence[bytes],
    coins_list: Sequence[bytes],
    a: np.ndarray | None,
    cache: KeyTransformCache | None = None,
) -> list[Ciphertext]:
    """Deterministic batched encryption (shared by encaps and re-encrypt).

    ``a`` may be ``None`` when a ``cache`` is given — the cache supplies
    the GenA expansion (or its fingerprint-addressed transform) instead.
    """
    params = kem.params
    ring = params.ring
    slots = params.v_slots
    q = params.q

    # rows b*3+0/1/2 are the batch's s'/e'/e'' polynomials
    all_rows = sample_secret_rows(list(coins_list), params, 3).astype(np.int64)
    s_rows = all_rows[0::3]
    e_rows = np.mod(all_rows[1::3], q)
    e2_rows = np.mod(all_rows[2::3, :slots], q)

    # one forward FFT of the secret stack feeds both products; the
    # key-side transforms come from the per-key cache when enabled
    a, fa, b, fb = _pk_operands(kem, pk, cache, a)
    sa_rows, sb_rows = ring.mul_many_multi(
        s_rows, [a, b], operand_transforms=[fa, fb]
    )
    u_rows = np.mod(sa_rows + e_rows, q)
    bs_rows = sb_rows[:, :slots]
    encoded = encode_many(params, list(messages))[:, :slots]
    v_rows = np.mod(bs_rows + e2_rows + encoded, q)
    v_compressed = _compress_rows(params, v_rows)
    return [
        Ciphertext(params, u_rows[i], v_compressed[i])
        for i in range(len(coins_list))
    ]


def _encaps_chunk(
    kem,
    pk: PublicKey,
    messages: Sequence[bytes],
    cache: KeyTransformCache | None = None,
) -> list[EncapsResult]:
    pk_digest = _hash3(pk.to_bytes(), b"", b"pk")
    coins_list = [_hash3(m, pk_digest, b"coins") for m in messages]
    # with a cache, GenA is resolved (or skipped on a hit) inside
    # _encrypt_batch; without one, expand it here as always
    a = None if cache is not None else gen_a_vec(pk.seed_a, kem.params)
    ciphertexts = _encrypt_batch(kem, pk, messages, coins_list, a, cache)
    results = []
    for message, ciphertext in zip(messages, ciphertexts):
        ct_digest = _hash3(ciphertext.to_bytes(), b"", b"ct")
        results.append(
            EncapsResult(ciphertext, _hash3(message, ct_digest, b"shared"))
        )
    return results


def _decaps_chunk(
    kem,
    keys: KemSecretKey,
    ciphertexts: Sequence[Ciphertext],
    cache: KeyTransformCache | None = None,
) -> list[bytes]:
    params = kem.params
    ring = params.ring
    slots = params.v_slots
    q = params.q
    codec = kem.pke.codec

    s_row = keys.sk.s.coeffs.astype(np.int64)[None, :]
    u_rows = np.stack([ct.u for ct in ciphertexts]).astype(np.int64)
    if cache is not None:
        got_s = cache.operand(ring, sk_fingerprint(params, keys), lambda: s_row)
        _annotate_cache(int(got_s.hit), 1 - int(got_s.hit))
        us_rows = ring.mul_many(got_s.raw, u_rows, a_transform=got_s.transform)
    else:
        us_rows = ring.mul_many(s_row, u_rows)
    v_rows = np.stack([codec.decompress_v(ct.v_compressed) for ct in ciphertexts])
    noisy_rows = np.mod(v_rows - us_rows[:, :slots], q)

    decoded = [
        codec.decode(
            noisy_rows[i],
            constant_time=kem.constant_time_bch,
            bch_decoder=kem.pke.bch_decoder,
        )
        for i in range(len(ciphertexts))
    ]
    messages = [d.message for d in decoded]
    coins_list = [
        _hash3(message, keys.pk_digest, b"coins") for message in messages
    ]

    a = None if cache is not None else gen_a_vec(keys.pk.seed_a, params)
    reencrypted = _encrypt_batch(kem, keys.pk, messages, coins_list, a, cache)

    shared = []
    for message, ciphertext, candidate in zip(messages, ciphertexts, reencrypted):
        ct_bytes = ciphertext.to_bytes()
        ct_digest = _hash3(ct_bytes, b"", b"ct")
        if candidate.to_bytes() == ct_bytes:
            shared.append(_hash3(message, ct_digest, b"shared"))
        else:
            # implicit rejection, exactly as the scalar FO transform
            shared.append(_hash3(keys.z, ct_digest, b"reject"))
    return shared


#: Thread count of the shared default pool.  Capped: the kernels are
#: memory-bandwidth-bound well before 32 threads.  (Kept as an alias of
#: :data:`repro.backend.DEFAULT_THREAD_WORKERS` for old imports.)
SHARED_EXECUTOR_WORKERS = min(32, (os.cpu_count() or 4))


def shared_executor() -> ThreadPoolExecutor:
    """Deprecated: the pool of the shared default thread backend.

    .. deprecated::
        The process-wide pool now lives behind
        :func:`repro.backend.default_thread_backend`; use that (or pass
        ``backend=``/``executor=`` explicitly).  This shim returns the
        same underlying pool the default backend dispatches onto, so
        legacy callers keep sharing threads with everyone else.
    """
    warnings.warn(
        "repro.batch.shared_executor() is deprecated; use "
        "repro.backend.default_thread_backend() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.backend.thread import default_thread_backend

    executor = default_thread_backend().executor
    assert isinstance(executor, ThreadPoolExecutor)
    return executor


def _fan_out(chunk_fn, items, workers, executor: Executor | None = None):
    """Run ``chunk_fn`` over sub-batches on a thread pool, order-preserving.

    ``workers`` fixes the number of sub-batches; the threads come from
    ``executor`` when given, else from the shared pool.  ``workers``
    of ``None``/``<= 1`` (or a trivial batch) stays serial.
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return chunk_fn(items)
    workers = min(workers, len(items))
    bounds = np.linspace(0, len(items), workers + 1).astype(int)
    chunks = [
        items[bounds[i] : bounds[i + 1]]
        for i in range(workers)
        if bounds[i] < bounds[i + 1]
    ]
    if executor is None:
        from repro.backend.thread import default_thread_backend

        executor = default_thread_backend().executor
    pool = executor
    out = []
    for part in pool.map(chunk_fn, chunks):
        out.extend(part)
    return out


# ---------------------------------------------------------------------------
# public API (surfaced as LacKem.encaps_many / LacKem.decaps_many)
# ---------------------------------------------------------------------------


def encaps_many(
    kem,
    pk: PublicKey,
    messages: Sequence[bytes] | None = None,
    count: int | None = None,
    workers: int | None = None,
    executor: Executor | None = None,
    backend: "KemBackend | None" = None,
    cache: KeyTransformCache | None = None,
) -> list[EncapsResult]:
    """Encapsulate a batch of shared secrets under one public key.

    Either pass explicit ``messages`` (tests/KATs, batch size = its
    length) or a ``count`` of OS-random messages.  Results are
    positionally identical to calling :meth:`LacKem.encaps` in a loop
    with the same messages.  ``executor`` overrides the shared pool
    used for ``workers`` fan-out; ``backend`` instead routes the whole
    batch through a :class:`repro.backend.KemBackend` (exclusive with
    the pool knobs — backends carry their own transform cache).
    ``cache`` supplies a :class:`repro.ring.KeyTransformCache` so
    repeated batches under the same key skip the key-side forward FFT
    (and the GenA expansion) — results stay bit-identical either way.
    """
    if backend is not None and (workers is not None or executor is not None):
        raise ValueError("pass either backend= or workers=/executor=, not both")
    if messages is None:
        if count is None:
            raise ValueError("pass either messages or count")
        messages = [
            secrets.token_bytes(kem.params.message_bytes) for _ in range(count)
        ]
    elif count is not None and count != len(messages):
        raise ValueError("count disagrees with len(messages)")
    messages = list(messages)
    for message in messages:
        if len(message) != kem.params.message_bytes:
            raise ValueError(
                f"message must be {kem.params.message_bytes} bytes"
            )
    if not messages:
        return []
    if backend is not None:
        return backend.submit_encaps(kem.params, pk, messages).result()
    return _fan_out(
        lambda ms: _encaps_chunk(kem, pk, ms, cache), messages, workers, executor
    )


def decaps_many(
    kem,
    keys: KemSecretKey,
    ciphertexts: Sequence[Ciphertext],
    workers: int | None = None,
    executor: Executor | None = None,
    backend: "KemBackend | None" = None,
    cache: KeyTransformCache | None = None,
) -> list[bytes]:
    """Decapsulate a batch of ciphertexts under one secret key.

    Results are positionally identical to calling
    :meth:`LacKem.decaps` in a loop (including implicit rejection of
    malformed ciphertexts).  ``executor`` overrides the shared pool
    used for ``workers`` fan-out; ``backend`` instead routes the whole
    batch through a :class:`repro.backend.KemBackend` (exclusive with
    the pool knobs).  ``cache`` caches the hosted key's transforms
    across batches, exactly as for :func:`encaps_many`.
    """
    if backend is not None and (workers is not None or executor is not None):
        raise ValueError("pass either backend= or workers=/executor=, not both")
    ciphertexts = list(ciphertexts)
    if not ciphertexts:
        return []
    if backend is not None:
        return backend.submit_decaps(kem.params, keys, ciphertexts).result()
    return _fan_out(
        lambda cts: _decaps_chunk(kem, keys, cts, cache), ciphertexts, workers, executor
    )
