"""Batched LAC KEM operations (the production fast path).

The scalar :class:`repro.lac.kem.LacKem` methods process one operation
at a time through the cycle-model reference code.  This module stacks a
whole batch of operations into 2-D numpy arrays and runs the ring
arithmetic as batched negacyclic multiplications
(:meth:`repro.ring.poly.PolyRing.mul_many`, one FFT for the whole
stack), the BCH encode as one GF(2) matmul, and the samplers through
their vectorized twins — while producing ciphertexts and shared
secrets bit-identical to looping the scalar API (a tested invariant
across all three LAC parameter sets).

Amortization wins on top of vectorization:

* ``a = GenA(seed_a)`` is expanded **once per batch** instead of once
  per operation (both in encapsulation and in the decapsulation
  re-encryption);
* the public-key digest is hashed once per batch;
* SHA-256 runs through the hashlib-backed fast path throughout.

An optional ``workers`` argument fans sub-batches out across a
``concurrent.futures`` thread pool; the numpy/hashlib kernels drop the
GIL, so this overlaps the array work of neighbouring sub-batches.  The
pool comes from the process-wide shared
:func:`repro.backend.default_thread_backend` (created lazily, reused
across calls — spawning threads per call costs more than the fan-out
saves at serving batch sizes); callers that manage their own lifecycle
can inject any ``Executor``, or pass ``backend=`` to run the whole
batch through a :class:`repro.backend.KemBackend` (e.g. the
multi-process one).
"""

from __future__ import annotations

import os
import secrets
import warnings
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.batch.encode import encode_many
from repro.batch.sampling import gen_a_vec, sample_secret_rows
from repro.lac.kem import EncapsResult, KemSecretKey, _hash3
from repro.lac.pke import Ciphertext, PublicKey

if TYPE_CHECKING:  # pragma: no cover - type-only (repro.backend imports us)
    from repro.backend.base import KemBackend


def _shift(params) -> int:
    return 8 - params.v_bits


def _compress_rows(params, v_rows: np.ndarray) -> np.ndarray:
    """Row-wise twin of :meth:`MessageCodec.compress_v` (elementwise ops)."""
    return (np.mod(v_rows, params.q).astype(np.int64) >> _shift(params)).astype(
        np.uint8
    )


def _encrypt_batch(
    kem,
    pk: PublicKey,
    messages: Sequence[bytes],
    coins_list: Sequence[bytes],
    a: np.ndarray,
) -> list[Ciphertext]:
    """Deterministic batched encryption (shared by encaps and re-encrypt)."""
    params = kem.params
    ring = params.ring
    slots = params.v_slots
    q = params.q

    # rows b*3+0/1/2 are the batch's s'/e'/e'' polynomials
    all_rows = sample_secret_rows(list(coins_list), params, 3).astype(np.int64)
    s_rows = all_rows[0::3]
    e_rows = np.mod(all_rows[1::3], q)
    e2_rows = np.mod(all_rows[2::3, :slots], q)

    # one forward FFT of the secret stack feeds both products
    sa_rows, sb_rows = ring.mul_many_multi(s_rows, [a, pk.b])
    u_rows = np.mod(sa_rows + e_rows, q)
    bs_rows = sb_rows[:, :slots]
    encoded = encode_many(params, list(messages))[:, :slots]
    v_rows = np.mod(bs_rows + e2_rows + encoded, q)
    v_compressed = _compress_rows(params, v_rows)
    return [
        Ciphertext(params, u_rows[i], v_compressed[i])
        for i in range(len(coins_list))
    ]


def _encaps_chunk(kem, pk: PublicKey, messages: Sequence[bytes]) -> list[EncapsResult]:
    params = kem.params
    pk_digest = _hash3(pk.to_bytes(), b"", b"pk")
    coins_list = [_hash3(m, pk_digest, b"coins") for m in messages]
    a = gen_a_vec(pk.seed_a, params)
    ciphertexts = _encrypt_batch(kem, pk, messages, coins_list, a)
    results = []
    for message, ciphertext in zip(messages, ciphertexts):
        ct_digest = _hash3(ciphertext.to_bytes(), b"", b"ct")
        results.append(
            EncapsResult(ciphertext, _hash3(message, ct_digest, b"shared"))
        )
    return results


def _decaps_chunk(
    kem, keys: KemSecretKey, ciphertexts: Sequence[Ciphertext]
) -> list[bytes]:
    params = kem.params
    ring = params.ring
    slots = params.v_slots
    q = params.q
    codec = kem.pke.codec

    s_row = keys.sk.s.coeffs.astype(np.int64)[None, :]
    u_rows = np.stack([ct.u for ct in ciphertexts]).astype(np.int64)
    us_rows = ring.mul_many(s_row, u_rows)
    v_rows = np.stack([codec.decompress_v(ct.v_compressed) for ct in ciphertexts])
    noisy_rows = np.mod(v_rows - us_rows[:, :slots], q)

    decoded = [
        codec.decode(
            noisy_rows[i],
            constant_time=kem.constant_time_bch,
            bch_decoder=kem.pke.bch_decoder,
        )
        for i in range(len(ciphertexts))
    ]
    messages = [d.message for d in decoded]
    coins_list = [
        _hash3(message, keys.pk_digest, b"coins") for message in messages
    ]

    a = gen_a_vec(keys.pk.seed_a, params)
    reencrypted = _encrypt_batch(kem, keys.pk, messages, coins_list, a)

    shared = []
    for message, ciphertext, candidate in zip(messages, ciphertexts, reencrypted):
        ct_bytes = ciphertext.to_bytes()
        ct_digest = _hash3(ct_bytes, b"", b"ct")
        if candidate.to_bytes() == ct_bytes:
            shared.append(_hash3(message, ct_digest, b"shared"))
        else:
            # implicit rejection, exactly as the scalar FO transform
            shared.append(_hash3(keys.z, ct_digest, b"reject"))
    return shared


#: Thread count of the shared default pool.  Capped: the kernels are
#: memory-bandwidth-bound well before 32 threads.  (Kept as an alias of
#: :data:`repro.backend.DEFAULT_THREAD_WORKERS` for old imports.)
SHARED_EXECUTOR_WORKERS = min(32, (os.cpu_count() or 4))


def shared_executor() -> ThreadPoolExecutor:
    """Deprecated: the pool of the shared default thread backend.

    .. deprecated::
        The process-wide pool now lives behind
        :func:`repro.backend.default_thread_backend`; use that (or pass
        ``backend=``/``executor=`` explicitly).  This shim returns the
        same underlying pool the default backend dispatches onto, so
        legacy callers keep sharing threads with everyone else.
    """
    warnings.warn(
        "repro.batch.shared_executor() is deprecated; use "
        "repro.backend.default_thread_backend() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.backend.thread import default_thread_backend

    executor = default_thread_backend().executor
    assert isinstance(executor, ThreadPoolExecutor)
    return executor


def _fan_out(chunk_fn, items, workers, executor: Executor | None = None):
    """Run ``chunk_fn`` over sub-batches on a thread pool, order-preserving.

    ``workers`` fixes the number of sub-batches; the threads come from
    ``executor`` when given, else from the shared pool.  ``workers``
    of ``None``/``<= 1`` (or a trivial batch) stays serial.
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return chunk_fn(items)
    workers = min(workers, len(items))
    bounds = np.linspace(0, len(items), workers + 1).astype(int)
    chunks = [
        items[bounds[i] : bounds[i + 1]]
        for i in range(workers)
        if bounds[i] < bounds[i + 1]
    ]
    if executor is None:
        from repro.backend.thread import default_thread_backend

        executor = default_thread_backend().executor
    pool = executor
    out = []
    for part in pool.map(chunk_fn, chunks):
        out.extend(part)
    return out


# ---------------------------------------------------------------------------
# public API (surfaced as LacKem.encaps_many / LacKem.decaps_many)
# ---------------------------------------------------------------------------


def encaps_many(
    kem,
    pk: PublicKey,
    messages: Sequence[bytes] | None = None,
    count: int | None = None,
    workers: int | None = None,
    executor: Executor | None = None,
    backend: "KemBackend | None" = None,
) -> list[EncapsResult]:
    """Encapsulate a batch of shared secrets under one public key.

    Either pass explicit ``messages`` (tests/KATs, batch size = its
    length) or a ``count`` of OS-random messages.  Results are
    positionally identical to calling :meth:`LacKem.encaps` in a loop
    with the same messages.  ``executor`` overrides the shared pool
    used for ``workers`` fan-out; ``backend`` instead routes the whole
    batch through a :class:`repro.backend.KemBackend` (exclusive with
    the pool knobs).
    """
    if backend is not None and (workers is not None or executor is not None):
        raise ValueError("pass either backend= or workers=/executor=, not both")
    if messages is None:
        if count is None:
            raise ValueError("pass either messages or count")
        messages = [
            secrets.token_bytes(kem.params.message_bytes) for _ in range(count)
        ]
    elif count is not None and count != len(messages):
        raise ValueError("count disagrees with len(messages)")
    messages = list(messages)
    for message in messages:
        if len(message) != kem.params.message_bytes:
            raise ValueError(
                f"message must be {kem.params.message_bytes} bytes"
            )
    if not messages:
        return []
    if backend is not None:
        return backend.submit_encaps(kem.params, pk, messages).result()
    return _fan_out(
        lambda ms: _encaps_chunk(kem, pk, ms), messages, workers, executor
    )


def decaps_many(
    kem,
    keys: KemSecretKey,
    ciphertexts: Sequence[Ciphertext],
    workers: int | None = None,
    executor: Executor | None = None,
    backend: "KemBackend | None" = None,
) -> list[bytes]:
    """Decapsulate a batch of ciphertexts under one secret key.

    Results are positionally identical to calling
    :meth:`LacKem.decaps` in a loop (including implicit rejection of
    malformed ciphertexts).  ``executor`` overrides the shared pool
    used for ``workers`` fan-out; ``backend`` instead routes the whole
    batch through a :class:`repro.backend.KemBackend` (exclusive with
    the pool knobs).
    """
    if backend is not None and (workers is not None or executor is not None):
        raise ValueError("pass either backend= or workers=/executor=, not both")
    ciphertexts = list(ciphertexts)
    if not ciphertexts:
        return []
    if backend is not None:
        return backend.submit_decaps(kem.params, keys, ciphertexts).result()
    return _fan_out(
        lambda cts: _decaps_chunk(kem, keys, cts), ciphertexts, workers, executor
    )
