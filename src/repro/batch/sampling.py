"""Vectorized polynomial sampling for the batch engine.

The scalar samplers in :mod:`repro.lac.sampling` are the cycle-model
reference: they draw from the PRNG byte-by-byte so the operation
counter observes every rejection.  The batch engine replaces the Python
draw loop with numpy bulk operations while consuming the *same*
candidate stream, so the sampled polynomials are bit-identical (a
tested invariant).

The key observation that makes the fixed-weight sampler vectorizable:
the scalar loop accepts a candidate index exactly when its slot is
still unoccupied, and slots only ever fill with values that appeared
*earlier* in the candidate stream — so the accepted indices are
precisely the first occurrences of distinct values, in stream order.
``np.unique(..., return_index=True)`` recovers them in one pass.

The bulk reader over-consumes the PRNG relative to the scalar loop
(it squeezes candidates in blocks).  That is safe here because every
sampler in LAC runs on a *throwaway* domain-separated child stream
(:meth:`repro.hashes.prng.Sha256Prng.fork`) that nothing else reads
afterwards; the helpers below must only ever be handed such streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.hashes.prng import Sha256Prng
from repro.lac.params import LacParams
from repro.lac.sampling import sample_ternary_fixed_weight
from repro.ring.ternary import TernaryPoly

#: little-endian 32-bit block counters, precomputed for the squeeze loop
_LE32 = tuple(i.to_bytes(4, "little") for i in range(64))


def sample_ternary_fixed_weight_vec(
    prng: Sha256Prng, params: LacParams
) -> TernaryPoly:
    """Vectorized fixed-weight sampler, bit-identical to the scalar one.

    Requires a power-of-two ring size (true for every LAC parameter
    set); other sizes fall back to the scalar reference sampler.
    ``prng`` must be a throwaway child stream (see module docstring).
    """
    n, h = params.n, params.h
    if n & (n - 1):
        return sample_ternary_fixed_weight(prng, params)

    candidates = np.empty(0, dtype=np.int64)
    # expected draws are n*ln(n/(n-h)); h plus half again covers the
    # common case in one squeeze, the loop tops up on unlucky streams
    want = h + max(h // 2, 32)
    while True:
        raw = np.frombuffer(prng.read(2 * want), dtype="<u2").astype(np.int64)
        candidates = np.concatenate([candidates, raw & (n - 1)])
        _, first_index = np.unique(candidates, return_index=True)
        if first_index.size >= h:
            break
        want = max(h // 4, 32)

    accepted = candidates[np.sort(first_index)[:h]]
    coeffs = np.zeros(n, dtype=np.int8)
    coeffs[accepted[: h // 2]] = 1
    coeffs[accepted[h // 2 :]] = -1
    return TernaryPoly(coeffs)


def sample_secret_and_error_vec(
    seed: bytes, params: LacParams, how_many: int
) -> list[TernaryPoly]:
    """Vectorized twin of :func:`repro.lac.sampling.sample_secret_and_error`.

    Identical domain separation (child stream per polynomial), identical
    outputs; no operation counting.
    """
    root = Sha256Prng(seed)
    return [
        sample_ternary_fixed_weight_vec(
            root.fork(b"poly" + index.to_bytes(2, "little")), params
        )
        for index in range(how_many)
    ]


def sample_secret_rows(
    seeds: list[bytes], params: LacParams, how_many: int
) -> np.ndarray:
    """All secret/error polynomials of a whole batch as one signed matrix.

    Returns a ``(len(seeds) * how_many, n)`` int8 matrix whose row
    ``b * how_many + j`` equals
    ``sample_secret_and_error(seeds[b], ...)[j]`` from the scalar
    reference (a tested invariant).  The per-polynomial work collapses
    into one raw-SHA-256 squeeze loop for every candidate block of the
    batch plus a handful of row-wise numpy passes; no per-polynomial
    Python objects are built.

    The first-occurrence selection runs on a fixed per-row candidate
    window; rows whose window holds fewer than ``h`` distinct indices
    (rare by construction) are redone through the per-polynomial
    sampler, which tops the stream up exactly like the scalar loop.
    """
    n, h = params.n, params.h
    rows = len(seeds) * how_many
    if n & (n - 1):
        out = np.empty((rows, n), dtype=np.int8)
        for b, seed in enumerate(seeds):
            for j, poly in enumerate(sample_secret_and_error_vec(seed, params, how_many)):
                out[b * how_many + j] = poly.coeffs
        return out

    # enough candidates that a window shortfall is rare (expected
    # distinct count comfortably exceeds h); shortfalls fall back below
    blocks = -(-2 * (h + max(h // 2, 32)) // 32)
    per_row = blocks * 16  # uint16 candidates per squeezed row

    labels = [b"poly" + j.to_bytes(2, "little") for j in range(how_many)]
    counters = _LE32[:blocks]
    buf = bytearray()
    for seed in seeds:
        for label in labels:
            base = hashlib.sha256(hashlib.sha256(seed + label).digest())
            for counter in counters:
                hasher = base.copy()
                hasher.update(counter)
                buf += hasher.digest()

    cands = (
        np.frombuffer(bytes(buf), dtype="<u2").reshape(rows, per_row).astype(np.int64)
        & (n - 1)
    )
    # first occurrences of distinct values per row: pack (value, stream
    # position) into one word, sort, keep each value's first position
    combined = (cands << 16) | np.arange(per_row, dtype=np.int64)
    combined.sort(axis=1)
    values = combined >> 16
    keep = np.empty((rows, per_row), dtype=bool)
    keep[:, 0] = True
    np.not_equal(values[:, 1:], values[:, :-1], out=keep[:, 1:])
    positions = np.where(keep, combined & 0xFFFF, 1 << 30)
    positions.sort(axis=1)
    selected = positions[:, :h]

    bad = selected[:, -1] >= (1 << 30)  # row had < h distinct values
    taken = np.take_along_axis(cands, np.minimum(selected, per_row - 1), axis=1)

    out = np.zeros((rows, n), dtype=np.int8)
    row_index = np.arange(rows)[:, None]
    out[row_index, taken[:, : h // 2]] = 1
    out[row_index, taken[:, h // 2 :]] = -1
    if np.any(bad):
        for r in np.nonzero(bad)[0]:
            b, j = divmod(int(r), how_many)
            root = Sha256Prng(seeds[b])
            child = root.fork(labels[j])
            out[r] = sample_ternary_fixed_weight_vec(child, params).coeffs
    return out


def gen_a_vec(seed: bytes, params: LacParams) -> np.ndarray:
    """Vectorized GenA: bulk rejection sampling of uniform Z_q values.

    Bit-identical to :func:`repro.lac.sampling.gen_a` — the accepted
    bytes are the stream bytes below q, in order — but filters whole
    squeezed blocks with numpy instead of branching per byte.  Unlike
    the fixed-weight sampler this never over-consumes: it reads the
    same chunk sizes as the scalar loop, so it is stream-compatible
    even on shared PRNGs.
    """
    n, q = params.n, params.q
    prng = Sha256Prng(seed)
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        chunk = np.frombuffer(prng.read(max(n - filled, 32)), dtype=np.uint8)
        accepted = chunk[chunk < q]
        take = min(accepted.size, n - filled)
        out[filled : filled + take] = accepted[:take]
        filled += take
    return out
