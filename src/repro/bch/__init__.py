"""BCH error-correcting codes over GF(2^9).

LAC relies on a strong binary BCH code to tolerate decryption noise
(Sec. III/IV-B of the paper): BCH(511, 367, t=16) for LAC-128/LAC-256
and BCH(511, 439, t=8) for LAC-192, both shortened to a 256-bit
systematic payload.

Two decoders are provided, mirroring Table I of the paper:

* :class:`repro.bch.decoder.BCHDecoder` — the round-2-submission style
  decoder: table-based field arithmetic, early exits, data-dependent
  Berlekamp--Massey.  Its execution time depends on the error pattern,
  which is the timing side channel the paper measures.
* :class:`repro.bch.ct_decoder.ConstantTimeBCHDecoder` — the
  Walters/Roy-style constant-time decoder: fixed iteration counts,
  inverse-free Berlekamp--Massey, branch-free selects.
"""

from repro.bch.code import BCHCode, LAC_BCH_128_256, LAC_BCH_192
from repro.bch.encoder import BCHEncoder
from repro.bch.decoder import BCHDecoder, DecodeResult
from repro.bch.ct_decoder import ConstantTimeBCHDecoder

__all__ = [
    "BCHCode",
    "BCHEncoder",
    "BCHDecoder",
    "ConstantTimeBCHDecoder",
    "DecodeResult",
    "LAC_BCH_128_256",
    "LAC_BCH_192",
]
