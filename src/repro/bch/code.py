"""BCH code construction.

A binary primitive BCH code of length n = 2^m - 1 correcting t errors
has generator polynomial g(x) = lcm of the minimal polynomials of
alpha, alpha^2, ..., alpha^{2t}.  The dimension is k = n - deg(g).

LAC shortens the code to a 256-bit payload: the top k - 256 message
positions are fixed to zero and never transmitted.  The transmitted
codeword therefore has ``256 + (n - k)`` bits, with parity in the low
positions and the systematic message in the high positions — which is
exactly why the paper's Chien search only probes Lambda(alpha^112) ..
Lambda(alpha^368) for t = 16 (message positions 144..399 of the
400-bit shortened word) and Lambda(alpha^184) .. Lambda(alpha^440) for
t = 8 (message positions 72..327 of the 328-bit word).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache

from repro.gf.field import GF2m, GF512
from repro.gf.poly2 import Poly2


@dataclass(frozen=True)
class BCHCode:
    """A (possibly shortened) systematic binary BCH code.

    Attributes
    ----------
    field:
        The GF(2^m) field; the natural code length is ``field.group_order``.
    t:
        Designed error-correction capability.
    payload_bits:
        Number of systematic message bits actually used (the code is
        shortened by ``k - payload_bits`` positions).  ``None`` means
        the full dimension k is used (no shortening).
    """

    field: GF2m
    t: int
    payload_bits: int | None = None
    generator: Poly2 = dataclass_field(init=False, compare=False, default=None)

    def __post_init__(self) -> None:
        generator = _generator_polynomial(self.field, self.t)
        object.__setattr__(self, "generator", generator)
        if self.t < 1:
            raise ValueError("t must be >= 1")
        if self.payload_bits is not None and not 0 < self.payload_bits <= self.k_full:
            raise ValueError(
                f"payload_bits={self.payload_bits} exceeds the code "
                f"dimension k={self.k_full}"
            )

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------

    @property
    def n_full(self) -> int:
        """Natural (unshortened) code length, 2^m - 1."""
        return self.field.group_order

    @property
    def parity_bits(self) -> int:
        """Number of parity bits, deg(g) = n - k."""
        return self.generator.degree

    @property
    def k_full(self) -> int:
        """Unshortened dimension."""
        return self.n_full - self.parity_bits

    @property
    def k(self) -> int:
        """Message length in use (payload bits)."""
        return self.payload_bits if self.payload_bits is not None else self.k_full

    @property
    def n(self) -> int:
        """Transmitted codeword length (shortened)."""
        return self.k + self.parity_bits

    @property
    def shortening(self) -> int:
        """Number of suppressed (always-zero) message positions."""
        return self.k_full - self.k

    # ------------------------------------------------------------------
    # Chien search window
    # ------------------------------------------------------------------

    def chien_window(self, window: str) -> tuple[int, int]:
        """The inclusive exponent range [start, stop] probed by a decoder.

        * ``"natural"`` — every exponent 1..n_full, what a generic BCH
          software decoder probes on the zero-padded full-length word
          (the submission and Walters implementations of Table I);
        * ``"transmitted"`` — only exponents that can flag a position of
          the shortened codeword;
        * ``"message"`` — only the systematic message positions, the
          paper's optimized window (Sec. IV-B).
        """
        if window == "natural":
            return 1, self.n_full
        if window == "transmitted":
            return self.chien_start, self.chien_stop
        if window == "message":
            return self.chien_message_start, self.chien_message_stop
        raise ValueError(f"unknown Chien window {window!r}")

    @property
    def chien_start(self) -> int:
        """First exponent l such that alpha^l can locate a codeword error.

        A root Lambda(alpha^l) = 0 flags an error at position
        ``n_full - l``.  The highest occupied position of the shortened
        codeword is ``n - 1``, hence l starts at ``n_full - (n - 1)``.
        """
        return self.n_full - (self.n - 1)

    @property
    def chien_stop(self) -> int:
        """Last exponent probed (inclusive): position 0, l = n_full."""
        return self.n_full

    @property
    def chien_message_start(self) -> int:
        """First exponent probing a *message* position (paper's window).

        The message occupies positions ``parity_bits .. n-1``; the paper
        exploits systematicity and only probes these.
        """
        return self.n_full - (self.n - 1)

    @property
    def chien_message_stop(self) -> int:
        """Last exponent (inclusive) probing a message position."""
        return self.n_full - self.parity_bits

    def position_of_root(self, l: int) -> int:
        """Codeword bit position flagged by a root at alpha^l."""
        return (self.n_full - l) % self.n_full

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable summary, e.g. ``'BCH(511,367,16) shortened to (400,256)'``."""
        base = f"BCH({self.n_full},{self.k_full},{self.t})"
        if self.shortening:
            return f"{base} shortened to ({self.n},{self.k})"
        return base

    def __repr__(self) -> str:
        return f"BCHCode({self.describe()})"


@lru_cache(maxsize=None)
def _generator_polynomial(field: GF2m, t: int) -> Poly2:
    """g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}.

    Because conjugate elements share a minimal polynomial, we collect
    the distinct minimal polynomials and multiply them once each.
    """
    if 2 * t >= field.group_order:
        raise ValueError(f"t={t} too large for GF(2^{field.m})")
    minimal_polys: set[int] = set()
    for i in range(1, 2 * t + 1):
        minimal_polys.add(field.minimal_polynomial(field.alpha_pow(i)))
    generator = Poly2.one()
    for mask in sorted(minimal_polys):
        generator = generator * Poly2(mask)
    return generator


#: The BCH(511, 367, 16) code of LAC-128 / LAC-256, 256-bit payload.
LAC_BCH_128_256 = BCHCode(GF512, t=16, payload_bits=256)

#: The BCH(511, 439, 8) code of LAC-192, 256-bit payload.
LAC_BCH_192 = BCHCode(GF512, t=8, payload_bits=256)
