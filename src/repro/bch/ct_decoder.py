"""Walters/Roy-style constant-time BCH decoder.

The decoder executes an input-independent schedule (the property the
paper's Table I verifies and that [15] proved by leakage testing):

* syndromes are accumulated over *every* transmitted position,
  masking the contribution instead of branching on the bit value;
* the error locator is computed with the inversion-free
  Berlekamp--Massey algorithm over a fixed number of iterations with
  fixed-size coefficient arrays and branch-free (mask-select) updates;
* the Chien search walks the whole message window with the fixed
  t+1-slot schedule and flips bits through masks.

Field multiplications use the shift-and-add schedule
(:meth:`repro.gf.field.GF2m.mul_shift_add`, the same data path as the
MUL GF hardware module) and are charged as ``gf_mul_ct``, which the
cost model prices at the software cost of a branch-free GF(2^9)
multiply — the very overhead that makes the protected decoder ~3x
slower in Table I and motivates the MUL CHIEN accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.bch.code import BCHCode
from repro.bch.decoder import DecodeResult, _degree
from repro.bitutils import require_bits
from repro.metrics import NullCounter, OpCounter, ensure_counter


def _mask_select(mask: int, if_true: int, if_false: int) -> int:
    """Branch-free select: mask is 0 or all-ones (here modelled as 0/1)."""
    return if_true if mask else if_false


class ConstantTimeBCHDecoder:
    """Constant-time BCH decoder (Walters & Roy, IACR ePrint 2019/155 style).

    Two execution engines share the same mathematics:

    * the *annotated* scalar schedule (always used when a real
      :class:`~repro.metrics.OpCounter` is attached) — the cycle/golden
      model whose operation counts reproduce Table I;
    * a *vectorized* numpy fast path for purely functional runs, which
      evaluates the syndrome accumulation and the Chien search over all
      probe positions at once through the GF(2^9) table arrays
      (:meth:`repro.gf.field.GF2m.mul_vec` and friends).  It is
      bit-identical to the scalar schedule (asserted by the test suite)
      and roughly an order of magnitude faster in wall-clock terms.

    ``vectorized=False`` pins the scalar engine even on uncounted runs
    (used by the benchmark harness to measure the speedup honestly).
    """

    def __init__(self, code: BCHCode, vectorized: bool = True):
        self.code = code
        self.field = code.field
        self.vectorized = vectorized

    def _use_vectorized(self, counter: OpCounter) -> bool:
        return self.vectorized and isinstance(counter, NullCounter)

    def _ct_mul(self, counter: OpCounter):
        """The constant-time multiply for this run.

        When operations are being counted, the genuine shift-and-add
        schedule runs (and is charged as ``gf_mul_ct``).  On the
        purely functional path the bit-identical table multiply is
        substituted — same outputs (a tested invariant of
        :class:`~repro.gf.field.GF2m`), ~10x less interpreter work.
        """
        if isinstance(counter, NullCounter):
            return self.field.mul
        return self.field.mul_shift_add

    # ------------------------------------------------------------------

    def decode(
        self,
        received: np.ndarray,
        counter: OpCounter | None = None,
        window: str = "natural",
    ) -> DecodeResult:
        """Correct up to t errors with an input-independent schedule.

        ``window`` selects the Chien probe range; the software decoder
        of [15] probes the ``"natural"`` full-length window (constant,
        conservative), the paper's optimized variant only the
        ``"message"`` positions.
        """
        code = self.code
        counter = ensure_counter(counter)
        received = require_bits(received, code.n, "received")
        working = received.copy()

        syndromes = self._syndromes(working, counter)
        locator = self._inversion_free_bm(syndromes, counter)
        flips, roots_found = self._chien_flip(working, locator, counter, window)

        message = working[code.parity_bits :].copy()
        locator_degree = _degree(locator)
        if window == "message":
            success = locator_degree <= code.t and flips <= locator_degree
        else:
            success = roots_found == locator_degree and flips == roots_found
        return DecodeResult(
            codeword=working,
            message=message,
            errors_found=flips,
            success=success,
            counter=counter,
        )

    # ------------------------------------------------------------------
    # phase 1: dense, masked syndrome accumulation
    # ------------------------------------------------------------------

    def _syndromes(self, received: np.ndarray, counter: OpCounter) -> list[int]:
        if self._use_vectorized(counter):
            return self._syndromes_vec(received)
        return self._syndromes_scalar(received, counter)

    def _syndromes_vec(self, received: np.ndarray) -> list[int]:
        """All 2t syndromes in one table gather (fast path, no counting).

        Computes exactly the masked dense accumulation of the scalar
        schedule: term ``alpha^(i*j)`` is multiplied by the received bit
        (0 or 1) and XOR-folded over every transmitted position.
        """
        code, field = self.code, self.field
        positions = np.arange(code.n, dtype=np.int64)
        orders = np.arange(1, 2 * code.t + 1, dtype=np.int64)
        terms = field.alpha_pow_vec(positions[:, None] * orders[None, :])
        masked = terms * received.astype(np.int64)[:, None]
        return [int(s) for s in np.bitwise_xor.reduce(masked, axis=0)]

    def _syndromes_scalar(self, received: np.ndarray, counter: OpCounter) -> list[int]:
        code, field = self.code, self.field
        two_t = 2 * code.t
        syndromes = [0] * two_t
        with counter.phase("syndrome"):
            counter.count("call")
            for i in range(code.n):
                counter.count("loop")
                counter.count("load")
                bit_mask = int(received[i])  # 0 or 1; no branch taken on it
                counter.count("alu")  # mask expansion
                for j in range(1, two_t + 1):
                    term = field.alpha_pow(i * j)
                    counter.count("loop")
                    counter.count("load")   # antilog table
                    counter.count("alu", 2)  # exponent arithmetic + masking
                    counter.count("gf_add")
                    syndromes[j - 1] ^= term * bit_mask
        return syndromes

    # ------------------------------------------------------------------
    # phase 2: inversion-free Berlekamp--Massey, fixed schedule
    # ------------------------------------------------------------------

    def _inversion_free_bm(self, syndromes: list[int], counter: OpCounter) -> list[int]:
        code, field = self.code, self.field
        t = code.t
        two_t = 2 * t
        size = t + 1

        locator = [0] * size
        locator[0] = 1
        shadow = [0] * size
        shadow[0] = 1
        delta = 1
        length = 0
        ct_mul = self._ct_mul(counter)

        with counter.phase("error_locator"):
            counter.count("call")
            for r in range(two_t):
                counter.count("loop")
                # discrepancy over a fixed t+1-term window
                discrepancy = 0
                for i in range(size):
                    s = syndromes[r - i] if 0 <= r - i < two_t else 0
                    discrepancy ^= ct_mul(locator[i], s)
                    counter.count("gf_mul_ct")
                    counter.count("gf_add")
                    counter.count("load", 2)

                # locator' = delta * locator - discrepancy * x * shadow
                updated = [0] * size
                for i in range(size):
                    left = ct_mul(delta, locator[i])
                    right = ct_mul(
                        discrepancy, shadow[i - 1] if i > 0 else 0
                    )
                    updated[i] = left ^ right
                    counter.count("gf_mul_ct", 2)
                    counter.count("gf_add")
                    counter.count("store")

                # branch-free control: decide whether this round resets
                # the shadow register (d != 0 and 2L <= r)
                take = 1 if (discrepancy != 0 and 2 * length <= r) else 0
                counter.count("alu", 4)  # flag computation, no branch
                new_shadow = [0] * size
                for i in range(size):
                    via_reset = locator[i]
                    via_shift = shadow[i - 1] if i > 0 else 0
                    new_shadow[i] = _mask_select(take, via_reset, via_shift)
                    counter.count("alu", 2)  # two masked selects
                    counter.count("store")
                delta = _mask_select(take, discrepancy, delta)
                length = _mask_select(take, r + 1 - length, length)
                counter.count("alu", 2)

                locator = updated
                shadow = new_shadow
        return locator

    # ------------------------------------------------------------------
    # phase 3: Chien search + masked correction over the message window
    # ------------------------------------------------------------------

    def _chien_flip(
        self,
        working: np.ndarray,
        locator: list[int],
        counter: OpCounter,
        window: str,
    ) -> tuple[int, int]:
        if self._use_vectorized(counter):
            return self._chien_flip_vec(working, locator, window)
        return self._chien_flip_scalar(working, locator, counter, window)

    def _chien_flip_vec(
        self,
        working: np.ndarray,
        locator: list[int],
        window: str,
    ) -> tuple[int, int]:
        """Chien search over the whole probe window at once (fast path).

        The scalar schedule steps ``terms[j] = lambda_j * alpha^(l*j)``
        one probe at a time; evaluating the closed form directly over
        the full exponent range gives the identical root set in two
        table gathers and one XOR reduction.
        """
        code, field = self.code, self.field
        t = code.t
        start, stop = code.chien_window(window)
        probes = np.arange(start, stop + 1, dtype=np.int64)
        orders = np.arange(1, t + 1, dtype=np.int64)
        lambdas = np.array(locator[1 : t + 1], dtype=np.int64)
        terms = field.mul_vec(
            lambdas[None, :],
            field.alpha_pow_vec(probes[:, None] * orders[None, :]),
        )
        values = locator[0] ^ np.bitwise_xor.reduce(terms, axis=1)
        is_root = values == 0
        roots_found = int(np.count_nonzero(is_root))
        positions = (code.n_full - probes) % code.n_full
        flip = is_root & (positions < code.n)
        flips = int(np.count_nonzero(flip))
        working[positions[flip]] ^= 1
        return flips, roots_found

    def _chien_flip_scalar(
        self,
        working: np.ndarray,
        locator: list[int],
        counter: OpCounter,
        window: str,
    ) -> tuple[int, int]:
        code, field = self.code, self.field
        t = code.t
        start, stop = code.chien_window(window)

        ct_mul = self._ct_mul(counter)
        terms = [
            ct_mul(locator[j], field.alpha_pow(start * j))
            for j in range(1, t + 1)
        ]
        steps = [field.alpha_pow(j) for j in range(1, t + 1)]
        flips = 0
        roots_found = 0

        with counter.phase("chien"):
            counter.count("call")
            counter.count("gf_mul_ct", t)
            for l in range(start, stop + 1):
                counter.count("loop")
                value = locator[0]
                for j in range(t):
                    value ^= terms[j]
                    counter.count("gf_add")
                    counter.count("load")
                # branch-free root test: is_root = (value == 0) as a mask
                is_root = 1 if value == 0 else 0
                roots_found += is_root
                counter.count("alu", 3)  # normalize-to-mask sequence

                position = code.position_of_root(l)
                if position < code.n:
                    working[position] ^= is_root
                    flips += is_root
                counter.count("load")
                counter.count("store")
                counter.count("alu")

                for j in range(t):
                    terms[j] = ct_mul(terms[j], steps[j])
                    counter.count("gf_mul_ct")
                    counter.count("store")
        return flips, roots_found
