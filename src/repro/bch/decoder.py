"""Round-2-submission style BCH decoder (input-dependent execution time).

This decoder mirrors the structure (and, deliberately, the timing
behaviour) of the BCH decoder shipped with the NIST round-2 LAC
submission, which Table I of the paper shows is *not* constant time
despite its compile-flag claim:

* syndromes are accumulated only over the *set* bits of the received
  word (weight-dependent work);
* Berlekamp--Massey exits almost immediately when all syndromes are
  zero and otherwise executes a number of field operations that grows
  with the current locator degree (error-count-dependent work);
* the Chien search runs over the full message window with a fixed
  t+1-slot coefficient array, but the table-based field multiplier
  shortcuts zero operands, leaving a small residual timing signal.

All executed operations are recorded in an :class:`~repro.metrics.OpCounter`
under the phases ``syndrome``, ``error_locator``, ``chien`` and
``fixup``, so downstream cycle models observe genuinely data-dependent
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.bch.code import BCHCode
from repro.bitutils import require_bits
from repro.metrics import OpCounter, ensure_counter


@dataclass
class DecodeResult:
    """Outcome of a BCH decode.

    Attributes
    ----------
    codeword:
        The corrected codeword (length ``code.n``); for failed decodes
        this is the best-effort corrected word.
    message:
        The systematic message bits extracted from ``codeword``.
    errors_found:
        Number of bit positions flipped by the corrector.
    success:
        True when the error-locator degree matches the number of roots
        found in the Chien window (the standard decode-success test).
        A ``False`` here means more than t errors (or a miscorrection).
    counter:
        Operation counts per phase, populated when a counter was passed.
    """

    codeword: np.ndarray
    message: np.ndarray
    errors_found: int
    success: bool
    counter: OpCounter = dataclass_field(default_factory=OpCounter)


class BCHDecoder:
    """Submission-style (non-constant-time) BCH decoder."""

    def __init__(self, code: BCHCode):
        self.code = code
        self.field = code.field

    # ------------------------------------------------------------------

    def decode(
        self,
        received: np.ndarray,
        counter: OpCounter | None = None,
        window: str = "natural",
    ) -> DecodeResult:
        """Correct up to t errors in ``received`` (length ``code.n`` bits).

        ``window`` selects the Chien probe range (see
        :meth:`BCHCode.chien_window`): generic software decoders probe
        the ``"natural"`` full-length window, the paper's optimized
        implementation only the ``"message"`` positions.
        """
        code = self.code
        counter = ensure_counter(counter)
        received = require_bits(received, code.n, "received")
        working = received.copy()

        syndromes = self._syndromes(working, counter)
        locator = self._berlekamp_massey(syndromes, counter)
        error_positions, roots_found = self._chien_search(locator, counter, window)

        with counter.phase("fixup"):
            for position in error_positions:
                working[position] ^= 1
                counter.count("load")
                counter.count("store")
                counter.count("alu")
            counter.count("call")

        locator_degree = _degree(locator)
        if window == "message":
            # message-window decode cannot see parity-position roots, so
            # the root count is only bounded by the locator degree; a
            # degree above t always indicates an uncorrectable word
            success = locator_degree <= code.t and len(error_positions) <= locator_degree
        else:
            # classic success test: the locator splits completely over
            # the probed range and every root flags a real position
            success = (
                roots_found == locator_degree
                and len(error_positions) == roots_found
            )
        message = working[code.parity_bits :].copy()
        return DecodeResult(
            codeword=working,
            message=message,
            errors_found=len(error_positions),
            success=success,
            counter=counter,
        )

    # ------------------------------------------------------------------
    # phase 1: syndromes (sparse accumulation over set bits)
    # ------------------------------------------------------------------

    def _syndromes(self, received: np.ndarray, counter: OpCounter) -> list[int]:
        code, field = self.code, self.field
        two_t = 2 * code.t
        syndromes = [0] * two_t
        with counter.phase("syndrome"):
            counter.count("call")
            counter.count("loop", code.n)
            counter.count("load", code.n)
            counter.count("branch", code.n)
            for i in range(code.n):
                if not received[i]:
                    continue
                # accumulate alpha^{i*j} for j = 1..2t via repeated
                # log-table stepping, as the sparse C implementation does
                counter.count("loop", two_t)
                counter.count("gf_add", two_t)
                counter.count("alu", two_t)  # exponent arithmetic
                counter.count("load", two_t)  # antilog table loads
                for j in range(1, two_t + 1):
                    syndromes[j - 1] ^= field.alpha_pow(i * j)
        return syndromes

    # ------------------------------------------------------------------
    # phase 2: Berlekamp--Massey with early exit and degree-dependent work
    # ------------------------------------------------------------------

    def _berlekamp_massey(self, syndromes: list[int], counter: OpCounter) -> list[int]:
        code, field = self.code, self.field
        two_t = 2 * code.t
        with counter.phase("error_locator"):
            counter.count("call")
            # the all-zero-syndrome early exit of the submission decoder
            counter.count("load", two_t)
            counter.count("branch", two_t)
            counter.count("loop", two_t)
            if all(s == 0 for s in syndromes):
                return [1]

            locator = [1]
            previous = [1]
            length = 0
            shift = 1
            previous_discrepancy = 1
            for iteration in range(two_t):
                counter.count("loop")
                discrepancy = syndromes[iteration]
                counter.count("load")
                for i in range(1, length + 1):
                    counter.count("loop")
                    counter.count("load", 2)
                    if i < len(locator) and locator[i] and syndromes[iteration - i]:
                        discrepancy ^= field.mul(
                            locator[i], syndromes[iteration - i]
                        )
                        counter.count("gf_mul_table")
                        counter.count("gf_add")
                    else:
                        counter.count("gf_mul_skip")
                counter.count("branch")
                if discrepancy == 0:
                    shift += 1
                    counter.count("alu")
                    continue
                scale = field.div(discrepancy, previous_discrepancy)
                counter.count("gf_mul_table")  # div = log-sub + antilog
                correction = [0] * shift + [field.mul(scale, c) for c in previous]
                counter.count("gf_mul_table", len(previous))
                counter.count("alu", len(previous) + shift)
                updated = _poly_add(locator, correction)
                counter.count("gf_add", len(updated))
                counter.count("load", len(updated))
                counter.count("store", len(updated))
                counter.count("branch")
                if 2 * length <= iteration:
                    previous = locator
                    previous_discrepancy = discrepancy
                    length = iteration + 1 - length
                    shift = 1
                    counter.count("store", len(previous))
                    counter.count("alu", 3)
                else:
                    shift += 1
                    counter.count("alu")
                locator = updated
            return locator

    # ------------------------------------------------------------------
    # phase 3: Chien search over the message window, fixed t+1 slots
    # ------------------------------------------------------------------

    def _chien_search(
        self,
        locator: list[int],
        counter: OpCounter,
        window: str,
    ) -> tuple[list[int], int]:
        code, field = self.code, self.field
        t = code.t
        start, stop = code.chien_window(window)

        # fixed-size coefficient slots, as in the submission implementation
        slots = [locator[i] if i < len(locator) else 0 for i in range(t + 1)]
        # terms[j] tracks lambda_j * alpha^{l*j}; initialized for l = start
        terms = [field.mul(slots[j], field.alpha_pow(start * j)) for j in range(1, t + 1)]
        steps = [field.alpha_pow(j) for j in range(1, t + 1)]

        error_positions: list[int] = []
        roots_found = 0
        # The submission's Chien inner loop multiplies through log/antilog
        # tables extended with a zero sentinel (log[0] mapped past the
        # group order), so zero coefficients cost the same as nonzero
        # ones: the phase is near-constant regardless of the error count
        # (Table I: 107,431 vs. 107,690), unlike Berlekamp--Massey.
        with counter.phase("chien"):
            counter.count("call")
            counter.count("gf_mul_table", t)
            for l in range(start, stop + 1):
                counter.count("loop")
                value = slots[0]
                for j in range(t):
                    counter.count("load")
                    value ^= terms[j]
                    counter.count("gf_add")
                counter.count("branch")
                if value == 0:
                    roots_found += 1
                    position = code.position_of_root(l)
                    if position < code.n:
                        error_positions.append(position)
                    counter.count("alu", 2)
                    counter.count("store")
                # advance every term to the next power of alpha
                # (sentinel-based table multiply: constant cost, zero or not)
                for j in range(t):
                    counter.count("load")
                    if terms[j]:
                        terms[j] = field.mul(terms[j], steps[j])
                    counter.count("gf_mul_table")
                    counter.count("store")
        return error_positions, roots_found


def _poly_add(a: list[int], b: list[int]) -> list[int]:
    """Coefficient-wise XOR of two coefficient lists."""
    n = max(len(a), len(b))
    out = [0] * n
    for i, c in enumerate(a):
        out[i] ^= c
    for i, c in enumerate(b):
        out[i] ^= c
    while out and out[-1] == 0:
        out.pop()
    return out or [0]


def _degree(coeffs: list[int]) -> int:
    """Degree of a coefficient list (ignoring stored trailing zeros)."""
    for i in range(len(coeffs) - 1, -1, -1):
        if coeffs[i]:
            return i
    return 0
