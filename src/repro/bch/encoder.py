"""Systematic BCH encoding.

The shortened systematic codeword is laid out as::

    position:   0 .. parity-1    parity .. n-1
    content:    parity bits      message bits (bit j at parity + j)

i.e. c(x) = m(x) * x^{n-k} + (m(x) * x^{n-k} mod g(x)), with the
suppressed (shortened) message positions implicitly zero.  This layout
matches the paper's Chien windows (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.bch.code import BCHCode
from repro.bitutils import bits_to_mask, mask_to_bits, require_bits
from repro.gf.poly2 import Poly2
from repro.metrics import OpCounter, ensure_counter


class BCHEncoder:
    """Encoder for a (shortened) systematic BCH code."""

    def __init__(self, code: BCHCode):
        self.code = code

    def encode(self, message: np.ndarray, counter: OpCounter | None = None) -> np.ndarray:
        """Encode ``message`` (``code.k`` bits) into a codeword (``code.n`` bits).

        The optional ``counter`` records the LFSR-division work performed,
        modelling the shift-register encoder a software implementation
        would run (one iteration per message bit).
        """
        code = self.code
        counter = ensure_counter(counter)
        message = require_bits(message, code.k, "message")

        message_poly = Poly2(bits_to_mask(message)) << code.parity_bits
        remainder = message_poly % code.generator

        with counter.phase("encode"):
            # An LFSR encoder clocks once per message bit; each clock is
            # a masked (branchless) XOR of the generator taps plus a
            # shift — constant work per bit, as the constant-time
            # implementation of [15] requires (during CCA decapsulation
            # the encoder input is secret-derived).
            counter.count("loop", code.k)
            counter.count("alu", code.k * 2)
            counter.count("gf_add", code.k)

        codeword = np.zeros(code.n, dtype=np.uint8)
        codeword[: code.parity_bits] = mask_to_bits(remainder.mask, code.parity_bits)
        codeword[code.parity_bits :] = message
        return codeword

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Read the systematic message bits back out of a codeword."""
        codeword = require_bits(codeword, self.code.n, "codeword")
        return codeword[self.code.parity_bits :].copy()

    def is_codeword(self, word: np.ndarray) -> bool:
        """Check membership: the word polynomial must be divisible by g(x)."""
        word = require_bits(word, self.code.n, "word")
        return (Poly2(bits_to_mask(word)) % self.code.generator).mask == 0
