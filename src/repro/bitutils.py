"""Bit-level packing helpers shared across the code base.

Conventions:

* A *bit array* is a 1-D :class:`numpy.ndarray` of dtype ``uint8``
  containing only 0s and 1s, index 0 being the least significant /
  lowest polynomial degree.
* A *bitmask* is a Python int with bit i equal to bit-array index i.
* Byte conversion is little-endian-bit-first (bit 0 of byte 0 is bit
  array index 0), matching how LAC packs message bytes into codeword
  polynomials.
"""

from __future__ import annotations

import numpy as np


def bits_to_mask(bits: np.ndarray) -> int:
    """Pack a bit array into an integer bitmask."""
    mask = 0
    for i, b in enumerate(bits):
        if b:
            mask |= 1 << i
    return mask


def mask_to_bits(mask: int, length: int) -> np.ndarray:
    """Unpack an integer bitmask into a bit array of the given length."""
    if mask < 0:
        raise ValueError("mask must be non-negative")
    if mask.bit_length() > length:
        raise ValueError(
            f"mask needs {mask.bit_length()} bits, only {length} requested"
        )
    return np.array([(mask >> i) & 1 for i in range(length)], dtype=np.uint8)

def bytes_to_bits(data: bytes, length: int | None = None) -> np.ndarray:
    """Unpack bytes into a bit array (bit 0 of byte 0 first)."""
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8), bitorder="little")
    if length is not None:
        if length > bits.size:
            raise ValueError(f"{len(data)} bytes hold {bits.size} < {length} bits")
        bits = bits[:length]
    return bits.astype(np.uint8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit array into bytes (padding the final byte with zeros)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8), bitorder="little").tobytes()


def require_bits(bits: np.ndarray, length: int, name: str = "bits") -> np.ndarray:
    """Validate that ``bits`` is a 0/1 array of exactly ``length`` entries."""
    array = np.asarray(bits, dtype=np.uint8)
    if array.ndim != 1 or array.size != length:
        raise ValueError(f"{name} must be a flat array of {length} bits")
    if np.any(array > 1):
        raise ValueError(f"{name} must contain only 0s and 1s")
    return array
