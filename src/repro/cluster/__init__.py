"""``repro.cluster`` — a routing tier sharding keys across KemServices.

The horizontal-scaling counterpart of :mod:`repro.serve`: a
:class:`ClusterRouter` fronts N member :class:`repro.serve.KemService`
processes behind the *same* length-prefixed frame protocol, placing
hosted keys on a consistent-hash ring (:class:`HashRing`), replicating
them via deterministic seeded keygen, failing ENCAPS over to replicas
under :class:`repro.serve.RetryPolicy` semantics (DECAPS is never
silently retried), health-checking members with INFO probes, and
rebalancing placements through the ordinary ``add_keypair`` /
``remove_keypair`` key lifecycle whenever membership changes.

Entry points:

* :class:`ClusterRouter` — the asyncio router (``await start()``,
  ``serve_tcp`` / ``connect``, ``await shutdown()``);
* :class:`ThreadedCluster` — the router on a background loop thread,
  for synchronous callers;
* :class:`ClusterClient` / :func:`open_cluster_client` — clients bound
  to a cluster endpoint (any plain :class:`repro.serve.KemClient`
  works too: the wire surface is identical);
* :class:`ClusterConfig` — the frozen topology/failover configuration;
* :class:`HashRing` — the consistent-hash placement function.

See ``docs/CLUSTER.md`` for topology, routing and failure semantics.
"""

from repro.cluster.client import ClusterClient, open_cluster_client
from repro.cluster.config import (
    DEFAULT_FORWARD_RETRY,
    ClusterConfig,
    replace_cluster_config,
)
from repro.cluster.member import LocalMember, MemberHandle, ProcessMember
from repro.cluster.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.cluster.router import ClusterRouter, ThreadedCluster

__all__ = [
    "ClusterClient",
    "ClusterConfig",
    "ClusterRouter",
    "DEFAULT_FORWARD_RETRY",
    "DEFAULT_VIRTUAL_NODES",
    "HashRing",
    "LocalMember",
    "MemberHandle",
    "ProcessMember",
    "ThreadedCluster",
    "open_cluster_client",
    "replace_cluster_config",
]
