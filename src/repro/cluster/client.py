"""Client-side conveniences for talking to a cluster router.

The router speaks the ordinary frame protocol, so the plain
:class:`repro.serve.KemClient` / :class:`~repro.serve.AsyncKemClient`
already work against it — these helpers just wire up the connection
(and the reconnect factory the retry machinery wants) so callers do
not have to.
"""

from __future__ import annotations

from repro.cluster.router import ClusterRouter, ThreadedCluster
from repro.serve.client import AsyncKemClient, KemClient, RetryPolicy
from repro.trace import Tracer

__all__ = ["ClusterClient", "open_cluster_client"]


class ClusterClient(KemClient):
    """A blocking client bound to a :class:`ThreadedCluster`.

    Identical surface to :class:`repro.serve.KemClient` (``keygen`` /
    ``encaps`` / ``decaps`` / ``info`` / ``remove_key``) — the cluster
    is addressed through one endpoint, the router does the sharding.
    :meth:`connect` wires the cluster's ``connect`` as the reconnect
    factory so a retry policy can survive dropped connections.
    """

    @classmethod
    def connect(
        cls,
        cluster: ThreadedCluster,
        retry: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> ClusterClient:
        """Open an in-process connection to a started cluster."""
        return cls(
            cluster.connect(), retry=retry, reconnect=cluster.connect,
            tracer=tracer,
        )


async def open_cluster_client(
    router: ClusterRouter,
    retry: RetryPolicy | None = None,
    tracer: Tracer | None = None,
) -> AsyncKemClient:
    """An async client over an in-process router connection.

    The router's ``connect`` doubles as the reconnect factory, so with
    a retry policy the client survives connection-level chaos.
    """
    reader, writer = await router.connect()
    return AsyncKemClient(
        reader, writer, retry=retry, reconnect=router.connect, tracer=tracer
    )
