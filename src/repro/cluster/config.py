"""Frozen configuration for the cluster routing tier.

:class:`ClusterConfig` mirrors :class:`repro.serve.ServiceConfig`:
one immutable, validated value describing the whole topology — how
many members, how they are launched, how keys are placed and
replicated, and how failures are detected and retried.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.ring import DEFAULT_VIRTUAL_NODES
from repro.serve.client import RetryPolicy
from repro.serve.config import ServiceConfig
from repro.serve.protocol import Status

__all__ = ["ClusterConfig", "DEFAULT_FORWARD_RETRY", "replace_cluster_config"]

#: Launch modes for member services.
LAUNCH_MODES = ("process", "local")

#: Default failover policy for forwarded requests: one replica retry
#: with no backoff-visible statuses — member *statuses* pass through
#: to the caller end-to-end; only transport-level forward failures
#: (dead member, injected drop/corrupt, forward deadline) are retried,
#: and per :class:`RetryPolicy` semantics DECAPS never silently is.
DEFAULT_FORWARD_RETRY = RetryPolicy(
    max_attempts=2,
    base_delay_s=0.0,
    max_delay_s=0.0,
    jitter=0.0,
    attempt_timeout_s=10.0,
    retry_statuses=frozenset[Status](),
    retry_decaps=False,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs of a :class:`repro.cluster.ClusterRouter`.

    ``members``
        number of member :class:`repro.serve.KemService` instances the
        router launches and fronts;
    ``launch``
        ``"process"`` — each member is its own OS process (SIGKILL-able,
        true parallelism), the production shape — or ``"local"`` — each
        member is a :class:`repro.serve.ThreadedService` in the router's
        process (fast bring-up; what the functional tests use);
    ``member_config``
        the :class:`ServiceConfig` every member service runs with;
    ``virtual_nodes``
        consistent-hash points per member (see
        :mod:`repro.cluster.ring`);
    ``replication``
        how many members host each key (primary + replicas along the
        ring).  With deterministic seeded keygen every placement holds
        a bit-identical pair, so ENCAPS can fail over to a replica;
    ``forward_retry``
        the :class:`repro.serve.RetryPolicy` governing failover of
        forwarded requests across placements — ``attempt_timeout_s``
        bounds each forward, ``max_attempts`` bounds the placement
        walk, and ``retry_decaps=False`` keeps DECAPS single-shot;
    ``health_interval_s`` / ``probe_timeout_s`` / ``health_failures``
        the INFO health-probe loop: probe cadence, per-probe deadline,
        and the consecutive-failure count that ejects a member from
        the ring;
    ``restart_members``
        respawn dead ``process``/``local`` members (they readmit and
        rebalance once probes succeed again);
    ``high_watermark``
        router-level admission bound on in-flight forwarded requests
        (the members keep their own bound too).
    """

    members: int = 2
    launch: str = "process"
    member_config: ServiceConfig = field(default_factory=ServiceConfig)
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    replication: int = 2
    forward_retry: RetryPolicy = DEFAULT_FORWARD_RETRY
    health_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    health_failures: int = 2
    restart_members: bool = True
    high_watermark: int = 4096

    def __post_init__(self) -> None:
        if self.members < 1:
            raise ValueError("members must be >= 1")
        if self.launch not in LAUNCH_MODES:
            raise ValueError(f"launch must be one of {LAUNCH_MODES}")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.health_interval_s <= 0:
            raise ValueError("health_interval_s must be > 0")
        if self.probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be > 0")
        if self.health_failures < 1:
            raise ValueError("health_failures must be >= 1")
        if self.high_watermark < 0:
            raise ValueError("high_watermark must be >= 0")


def replace_cluster_config(config: ClusterConfig, **changes: object) -> ClusterConfig:
    """``dataclasses.replace`` for :class:`ClusterConfig` (re-validated)."""
    return replace(config, **changes)  # type: ignore[arg-type]
