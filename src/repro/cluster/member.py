"""Member supervision: launching, killing and respawning KemServices.

The router sees members through one small surface —
:class:`MemberHandle` — with two implementations:

:class:`ProcessMember`
    the production shape: a ``multiprocessing`` (spawn-context) child
    process running a :class:`repro.serve.ThreadedService` behind a TCP
    listener on the loopback interface.  The child reports its port
    over a control pipe and then blocks on it for a ``stop`` command;
    :meth:`~ProcessMember.kill` is a true ``SIGKILL`` — the chaos
    suite's ``member.kill`` fault site ends here.

:class:`LocalMember`
    a :class:`~repro.serve.ThreadedService` inside the router's
    process, still behind a real TCP listener so the router's links
    are transport-uniform.  ``kill()`` maps to
    :meth:`repro.serve.ThreadedService.kill` (abort, no drain) — close
    enough to a crash for fast deterministic tests, and the only mode
    where members can share the router's tracer (trace-nesting tests).

Both respawn with the same name and a fresh empty key table: a
restarted member knows nothing, and the router's rebalance re-registers
whatever the ring says it should own.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from typing import TYPE_CHECKING, Protocol

from repro.serve.config import ServiceConfig
from repro.serve.server import ThreadedService

if TYPE_CHECKING:
    from multiprocessing.context import SpawnContext

    from repro.trace import Tracer

__all__ = ["LocalMember", "MemberHandle", "ProcessMember"]

#: Seconds the parent waits for a spawned child to report its port.
SPAWN_TIMEOUT_S = 60.0

#: Seconds a graceful member stop may take before escalating.
STOP_TIMEOUT_S = 10.0


class MemberHandle(Protocol):
    """What the router needs from a member, regardless of launch mode."""

    name: str

    @property
    def address(self) -> tuple[str, int]:
        """The member service's TCP endpoint."""
        ...

    @property
    def alive(self) -> bool:
        """Whether the member is (as far as the supervisor knows) up."""
        ...

    def kill(self) -> None:
        """Crash the member without drain (SIGKILL or abort)."""
        ...

    def stop(self) -> None:
        """Stop the member gracefully (drain, then exit)."""
        ...

    def respawn(self) -> None:
        """Bring a dead member back up, empty, at a fresh address."""
        ...


def _member_main(
    conn: multiprocessing.connection.Connection,
    config: ServiceConfig,
    host: str,
) -> None:
    """Child-process entry point: serve TCP until told to stop."""
    service = ThreadedService(config)
    service.start()
    port = service.serve_tcp(host, 0)
    conn.send(port)
    try:
        while True:
            message = conn.recv()
            if message == "stop":
                break
    except (EOFError, OSError):
        pass  # parent went away: drain and exit anyway
    service.stop()


class ProcessMember:
    """One member KemService in its own (spawned) OS process."""

    def __init__(
        self, name: str, config: ServiceConfig, host: str = "127.0.0.1"
    ) -> None:
        self.name = name
        self._config = config
        self._host = host
        self._ctx: SpawnContext = multiprocessing.get_context("spawn")
        self._process: multiprocessing.process.BaseProcess | None = None
        self._conn: multiprocessing.connection.Connection | None = None
        self._port = 0
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_member_main,
            args=(child_conn, self._config, self._host),
            name=f"repro-member-{self.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_S):
            process.kill()
            raise RuntimeError(f"member {self.name} did not come up")
        self._port = parent_conn.recv()
        self._process = process
        self._conn = parent_conn

    @property
    def address(self) -> tuple[str, int]:
        """The member's TCP endpoint (changes across respawns)."""
        return (self._host, self._port)

    @property
    def alive(self) -> bool:
        """Whether the member process is running."""
        return self._process is not None and self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the member process — no drain, no goodbye."""
        if self._process is not None:
            self._process.kill()
            self._process.join(STOP_TIMEOUT_S)

    def stop(self) -> None:
        """Ask the member to drain and exit; escalate if it will not."""
        process, conn = self._process, self._conn
        if process is None:
            return
        if conn is not None:
            try:
                conn.send("stop")
            except (BrokenPipeError, OSError):
                pass
        process.join(STOP_TIMEOUT_S)
        if process.is_alive():
            process.kill()
            process.join(STOP_TIMEOUT_S)
        if conn is not None:
            conn.close()
        self._process = None
        self._conn = None

    def respawn(self) -> None:
        """Replace a dead member with a fresh, empty process."""
        self.stop()  # reap the corpse (a no-op if already stopped)
        self._spawn()


class LocalMember:
    """One member KemService on a background thread in this process."""

    def __init__(
        self,
        name: str,
        config: ServiceConfig,
        host: str = "127.0.0.1",
        tracer: Tracer | None = None,
    ) -> None:
        self.name = name
        self._config = config
        self._host = host
        self._tracer = tracer
        self._service: ThreadedService | None = None
        self._port = 0
        self._alive = False
        self._spawn()

    def _spawn(self) -> None:
        service = ThreadedService(self._config, tracer=self._tracer)
        service.start()
        self._port = service.serve_tcp(self._host, 0)
        self._service = service
        self._alive = True

    @property
    def service(self) -> ThreadedService | None:
        """The in-process service (tests reach in for assertions)."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """The member's TCP endpoint (changes across respawns)."""
        return (self._host, self._port)

    @property
    def alive(self) -> bool:
        """Whether the member service is up."""
        return self._alive

    def kill(self) -> None:
        """Abort the service — connections reset, no drain."""
        if self._service is not None:
            self._service.kill()
        self._alive = False

    def stop(self) -> None:
        """Drain the service and join its loop thread."""
        if self._service is not None:
            self._service.stop()
            self._service = None
        self._alive = False

    def respawn(self) -> None:
        """Replace a dead member with a fresh, empty service."""
        self.stop()
        self._spawn()
