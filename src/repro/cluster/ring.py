"""Consistent hashing for key placement across cluster members.

A :class:`HashRing` maps 32-bit key ids onto named members so that

* placement is **deterministic** — a pure function of the member set,
  the virtual-node count and the key id (the hash is ``blake2b``, not
  Python's randomized ``hash()``, so every process computes the same
  ring);
* placement is **uniform within a documented bound** — each member
  projects ``virtual_nodes`` points onto the ring, and at the default
  of 128 points the share of a large keyspace each member owns stays
  within roughly a factor of two of fair share (relative standard
  deviation ``~ 1/sqrt(virtual_nodes) ~ 9%``; the property suite
  asserts the [0.4x, 2.0x] envelope over random member sets);
* membership changes are **minimal** — adding a member moves only the
  ~``K/N`` keys that land on its points (keys it does not claim keep
  their owner exactly), and removing a member only re-homes the keys
  it owned.  No full reshuffle, so the router re-registers ``~K/N``
  keys per membership event instead of all of them.

:meth:`HashRing.owners` returns the first ``count`` *distinct* members
clockwise from the key's point — the replication chain the router
registers each key on (primary first).
"""

from __future__ import annotations

import bisect
import hashlib
import struct

__all__ = ["DEFAULT_VIRTUAL_NODES", "HashRing"]

#: Virtual nodes per member: the balance/memory trade-off documented
#: above (128 points keeps per-member share within ~2x of fair).
DEFAULT_VIRTUAL_NODES = 128

_POINT = struct.Struct(">Q")


def _hash64(data: bytes) -> int:
    return _POINT.unpack(hashlib.blake2b(data, digest_size=8).digest())[0]


class HashRing:
    """A consistent-hash ring over named members with virtual nodes."""

    def __init__(
        self,
        members: tuple[str, ...] | list[str] = (),
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._members: set[str] = set()
        # sorted, parallel: _points[i] is the ring position of _names[i]
        self._points: list[int] = []
        self._names: list[str] = []
        for member in members:
            self.add(member)

    @property
    def members(self) -> list[str]:
        """The live member names, sorted."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def _member_points(self, member: str) -> list[int]:
        return [
            _hash64(f"member:{member}:vnode:{i}".encode())
            for i in range(self.virtual_nodes)
        ]

    def add(self, member: str) -> None:
        """Project a member's virtual nodes onto the ring (idempotent)."""
        if member in self._members:
            return
        self._members.add(member)
        for point in self._member_points(member):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._names.insert(index, member)

    def remove(self, member: str) -> None:
        """Withdraw a member's virtual nodes (idempotent)."""
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [i for i, name in enumerate(self._names) if name != member]
        self._points = [self._points[i] for i in keep]
        self._names = [self._names[i] for i in keep]

    def key_point(self, key_id: int) -> int:
        """The ring position of a key id (domain-separated from members)."""
        return _hash64(b"key:" + _POINT.pack(key_id & 0xFFFFFFFFFFFFFFFF))

    def owner(self, key_id: int) -> str:
        """The single owning member of a key (raises on an empty ring)."""
        return self.owners(key_id, 1)[0]

    def owners(self, key_id: int, count: int = 1) -> list[str]:
        """The first ``count`` distinct members clockwise from the key.

        The replication chain: element 0 is the primary, the rest are
        the replicas in ring order.  Returns fewer than ``count``
        entries when the ring holds fewer members; raises
        :class:`LookupError` when the ring is empty.
        """
        if not self._members:
            raise LookupError("hash ring is empty")
        count = min(count, len(self._members))
        start = bisect.bisect(self._points, self.key_point(key_id))
        chain: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._names)):
            name = self._names[(start + offset) % len(self._names)]
            if name not in seen:
                seen.add(name)
                chain.append(name)
                if len(chain) == count:
                    break
        return chain
