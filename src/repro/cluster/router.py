"""The cluster routing tier: one endpoint fronting N KemService members.

:class:`ClusterRouter` speaks the exact frame protocol of
:mod:`repro.serve.protocol` on its front side — any existing
:class:`~repro.serve.KemClient` / :class:`~repro.serve.AsyncKemClient`
works against it unchanged — and multiplexes the back side over one
pipelined :class:`~repro.serve.AsyncKemClient` link per member.

**Key placement.**  The router owns the *global* key-id namespace.  A
``KEYGEN`` draws (or takes from the client) a deterministic seed,
computes the key's placement chain on the consistent-hash ring
(:mod:`repro.cluster.ring`; ``replication`` members, primary first)
and registers the seeded keygen on every placement through each
member's ordinary ``KEYGEN``/``add_keypair`` lifecycle — deterministic
keygen means every placement holds a bit-identical pair.  The router
records the member-local ids and rewrites the leading key-id bytes
when forwarding; response payloads pass through untouched, so a routed
result is bit-identical to the single-service one.

**Failover** reuses :class:`repro.serve.RetryPolicy` semantics
(``config.forward_retry``): transport-level forward failures walk the
placement chain for idempotent ops, while DECAPS is never silently
retried — its failure surfaces as a typed error and the *caller*
decides (``retry_decaps=True`` client-side).  Member response statuses
pass through end-to-end; the router never converts an OK into anything
else.

**Health.**  A background loop probes every member with ``INFO`` every
``health_interval_s``; ``health_failures`` consecutive failures eject
the member from the ring (its placements are dropped and every key
rebalances onto the survivors via seeded re-registration +
``REMOVE_KEY``), dead members are respawned, and a recovered member is
readmitted — rebalancing back — once probes succeed again.

**Chaos.**  With a :class:`repro.faults.FaultPlan`, client-facing
connections get the usual transport faults, admission draws forced
``BUSY``/``TIMEOUT`` windows, and two router-specific sites fire per
forwarded request: ``router.forward`` (delay / drop / corrupt the
forward attempt) and ``member.kill`` (kill the target member
mid-load).  The invariant the chaos suite enforces: every accepted
request is answered — bit-identical to scalar or with a typed
:mod:`repro.errors` error — and fault counters match ``plan.fired``
exactly.

**Tracing.**  With an enabled tracer every routed request emits a
``router.request`` root (child of the client's wire context) plus one
``router.forward`` span per member attempt, and forwards carry the
forward span's context — so member-side ``server.request`` spans nest
``client.request → router.request → router.forward → server.request``.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import socket
import threading
import time
from collections import Counter
from collections.abc import Awaitable, Callable, Coroutine
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.cluster.config import ClusterConfig
from repro.cluster.member import LocalMember, MemberHandle, ProcessMember
from repro.cluster.ring import HashRing
from repro.errors import (
    DeadlineExceeded,
    KeyNotFound,
    ProtocolError,
    ServiceClosed,
    ServiceError,
)
from repro.faults.plan import (
    KIND_DELAY,
    KIND_DROP,
    KIND_TIMEOUT,
    SITE_ADMISSION,
    SITE_MEMBER_KILL,
    SITE_ROUTER_FORWARD,
    FaultPlan,
)
from repro.schemes import wire_id_for_params
from repro.serve.client import AsyncKemClient
from repro.serve.metrics import ServiceMetrics
from repro.serve.protocol import (
    PARAM_NONE,
    Frame,
    FrameReader,
    FrameWriter,
    Op,
    Status,
    pack_key_id,
    params_for_wire_id,
    read_frame,
    unpack_key_id,
    unpack_keygen_response,
    write_frame,
)
from repro.trace import NULL_TRACER, TraceContext, Tracer

__all__ = ["ClusterRouter", "ThreadedCluster"]

_Respond = Callable[[Frame], Awaitable[None]]

_T = TypeVar("_T")

#: Forward failures that mean the *member connection* (not the
#: request) is the problem — failover-eligible for idempotent ops.
_FORWARD_FAILURES = (ServiceClosed, DeadlineExceeded, ProtocolError, OSError)


@dataclass
class _RoutedKey:
    """One cluster-hosted key: global id, seed, and where it lives."""

    key_id: int
    params: Any  # any registered scheme's parameter set
    seed: bytes
    pk: bytes
    #: member name -> member-local key id
    placements: dict[str, int] = field(default_factory=dict)


@dataclass
class _MemberState:
    """The router's view of one member."""

    handle: MemberHandle
    link: AsyncKemClient | None = None
    link_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    probe_failures: int = 0
    in_ring: bool = True


class ClusterRouter:
    """An async router sharding hosted keys across member KemServices.

    Construct with a :class:`~repro.cluster.ClusterConfig`, ``await
    start()`` (spawns the members), attach transports (``serve_tcp`` /
    ``connect`` / ``connect_socket`` — same surface as
    :class:`repro.serve.KemService`), ``await shutdown()``.

    ``clock`` / ``fault_plan`` / ``tracer`` mirror the service
    constructor: an injectable monotonic clock, the chaos hook, and
    opt-in tracing.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.metrics = ServiceMetrics()
        #: Cluster-level event counters (ejections, failovers, …);
        #: exported under ``INFO``'s ``cluster.counters``.
        self.counters: Counter[str] = Counter()
        self.fault_plan = fault_plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        self._ring = HashRing(virtual_nodes=self.config.virtual_nodes)
        self._members: dict[str, _MemberState] = {}
        self._keys: dict[int, _RoutedKey] = {}
        self._next_key_id = 1
        self._pending = 0
        self._draining = False
        self._started = False
        self._started_at = 0.0
        self._rebalance_needed = False
        self._rebalance_lock = asyncio.Lock()
        self._health_task: asyncio.Task[None] | None = None
        self._health_wake: asyncio.Event | None = None
        self._inflight: set[asyncio.Task[None]] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._writers: set[FrameWriter] = set()
        self._tcp_servers: list[asyncio.base_events.Server] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _make_member(self, index: int) -> MemberHandle:
        name = f"member-{index}"
        if self.config.launch == "process":
            return ProcessMember(name, self.config.member_config)
        # local members can share the router's tracer, so member-side
        # server.request spans land in the same recorder (trace tests)
        tracer = self.tracer if self.tracer.enabled else None
        return LocalMember(name, self.config.member_config, tracer=tracer)

    async def start(self) -> ClusterRouter:
        """Spawn the members, build the ring, start health checking."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        handles = await asyncio.gather(
            *[
                loop.run_in_executor(None, self._make_member, index)
                for index in range(self.config.members)
            ]
        )
        for handle in handles:
            self._members[handle.name] = _MemberState(handle)
            self._ring.add(handle.name)
        if self.fault_plan is not None and self.fault_plan.observer is None:
            self.fault_plan.observer = self.metrics.record_fault
        self._health_wake = asyncio.Event()
        self._health_task = asyncio.create_task(self._health_loop())
        self._started = True
        self._started_at = self._clock()
        return self

    async def shutdown(self) -> None:
        """Drain in-flight forwards, stop the members, close transports."""
        if not self._started:
            return
        self._draining = True
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        for state in self._members.values():
            await self._drop_link(state)
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *[
                loop.run_in_executor(None, state.handle.stop)
                for state in self._members.values()
            ]
        )
        for server in self._tcp_servers:
            server.close()
            await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._started = False

    @property
    def pending(self) -> int:
        """Requests accepted but not yet answered."""
        return self._pending

    @property
    def members(self) -> dict[str, MemberHandle]:
        """The member handles by name (chaos tests kill through this)."""
        return {name: state.handle for name, state in self._members.items()}

    def hosted_keys(self) -> dict[int, dict[str, int]]:
        """Global key id -> its current placements (member -> local id)."""
        return {gid: dict(key.placements) for gid, key in self._keys.items()}

    # ------------------------------------------------------------------
    # transports (same surface as KemService)
    # ------------------------------------------------------------------

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.base_events.Server:
        """Listen on TCP; returns the ``asyncio.Server`` (``port 0`` = ephemeral)."""
        server = await asyncio.start_server(self._on_connection, host, port)
        self._tcp_servers.append(server)
        return server

    async def connect(
        self,
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open an in-process connection (socketpair); returns client streams."""
        client_sock = await self.connect_socket()
        return await asyncio.open_connection(sock=client_sock)

    async def connect_socket(self) -> socket.socket:
        """Open an in-process connection; returns the client's raw socket."""
        server_sock, client_sock = socket.socketpair()
        reader, writer = await asyncio.open_connection(sock=server_sock)
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        return client_sock

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await self._handle_connection(reader, writer)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: FrameReader, writer: FrameWriter
    ) -> None:
        if self.fault_plan is not None:
            from repro.faults.transport import wrap_connection

            reader, writer = wrap_connection(reader, writer, self.fault_plan)
        self._writers.add(writer)
        lock = asyncio.Lock()

        async def respond(frame: Frame) -> None:
            async with lock:
                try:
                    write_frame(writer, frame)
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    pass  # peer went away; nothing to tell it

        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self._admit_frame(frame, respond)
        except ProtocolError as exc:
            self.metrics.record_conn_error(f"protocol:{exc.reason}")
        except ConnectionError:
            self.metrics.record_conn_error("disconnect")
        except asyncio.CancelledError:
            pass
        except Exception:  # noqa: BLE001 - never kill the accept loop
            self.metrics.record_conn_error("internal")
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _error(self, request: Frame, status: Status, message: str) -> Frame:
        self.metrics.record_response(request.op.name, status.name)
        return Frame(
            request.op,
            request.request_id,
            request.param_id,
            status,
            message.encode(),
            trace=request.trace,
        )

    def _admit_frame(self, frame: Frame, respond: _Respond) -> None:
        """Admission control; accepted work runs as its own task.

        Per-request tasks keep one slow member from head-of-line
        blocking the other requests multiplexed on this connection —
        the router's analogue of the service's scheduler decoupling.
        Every accepted frame is answered exactly once: the task wraps
        the forward in a catch-all that degrades to a typed
        ``INTERNAL`` response, never silence.
        """
        op = frame.op
        self.metrics.record_request(op.name)
        t_read = self._clock() if self.tracer.enabled else 0.0
        if op in (Op.INFO, Op.REMOVE_KEY):
            # control plane: answered inline, served even while draining
            self._spawn(self._handle_control(frame, respond))
            return
        if self.fault_plan is not None:
            spec = self.fault_plan.draw(SITE_ADMISSION)
            if spec is not None:
                status = (
                    Status.TIMEOUT if spec.kind == KIND_TIMEOUT else Status.BUSY
                )
                self._spawn(
                    respond(self._error(frame, status, f"injected fault: {spec.kind}"))
                )
                return
        if self._draining:
            self._spawn(
                respond(self._error(frame, Status.SHUTTING_DOWN, "draining"))
            )
            return
        if self._pending >= self.config.high_watermark:
            self._spawn(
                respond(
                    self._error(
                        frame, Status.BUSY, f"{self._pending} requests pending"
                    )
                )
            )
            return
        self._pending += 1
        self.metrics.adjust_queue_depth(+1)
        self._spawn(self._routed_request(frame, respond, t_read))

    def _spawn(self, coro: Coroutine[Any, Any, None]) -> None:
        task = asyncio.create_task(coro)
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _handle_control(self, frame: Frame, respond: _Respond) -> None:
        if frame.op is Op.INFO:
            await respond(self._info_response(frame))
            self.metrics.record_response(Op.INFO.name, Status.OK.name)
            return
        try:
            key_id, _ = unpack_key_id(frame.payload)
        except ProtocolError as exc:
            await respond(self._error(frame, Status.BAD_REQUEST, str(exc)))
            return
        key = self._keys.pop(key_id, None)
        if key is None:
            await respond(
                self._error(frame, Status.NOT_FOUND, f"unknown key id {key_id}")
            )
            return
        for member in list(key.placements):
            await self._remove_key_from(member, key)
        self.metrics.record_response(Op.REMOVE_KEY.name, Status.OK.name)
        await respond(
            Frame(
                frame.op, frame.request_id, frame.param_id, Status.OK,
                trace=frame.trace,
            )
        )

    async def _routed_request(
        self, frame: Frame, respond: _Respond, t_read: float
    ) -> None:
        """One accepted data-plane request, answered exactly once."""
        enqueued_at = self._clock()
        status = Status.INTERNAL
        try:
            if frame.op is Op.KEYGEN:
                status = await self._keygen(frame, respond, t_read)
            else:
                status = await self._forward(frame, respond, t_read)
        except asyncio.CancelledError:
            await respond(self._error(frame, Status.INTERNAL, "router cancelled"))
            raise
        except Exception as exc:  # noqa: BLE001 - typed error, never silence
            await respond(self._error(frame, Status.INTERNAL, str(exc)))
        finally:
            self._pending -= 1
            self.metrics.adjust_queue_depth(-1)
            self.metrics.observe_latency(
                frame.op.name, (self._clock() - enqueued_at) * 1e6
            )
            if self.tracer.enabled:
                self._trace_root(frame, t_read, status)

    def _trace_root(self, frame: Frame, t_read: float, status: Status) -> None:
        trace_id, parent = self._trace_identity(frame)
        self.tracer.record_span(
            "router.request",
            t_read,
            self._clock() - t_read,
            trace_id,
            span_id=self._root_span_for(frame),
            parent_id=parent,
            tags={"op": frame.op.name, "status": status.name},
        )

    def _trace_identity(self, frame: Frame) -> tuple[int, int | None]:
        if frame.trace is not None:
            return frame.trace.trace_id, frame.trace.span_id
        return self._fallback_trace_ids(frame)[0], None

    def _root_span_for(self, frame: Frame) -> int:
        return self._fallback_trace_ids(frame)[1]

    def _fallback_trace_ids(self, frame: Frame) -> tuple[int, int]:
        # one (trace id, root span id) pair per frame object, minted
        # lazily so forwards and the root span agree without threading
        # extra state through every call
        ids = getattr(frame, "_router_ids", None)
        if ids is None:
            trace_id = (
                frame.trace.trace_id
                if frame.trace is not None
                else self.tracer.new_trace_id()
            )
            ids = (trace_id, self.tracer.new_span_id())
            frame._router_ids = ids  # type: ignore[attr-defined]
        result: tuple[int, int] = ids
        return result

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------

    async def _link(self, state: _MemberState) -> AsyncKemClient:
        async with state.link_lock:
            if state.link is None:
                host, port = state.handle.address
                reader, writer = await asyncio.open_connection(host, port)
                state.link = AsyncKemClient(reader, writer)
            return state.link

    async def _drop_link(self, state: _MemberState) -> None:
        async with state.link_lock:
            link, state.link = state.link, None
        if link is not None:
            try:
                await link.aclose()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    def _note_member_failure(self, member: str) -> None:
        """Poke the health loop after a forward-time member failure."""
        if self._health_wake is not None:
            self._health_wake.set()

    def _forward_trace(
        self, frame: Frame, member: str, attempt: int
    ) -> tuple[TraceContext | None, int, float]:
        """(wire context for the member, forward span id, start time)."""
        if not self.tracer.enabled:
            # tracer off: pass any client context straight through so
            # member spans still attach to the caller's trace
            return frame.trace, 0, 0.0
        trace_id, _ = self._fallback_trace_ids(frame)
        span_id = self.tracer.new_span_id()
        return TraceContext(trace_id, span_id), span_id, self._clock()

    def _end_forward_span(
        self,
        frame: Frame,
        member: str,
        attempt: int,
        span_id: int,
        t_start: float,
        outcome: str,
    ) -> None:
        if not self.tracer.enabled:
            return
        trace_id, _ = self._fallback_trace_ids(frame)
        self.tracer.record_span(
            "router.forward",
            t_start,
            self._clock() - t_start,
            trace_id,
            span_id=span_id,
            parent_id=self._root_span_for(frame),
            tags={
                "op": frame.op.name,
                "member": member,
                "attempt": attempt,
                "outcome": outcome,
            },
        )

    async def _forward_once(
        self,
        member: str,
        frame: Frame,
        payload: bytes,
        attempt: int,
        draw_faults: bool = True,
    ) -> Frame:
        """One forward attempt to one member (faults, link, deadline)."""
        state = self._members[member]
        trace, span_id, t_start = self._forward_trace(frame, member, attempt)
        outcome = "error"
        try:
            if draw_faults and self.fault_plan is not None:
                spec = self.fault_plan.draw(SITE_MEMBER_KILL)
                if spec is not None:
                    self.counters["member_kills"] += 1
                    await asyncio.get_running_loop().run_in_executor(
                        None, state.handle.kill
                    )
                    await self._drop_link(state)
                spec = self.fault_plan.draw(SITE_ROUTER_FORWARD)
                if spec is not None:
                    if spec.kind == KIND_DELAY:
                        await asyncio.sleep(spec.delay_s)
                    elif spec.kind == KIND_DROP:
                        raise ServiceClosed("injected fault: forward drop")
                    else:  # corrupt: the link cannot be trusted anymore
                        await self._drop_link(state)
                        raise ProtocolError(
                            "injected fault: forward corruption", "corrupt"
                        )
            if not state.handle.alive:
                raise ServiceClosed(f"member {member} is down")
            link = await self._link(state)
            timeout = self.config.forward_retry.attempt_timeout_s
            try:
                # the QoS extension rides through unchanged: the member
                # owns the shed decision (it sees its own queue), the
                # router only relays budget and tier
                if timeout is not None:
                    response = await asyncio.wait_for(
                        link.request(
                            frame.op, frame.param_id, payload,
                            trace=trace, qos=frame.qos,
                        ),
                        timeout,
                    )
                else:
                    response = await link.request(
                        frame.op, frame.param_id, payload,
                        trace=trace, qos=frame.qos,
                    )
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    f"member {member} gave no response within {timeout}s"
                ) from None
            outcome = response.status.name
            return response
        except _FORWARD_FAILURES:
            # the member connection is suspect: redial on next use and
            # let the health loop decide about ejection
            await self._drop_link(state)
            self._note_member_failure(member)
            raise
        finally:
            self._end_forward_span(frame, member, attempt, span_id, t_start, outcome)

    def _placement_chain(self, key: _RoutedKey) -> list[str]:
        """Live placements of a key in current ring order, primary first."""
        try:
            ordered = self._ring.owners(key.key_id, len(self._members) or 1)
        except LookupError:
            ordered = []
        chain = [
            member
            for member in ordered
            if member in key.placements and self._members[member].handle.alive
        ]
        # placements that left the ring (ejected member still alive,
        # or replication > ring size) remain usable as a last resort
        chain.extend(
            member
            for member in sorted(key.placements)
            if member not in chain
            and member in self._members
            and self._members[member].handle.alive
        )
        return chain

    async def _forward(
        self, frame: Frame, respond: _Respond, t_read: float
    ) -> Status:
        """Route one ENCAPS/DECAPS to the owning member, with failover."""
        op = frame.op
        try:
            gid, rest = unpack_key_id(frame.payload)
        except ProtocolError as exc:
            await respond(self._error(frame, Status.BAD_REQUEST, str(exc)))
            return Status.BAD_REQUEST
        key = self._keys.get(gid)
        if key is None:
            await respond(
                self._error(frame, Status.NOT_FOUND, f"unknown key id {gid}")
            )
            return Status.NOT_FOUND
        if frame.param_id != wire_id_for_params(key.params):
            await respond(
                self._error(
                    frame,
                    Status.BAD_REQUEST,
                    f"key {gid} is {key.params.name}, not parameter id "
                    f"{frame.param_id}",
                )
            )
            return Status.BAD_REQUEST
        policy = self.config.forward_retry
        chain = self._placement_chain(key)
        last_error: Exception | None = None
        for attempt, member in enumerate(chain):
            if attempt >= policy.max_attempts:
                break
            if attempt > 0:
                self.counters["forward_failovers"] += 1
            local_id = key.placements.get(member)
            if local_id is None:
                continue  # a concurrent repair dropped this placement
            try:
                response = await self._forward_once(
                    member, frame, pack_key_id(local_id) + rest, attempt
                )
            except Exception as exc:  # noqa: BLE001 - policy decides below
                last_error = exc
                if policy.should_retry(op, exc, attempt, can_reconnect=True):
                    continue
                break
            if response.status is Status.NOT_FOUND:
                # stale placement: the member restarted without this
                # key — repair it and (for idempotent ops) fail over
                key.placements.pop(member, None)
                self._rebalance_needed = True
                self._note_member_failure(member)
                last_error = KeyNotFound(
                    f"member {member} lost key {gid}; rebalancing"
                )
                if op is not Op.DECAPS:
                    continue
                break
            self.metrics.record_response(op.name, response.status.name)
            await respond(
                Frame(
                    op,
                    frame.request_id,
                    frame.param_id,
                    response.status,
                    response.payload,
                    trace=frame.trace,
                )
            )
            return response.status
        if last_error is None:
            await respond(
                self._error(frame, Status.INTERNAL, f"no live placement for key {gid}")
            )
            return Status.INTERNAL
        status = self._failure_status(last_error)
        await respond(self._error(frame, status, str(last_error)))
        return status

    @staticmethod
    def _failure_status(exc: Exception) -> Status:
        """The typed wire status a forward failure degrades to."""
        if isinstance(exc, DeadlineExceeded):
            return Status.TIMEOUT
        if isinstance(exc, ServiceError) and isinstance(
            getattr(exc, "status", None), Status
        ):
            status: Status = exc.status  # type: ignore[assignment]
            # a lost placement is the router's problem, not the
            # caller's: NOT_FOUND would wrongly blame the key id
            return Status.INTERNAL if status is Status.NOT_FOUND else status
        return Status.INTERNAL

    # ------------------------------------------------------------------
    # key lifecycle
    # ------------------------------------------------------------------

    async def _keygen(
        self, frame: Frame, respond: _Respond, t_read: float
    ) -> Status:
        """Mint a global key: seeded registration on the placement chain."""
        try:
            scheme, params = params_for_wire_id(frame.param_id)
        except ProtocolError as exc:
            await respond(self._error(frame, Status.BAD_REQUEST, str(exc)))
            return Status.BAD_REQUEST
        seed_len = scheme.seed_len(params)
        if frame.payload and len(frame.payload) != seed_len:
            await respond(
                self._error(
                    frame,
                    Status.BAD_REQUEST,
                    f"KEYGEN seed must be {seed_len} bytes or empty",
                )
            )
            return Status.BAD_REQUEST
        seed = frame.payload or secrets.token_bytes(seed_len)
        gid = self._next_key_id
        self._next_key_id += 1
        try:
            owners = self._ring.owners(gid, self.config.replication)
        except LookupError:
            owners = []
        key = _RoutedKey(gid, params, seed, b"")
        last_error: Exception | None = None
        for attempt, member in enumerate(owners):
            try:
                # draw_faults=False: the router.forward/member.kill
                # sites target ENCAPS/DECAPS forwards (the data plane);
                # registration is key-lifecycle plumbing
                response = await self._forward_once(
                    member, frame, seed, attempt, draw_faults=False
                )
            except Exception as exc:  # noqa: BLE001 - typed or transport
                last_error = exc
                continue
            if response.status is not Status.OK:
                last_error = ServiceError(
                    f"member {member} keygen: "
                    + response.payload.decode(errors="replace")
                )
                last_error.status = response.status  # type: ignore[attr-defined]
                continue
            local_id, pk = unpack_keygen_response(params, response.payload)
            key.placements[member] = local_id
            key.pk = pk
        if not key.placements:
            if last_error is None:
                await respond(
                    self._error(frame, Status.INTERNAL, "no live members")
                )
                return Status.INTERNAL
            status = self._failure_status(last_error)
            await respond(self._error(frame, status, str(last_error)))
            return status
        if len(key.placements) < len(owners):
            # under-replicated: the health loop's rebalance finishes it
            self._rebalance_needed = True
            self._note_member_failure("")
        self._keys[gid] = key
        self.metrics.record_response(Op.KEYGEN.name, Status.OK.name)
        await respond(
            Frame(
                Op.KEYGEN,
                frame.request_id,
                frame.param_id,
                Status.OK,
                pack_key_id(gid) + key.pk,
                trace=frame.trace,
            )
        )
        return Status.OK

    async def _register_key_on(self, member: str, key: _RoutedKey) -> bool:
        """Seeded re-registration of one key on one member (rebalance)."""
        frame = Frame(Op.KEYGEN, 0, wire_id_for_params(key.params))
        try:
            response = await self._forward_once(
                member, frame, key.seed, 0, draw_faults=False
            )
        except Exception:  # noqa: BLE001 - retried by the next health pass
            self._rebalance_needed = True
            return False
        if response.status is not Status.OK:
            self._rebalance_needed = True
            return False
        local_id, _pk = unpack_keygen_response(key.params, response.payload)
        key.placements[member] = local_id
        return True

    async def _remove_key_from(self, member: str, key: _RoutedKey) -> None:
        """Pull one key off one member; the placement goes regardless."""
        local_id = key.placements.pop(member, None)
        state = self._members.get(member)
        if local_id is None or state is None or not state.handle.alive:
            return
        frame = Frame(Op.REMOVE_KEY, 0, PARAM_NONE)
        try:
            await self._forward_once(
                member, frame, pack_key_id(local_id), 0, draw_faults=False
            )
        except Exception:  # noqa: BLE001 - the member will restart empty
            pass

    # ------------------------------------------------------------------
    # health and rebalancing
    # ------------------------------------------------------------------

    async def _health_loop(self) -> None:
        wake = self._health_wake
        assert wake is not None  # set by start() before the task spawns
        while True:
            try:
                await asyncio.wait_for(
                    wake.wait(), self.config.health_interval_s
                )
            except asyncio.TimeoutError:
                pass
            wake.clear()
            if self._draining:
                continue
            for name, state in list(self._members.items()):
                await self._probe(name, state)
            if self._rebalance_needed:
                await self._rebalance()

    async def _probe(self, name: str, state: _MemberState) -> None:
        healthy = False
        if state.handle.alive:
            try:
                link = await self._link(state)
                await asyncio.wait_for(
                    link.request(Op.INFO), self.config.probe_timeout_s
                )
                healthy = True
            except (asyncio.TimeoutError, *_FORWARD_FAILURES):
                await self._drop_link(state)
        if healthy:
            state.probe_failures = 0
            if not state.in_ring:
                self._readmit(name, state)
            return
        state.probe_failures += 1
        self.counters["probe_failures"] += 1
        dead = not state.handle.alive
        # an unresponsive member gets health_failures chances; a dead
        # process is unambiguous and leaves the ring right away
        if state.in_ring and (
            dead or state.probe_failures >= self.config.health_failures
        ):
            self._eject(name, state)
        if dead and self.config.restart_members and not self._draining:
            await self._drop_link(state)
            await asyncio.get_running_loop().run_in_executor(
                None, state.handle.respawn
            )
            self.counters["member_restarts"] += 1
            # the respawned member came up empty: any placement record
            # naming it is stale by construction
            for key in self._keys.values():
                if key.placements.pop(name, None) is not None:
                    self._rebalance_needed = True

    def _eject(self, name: str, state: _MemberState) -> None:
        """Remove a failing member from the ring; its keys re-home."""
        self._ring.remove(name)
        state.in_ring = False
        self.counters["members_ejected"] += 1
        for key in self._keys.values():
            key.placements.pop(name, None)
        self._rebalance_needed = True

    def _readmit(self, name: str, state: _MemberState) -> None:
        """A recovered member rejoins the ring (empty) and rebalances."""
        self._ring.add(name)
        state.in_ring = True
        self.counters["members_readmitted"] += 1
        self._rebalance_needed = True

    async def _rebalance(self) -> None:
        """Drive every key's placements to what the ring says they are.

        Additions are seeded re-registrations through the ordinary
        member ``KEYGEN``/``add_keypair`` lifecycle (warming the
        per-key transform caches on the right node); removals go
        through ``REMOVE_KEY``/``remove_keypair``.  A failed step
        re-arms ``_rebalance_needed`` so the next health pass retries.
        """
        async with self._rebalance_lock:
            self._rebalance_needed = False
            if not len(self._ring):
                return
            moved = 0
            for key in list(self._keys.values()):
                desired = set(self._ring.owners(key.key_id, self.config.replication))
                current = set(key.placements)
                for member in sorted(desired - current):
                    if await self._register_key_on(member, key):
                        moved += 1
                for member in sorted(current - desired):
                    await self._remove_key_from(member, key)
                    moved += 1
            if moved:
                self.counters["placements_rebalanced"] += moved
                self.counters["rebalances"] += 1

    # ------------------------------------------------------------------
    # INFO
    # ------------------------------------------------------------------

    def _info_response(self, frame: Frame) -> Frame:
        cluster = {
            "uptime_s": round(self._clock() - self._started_at, 3),
            "draining": self._draining,
            "pending": self._pending,
            "keys": len(self._keys),
            "replication": self.config.replication,
            "virtual_nodes": self.config.virtual_nodes,
            "launch": self.config.launch,
            "ring": self._ring.members,
            "members": {
                name: {
                    "alive": state.handle.alive,
                    "in_ring": state.in_ring,
                    "probe_failures": state.probe_failures,
                    "address": list(state.handle.address),
                    "keys": sum(
                        1
                        for key in self._keys.values()
                        if name in key.placements
                    ),
                }
                for name, state in self._members.items()
            },
            "counters": dict(self.counters),
        }
        if frame.payload == b"text":
            lines = [self.metrics.render_text(), ""]
            lines.append(f"# cluster: {len(self._ring)} in ring")
            for counter, value in sorted(cluster["counters"].items()):  # type: ignore[union-attr]
                lines.append(f"kem_cluster_{counter}_total {value}")
            payload = "\n".join(lines).encode()
        else:
            snap = self.metrics.snapshot()
            snap["cluster"] = cluster
            payload = json.dumps(snap).encode()
        return Frame(
            Op.INFO, frame.request_id, PARAM_NONE, Status.OK, payload,
            trace=frame.trace,
        )


class ThreadedCluster:
    """A :class:`ClusterRouter` on a background event-loop thread.

    The synchronous adapter, mirroring
    :class:`repro.serve.ThreadedService`: ``start()`` spawns members
    and the routing loop, ``connect()`` hands back blocking client
    sockets (feed them to :class:`repro.cluster.ClusterClient`),
    ``stop()`` drains and joins.  Usable as a context manager.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._config = config
        self._clock = clock
        self._fault_plan = fault_plan
        self._tracer = tracer
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.router: ClusterRouter | None = None

    def start(self) -> ThreadedCluster:
        """Start the loop thread, the router and its members."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self.router = ClusterRouter(
            self._config,
            clock=self._clock,
            fault_plan=self._fault_plan,
            tracer=self._tracer,
        )
        self._loop.run_until_complete(self.router.start())
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.router.shutdown())
        self._loop.close()

    def _call(self, coro: Coroutine[Any, Any, _T]) -> _T:
        assert self._loop is not None, "start() the cluster first"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _router(self) -> ClusterRouter:
        assert self.router is not None, "start() the cluster first"
        return self.router

    def connect(self) -> socket.socket:
        """A new in-process connection as a blocking client socket."""
        return self._call(self._router().connect_socket())

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start a TCP listener; returns the bound port."""

        async def _serve() -> int:
            server = await self._router().serve_tcp(host, port)
            port_: int = server.sockets[0].getsockname()[1]
            return port_

        return self._call(_serve())

    def member_names(self) -> list[str]:
        """The member names, sorted (for targeted chaos)."""
        return sorted(self._router().members)

    def kill_member(self, name: str) -> None:
        """SIGKILL/abort one member (the supervisor will restart it)."""
        self._router().members[name].kill()

    def stop(self) -> None:
        """Drain the router, stop the members, join the loop thread."""
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None

    def __enter__(self) -> ThreadedCluster:
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc: object) -> None:
        """Stop on exit."""
        self.stop()
