"""HW/SW co-design cycle modelling (Tables I and II).

This layer turns the operation counts recorded by the annotated
implementations into RISCY-model cycle counts, for three
configurations mirroring the paper's Table II rows:

* **ref** — the LAC reference implementation on RISC-V (software
  everything, submission-style BCH decoder);
* **const_bch** — the reference with the Walters/Roy constant-time
  BCH decoder (the security baseline);
* **ise** — the paper's optimized implementation: MUL TER for all ring
  multiplications, MUL CHIEN for the Chien search, the SHA256
  accelerator behind the PRNG, and pq.modq for reductions.

Cycle counts are *measured by executing* the annotated code on real
data, so data-dependent timing (Table I) emerges from real control
flow.  Per-operation prices are calibrated once against the paper's
reference column and documented in :mod:`repro.cosim.costs`.
"""

from repro.cosim.costs import CycleCosts, REFERENCE_COSTS, ISE_COSTS, price
from repro.cosim.accelerated import IseBchDecoder, IseMultiplier
from repro.cosim.protocol import (
    KernelCycles,
    ProtocolCycles,
    CycleModel,
    PROFILES,
)

__all__ = [
    "CycleCosts",
    "CycleModel",
    "IseBchDecoder",
    "IseMultiplier",
    "ISE_COSTS",
    "KernelCycles",
    "PROFILES",
    "ProtocolCycles",
    "REFERENCE_COSTS",
    "price",
]
