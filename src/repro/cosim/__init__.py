"""HW/SW co-design cycle modelling (Tables I and II).

This layer turns the operation counts recorded by the annotated
implementations into RISCY-model cycle counts, for three
configurations mirroring the paper's Table II rows:

* **ref** — the LAC reference implementation on RISC-V (software
  everything, submission-style BCH decoder);
* **const_bch** — the reference with the Walters/Roy constant-time
  BCH decoder (the security baseline);
* **ise** — the paper's optimized implementation: MUL TER for all ring
  multiplications, MUL CHIEN for the Chien search, the SHA256
  accelerator behind the PRNG, and pq.modq for reductions.

Cycle counts are *measured by executing* the annotated code on real
data, so data-dependent timing (Table I) emerges from real control
flow.  Per-operation prices are calibrated once against the paper's
reference column and documented in :mod:`repro.cosim.costs`.

The cycle model is also *servable*: :class:`repro.backend.CosimBackend`
routes live KEM traffic through these annotated drivers and reproduces
the offline predictions exactly (see ``docs/COSIM.md``).
"""

from repro.cosim.accelerated import IseBchDecoder, IseMultiplier
from repro.cosim.costs import ISE_COSTS, REFERENCE_COSTS, CycleCosts, price
from repro.cosim.protocol import (
    PROFILES,
    CycleModel,
    KernelCycles,
    ProtocolCycles,
)

__all__ = [
    "CycleCosts",
    "CycleModel",
    "IseBchDecoder",
    "IseMultiplier",
    "ISE_COSTS",
    "KernelCycles",
    "PROFILES",
    "ProtocolCycles",
    "REFERENCE_COSTS",
    "price",
]
