"""ISE-accelerated implementations (the paper's "opt" rows).

Two drivers live here, both annotated with the software work a real
wrapper performs around the custom instructions:

* :class:`IseMultiplier` — ring multiplication through the MUL TER
  unit.  For n = 512 a single transaction; for n = 1024 the two-level
  polynomial splitting of Algorithms 1/2 with sixteen unit runs and
  pq.modq-assisted recombination.
* :class:`IseBchDecoder` — the constant-time BCH decode with the Chien
  search offloaded to the MUL CHIEN unit over the message window
  (Sec. IV-B): syndromes and inversion-free Berlekamp--Massey stay in
  (constant-time) software, each locator group is loaded once, and the
  per-probe partial sums are accumulated and combined in software.
"""

from __future__ import annotations

import numpy as np

from repro.bch.code import BCHCode
from repro.bch.ct_decoder import ConstantTimeBCHDecoder
from repro.bch.decoder import DecodeResult, _degree
from repro.bitutils import require_bits
from repro.hw.chien import PARALLEL_MULTIPLIERS, ChienUnit
from repro.hw.mul_ter import MulTerUnit
from repro.metrics import OpCounter, ensure_counter
from repro.ring.poly import PolyRing
from repro.ring.splitting import UNIT_LEN, split_mul_high
from repro.ring.ternary import TernaryPoly


class IseMultiplier:
    """Ring multiplication driver for the MUL TER accelerator.

    Defaults to the paper's length-512 unit; other power-of-two unit
    lengths are supported through the generalized splitting (the
    Sec. IV-A area/performance ablation at protocol level).
    """

    def __init__(self, unit: MulTerUnit | None = None) -> None:
        self.unit = unit or MulTerUnit(UNIT_LEN)

    # ------------------------------------------------------------------

    def mul512(
        self,
        ternary: np.ndarray,
        general: np.ndarray,
        negacyclic: bool,
        counter: OpCounter | None = None,
    ) -> np.ndarray:
        """One full unit transaction with annotated driver overhead.

        Per input transfer the wrapper loads five general and five
        ternary coefficients from byte arrays, maps the ternary values
        to their 2-bit codes, packs rs1/rs2 and issues the transfer;
        per output transfer it issues the read and stores the packed
        word.  The start instruction stalls for the unit's ``length``
        compute cycles.
        """
        counter = ensure_counter(counter)
        unit = self.unit
        with counter.phase("ise_mul512"):
            counter.count("call")
            transfers = unit.input_transfers
            counter.count("load", 10 * transfers)  # 5 general + 5 ternary lbu
            counter.count("alu", 30 * transfers)  # code mapping + rs1/rs2 packing
            counter.count("pq_issue", transfers)
            counter.count("loop", transfers)
            counter.count("pq_issue")  # start
            counter.count("alu", 2)
            counter.count("pq_busy", unit.compute_cycles)
            reads = unit.output_transfers
            counter.count("pq_issue", reads)
            counter.count("store", reads)  # one packed word per read
            counter.count("alu", reads)
            counter.count("loop", reads)
        return unit.multiply(ternary, general, negacyclic)

    # ------------------------------------------------------------------

    def __call__(
        self,
        ring: PolyRing,
        ternary: TernaryPoly,
        general: np.ndarray,
        counter: OpCounter | None = None,
    ) -> np.ndarray:
        """Multiplier strategy compatible with :class:`repro.lac.pke.LacPke`."""
        counter = ensure_counter(counter)
        length = self.unit.length
        if ring.n == length:
            return np.mod(
                self.mul512(ternary.coeffs, general, ring.negacyclic, counter),
                ring.q,
            )
        if ring.n == 2 * length == 2 * UNIT_LEN:
            # the paper's exact Algorithm 1/2 path for the 512 unit
            return split_mul_high(
                ternary,
                general,
                mul512=lambda t, g, nega: self.mul512(t, g, nega, counter),
                counter=counter,
                q=ring.q,
            )
        if ring.n > length and ring.n % length == 0:
            from repro.ring.splitting import split_mul_general

            return split_mul_general(
                ternary.coeffs,
                general,
                length,
                lambda t, g, nega: self.mul512(t, g, nega, counter),
                counter=counter,
                q=ring.q,
            )
        if ring.n < length and length % ring.n == 0:
            # zero-pad into the larger unit, positive convolution, then
            # fold by x^n + 1 in software
            padded_t = np.zeros(length, dtype=ternary.coeffs.dtype)
            padded_t[: ring.n] = ternary.coeffs
            padded_g = np.zeros(length, dtype=np.int64)
            padded_g[: ring.n] = general
            product = self.mul512(padded_t, padded_g, False, counter)
            with counter.phase("fold"):
                counter.count("loop", ring.n)
                counter.count("load", 2 * ring.n)
                counter.count("alu", ring.n)
                counter.count("modq", ring.n)
                counter.count("store", ring.n)
            full = product[: 2 * ring.n]
            return np.mod(full[: ring.n] - full[ring.n :], ring.q)
        raise ValueError(
            f"no ISE schedule for ring size {ring.n} on a "
            f"length-{length} unit"
        )


class IseBchDecoder:
    """Constant-time BCH decode with the MUL CHIEN accelerator."""

    def __init__(self, code: BCHCode, unit: ChienUnit | None = None) -> None:
        if code.t % PARALLEL_MULTIPLIERS:
            raise ValueError("the Chien unit needs t divisible by 4")
        self.code = code
        self.field = code.field
        self.unit = unit or ChienUnit(code.field)
        self._software = ConstantTimeBCHDecoder(code)

    # ------------------------------------------------------------------

    def decode(
        self, received: np.ndarray, counter: OpCounter | None = None
    ) -> DecodeResult:
        """Syndromes + BM in constant-time software, Chien in hardware."""
        code = self.code
        counter = ensure_counter(counter)
        received = require_bits(received, code.n, "received")
        working = received.copy()

        syndromes = self._software._syndromes(working, counter)
        locator = self._software._inversion_free_bm(syndromes, counter)
        flips, roots_found = self._chien_accelerated(working, locator, counter)

        locator_degree = _degree(locator)
        return DecodeResult(
            codeword=working,
            message=working[code.parity_bits :].copy(),
            errors_found=flips,
            success=locator_degree <= code.t and flips <= locator_degree,
            counter=counter,
        )

    # ------------------------------------------------------------------

    def _chien_accelerated(
        self,
        working: np.ndarray,
        locator: list[int],
        counter: OpCounter,
    ) -> tuple[int, int]:
        code, unit = self.code, self.unit
        t = code.t
        start, stop = code.chien_window("message")
        probes = stop - start + 1
        lambdas = list(locator) + [0] * (t + 1 - len(locator))

        partial = [0] * probes
        with counter.phase("chien"):
            counter.count("call")
            for group in range(t // PARALLEL_MULTIPLIERS):
                left, right, prescale = unit.group_elements(lambdas, group, start)
                counter.count("gf_mul_table", prescale)  # exponents are public
                counter.count("alu", 12)  # pack two load transfers
                counter.count("pq_issue", 2)
                unit.load_left(left)
                unit.load_right(right)
                for i in range(probes):
                    partial[i] ^= unit.step()
                    counter.count("pq_issue")
                    counter.count("pq_busy", unit.cycles_per_step)
                    counter.count("load")  # partial[i]
                    counter.count("alu")  # xor
                    counter.count("store")
                    counter.count("loop")
            # combine with lambda_0 and apply masked flips
            flips = 0
            roots_found = 0
            for i in range(probes):
                value = lambdas[0] ^ partial[i]
                is_root = 1 if value == 0 else 0
                roots_found += is_root
                position = code.position_of_root(start + i)
                if position < code.n:
                    working[position] ^= is_root
                    flips += is_root
                counter.count("load", 2)
                counter.count("alu", 4)  # xor, mask, flip, index math
                counter.count("store")
                counter.count("loop")
        return flips, roots_found
