"""Per-operation cycle prices (the calibrated half of the cycle model).

The annotated implementations *count* what they execute; this module
*prices* those counts.  Prices fall in two groups:

**Architectural prices** follow directly from the RISCY cost model
(:mod:`repro.riscv.cost_model`): ``alu``/``store`` 1, ``load`` 2,
``branch`` 2 (average of taken/not-taken), ``loop`` 2 (increment +
loop-back branch, amortized over partial unrolling), ``div`` 35
(serial divider), ``call`` 10 (jal/jalr plus register save/restore),
``pq_issue`` 1 and ``pq_busy`` 1 (an EX-stage stall cycle).

**Calibrated prices** summarize code sequences whose exact compiled
form we cannot reproduce; each is pinned to the paper's *reference*
column once and then reused everywhere:

* ``gf_mul_table`` = 9 — GF(2^9) multiply via log/antilog tables
  (two table loads, exponent add, wrap test, antilog load);
* ``gf_mul_skip`` = 2 — the zero-operand early-out of the same routine;
* ``gf_mul_ct`` = 40 — branch-free shift-and-add GF(2^9) multiply
  (9 iterations of ~4.5 masked ops), the constant-time software
  multiplier of [15];
* ``modq`` = 6 (software Barrett sequence: mulh, mul, sub, compare,
  correct) vs. 2 on the ISE profile (pq.modq issue + move);
* ``sha256_block`` = 700 for the optimized software compression the
  LAC submission links, vs. 400 for the accelerator path (65 busy
  cycles + 16 word transfers + 8 digest reads + wrapper overhead) —
  the small difference reproduces the paper's observation that the
  SHA256 accelerator barely moves GenA (159,097 -> 154,746);
* ``prng_byte`` = 255 — the reference implementation's per-output-byte
  stream management (buffer bookkeeping and call layering around the
  hash), which Table II shows dominating both GenA and Sample poly.

Calibration anchors (paper reference column -> model): the ternary
multiplication inner loop (2 loads + 2 ALU + store + loop = 9 cycles
per n^2 iterations -> 2.36M for n=512 vs. the paper's 2,381,843) and
GenA-128 (prng_byte from 159,097).  Every other number in Tables I/II
is then a *prediction* of the model, compared against the paper in
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace

from repro.metrics import OpCounter


@dataclass(frozen=True)
class CycleCosts:
    """Cycle price per counted operation."""

    alu: int = 1
    load: int = 2
    store: int = 1
    branch: int = 2
    loop: int = 2
    call: int = 10
    mul: int = 1
    div: int = 35
    modq: int = 6
    gf_add: int = 1
    gf_mul_table: int = 9
    gf_mul_skip: int = 2
    gf_mul_ct: int = 40
    sha256_block: int = 700
    #: one Keccak-f[1600] permutation in software (unrolled C on RV32)
    keccak_f: int = 6000
    prng_byte: int = 255
    pq_issue: int = 1
    pq_busy: int = 1

    def price_of(self, op: str) -> int:
        """Cycle price of one operation name (KeyError on unknown ops)."""
        try:
            return getattr(self, op)
        except AttributeError:
            raise KeyError(f"no cycle price defined for operation {op!r}") from None

    def price_counts(self, counts: Counter) -> int:
        """Price a flat operation counter."""
        return sum(self.price_of(op) * n for op, n in counts.items())


#: Prices for the pure-software profiles (ref / const-BCH rows).
REFERENCE_COSTS = CycleCosts()

#: Prices for the ISE profile: hardware-backed SHA-256 and mod-q.
ISE_COSTS = replace(REFERENCE_COSTS, sha256_block=400, modq=2)

#: Prices for the NewHope co-design of [8]: Keccak on its accelerator
#: (24 busy clocks + 42 word transfers + control per permutation) and a
#: leaner generation wrapper than the LAC reference code (the kernel
#: columns of [8]'s row in Table II imply ~12 cycles/byte of stream
#: management vs. LAC's 255).
NEWHOPE_COSTS = replace(REFERENCE_COSTS, keccak_f=200, prng_byte=12, modq=2)

#: Prices for the paper's future-work variant: LAC with the SHA256
#: accelerator swapped for the Keccak core (everything else as ISE).
ISE_KECCAK_COSTS = replace(ISE_COSTS, keccak_f=200, prng_byte=255)


def price(counter: OpCounter, costs: CycleCosts = REFERENCE_COSTS) -> int:
    """Total cycles of everything the counter recorded."""
    return costs.price_counts(counter.totals())


def price_phases(
    counter: OpCounter, costs: CycleCosts = REFERENCE_COSTS
) -> dict[str, int]:
    """Per-phase cycle breakdown (Table I's columns)."""
    return {
        phase: costs.price_counts(counts)
        for phase, counts in counter.phases.items()
        if counts
    }
