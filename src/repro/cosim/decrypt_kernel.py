"""A complete LAC-128 decryption core, in RISC-V machine code.

The deepest end-to-end validation in the repository: the full
decryption data path of Sec. III-D runs as one assembly program on the
instruction-set simulator —

1. ``u * s`` through the MUL TER transfer protocol (negative wrapped
   convolution, operands loaded coefficient-by-coefficient from
   memory with on-target rs1/rs2 packing for the ternary codes);
2. ``w = v - (u*s)`` over the ``v_slots`` carried coefficients, with
   ``pq.modq`` performing the reductions;
3. threshold decoding of every coefficient to a hard codeword bit
   (branchless distance comparison against q/2).

The host supplies (u, s, v) from a *real* LAC-128 encryption and
checks the produced 400 hard bits against the Python codec — i.e. the
bits that the BCH decoder would then correct.  The program also
self-measures through ``rdcycle``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lac.params import LAC_128, LacParams
from repro.riscv.assembler import Assembler
from repro.riscv.cpu import Cpu
from repro.riscv.memory import Memory
from repro.riscv.pq_alu import PqAlu

DATA_BASE = 0x20000

# Register plan:
#   s0 = U base (coefficients, 1 byte each)     s4 = loop counter
#   s1 = S base (ternary codes, 1 byte each)    s5 = scratch
#   s2 = V base (decompressed v, 1 byte each)   s6 = constants
#   s3 = OUT base (hard bits, 1 byte each)
_DECRYPT_SOURCE = """
.equ U, {u_base}
.equ S, {s_base}
.equ V, {v_base}
.equ OUT, {out_base}
.equ NCOEF, {n}
.equ SLOTS, {slots}

_start:
    rdcycle s8                 # self-measurement start

# ---- phase 1: stream (u, s) into MUL TER, 5 pairs per transfer ----
    li   s0, U
    li   s1, S
    li   s4, {transfers}       # ceil(n / 5)
    li   s7, 0                 # transfer index
xfer:
    # pack rs1: four general coefficient bytes
    lbu  t0, 0(s0)
    lbu  t1, 1(s0)
    slli t1, t1, 8
    or   t0, t0, t1
    lbu  t1, 2(s0)
    slli t1, t1, 16
    or   t0, t0, t1
    lbu  t1, 3(s0)
    slli t1, t1, 24
    or   t0, t0, t1
    # pack rs2: g4 | ternary codes | transfer index
    lbu  t1, 4(s0)
    lbu  t2, 0(s1)             # ternary codes are pre-encoded 2-bit
    slli t2, t2, 8
    or   t1, t1, t2
    lbu  t2, 1(s1)
    slli t2, t2, 10
    or   t1, t1, t2
    lbu  t2, 2(s1)
    slli t2, t2, 12
    or   t1, t1, t2
    lbu  t2, 3(s1)
    slli t2, t2, 14
    or   t1, t1, t2
    lbu  t2, 4(s1)
    slli t2, t2, 16
    or   t1, t1, t2
    slli t2, s7, 18
    or   t1, t1, t2
    pq.mul_ter x0, t0, t1
    addi s0, s0, 5
    addi s1, s1, 5
    addi s7, s7, 1
    addi s4, s4, -1
    bnez s4, xfer

# ---- phase 2: start the negative wrapped convolution ----
    li   t0, 1
    li   t1, {start_ctrl}
    pq.mul_ter x0, t0, t1      # stalls NCOEF cycles

# ---- phase 3: w = v - us mod q, threshold decode, store bits ----
    li   s0, V
    li   s3, OUT
    li   s4, SLOTS
    li   s5, 0                 # read group index
    li   s6, {read_ctrl}
    li   s9, 251               # q
    li   s10, 125              # floor(q/2)
slot_loop:
    # fetch the next result word (4 coefficients) from the unit
    slli t1, s5, 8
    or   t1, t1, s6
    pq.mul_ter t3, x0, t1
    addi s5, s5, 1
    li   t4, 4                 # coefficients in this word
word_loop:
    andi t0, t3, 0xFF          # us_i
    srli t3, t3, 8
    lbu  t1, 0(s0)             # v_i (decompressed)
    sub  t1, t1, t0            # v - us  (may be negative)
    add  t1, t1, s9            # + q -> non-negative
    pq.modq t1, t1             # w in [0, q)
    # centered distance from q/2: d = |w - 125|
    sub  t2, t1, s10
    srai t5, t2, 31            # sign mask
    xor  t2, t2, t5
    sub  t2, t2, t5            # |w - 125|
    sltiu t5, t2, 63           # bit = (|w - 125| < 63), equivalent to
                               # d(w, q/2) < d(w, 0) for q = 251
    sb   t5, 0(s3)
    addi s0, s0, 1
    addi s3, s3, 1
    addi s4, s4, -1
    beqz s4, done
    addi t4, t4, -1
    bnez t4, word_loop
    j    slot_loop
done:
    rdcycle s9
    sub  a1, s9, s8            # self-measured cycles
    li   a0, 0
    ecall
"""


@dataclass
class DecryptKernelResult:
    """Outcome of the on-target decryption core."""

    hard_bits: np.ndarray
    matches_codec: bool
    iss_cycles: int
    self_measured_cycles: int
    instructions: int


def run_decrypt_kernel(
    params: LacParams = LAC_128, seed: int = 42
) -> DecryptKernelResult:
    """Encrypt with the Python library, decrypt on the ISS, compare."""
    if params.n != 512:
        raise ValueError("the kernel is written for the n = 512 unit")
    from repro.lac.pke import LacPke

    pke = LacPke(params)
    pk, sk = pke.keygen(bytes(range(32)))
    rng = np.random.default_rng(seed)
    message = bytes(rng.integers(0, 256, 32, dtype=np.uint8))
    ct = pke.encrypt(
        pk, message, coins=bytes(rng.integers(0, 256, 32, dtype=np.uint8))
    )

    # golden reference: what the Python codec computes
    us = pke.ring.mul(sk.s.to_zq(), ct.u)
    v = pke.codec.decompress_v(ct.v_compressed)
    noisy = np.mod(v - us[: params.v_slots], params.q)
    golden_bits = pke.codec.threshold_decode(noisy)

    # target memory: u bytes, ternary codes of s, decompressed v bytes
    from repro.riscv.pq_alu import TERNARY_CODE

    u_bytes = bytes(int(x) for x in ct.u)
    s_codes = bytes(TERNARY_CODE[int(x)] for x in sk.s.coeffs)
    v_bytes = bytes(int(x) for x in v)

    n, slots = params.n, params.v_slots
    u_base = DATA_BASE
    s_base = u_base + n + 3  # padding keeps the 5-byte strides in range
    v_base = s_base + n + 3
    out_base = v_base + slots

    source = _DECRYPT_SOURCE.format(
        u_base=u_base,
        s_base=s_base,
        v_base=v_base,
        out_base=out_base,
        n=n,
        slots=slots,
        transfers=-(-n // 5),
        start_ctrl=1 << 28,
        read_ctrl=2 << 28,
    )
    program = Assembler().assemble(source)
    cpu = Cpu(Memory(1 << 20), PqAlu(n))
    cpu.memory.write_bytes(program.base, program.image)
    cpu.memory.write_bytes(u_base, u_bytes + b"\x00" * 3)
    cpu.memory.write_bytes(s_base, s_codes + b"\x00" * 3)
    cpu.memory.write_bytes(v_base, v_bytes)
    cpu.reset(pc=program.entry())
    result = cpu.run()
    if result.reason != "ecall":
        raise RuntimeError(f"decrypt kernel did not terminate: {result}")

    hard_bits = np.frombuffer(
        cpu.memory.read_bytes(out_base, slots), dtype=np.uint8
    )[: params.codeword_bits]
    return DecryptKernelResult(
        hard_bits=hard_bits,
        matches_codec=bool(np.array_equal(hard_bits, golden_bits)),
        iss_cycles=result.cycles,
        self_measured_cycles=cpu.regs[11],
        instructions=result.instructions,
    )
