"""Cycle model for the NewHope baseline (Table II's comparison row).

Reproduces the measurement setup of [8] as the paper reports it: the
CPA-secure NewHope1024 KEM on RISC-V with a loosely-coupled NTT
accelerator and a Keccak accelerator.  Polynomial packing (14-bit
coefficients) is charged explicitly — it is a real cost of NewHope's
larger modulus that LAC's byte-sized coefficients avoid.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cosim.costs import NEWHOPE_COSTS, price
from repro.cosim.protocol import KernelCycles, ProtocolCycles
from repro.hashes.keccak import ShakePrng
from repro.hw.ntt_accel import NttAccelUnit
from repro.metrics import OpCounter, ensure_counter
from repro.newhope.cpa import NewHopeCpaKem
from repro.newhope.params import NEWHOPE_1024, NewHopeParams
from repro.newhope.sampling import gen_a, sample_binomial

#: [8]'s published row (CPA, NIST level V), for comparison.
PAPER_NEWHOPE_ROW = {
    "key_generation": 357_052,
    "encapsulation": 589_285,
    "decapsulation": 167_647,
    "gen_a": 42_050,
    "sample_poly": 75_682,
    "multiplication": 73_827,  # reported as a lower bound (">")
}


class AcceleratedNtt:
    """Transformer that routes transforms through the NTT accelerator.

    The bound ``counter`` (set by the model before each measured
    operation) receives the loosely-coupled schedule: configuration
    writes plus the full transform stall.
    """

    def __init__(self, unit: NttAccelUnit | None = None) -> None:
        self.unit = unit or NttAccelUnit(1024)
        self.counter: OpCounter | None = None

    def _charge(self) -> None:
        counter = ensure_counter(self.counter)
        counter.count("pq_issue", 8)  # configuration/doorbell writes
        counter.count("pq_busy", self.unit.transform_cycles)

    def forward(self, poly: np.ndarray) -> np.ndarray:
        """Accelerated forward transform (charges the bus+compute stall)."""
        self._charge()
        return self.unit.context.forward(poly)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Accelerated inverse transform (charges the bus+compute stall)."""
        self._charge()
        return self.unit.context.inverse(values)


@dataclass(frozen=True)
class NewHopeCycles(ProtocolCycles):
    """Same shape as a Table II row (scheme/profile prefilled)."""


class NewHopeCycleModel:
    """Cycle measurement for the accelerated NewHope1024 CPA KEM."""

    def __init__(
        self,
        params: NewHopeParams = NEWHOPE_1024,
        seed: bytes | None = None,
    ) -> None:
        self.params = params
        self.seed = seed or bytes(range(32))
        self.transformer = AcceleratedNtt(NttAccelUnit(params.n, params.q))
        self.kem = NewHopeCpaKem(params, transformer=self.transformer)
        self.costs = NEWHOPE_COSTS

    # ------------------------------------------------------------------

    def _measure(self, fn: Callable[[OpCounter], None]) -> int:
        counter = OpCounter()
        self.transformer.counter = counter
        try:
            fn(counter)
        finally:
            self.transformer.counter = None
        return price(counter, self.costs)

    def _charge_packing(self, counter: OpCounter, polys: int) -> None:
        """14-bit bit-packing of ``polys`` polynomials (8 ops/coeff)."""
        with counter.phase("packing"):
            n = self.params.n
            counter.count("loop", polys * n)
            counter.count("load", polys * n)
            counter.count("alu", 5 * polys * n)
            counter.count("store", polys * n)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------

    def measure_gen_a(self) -> int:
        """Cycles of one GenA call ([8]'s 42,050-cycle kernel)."""
        return self._measure(lambda c: gen_a(self.seed, self.params, c))

    def measure_sample_poly(self) -> int:
        """Cycles of one binomial polynomial sample."""

        def run(counter: OpCounter) -> None:
            prng = ShakePrng(self.seed, counter=counter)
            sample_binomial(prng, self.params, counter)

        return self._measure(run)

    def measure_multiplication(self) -> int:
        """2 forward + 1 inverse transform + pointwise ([8]'s "> 73,827")."""

        def run(counter: OpCounter) -> None:
            rng = np.random.default_rng(7)
            a = rng.integers(0, self.params.q, self.params.n)
            b = rng.integers(0, self.params.q, self.params.n)
            a_hat = self.transformer.forward(a)
            b_hat = self.transformer.forward(b)
            with counter.phase("pointwise"):
                n = self.params.n
                counter.count("loop", n)
                counter.count("mul", n)
                counter.count("modq", n)
                counter.count("load", 2 * n)
                counter.count("store", n)
            self.transformer.inverse(self.params.ntt.pointwise(a_hat, b_hat))

        return self._measure(run)

    def measure_kernels(self) -> KernelCycles:
        """All four kernel columns (BCH is 0: NewHope has no ECC)."""
        return KernelCycles(
            gen_a=self.measure_gen_a(),
            sample_poly=self.measure_sample_poly(),
            multiplication=self.measure_multiplication(),
            bch_decode=0,  # NewHope has no error-correcting code
        )

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------

    def measure_cca_decapsulation(self) -> int:
        """Decapsulation of the CCA (FO) NewHope variant.

        The apples-to-apples number the paper could not report: [8]
        benchmarks CPA only, while LAC's rows are CCA.  With the same
        FO transform wrapped around NewHope, its decapsulation pays a
        full re-encryption too.
        """
        from repro.newhope.cca import NewHopeCcaKem

        kem = NewHopeCcaKem(self.params, transformer=self.transformer)
        sk = kem.keygen(seed=self.seed + bytes(32))
        ct, shared = kem.encaps(sk, message=self.seed)

        def run(counter: OpCounter) -> None:
            if kem.decaps(sk, ct, counter) != shared:
                raise AssertionError("NewHope CCA decapsulation mismatch")
            self._charge_packing(counter, 1)

        return self._measure(run)

    def measure_protocol(self) -> ProtocolCycles:
        """Full CPA KEM measurement, [8]'s Table II row."""
        keys_box: dict[str, Any] = {}

        def run_keygen(counter: OpCounter) -> None:
            keys_box["keys"] = self.kem.keygen(self.seed, counter)
            self._charge_packing(counter, 2)  # pk poly + sk poly

        keygen_cycles = self._measure(run_keygen)
        keys = keys_box["keys"]

        ct_box: dict[str, Any] = {}

        def run_encaps(counter: OpCounter) -> None:
            ct_box["ct"], ct_box["ss"] = self.kem.encaps(
                keys, message=self.seed, counter=counter
            )
            self._charge_packing(counter, 2)  # unpack pk, pack u

        encaps_cycles = self._measure(run_encaps)

        def run_decaps(counter: OpCounter) -> None:
            shared = self.kem.decaps(keys, ct_box["ct"], counter)
            if shared != ct_box["ss"]:
                raise AssertionError("NewHope decapsulation mismatch")
            self._charge_packing(counter, 1)  # unpack u

        decaps_cycles = self._measure(run_decaps)

        return ProtocolCycles(
            scheme=self.params.name,
            profile="cpa_accel",
            key_generation=keygen_cycles,
            encapsulation=encaps_cycles,
            decapsulation=decaps_cycles,
            kernels=self.measure_kernels(),
        )
