"""Protocol-level cycle measurement (Table II).

A :class:`CycleModel` instantiates one of the paper's three RISC-V
configurations and *executes* the full CCA KEM with operation counting
on deterministic data, then prices the counts:

* ``"ref"`` — reference software: O(n^2) ternary multiplication
  (full for keygen/decryption, truncated to ``v_slots`` for the v
  component, as the reference code does), submission-style BCH
  decoder, software SHA-256 and reductions;
* ``"const_bch"`` — same, with the Walters/Roy constant-time decoder
  (the paper's security baseline);
* ``"ise"`` — the optimized co-design: MUL TER transactions (with the
  Algorithm 1/2 split for n = 1024), MUL CHIEN-backed constant-time
  decoding over the message window, accelerator-priced SHA-256 and
  pq.modq reductions.

The kernel columns of Table II (GenA, Sample poly, Multiplication,
BCH decode) are measured standalone, exactly as the paper reports
them: one GenA call, one sampled polynomial, one full ring
multiplication, one decode.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.bch.decoder import DecodeResult
from repro.cosim.accelerated import IseBchDecoder, IseMultiplier
from repro.cosim.costs import ISE_COSTS, REFERENCE_COSTS, CycleCosts, price
from repro.hashes.prng import Sha256Prng
from repro.lac.kem import LacKem
from repro.lac.params import LacParams
from repro.lac.sampling import gen_a, sample_ternary_fixed_weight
from repro.metrics import OpCounter
from repro.ring.poly import PolyRing
from repro.ring.ternary import TernaryPoly, ternary_mul, ternary_mul_truncated

#: The three RISC-V configurations of Table II.
PROFILES = ("ref", "const_bch", "ise")


@dataclass(frozen=True)
class KernelCycles:
    """The four bottleneck kernels (Table II's right-hand columns)."""

    gen_a: int
    sample_poly: int
    multiplication: int
    bch_decode: int


@dataclass(frozen=True)
class ProtocolCycles:
    """One Table II row."""

    scheme: str
    profile: str
    key_generation: int
    encapsulation: int
    decapsulation: int
    kernels: KernelCycles

    @property
    def total(self) -> int:
        """Sum of the three operations (the paper's speedup basis)."""
        return self.key_generation + self.encapsulation + self.decapsulation


#: The multiplier-strategy surface :class:`repro.lac.pke.LacPke` calls.
MultiplierFn = Callable[
    [PolyRing, TernaryPoly, np.ndarray, OpCounter | None], np.ndarray
]


def _reference_multiplier(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """The reference implementation's O(n^2) schedule, cycle-annotated."""
    return ternary_mul(ring, ternary, general, counter)


def _reference_v_multiplier(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    slots: int,
    counter: OpCounter | None = None,
) -> np.ndarray:
    return ternary_mul_truncated(ring, ternary, general, slots, counter)


class CycleModel:
    """Cycle measurement for one (parameter set, profile) pair."""

    def __init__(
        self,
        params: LacParams,
        profile: str,
        seed: bytes | None = None,
        mul_ter_length: int | None = None,
    ) -> None:
        if profile not in PROFILES:
            raise ValueError(f"profile must be one of {PROFILES}, got {profile!r}")
        self.params = params
        self.profile = profile
        self.seed = seed or bytes(range(64))
        self.costs: CycleCosts = ISE_COSTS if profile == "ise" else REFERENCE_COSTS
        self._multiplier: MultiplierFn
        self._bch_decoder: IseBchDecoder | None

        if profile == "ise":
            if mul_ter_length is None:
                self._multiplier = IseMultiplier()
            else:
                from repro.hw.mul_ter import MulTerUnit

                self._multiplier = IseMultiplier(MulTerUnit(mul_ter_length))
            self._bch_decoder = IseBchDecoder(params.bch)
            self.kem = LacKem(
                params,
                multiplier=self._multiplier,
                bch_decoder=self._bch_decoder,
            )
        else:
            self._multiplier = _reference_multiplier
            self._bch_decoder = None
            self.kem = LacKem(
                params,
                multiplier=_reference_multiplier,
                v_multiplier=_reference_v_multiplier,
                constant_time_bch=(profile == "const_bch"),
            )

    # ------------------------------------------------------------------
    # kernel measurements
    # ------------------------------------------------------------------

    def _price(self, counter: OpCounter) -> int:
        return price(counter, self.costs)

    def measure_gen_a(self) -> int:
        """Cycles of one GenA call (the Table II kernel column)."""
        counter = OpCounter()
        gen_a(self.seed[:32], self.params, counter)
        return self._price(counter)

    def measure_sample_poly(self) -> int:
        """Cycles of sampling one fixed-weight polynomial."""
        counter = OpCounter()
        prng = Sha256Prng(self.seed[:32], counter=counter)
        sample_ternary_fixed_weight(prng, self.params, counter)
        return self._price(counter)

    def measure_multiplication(self) -> int:
        """One full ring multiplication (the Table II column)."""
        counter = OpCounter()
        rng = np.random.default_rng(int.from_bytes(self.seed[:4], "little"))
        ternary = TernaryPoly(rng.integers(-1, 2, self.params.n).astype(np.int8))
        general = rng.integers(0, self.params.q, self.params.n).astype(np.int64)
        self._multiplier(self.params.ring, ternary, general, counter)
        return self._price(counter)

    def measure_bch_decode(self, errors: int = 0) -> int:
        """One BCH decode with ``errors`` injected bit errors."""
        counter = OpCounter()
        self._decode_with_errors(errors, counter)
        return self._price(counter)

    def _decode_with_errors(self, errors: int, counter: OpCounter) -> DecodeResult:
        from repro.bch.encoder import BCHEncoder

        code = self.params.bch
        rng = np.random.default_rng(1234)
        message = rng.integers(0, 2, code.k).astype(np.uint8)
        codeword = BCHEncoder(code).encode(message)
        if errors:
            positions = rng.choice(code.n, size=errors, replace=False)
            codeword = codeword.copy()
            codeword[positions] ^= 1
        if self.profile == "ise":
            assert self._bch_decoder is not None
            return self._bch_decoder.decode(codeword, counter)
        if self.profile == "const_bch":
            return self.kem.pke.codec.ct_decoder.decode(codeword, counter)
        return self.kem.pke.codec.decoder.decode(codeword, counter)

    def measure_kernels(self) -> KernelCycles:
        """All four bottleneck kernel columns of Table II."""
        return KernelCycles(
            gen_a=self.measure_gen_a(),
            sample_poly=self.measure_sample_poly(),
            multiplication=self.measure_multiplication(),
            bch_decode=self.measure_bch_decode(),
        )

    # ------------------------------------------------------------------
    # protocol measurements
    # ------------------------------------------------------------------

    def measure_protocol(self) -> ProtocolCycles:
        """Run keygen/encaps/decaps with counting; price each operation."""
        kg_counter = OpCounter()
        pair = self.kem.keygen(seed=self.seed, counter=kg_counter)

        enc_counter = OpCounter()
        enc = self.kem.encaps(
            pair.public_key, message=self.seed[:32], counter=enc_counter
        )

        dec_counter = OpCounter()
        shared = self.kem.decaps(pair.secret_key, enc.ciphertext, dec_counter)
        if shared != enc.shared_secret:
            raise AssertionError(
                f"{self.params.name}/{self.profile}: decapsulation mismatch "
                "during cycle measurement"
            )

        return ProtocolCycles(
            scheme=self.params.name,
            profile=self.profile,
            key_generation=self._price(kg_counter),
            encapsulation=self._price(enc_counter),
            decapsulation=self._price(dec_counter),
            kernels=self.measure_kernels(),
        )


def speedup(baseline: ProtocolCycles, optimized: ProtocolCycles) -> float:
    """The paper's headline factor: total protocol cycles, baseline/opt."""
    return baseline.total / optimized.total
