"""ISS validation of the analytical cycle model.

Each kernel here exists twice: as real RISC-V assembly executed on the
instruction-set simulator, and as an analytical prediction built from
the same :class:`RiscyCostModel` prices.  The validation asserts both
*functional equivalence* (the accelerator data path produces the
golden result from machine code, through the real operand-packing
protocol) and *cycle agreement* (the ISS-measured cycles equal the
instruction-schedule prediction) — closing the loop between the
annotated-operation-count models of :mod:`repro.cosim` and an actual
execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashes.sha256 import IV, compress
from repro.riscv.assembler import Assembler
from repro.riscv.cost_model import DEFAULT_COST_MODEL
from repro.riscv.cpu import Cpu
from repro.riscv.memory import Memory
from repro.riscv.pq_alu import PqAlu
from repro.ring.poly import PolyRing

#: Data region base (code starts at 0).
DATA_BASE = 0x10000


@dataclass
class KernelValidation:
    """Outcome of one kernel run."""

    name: str
    iss_cycles: int
    predicted_cycles: int
    functional_ok: bool

    @property
    def exact(self) -> bool:
        return self.iss_cycles == self.predicted_cycles


def _run(source: str, preload: dict[int, bytes], mul_ter_length: int = 512) -> Cpu:
    program = Assembler().assemble(source)
    cpu = Cpu(Memory(1 << 20), PqAlu(mul_ter_length))
    cpu.memory.write_bytes(program.base, program.image)
    for address, blob in preload.items():
        cpu.memory.write_bytes(address, blob)
    cpu.reset(pc=program.entry())
    result = cpu.run()
    if result.reason not in ("ecall", "ebreak"):
        raise RuntimeError(f"kernel did not terminate: {result}")
    return cpu


# ---------------------------------------------------------------------------
# kernel 1: array reduction mod q — remu vs. pq.modq
# ---------------------------------------------------------------------------

_MODQ_TEMPLATE = """
.equ SRC, {src}
.equ DST, {dst}
_start:
    li   a0, SRC
    li   a1, DST
    li   a2, {count}
{setup}
loop:
    lw   t0, 0(a0)
{reduce}
    sw   t1, 0(a1)
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, -1
    bnez a2, loop
    ecall
"""


def validate_modq_kernel(count: int = 64, use_ise: bool = True) -> KernelValidation:
    """Reduce ``count`` words mod 251 via remu or pq.modq."""
    rng = np.random.default_rng(99)
    values = rng.integers(0, 1 << 32, count, dtype=np.uint64)
    src, dst = DATA_BASE, DATA_BASE + 4 * count
    source = _MODQ_TEMPLATE.format(
        src=src,
        dst=dst,
        count=count,
        setup="" if use_ise else "    li   t2, 251",
        reduce="    pq.modq t1, t0" if use_ise else "    remu t1, t0, t2",
    )
    blob = b"".join(int(v).to_bytes(4, "little") for v in values)
    cpu = _run(source, {src: blob})

    got = [cpu.memory.load_word(dst + 4 * i) for i in range(count)]
    functional_ok = got == [int(v) % 251 for v in values]

    c = DEFAULT_COST_MODEL
    per_iter = c.load + (c.pq_issue if use_ise else c.div) + c.store + 3 * c.alu
    # loop-back branch taken count-1 times, falls through once
    predicted = (
        2 * 2 * c.alu  # li SRC/DST expand to lui+addi pairs
        + c.alu        # li count (fits 12 bits)
        + (0 if use_ise else c.alu)  # modulus setup
        + count * per_iter
        + (count - 1) * c.branch_taken
        + c.branch_not_taken
        + c.alu  # final ecall accounting (halt consumes one cycle)
    )
    return KernelValidation(
        name="modq_ise" if use_ise else "modq_sw",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


# ---------------------------------------------------------------------------
# kernel 2: a full MUL TER transaction from machine code
# ---------------------------------------------------------------------------

_MUL_TER_SOURCE = """
.equ RS1TAB, {rs1tab}
.equ RS2TAB, {rs2tab}
.equ OUT, {out}
_start:
    li   s0, RS1TAB
    li   s1, RS2TAB
    li   s2, {transfers}
xfer:
    lw   t0, 0(s0)
    lw   t1, 0(s1)
    pq.mul_ter x0, t0, t1
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, xfer
    li   t0, 1            # conv_n = 1 (negative wrapped convolution)
    li   t1, {start_ctrl}
    pq.mul_ter x0, t0, t1
    li   s0, OUT
    li   s2, {reads}
    li   s3, 0
    li   s4, {read_ctrl}
read:
    slli t1, s3, 8
    or   t1, t1, s4
    pq.mul_ter t0, x0, t1
    sw   t0, 0(s0)
    addi s0, s0, 4
    addi s3, s3, 1
    addi s2, s2, -1
    bnez s2, read
    ecall
"""


def validate_mul_ter_kernel(length: int = 512) -> KernelValidation:
    """Drive a full accelerator multiplication through pq.mul_ter.

    The operand words are pre-packed by the host (the transfer loop
    measures the ISE data path; software packing costs are validated
    separately through the cycle-model calibration).
    """
    rng = np.random.default_rng(5)
    ternary = rng.integers(-1, 2, length).astype(np.int64)
    general = rng.integers(0, 251, length).astype(np.int64)

    rs1_words: list[int] = []
    rs2_words: list[int] = []
    for base in range(0, length, 5):
        stop = min(base + 5, length)
        rs1, rs2 = PqAlu.pack_mul_ter_input(
            base // 5,
            [int(x) for x in general[base:stop]],
            [int(x) for x in ternary[base:stop]],
        )
        rs1_words.append(rs1)
        rs2_words.append(rs2)

    transfers = len(rs1_words)
    reads = -(-length // 4)
    rs1tab = DATA_BASE
    rs2tab = rs1tab + 4 * transfers
    out = rs2tab + 4 * transfers

    source = _MUL_TER_SOURCE.format(
        rs1tab=rs1tab,
        rs2tab=rs2tab,
        out=out,
        transfers=transfers,
        reads=reads,
        start_ctrl=1 << 28,
        read_ctrl=2 << 28,
    )
    preload = {
        rs1tab: b"".join(w.to_bytes(4, "little") for w in rs1_words),
        rs2tab: b"".join(w.to_bytes(4, "little") for w in rs2_words),
    }
    cpu = _run(source, preload, mul_ter_length=length)

    result = np.frombuffer(
        cpu.memory.read_bytes(out, length), dtype=np.uint8
    ).astype(np.int64)
    golden = PolyRing(length).mul(np.mod(ternary, 251), general)
    functional_ok = bool(np.array_equal(result, golden))

    c = DEFAULT_COST_MODEL
    predicted = (
        2 * 2 * c.alu + c.alu  # li s0/s1 (lui+addi pairs), li s2 (small)
        + transfers * (2 * c.load + c.pq_issue + 3 * c.alu)
        + (transfers - 1) * c.branch_taken + c.branch_not_taken
        + c.alu + 2 * c.alu  # li t0, li t1 (lui only would be 1; li emits pair)
        + (c.pq_issue + length)  # start + busy
        + 2 * c.alu + c.alu + c.alu + 2 * c.alu  # li s0 (pair), s2, s3, s4 (pair)
        + reads * (2 * c.alu + c.pq_issue + c.store + 3 * c.alu)
        + (reads - 1) * c.branch_taken + c.branch_not_taken
        + c.alu  # ecall
    )
    return KernelValidation(
        name=f"mul_ter_{length}",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


# ---------------------------------------------------------------------------
# kernel 3: one SHA-256 compression through pq.sha256
# ---------------------------------------------------------------------------

_SHA_SOURCE = """
.equ MSG, {msg}
.equ DIGEST, {digest}
_start:
    li   t1, {reset_ctrl}
    pq.sha256 x0, x0, t1
    li   s0, MSG
    li   s2, 16
    li   s3, 0
wr:
    lw   t0, 0(s0)
    slli t1, s3, 8
    pq.sha256 x0, t0, t1
    addi s0, s0, 4
    addi s3, s3, 4
    addi s2, s2, -1
    bnez s2, wr
    li   t1, {hash_ctrl}
    pq.sha256 x0, x0, t1
    li   s0, DIGEST
    li   s2, 8
    li   s3, 0
    li   s4, {read_ctrl}
rd:
    slli t1, s3, 8
    or   t1, t1, s4
    pq.sha256 t0, x0, t1
    sw   t0, 0(s0)
    addi s0, s0, 4
    addi s3, s3, 1
    addi s2, s2, -1
    bnez s2, rd
    ecall
"""


def validate_sha256_kernel() -> KernelValidation:
    """One compression of a 64-byte block via the accelerator."""
    block = bytes(range(64))
    msg, digest = DATA_BASE, DATA_BASE + 64
    source = _SHA_SOURCE.format(
        msg=msg,
        digest=digest,
        reset_ctrl=3 << 28,
        hash_ctrl=1 << 28,
        read_ctrl=2 << 28,
    )
    cpu = _run(source, {msg: block})

    got = cpu.memory.read_bytes(digest, 32)
    # the register holds the big-endian digest word; sw stores it with
    # the core's little-endian byte order
    want = b"".join(w.to_bytes(4, "little") for w in compress(IV, block))
    functional_ok = got == want

    c = DEFAULT_COST_MODEL
    busy = 65
    predicted = (
        2 * c.alu + c.pq_issue        # reset
        + 2 * c.alu + 2 * c.alu       # li s0 (pair), li s2 + li s3
        + 16 * (c.load + c.alu + c.pq_issue + 3 * c.alu)
        + 15 * c.branch_taken + c.branch_not_taken
        + 2 * c.alu + (c.pq_issue + busy)   # hash
        + 2 * c.alu + 2 * c.alu + 2 * c.alu  # li s0 (pair), s2, s3, s4 (pair)
        + 8 * (2 * c.alu + c.pq_issue + c.store + 3 * c.alu)
        + 7 * c.branch_taken + c.branch_not_taken
        + c.alu
    )
    return KernelValidation(
        name="sha256_block",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


# ---------------------------------------------------------------------------
# kernel 4: the reference mod-add inner loop (calibration anchor)
# ---------------------------------------------------------------------------

_MODADD_SOURCE = """
.equ A, {a}
.equ B, {b}
_start:
    li   a0, A
    li   a1, B
    li   a2, {count}
    li   a3, 251
loop:
    lbu  t0, 0(a0)
    lbu  t1, 0(a1)
    add  t0, t0, t1
    sltu t2, t0, a3        # t2 = (t0 < q)
    addi t2, t2, -1        # mask: 0 if t0 < q else -1
    and  t2, t2, a3
    sub  t0, t0, t2        # branchless conditional correction
    sb   t0, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    bnez a2, loop
    ecall
"""


def validate_modadd_kernel(count: int = 256) -> KernelValidation:
    """The ternary multiplier's software inner loop, on the ISS.

    The analytical model charges 2 loads + 2 ALU + store + loop = 9
    cycles per inner iteration (the Table II calibration anchor).  This
    naive one-element-per-iteration loop costs 16 (three pointer bumps
    and a full taken branch per element); a compiler unrolling by four
    amortizes the bookkeeping to ~2 cycles/element, landing at the
    anchor.  The validation asserts the ISS agrees with the
    instruction-schedule prediction exactly.
    """
    rng = np.random.default_rng(17)
    a = rng.integers(0, 251, count).astype(np.uint8)
    b = rng.integers(0, 251, count).astype(np.uint8)
    addr_a, addr_b = DATA_BASE, DATA_BASE + count
    source = _MODADD_SOURCE.format(a=addr_a, b=addr_b, count=count)
    cpu = _run(source, {addr_a: a.tobytes(), addr_b: b.tobytes()})

    got = np.frombuffer(cpu.memory.read_bytes(addr_a, count), dtype=np.uint8)
    functional_ok = bool(np.array_equal(got, (a.astype(int) + b) % 251))

    c = DEFAULT_COST_MODEL
    predicted = (
        2 * 2 * c.alu + 2 * c.alu  # address li pairs + count/modulus li
        + count * (2 * c.load + 8 * c.alu + c.store)
        + (count - 1) * c.branch_taken + c.branch_not_taken
        + c.alu
    )
    return KernelValidation(
        name="modadd_inner_loop",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


# ---------------------------------------------------------------------------
# kernel 5: the accelerated Chien search loop through pq.mul_chien
# ---------------------------------------------------------------------------

_CHIEN_SOURCE = """
.equ LOADTAB, {loadtab}
.equ PARTIAL, {partial}
_start:
    li   s0, LOADTAB
    li   s5, {groups}
group:
    lw   t0, 0(s0)          # left-pair transfer operands
    lw   t1, 4(s0)
    pq.mul_chien x0, t0, t1
    lw   t0, 8(s0)          # right-pair transfer operands
    lw   t1, 12(s0)
    pq.mul_chien x0, t0, t1
    li   s1, PARTIAL
    li   s2, {probes}
    li   s4, {step_ctrl}
probe:
    pq.mul_chien t2, x0, s4  # one activation: out_j for the next power
    lw   t3, 0(s1)
    xor  t3, t3, t2
    sw   t3, 0(s1)
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, probe
    addi s0, s0, 16
    addi s5, s5, -1
    bnez s5, group
    ecall
"""


def validate_chien_kernel(probes: int = 64) -> KernelValidation:
    """Drive the message-window Chien search through pq.mul_chien.

    The driver loop mirrors :class:`repro.cosim.accelerated.IseBchDecoder`:
    each locator group is loaded once (two packed transfers) and then
    stepped across all probes, with the partial sums accumulated in
    memory; the host combines with lambda_0 and compares the detected
    roots against a naive polynomial evaluation.
    """
    from repro.gf.field import GF512
    from repro.gf.polygf import PolyGF
    from repro.hw.chien import ChienUnit

    # a degree-3 locator with roots inside the probed window
    start = 112
    root_exponents = [120, 150, 160]
    locator = PolyGF.one(GF512)
    for exp in root_exponents:
        locator = locator * PolyGF(GF512, [1, GF512.inv(GF512.alpha_pow(exp))])
    lambdas = locator.coeffs + [0] * (17 - len(locator.coeffs))

    unit = ChienUnit()
    groups = 4  # t = 16
    load_words: list[int] = []
    for group in range(groups):
        left, right, _ = unit.group_elements(lambdas, group, start)
        rs1_l, rs2_l = PqAlu.pack_chien_load(left, right=False)
        rs1_r, rs2_r = PqAlu.pack_chien_load(right, right=True)
        load_words += [rs1_l, rs2_l, rs1_r, rs2_r]

    loadtab = DATA_BASE
    partial = DATA_BASE + 4 * len(load_words)
    source = _CHIEN_SOURCE.format(
        loadtab=loadtab,
        partial=partial,
        groups=groups,
        probes=probes,
        step_ctrl=2 << 28,
    )
    preload = {
        loadtab: b"".join(w.to_bytes(4, "little") for w in load_words),
        partial: bytes(4 * probes),
    }
    cpu = _run(source, preload)

    lambda0 = lambdas[0]
    found = [
        start + i
        for i in range(probes)
        if (lambda0 ^ cpu.memory.load_word(partial + 4 * i)) == 0
    ]
    naive = [
        start + i
        for i in range(probes)
        if locator.eval(GF512.alpha_pow(start + i)) == 0
    ]
    functional_ok = found == naive == root_exponents

    c = DEFAULT_COST_MODEL
    busy = ChienUnit().cycles_per_step
    per_probe = (c.pq_issue + busy) + c.load + c.alu + c.store + 2 * c.alu
    predicted = (
        2 * c.alu + c.alu  # li s0 (pair), li s5
        + groups * (
            4 * c.load + 2 * c.pq_issue      # group loads
            + 2 * c.alu + c.alu + 2 * c.alu  # li s1 (pair), s2, s4 (pair)
            + probes * per_probe
            + (probes - 1) * c.branch_taken + c.branch_not_taken
            + 2 * c.alu                      # group pointer/counter bumps
        )
        + (groups - 1) * c.branch_taken + c.branch_not_taken
        + c.alu  # ecall
    )
    return KernelValidation(
        name="chien_search",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


# ---------------------------------------------------------------------------
# kernel 6: constant-time BCH syndrome computation (pure software)
# ---------------------------------------------------------------------------

_SYNDROME_SOURCE = """
.equ WORD, {word}
.equ ANTILOG, {antilog}
.equ SYND, {synd}
.equ NBITS, {nbits}
.equ TWOT, {twot}

# Dense constant-time syndromes: for every position i and every j in
# 1..2t, S_j ^= antilog[(i*j) mod 511] * bit_i  (masked, no branch on
# the bit value).  t0 tracks i, s7 the running exponent i*j mod 511.
_start:
    li   s0, WORD
    li   s1, ANTILOG
    li   s2, SYND
    li   s3, 511
    li   t0, 0              # i
outer:
    lbu  t1, 0(s0)          # bit_i (0 or 1)
    neg  t1, t1             # mask: 0 or 0xFFFFFFFF
    li   t2, 0              # j - 1
    mv   s7, x0             # exponent = i*0 mod 511
inner:
    add  s7, s7, t0         # exponent += i
    blt  s7, s3, nored
    sub  s7, s7, s3         # mod 511 by conditional subtract
nored:
    slli t3, s7, 1          # antilog table has 2-byte entries
    add  t3, t3, s1
    lhu  t4, 0(t3)          # alpha^(i*j)
    and  t4, t4, t1         # masked by bit_i
    slli t5, t2, 1
    add  t5, t5, s2
    lhu  t6, 0(t5)
    xor  t6, t6, t4
    sh   t6, 0(t5)          # S_j ^= term
    addi t2, t2, 1
    li   t5, TWOT
    bne  t2, t5, inner
    addi s0, s0, 1
    addi t0, t0, 1
    li   t5, NBITS
    bne  t0, t5, outer
    li   a0, 0
    ecall
"""


def validate_syndrome_kernel(errors: int = 5) -> KernelValidation:
    """Constant-time BCH(511,367,16) syndromes on the ISS.

    The host precomputes the antilog table (public data); the program
    runs the dense masked accumulation over all 400 positions and 32
    syndrome slots.  Validated against the Python constant-time
    decoder's syndromes; the cycle prediction is built from the exact
    instruction schedule, including the data-dependent conditional
    subtract in the exponent update (whose count the host computes
    from public quantities only — i and j, never the codeword).
    """
    from repro.bch.code import LAC_BCH_128_256
    from repro.bch.ct_decoder import ConstantTimeBCHDecoder
    from repro.bch.encoder import BCHEncoder
    from repro.gf.field import GF512

    code = LAC_BCH_128_256
    rng = np.random.default_rng(31)
    message = rng.integers(0, 2, code.k).astype(np.uint8)
    word = BCHEncoder(code).encode(message)
    if errors:
        positions = rng.choice(code.n, size=errors, replace=False)
        word[positions] ^= 1

    antilog = b"".join(
        GF512.alpha_pow(i).to_bytes(2, "little") for i in range(511)
    )
    two_t = 2 * code.t
    word_base = DATA_BASE
    antilog_base = word_base + code.n
    synd_base = antilog_base + len(antilog)

    source = _SYNDROME_SOURCE.format(
        word=word_base,
        antilog=antilog_base,
        synd=synd_base,
        nbits=code.n,
        twot=two_t,
    )
    preload = {
        word_base: bytes(int(b) for b in word),
        antilog_base: antilog,
        synd_base: bytes(2 * two_t),
    }
    cpu = _run(source, preload)

    from repro.metrics import NULL_COUNTER

    got = [cpu.memory.load(synd_base + 2 * j, 2) for j in range(two_t)]
    expected = ConstantTimeBCHDecoder(code)._syndromes(word, NULL_COUNTER)
    functional_ok = got == expected

    c = DEFAULT_COST_MODEL
    # count the exponent-reduction branches from public indices
    reductions = 0
    for i in range(code.n):
        exponent = 0
        for _ in range(two_t):
            exponent += i
            if exponent >= 511:
                exponent -= 511
                reductions += 1
    total_inner = code.n * two_t
    predicted = (
        3 * 2 * c.alu + 2 * c.alu  # li s0/s1/s2 (pairs), s3, t0(li 0 -> 1)
        + code.n * (c.load + c.alu + c.alu + c.alu)  # lbu, neg, li t2, mv
        + total_inner * (
            c.alu                       # add exponent
            + 2 * c.load + 2 * c.alu    # table loads + address shifts
            + 2 * c.alu                 # add addresses
            + c.alu                     # and mask
            + c.alu                     # xor
            + c.store                   # sh
            + 2 * c.alu                 # addi j, li TWOT
        )
        + reductions * (c.branch_not_taken + c.alu)   # blt falls through, sub
        + (total_inner - reductions) * c.branch_taken  # blt taken (skip sub)
        + (total_inner - code.n) * c.branch_taken      # inner loop-back
        + code.n * c.branch_not_taken                  # inner exit
        + code.n * (3 * c.alu)                         # addi/addi/li NBITS
        + (code.n - 1) * c.branch_taken + c.branch_not_taken
        + c.alu  # li a0 + ecall accounting
        + c.alu
    )
    return KernelValidation(
        name="ct_syndromes",
        iss_cycles=cpu.cycles,
        predicted_cycles=predicted,
        functional_ok=functional_ok,
    )


def run_all() -> list[KernelValidation]:
    """Every validation kernel (used by the validation benchmark)."""
    return [
        validate_modq_kernel(use_ise=True),
        validate_modq_kernel(use_ise=False),
        validate_mul_ter_kernel(),
        validate_sha256_kernel(),
        validate_modadd_kernel(),
        validate_chien_kernel(),
        validate_syndrome_kernel(),
    ]
