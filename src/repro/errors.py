"""The unified error hierarchy of the repro KEM stack.

Every error the serving stack raises deliberately — protocol framing
failures, typed non-OK service responses, client-side deadlines,
backend worker crashes, injected chaos faults — derives from one base,
:class:`KemError`, and carries a stable machine-readable ``reason``
tag.  Callers that want coarse handling catch :class:`KemError`;
callers that want precise handling match the subclasses (or switch on
``.reason`` without importing them).

The hierarchy::

    KemError                      reason
    ├── ProtocolError             "bad-magic"/"bad-version"/.../"malformed"
    ├── ServiceError              "internal"
    │   ├── ServiceBusy           "busy"
    │   ├── RequestTimedOut       "timeout"
    │   ├── ServiceDraining       "shutting-down"
    │   ├── BadRequest            "bad-request"
    │   ├── KeyNotFound           "not-found"
    │   ├── ServiceClosed         "closed"
    │   └── DeadlineExceeded      "deadline"
    ├── BackendError              "backend"
    │   ├── UnsupportedScheme     "unsupported-scheme"
    │   └── WorkerCrashed         "worker-crashed"
    └── InjectedFault             "injected-fault"  (also a RuntimeError)

``reason`` tags are part of the public API: the server keys its
``kem_connection_errors_total`` counter on :class:`ProtocolError`
reasons, and the chaos/retry suites assert on them.  Renaming one is a
breaking change.

This module has **no dependencies** inside the package, so anything —
``repro.serve``, ``repro.backend``, ``repro.faults`` — can import it
without cycles.  ``repro.serve`` re-exports the service-facing names
for backwards compatibility; :mod:`repro.api` re-exports everything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.serve.protocol import Status


class KemError(Exception):
    """Base of every deliberate error in the repro KEM stack.

    ``reason`` is a short, stable, machine-readable tag identifying
    the failure class — subclasses override it at class level, and a
    constructor may refine it per instance (:class:`ProtocolError`
    does).
    """

    #: Stable machine-readable failure tag.
    reason: str = "internal"

    def __init__(self, message: str = "", *, reason: str | None = None) -> None:
        super().__init__(message)
        if reason is not None:
            self.reason = reason


class ProtocolError(KemError):
    """A malformed frame (bad magic/version/op/length or short payload).

    ``reason`` is a short machine-readable tag (``"bad-magic"``,
    ``"bad-version"``, ``"bad-enum"``, ``"oversized"``,
    ``"truncated"``, or the generic ``"malformed"``) — the server keys
    its connection-error counters on it, so operators can tell framing
    corruption from peers that simply hang up mid-frame.
    """

    reason = "malformed"

    def __init__(self, message: str, reason: str = "malformed") -> None:
        super().__init__(message, reason=reason)


class ServiceError(KemError):
    """A non-OK response from the service (carries the status).

    ``status`` is the wire :class:`repro.serve.protocol.Status` of the
    subclass; it is attached by :mod:`repro.serve.client` (this module
    cannot import the protocol without a cycle), so a freshly imported
    hierarchy formats messages with the ``reason`` tag until the
    serving layer is loaded.
    """

    status: Optional["Status"] = None

    def __init__(self, message: str) -> None:
        label = self.status.name if self.status is not None else self.reason.upper()
        super().__init__(f"{label}: {message}")


class ServiceBusy(ServiceError):
    """Rejected by backpressure: the request was never queued."""

    reason = "busy"


class RequestTimedOut(ServiceError):
    """Accepted but not served within the per-request timeout."""

    reason = "timeout"


class ServiceDraining(ServiceError):
    """The service is shutting down and takes no new work."""

    reason = "shutting-down"


class BadRequest(ServiceError):
    """The service rejected the request as malformed."""

    reason = "bad-request"


class KeyNotFound(ServiceError):
    """The referenced key id is not hosted by the service."""

    reason = "not-found"


class ServiceClosed(ServiceError):
    """The connection dropped with requests still in flight."""

    reason = "closed"


class DeadlineExceeded(ServiceError):
    """A client-side per-attempt deadline expired before the response.

    Raised by the retry machinery (``RetryPolicy.attempt_timeout_s``),
    never by the server — a hung or partitioned service surfaces as
    this instead of an indefinite wait.
    """

    reason = "deadline"


class BackendError(KemError):
    """An execution backend failed to run a submitted batch."""

    reason = "backend"


class UnsupportedScheme(BackendError):
    """A backend refused a scheme it cannot execute faithfully.

    Raised at *registration* time — e.g. the cosim backend models LAC
    cycle costs only, so accepting a NewHope key would silently produce
    wrong tallies.  Failing the registration keeps the error at the
    seam where the operator can still pick a different backend.
    """

    reason = "unsupported-scheme"


class WorkerCrashed(BackendError):
    """A backend worker process died mid-batch.

    The :class:`repro.backend.ProcessBackend` surfaces this when its
    pool breaks; the supervised pool is restarted (up to the restart
    budget) and the in-flight batch fails — through the service this
    becomes the typed ``INTERNAL`` response, and the restart is counted
    in ``kem_worker_restarts_total``.
    """

    reason = "worker-crashed"


class InjectedFault(KemError, RuntimeError):
    """The exception raised by a ``kernel``/``raise`` chaos fault.

    Distinct from any organic failure, so tests can tell an injected
    batch abort from a real kernel bug.  Still a ``RuntimeError`` for
    backwards compatibility with pre-unification catch sites.
    """

    reason = "injected-fault"


__all__ = [
    "BackendError",
    "BadRequest",
    "DeadlineExceeded",
    "InjectedFault",
    "KemError",
    "KeyNotFound",
    "ProtocolError",
    "RequestTimedOut",
    "ServiceBusy",
    "ServiceClosed",
    "ServiceDraining",
    "ServiceError",
    "UnsupportedScheme",
    "WorkerCrashed",
]
