"""Evaluation harness: regenerates every table of the paper.

* :mod:`repro.eval.table1` — BCH decoder timing (submission vs.
  Walters, 0 vs. 16 errors, per-phase cycles);
* :mod:`repro.eval.table2` — protocol + kernel cycle counts for all
  parameter sets and profiles, with the paper's values for comparison;
* :mod:`repro.eval.table3` — FPGA resource estimates;
* :mod:`repro.eval.ablations` — MUL TER length sweep (performance vs.
  area trade-off, Sec. IV-A's design-choice discussion);
* :mod:`repro.eval.leakage` — the timing-side-channel distinguisher
  motivating Table I (Welch t-test over cycle distributions);
* :mod:`repro.eval.reporting` — shared table formatting.
"""

from repro.eval.table1 import Table1Row, generate_table1, PAPER_TABLE1
from repro.eval.table2 import Table2Row, generate_table2, PAPER_TABLE2
from repro.eval.table3 import Table3Row, generate_table3, PAPER_TABLE3
from repro.eval.reporting import format_table

__all__ = [
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "format_table",
]
