"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.eval            # everything (Tables I-III + extras)
    python -m repro.eval table1     # one artifact
    python -m repro.eval table2 table3

Artifacts: table1, table2, table3, newhope, ablations, noise, validate.
"""

from __future__ import annotations

import sys

from repro.eval.reporting import format_table


def run_table1() -> None:
    from repro.eval.table1 import PAPER_TABLE1, generate_table1

    rows = generate_table1()
    print(format_table(
        ["Scheme", "Fails", "Syndr.", "(paper)", "ErrLoc", "(paper)",
         "Chien", "(paper)", "Decode", "(paper)"],
        [(m.scheme, m.fails, m.syndrome, p.syndrome, m.error_locator,
          p.error_locator, m.chien, p.chien, m.decode, p.decode)
         for m, p in zip(rows, PAPER_TABLE1)],
        title="Table I — BCH(511,367,16) decode cycles on RISC-V",
    ))


def run_table2() -> None:
    from repro.eval.table2 import (
        PAPER_SPEEDUPS,
        PAPER_TABLE2,
        generate_table2,
        measured_speedups,
    )

    paper = {r.scheme: r for r in PAPER_TABLE2}
    rows = generate_table2()
    print(format_table(
        ["Scheme", "KeyGen", "(paper)", "Encaps", "(paper)", "Decaps", "(paper)"],
        [(r.scheme, r.key_generation, paper[r.scheme].key_generation,
          r.encapsulation, paper[r.scheme].encapsulation,
          r.decapsulation, paper[r.scheme].decapsulation) for r in rows],
        title="Table II — protocol cycle counts",
    ))
    print()
    speedups = measured_speedups()
    print(format_table(
        ["Scheme", "speedup (model)", "speedup (paper)"],
        [(name, speedups[name], PAPER_SPEEDUPS[name]) for name in speedups],
        title="Headline speedups (const-BCH baseline / ISE)",
    ))


def run_table3() -> None:
    from repro.eval.table3 import PAPER_TABLE3, generate_table3, pq_alu_overhead

    paper = {r.block: r for r in PAPER_TABLE3}
    print(format_table(
        ["Block", "LUTs", "(paper)", "Regs", "(paper)", "BRAM", "DSP"],
        [(r.block, r.luts, paper[r.block].luts, r.registers,
          paper[r.block].registers, r.brams, r.dsps)
         for r in generate_table3()],
        title="Table III — resource utilization",
    ))
    overhead = pq_alu_overhead()
    print(f"\nPQ-ALU overhead: {overhead.luts:,} LUTs / "
          f"{overhead.registers:,} registers / {overhead.dsps} DSPs "
          f"(paper: 32,617 / 11,019 / 2)")


def run_newhope() -> None:
    from repro.cosim.newhope_model import NewHopeCycleModel, PAPER_NEWHOPE_ROW

    row = NewHopeCycleModel().measure_protocol()
    paper = PAPER_NEWHOPE_ROW
    print(format_table(
        ["Operation", "measured", "paper [8]"],
        [("Key-Generation", row.key_generation, paper["key_generation"]),
         ("Encapsulation", row.encapsulation, paper["encapsulation"]),
         ("Decapsulation", row.decapsulation, paper["decapsulation"]),
         ("GenA", row.kernels.gen_a, paper["gen_a"]),
         ("Sample poly", row.kernels.sample_poly, paper["sample_poly"]),
         ("Multiplication", row.kernels.multiplication, paper["multiplication"])],
        title="NewHope1024 CPA baseline (vs. [8])",
    ))


def run_ablations() -> None:
    from repro.eval.ablations import (
        karatsuba_ablation,
        keccak_generation_ablation,
        sweep_mul_ter_lengths,
    )

    print(format_table(
        ["Unit length", "LUTs", "Registers", "mult n=512", "mult n=1024"],
        [(p.length, p.luts, p.registers, p.cycles_n512, p.cycles_n1024)
         for p in sweep_mul_ter_lengths()],
        title="Ablation — MUL TER length sweep",
    ))
    keccak = keccak_generation_ablation()
    print(f"\nKeccak future work: GenA {keccak.gen_a_sha256:,} -> "
          f"{keccak.gen_a_keccak:,} ({keccak.gen_a_speedup:.2f}x), "
          f"+{keccak.area_delta_luts:,} LUTs")
    karatsuba = karatsuba_ablation()
    print(f"Karatsuba future work: {karatsuba.base_mults_karatsuba:,} vs "
          f"{karatsuba.base_mults_schoolbook:,} base multiplications; "
          f"SW cycles {karatsuba.karatsuba_software_cycles:,} vs "
          f"{karatsuba.ternary_schoolbook_cycles:,}")


def run_noise() -> None:
    from repro.eval.noise import channel_error_distribution, h_sweep
    from repro.lac.params import ALL_PARAMS

    print(format_table(
        ["Scheme", "mean errors", "max errors", "t"],
        [(r.scheme, r.mean_errors, r.max_errors, r.correction_capacity)
         for r in (channel_error_distribution(p, trials=10) for p in ALL_PARAMS)],
        title="Decryption-noise Monte Carlo",
    ))
    print(format_table(
        ["h", "D2 max errors", "plain max errors", "plain fails"],
        [(p.h, p.d2_max, "-" if p.plain_max is None else p.plain_max,
          p.plain_failed) for p in h_sweep(trials=5)],
        title="Secret-weight sweep (LAC-256 geometry)",
    ))


def run_validate() -> None:
    from repro.cosim.validation import run_all

    print(format_table(
        ["Kernel", "ISS cycles", "Predicted", "Exact", "Functional"],
        [(v.name, v.iss_cycles, v.predicted_cycles, v.exact, v.functional_ok)
         for v in run_all()],
        title="ISS validation",
    ))


def run_sensitivity() -> None:
    from repro.eval.sensitivity import SensitivityAnalysis

    analysis = SensitivityAnalysis()
    points = analysis.sweep()
    by_parameter: dict[str, list] = {}
    for point in points:
        by_parameter.setdefault(point.parameter, []).append(point)
    print(format_table(
        ["Perturbed price (x0.5..x2)", "speedup min", "speedup max"],
        [(name, min(p.speedup for p in ps), max(p.speedup for p in ps))
         for name, ps in by_parameter.items()],
        title="Sensitivity — LAC-128 headline speedup under price shifts",
    ))


ARTIFACTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "newhope": run_newhope,
    "ablations": run_ablations,
    "noise": run_noise,
    "validate": run_validate,
    "sensitivity": run_sensitivity,
}


def main(argv: list[str]) -> int:
    targets = argv or list(ARTIFACTS)
    unknown = [t for t in targets if t not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ARTIFACTS)}", file=sys.stderr)
        return 2
    for index, target in enumerate(targets):
        if index:
            print("\n" + "=" * 72 + "\n")
        ARTIFACTS[target]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
