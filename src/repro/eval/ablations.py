"""Design-choice ablations (Sec. IV-A's trade-off discussion).

The paper fixes the MUL TER unit at length 512 as "a good trade-off
between performance and area", noting that a larger unit would not
help much because multiplication is already faster than polynomial
generation.  This module sweeps the unit length and quantifies both
claims:

* cycles for a full LAC multiplication at each length (n = 512 via a
  direct run or splitting; n = 1024 via one/two split levels);
* LUT/register cost of the unit at each length;
* the "already faster than GenA" crossover check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cosim.accelerated import IseMultiplier
from repro.cosim.costs import ISE_COSTS, price
from repro.cosim.protocol import CycleModel
from repro.hw.area import AreaModel
from repro.hw.mul_ter import MulTerUnit
from repro.lac.params import LAC_128, LAC_192, LacParams
from repro.metrics import OpCounter
from repro.ring.ternary import TernaryPoly


@dataclass(frozen=True)
class MulTerDesignPoint:
    """One point of the length sweep."""

    length: int
    luts: int
    registers: int
    cycles_n512: int
    cycles_n1024: int


def _single_transaction_cycles(unit_length: int) -> int:
    """Cycles for one full transaction of a length-``unit_length`` unit."""
    rng = np.random.default_rng(3)
    counter = OpCounter()
    unit = MulTerUnit(unit_length)
    ternary = rng.integers(-1, 2, unit_length).astype(np.int8)
    general = rng.integers(0, 251, unit_length).astype(np.int64)
    _SizedDriver(unit).transact(ternary, general, counter)
    return price(counter, ISE_COSTS)


def _transaction_cycles(unit_length: int, operand_length: int) -> int:
    """Cycles for multiplying length-``operand_length`` ring elements.

    * operand == unit: a single transaction (the wrapped convolution is
      supported natively).
    * operand < unit: still one full transaction — the operands are
      zero-padded and the unit computes the wrap-free product, which a
      short software pass folds back by x^m + 1.
    * operand > unit: the generalized Algorithm 1/2 split.  Because the
      unit only reduces by x^L +/- 1, pieces must be L/2 long so their
      wrap-free products fit; (2m/L)^2 transactions plus per-level
      recombination loops.  For the paper's (L=512, m=1024) point the
      real annotated driver is measured instead of estimated.
    """
    if operand_length == unit_length:
        return _single_transaction_cycles(unit_length)
    if operand_length < unit_length:
        fold = operand_length * 6  # software reduction by x^m + 1
        return _single_transaction_cycles(unit_length) + fold
    if unit_length == 512 and operand_length == 1024:
        rng = np.random.default_rng(3)
        counter = OpCounter()
        multiplier = IseMultiplier()
        ternary = TernaryPoly(rng.integers(-1, 2, operand_length).astype(np.int8))
        general = rng.integers(0, 251, operand_length).astype(np.int64)
        multiplier(LAC_192.ring, ternary, general, counter)
        return price(counter, ISE_COSTS)
    import math

    pieces = 2 * operand_length // unit_length
    levels = int(math.log2(pieces))
    transactions = pieces * pieces
    recombination = levels * operand_length * 35  # measured on the 512/1024 point
    return transactions * _single_transaction_cycles(unit_length) + recombination


class _SizedDriver:
    """Annotated single-transaction driver for an arbitrary unit length."""

    def __init__(self, unit: MulTerUnit):
        self.unit = unit

    def transact(self, ternary, general, counter) -> np.ndarray:
        unit = self.unit
        with counter.phase("ise_mul512"):
            counter.count("call")
            transfers = unit.input_transfers
            counter.count("load", 10 * transfers)
            counter.count("alu", 30 * transfers)
            counter.count("pq_issue", transfers)
            counter.count("loop", transfers)
            counter.count("pq_issue")
            counter.count("alu", 2)
            counter.count("pq_busy", unit.compute_cycles)
            reads = unit.output_transfers
            counter.count("pq_issue", reads)
            counter.count("store", reads)
            counter.count("alu", reads)
            counter.count("loop", reads)
        return unit.multiply(ternary, general, True)


def sweep_mul_ter_lengths(
    lengths: tuple[int, ...] = (256, 512, 1024)
) -> list[MulTerDesignPoint]:
    """The performance/area trade-off behind the paper's length-512 pick."""
    area_model = AreaModel()
    points = []
    for length in lengths:
        estimate = area_model.estimate(MulTerUnit(length).inventory())
        cycles_512 = _transaction_cycles(length, max(length, 512))
        if length >= 1024:
            cycles_1024 = _transaction_cycles(length, length)
        else:
            cycles_1024 = _transaction_cycles(length, 1024)
        points.append(
            MulTerDesignPoint(
                length=length,
                luts=estimate.luts,
                registers=estimate.registers,
                cycles_n512=cycles_512,
                cycles_n1024=cycles_1024,
            )
        )
    return points


@dataclass(frozen=True)
class CrossoverCheck:
    """The Sec. IV-A claim: accelerated mult < polynomial generation."""

    scheme: str
    multiplication: int
    gen_a: int
    sample_poly: int

    @property
    def mult_is_cheapest(self) -> bool:
        return self.multiplication < min(self.gen_a, self.sample_poly)


def generation_crossover(params: LacParams = LAC_128) -> CrossoverCheck:
    """Verify the accelerated multiplication sits below GenA/Sample."""
    kernels = CycleModel(params, "ise").measure_kernels()
    return CrossoverCheck(
        scheme=params.name,
        multiplication=kernels.multiplication,
        gen_a=kernels.gen_a,
        sample_poly=kernels.sample_poly,
    )


@dataclass(frozen=True)
class ProtocolDesignPoint:
    """Protocol totals for one (scheme, unit length) pair."""

    scheme: str
    unit_length: int
    luts: int
    protocol_total: int
    multiplication: int


def protocol_level_sweep(
    params_list: tuple[LacParams, ...] = (LAC_128,),
    lengths: tuple[int, ...] = (256, 512, 1024),
) -> list[ProtocolDesignPoint]:
    """The MUL TER ablation at protocol level.

    Runs the full ISE-profile protocol with the unit re-sized (the
    generalized splitting handles every power-of-two ratio), giving
    the end-to-end cost of each design point — the number a designer
    actually trades against the LUT count.
    """
    area_model = AreaModel()
    points = []
    for length in lengths:
        luts = area_model.estimate(MulTerUnit(length).inventory()).luts
        for params in params_list:
            row = CycleModel(params, "ise", mul_ter_length=length).measure_protocol()
            points.append(ProtocolDesignPoint(
                scheme=params.name,
                unit_length=length,
                luts=luts,
                protocol_total=row.total,
                multiplication=row.kernels.multiplication,
            ))
    return points


# ---------------------------------------------------------------------------
# future work 1: swap the SHA256 accelerator for a Keccak core
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KeccakFutureWork:
    """Quantification of the paper's SHA256-to-Keccak future work."""

    scheme: str
    gen_a_sha256: int
    gen_a_keccak: int
    sample_sha256: int
    sample_keccak: int
    #: extra accelerator area the swap costs (LUTs), Table III scale
    area_delta_luts: int

    @property
    def gen_a_speedup(self) -> float:
        return self.gen_a_sha256 / self.gen_a_keccak

    @property
    def sample_speedup(self) -> float:
        return self.sample_sha256 / self.sample_keccak


def keccak_generation_ablation(params: LacParams = LAC_128) -> KeccakFutureWork:
    """GenA / Sample-poly with the Keccak core instead of SHA256.

    The hashing itself collapses (one 168-byte-rate permutation per
    ~5 SHA-256 blocks, 24 busy clocks vs. 65), but the per-byte stream
    management of the LAC reference wrapper survives the swap — which
    is why even this future-work upgrade moves the generation kernels
    only modestly, echoing the paper's own SHA256 observation.
    """
    from repro.cosim.costs import ISE_COSTS, ISE_KECCAK_COSTS, price
    from repro.hashes.keccak import ShakePrng
    from repro.hashes.prng import Sha256Prng
    from repro.hw.area import AreaModel
    from repro.hw.keccak_accel import KeccakUnit
    from repro.hw.sha256_accel import Sha256Unit
    from repro.lac.sampling import gen_a, sample_ternary_fixed_weight
    from repro.metrics import OpCounter

    seed = bytes(32)

    def measure(prng_cls, costs):
        gen_counter = OpCounter()
        prng = prng_cls(seed, counter=gen_counter) if prng_cls else None
        gen_a(seed, params, gen_counter, prng=prng)
        sample_counter = OpCounter()
        sample_ternary_fixed_weight(
            prng_cls(seed, counter=sample_counter), params, sample_counter
        )
        return price(gen_counter, costs), price(sample_counter, costs)

    gen_sha, sample_sha = measure(Sha256Prng, ISE_COSTS)
    gen_keccak, sample_keccak = measure(ShakePrng, ISE_KECCAK_COSTS)

    area = AreaModel()
    delta = (
        area.estimate(KeccakUnit().inventory()).luts
        - area.estimate(Sha256Unit().inventory()).luts
    )
    return KeccakFutureWork(
        scheme=params.name,
        gen_a_sha256=gen_sha,
        gen_a_keccak=gen_keccak,
        sample_sha256=sample_sha,
        sample_keccak=sample_keccak,
        area_delta_luts=delta,
    )


@dataclass(frozen=True)
class CoefficientWidthPoint:
    """Ternary-multiplier area at one coefficient width."""

    q: int
    width_bits: int
    luts: int
    registers: int


def coefficient_width_ablation(
    moduli: tuple[int, ...] = (251, 3329, 12289),
    length: int = 512,
) -> list[CoefficientWidthPoint]:
    """Why q = 251: the ternary multiplier's area vs. coefficient width.

    The paper's Sec. I argument — the BCH code buys "polynomials with
    small single-byte coefficients" — has a hardware payoff: every MAU
    lane's adders, muxes and registers scale with the coefficient
    width.  This sweep rebuilds the MUL TER inventory at the widths a
    Kyber-like (q = 3329, 12 bits) or NewHope-like (q = 12289, 14 bits)
    modulus would force.
    """
    from repro.hw.area import AreaModel
    from repro.hw.common import ComponentInventory
    from repro.hw.mau import ModularArithmeticUnit

    model = AreaModel()
    points = []
    for q in moduli:
        width = (q - 1).bit_length()
        mau = ModularArithmeticUnit(q=q, width=width)
        lanes = mau.inventory().scaled(length)
        storage = ComponentInventory(
            flipflops=width * length + width * length + 2 * length
        )
        sign_muxes = ComponentInventory(mux_bits=2 * length, comparator_bits=10)
        estimate = model.estimate(lanes + storage + sign_muxes)
        points.append(CoefficientWidthPoint(
            q=q, width_bits=width, luts=estimate.luts, registers=estimate.registers
        ))
    return points


# ---------------------------------------------------------------------------
# future work 2: Karatsuba instead of the four-way split
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KaratsubaAblation:
    """Quantification of the Sec. IV-A Karatsuba discussion."""

    n: int
    ternary_schoolbook_cycles: int
    karatsuba_software_cycles: int
    base_mults_schoolbook: int
    base_mults_karatsuba: int
    #: sub-multiplications per length-1024 product: Eq. (2) needs 4 per
    #: level (16 total), Karatsuba 3 per level (9 total)
    split_products_plain: int = 16
    split_products_karatsuba: int = 9


def karatsuba_ablation(n: int = 512) -> KaratsubaAblation:
    """Software Karatsuba vs. the ternary schoolbook schedule.

    Karatsuba wins on multiplication counts, but its sub-operands
    (a^l + a^h) are no longer ternary — coefficients land in {-2..2} —
    so the MUL TER adder/subtractor array cannot execute them; a
    Karatsuba accelerator needs general multipliers (DSPs), which is
    why the paper defers it.
    """
    import numpy as np

    from repro.cosim.costs import REFERENCE_COSTS, price
    from repro.metrics import OpCounter
    from repro.ring.karatsuba import base_multiplications, karatsuba_ring_mul
    from repro.ring.poly import PolyRing
    from repro.ring.ternary import TernaryPoly, ternary_mul

    rng = np.random.default_rng(11)
    ring = PolyRing(n)
    general_a = ring.random(rng)
    general_b = ring.random(rng)
    ternary = TernaryPoly(rng.integers(-1, 2, n).astype(np.int8))

    ternary_counter = OpCounter()
    ternary_mul(ring, ternary, general_a, ternary_counter)
    karatsuba_counter = OpCounter()
    karatsuba_ring_mul(ring, general_a, general_b, karatsuba_counter)

    return KaratsubaAblation(
        n=n,
        ternary_schoolbook_cycles=price(ternary_counter, REFERENCE_COSTS),
        karatsuba_software_cycles=price(karatsuba_counter, REFERENCE_COSTS),
        base_mults_schoolbook=n * n,
        base_mults_karatsuba=base_multiplications(n),
    )
