"""Timing-leakage analysis of the BCH decoders (Sec. VI-A).

The paper's motivation for the constant-time baseline is the
D'Anvers et al. attack [14]: decode time leaks the error count, which
correlates with the secret key.  This module provides the statistical
machinery to demonstrate the leak on our cycle model:

* cycle distributions of each decoder as a function of the injected
  error count;
* Welch's t-test between the 0-error and max-error distributions (the
  standard TVLA-style fixed-vs-fixed leakage test [15] runs);
* a simple distinguisher that estimates the error count from a single
  decode time (linear inversion on the error-locator phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bch.code import BCHCode, LAC_BCH_128_256
from repro.bch.ct_decoder import ConstantTimeBCHDecoder
from repro.bch.decoder import BCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.cosim.costs import REFERENCE_COSTS, price
from repro.metrics import OpCounter


@dataclass(frozen=True)
class LeakageReport:
    """Outcome of one fixed-vs-fixed leakage test."""

    decoder: str
    samples_per_class: int
    mean_low: float
    mean_high: float
    std_low: float
    std_high: float
    t_statistic: float

    @property
    def leaks(self) -> bool:
        """|t| > 4.5 is the conventional TVLA rejection threshold."""
        return abs(self.t_statistic) > 4.5


def _decode_cycles(
    decoder, code: BCHCode, errors: int, rng: np.random.Generator
) -> int:
    message = rng.integers(0, 2, code.k).astype(np.uint8)
    codeword = BCHEncoder(code).encode(message)
    if errors:
        positions = rng.choice(code.n, size=errors, replace=False)
        codeword[positions] ^= 1
    counter = OpCounter()
    decoder.decode(codeword, counter)
    return price(counter, REFERENCE_COSTS)


def cycle_distribution(
    constant_time: bool,
    errors: int,
    samples: int = 20,
    code: BCHCode = LAC_BCH_128_256,
    seed: int = 7,
) -> np.ndarray:
    """Decode ``samples`` random words with a fixed error count."""
    rng = np.random.default_rng(seed)
    decoder = ConstantTimeBCHDecoder(code) if constant_time else BCHDecoder(code)
    return np.array(
        [_decode_cycles(decoder, code, errors, rng) for _ in range(samples)],
        dtype=np.int64,
    )


def welch_t(a: np.ndarray, b: np.ndarray) -> float:
    """Welch's t statistic (0 when both classes are exactly constant)."""
    var_a = a.var(ddof=1) if a.size > 1 else 0.0
    var_b = b.var(ddof=1) if b.size > 1 else 0.0
    denominator = np.sqrt(var_a / a.size + var_b / b.size)
    difference = a.mean() - b.mean()
    if denominator == 0:
        return 0.0 if difference == 0 else np.inf * np.sign(difference)
    return float(difference / denominator)


def leakage_test(
    constant_time: bool,
    samples: int = 20,
    code: BCHCode = LAC_BCH_128_256,
    seed: int = 7,
) -> LeakageReport:
    """Fixed-vs-fixed test: 0 errors vs. t errors."""
    low = cycle_distribution(constant_time, 0, samples, code, seed)
    high = cycle_distribution(constant_time, code.t, samples, code, seed + 1)
    return LeakageReport(
        decoder="Walters et al." if constant_time else "LAC Subm.",
        samples_per_class=samples,
        mean_low=float(low.mean()),
        mean_high=float(high.mean()),
        std_low=float(low.std(ddof=1)) if samples > 1 else 0.0,
        std_high=float(high.std(ddof=1)) if samples > 1 else 0.0,
        t_statistic=welch_t(low, high),
    )


@dataclass(frozen=True)
class DistinguisherReport:
    """Error-count recovery from single decode times."""

    decoder: str
    attempts: int
    exact_hits: int
    mean_absolute_error: float


def error_count_distinguisher(
    constant_time: bool,
    attempts: int = 24,
    code: BCHCode = LAC_BCH_128_256,
    seed: int = 11,
    traces_per_attempt: int = 6,
    grid_step: int = 8,
) -> DistinguisherReport:
    """Estimate hidden error counts from decode cycle counts.

    Calibrates mean decode time per error count (the attacker's
    profiling phase), then classifies *averaged* fresh decode times by
    nearest profile mean — averaging over several traces suppresses the
    codeword-weight noise of the syndrome phase, exactly as the attack
    of [14] aggregates measurements.  Against the submission decoder
    this recovers the hidden count reliably (the error-locator phase
    scales with it); against the constant-time decoder it degenerates
    to chance because all classes share one timing.
    """
    rng = np.random.default_rng(seed)
    decoder = ConstantTimeBCHDecoder(code) if constant_time else BCHDecoder(code)
    error_grid = list(range(0, code.t + 1, grid_step))

    profile = {
        e: float(
            np.mean(
                [_decode_cycles(decoder, code, e, rng)
                 for _ in range(traces_per_attempt)]
            )
        )
        for e in error_grid
    }

    hits = 0
    absolute_errors = []
    for _ in range(attempts):
        hidden = int(rng.choice(error_grid))
        observed = float(
            np.mean(
                [_decode_cycles(decoder, code, hidden, rng)
                 for _ in range(traces_per_attempt)]
            )
        )
        guess = min(profile, key=lambda e: abs(profile[e] - observed))
        hits += guess == hidden
        absolute_errors.append(abs(guess - hidden))
    return DistinguisherReport(
        decoder="Walters et al." if constant_time else "LAC Subm.",
        attempts=attempts,
        exact_hits=hits,
        mean_absolute_error=float(np.mean(absolute_errors)),
    )
