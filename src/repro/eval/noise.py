"""Decryption-noise analysis: why LAC needs its BCH code and D2.

LAC's whole design hinges on the error-correcting code (Sec. I: the
strong BCH code is what allows single-byte coefficients).  This module
quantifies the noise budget by Monte Carlo over real
encryptions/decryptions:

* the channel bit-error count handed to the BCH decoder per parameter
  set (must sit far below t);
* the D2 effect for LAC-256: with h = 384 the per-coefficient noise
  would overwhelm a plain encoding's margin — duplicating each bit and
  soft-combining roughly halves the effective noise;
* the ciphertext-compression trade-off: dropping more bits of v
  shrinks the ciphertext but adds uniform noise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.lac.params import LAC_256, LacParams
from repro.lac.pke import LacPke


@dataclass(frozen=True)
class NoiseReport:
    """Channel-error statistics over a Monte Carlo run."""

    scheme: str
    d2: bool
    v_bits: int
    trials: int
    mean_errors: float
    max_errors: int
    bit_error_rate: float
    correction_capacity: int

    @property
    def margin(self) -> float:
        """Correction capacity over the worst observed error count."""
        if self.max_errors == 0:
            return float("inf")
        return self.correction_capacity / self.max_errors

    @property
    def decodes_reliably(self) -> bool:
        return self.max_errors <= self.correction_capacity


def channel_error_distribution(
    params: LacParams,
    trials: int = 30,
    seed: int = 99,
) -> NoiseReport:
    """Measure the post-threshold bit errors the BCH decoder sees.

    One key pair, ``trials`` encryptions with independent coins; the
    decoder is the constant-time one (error counts are identical for
    both decoders — they see the same hard bits).
    """
    pke = LacPke(params)
    rng = np.random.default_rng(seed)
    pk, sk = pke.keygen(bytes(rng.integers(0, 256, params.seed_bytes, dtype=np.uint8)))
    message = bytes(range(32))

    errors = []
    for trial in range(trials):
        coins = bytes(rng.integers(0, 256, 32, dtype=np.uint8))
        ct = pke.encrypt(pk, message, coins)
        decoded = pke.decrypt(sk, ct)
        if decoded.message != message:
            raise AssertionError(
                f"{params.name}: decryption failure in trial {trial}"
            )
        errors.append(decoded.channel_errors)

    errors_array = np.array(errors)
    return NoiseReport(
        scheme=params.name,
        d2=params.d2,
        v_bits=params.v_bits,
        trials=trials,
        mean_errors=float(errors_array.mean()),
        max_errors=int(errors_array.max()),
        bit_error_rate=float(errors_array.mean() / params.codeword_bits),
        correction_capacity=params.bch.t,
    )


def d2_ablation(trials: int = 20, seed: int = 7) -> tuple[NoiseReport, NoiseReport]:
    """LAC-256 with and without the D2 redundant encoding.

    Without D2, the h = 384 noise hits a single threshold decision per
    bit; with D2 two observations are soft-combined.  Returns
    (with_d2, without_d2) reports — the error-rate gap is the design
    justification for D2 at the highest security level.
    """
    with_d2 = channel_error_distribution(LAC_256, trials, seed)
    no_d2 = dataclasses.replace(LAC_256, name="LAC-256-noD2", d2=False)
    without_d2 = channel_error_distribution(no_d2, trials, seed)
    return with_d2, without_d2


@dataclass(frozen=True)
class HSweepPoint:
    """Channel errors at one secret weight, with and without D2."""

    h: int
    d2_mean: float
    d2_max: int
    plain_mean: float | None
    plain_max: int | None
    plain_failed: bool


def h_sweep(
    weights: tuple[int, ...] = (384, 512, 640, 768),
    trials: int = 8,
    seed: int = 5,
) -> list[HSweepPoint]:
    """Noise growth with the secret weight h, D2 vs. plain encoding.

    The secret weight trades security (bigger h, harder RLWE instance)
    against decryption noise.  At LAC-256's h = 384 both encodings are
    comfortable; pushing h shows the design margins: the plain encoding
    saturates the t = 16 BCH capacity around h ~ 640 and *fails
    outright* by h ~ 768, while D2's soft combining keeps decoding —
    this is the quantitative justification for D2 at level V.
    """
    points = []
    for h in weights:
        d2_variant = dataclasses.replace(LAC_256, name=f"LAC-256-h{h}", h=h)
        d2_report = channel_error_distribution(d2_variant, trials, seed)
        plain_variant = dataclasses.replace(
            LAC_256, name=f"LAC-256-h{h}-plain", h=h, d2=False
        )
        try:
            plain = channel_error_distribution(plain_variant, trials, seed)
            points.append(HSweepPoint(
                h=h, d2_mean=d2_report.mean_errors, d2_max=d2_report.max_errors,
                plain_mean=plain.mean_errors, plain_max=plain.max_errors,
                plain_failed=False,
            ))
        except AssertionError:
            points.append(HSweepPoint(
                h=h, d2_mean=d2_report.mean_errors, d2_max=d2_report.max_errors,
                plain_mean=None, plain_max=None, plain_failed=True,
            ))
    return points


def compression_sweep(
    params: LacParams = LAC_256,
    bit_widths: tuple[int, ...] = (3, 4, 6, 8),
    trials: int = 12,
    seed: int = 3,
) -> list[NoiseReport]:
    """Channel errors as a function of the v compression width.

    LAC ships 4 bits; 3 bits would shave another ~12% off the
    ciphertext at a real noise cost, 8 bits is the uncompressed
    reference point.
    """
    reports = []
    for v_bits in bit_widths:
        variant = dataclasses.replace(
            params, name=f"{params.name}-v{v_bits}", v_bits=v_bits
        )
        reports.append(channel_error_distribution(variant, trials, seed))
    return reports
