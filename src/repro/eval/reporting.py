"""Shared table formatting for the evaluation harness."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (numbers right-aligned with commas)."""
    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, int):
            return f"{value:,}"
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def ratio(measured: int | float, reference: int | float) -> float:
    """measured / reference, guarding zero."""
    return float("nan") if reference == 0 else measured / reference
