"""Sensitivity of the conclusions to the calibrated cycle prices.

The cycle model contains a handful of calibrated constants
(docs/CYCLEMODEL.md).  A reproduction whose conclusions flipped when a
calibrated constant moved 2x would be worthless — so this module
re-prices the *same recorded operation counts* under perturbed prices
and checks that the paper's headline structure survives:

* the ISE speedup stays large (the accelerators win regardless);
* the constant-time BCH decoder stays several times slower than the
  submission decoder (the protection cost is real);
* the accelerated multiplication stays below polynomial generation
  (the Sec. IV-A design argument).

Because counts are recorded once and only prices change, a full sweep
over dozens of perturbations costs milliseconds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cosim.costs import CycleCosts, ISE_COSTS, REFERENCE_COSTS, price
from repro.cosim.protocol import CycleModel
from repro.lac.params import LAC_128, LacParams
from repro.metrics import OpCounter

#: The calibrated prices worth stress-testing (architectural prices are
#: fixed by the RISCY model and validated on the ISS).
CALIBRATED_PARAMETERS = (
    "prng_byte",
    "sha256_block",
    "gf_mul_ct",
    "gf_mul_table",
    "modq",
    "call",
)


@dataclass(frozen=True)
class SensitivityPoint:
    """One perturbation of one calibrated price."""

    parameter: str
    factor: float
    speedup: float
    ct_overhead: float
    mult_below_generation: bool


class SensitivityAnalysis:
    """Records counts once; re-prices under perturbed cost tables."""

    def __init__(self, params: LacParams = LAC_128, seed: bytes | None = None):
        self.params = params
        baseline_model = CycleModel(params, "const_bch", seed)
        ise_model = CycleModel(params, "ise", seed)
        self._baseline_counters = self._capture(baseline_model)
        self._ise_counters = self._capture(ise_model)

        # kernel counters for the secondary claims
        self._subm_decode = OpCounter()
        CycleModel(params, "ref", seed)._decode_with_errors(0, self._subm_decode)
        self._ct_decode = OpCounter()
        baseline_model._decode_with_errors(0, self._ct_decode)
        self._ise_mult = OpCounter()
        self._capture_kernel(ise_model)

    @staticmethod
    def _capture(model: CycleModel) -> list[OpCounter]:
        counters = [OpCounter(), OpCounter(), OpCounter()]
        pair = model.kem.keygen(seed=model.seed, counter=counters[0])
        enc = model.kem.encaps(
            pair.public_key, message=model.seed[:32], counter=counters[1]
        )
        model.kem.decaps(pair.secret_key, enc.ciphertext, counters[2])
        return counters

    def _capture_kernel(self, ise_model: CycleModel) -> None:
        import numpy as np

        from repro.ring.ternary import TernaryPoly

        rng = np.random.default_rng(1)
        ternary = TernaryPoly(rng.integers(-1, 2, self.params.n).astype(np.int8))
        general = rng.integers(0, self.params.q, self.params.n).astype(np.int64)
        ise_model._multiplier(self.params.ring, ternary, general, self._ise_mult)
        self._gen_a = OpCounter()
        from repro.lac.sampling import gen_a

        gen_a(bytes(32), self.params, self._gen_a)

    # ------------------------------------------------------------------

    def evaluate(
        self, ref_costs: CycleCosts, ise_costs: CycleCosts
    ) -> SensitivityPoint:
        """Re-price the recorded counts under one pair of cost tables."""
        baseline_total = sum(price(c, ref_costs) for c in self._baseline_counters)
        ise_total = sum(price(c, ise_costs) for c in self._ise_counters)
        speedup = baseline_total / ise_total
        ct_overhead = price(self._ct_decode, ref_costs) / price(
            self._subm_decode, ref_costs
        )
        mult_below = price(self._ise_mult, ise_costs) < price(self._gen_a, ise_costs)
        return SensitivityPoint(
            parameter="", factor=1.0, speedup=speedup,
            ct_overhead=ct_overhead, mult_below_generation=mult_below,
        )

    def sweep(
        self,
        parameters: tuple[str, ...] = CALIBRATED_PARAMETERS,
        factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    ) -> list[SensitivityPoint]:
        """Perturb each calibrated price by each factor, one at a time."""
        points = []
        for parameter in parameters:
            for factor in factors:
                ref = dataclasses.replace(
                    REFERENCE_COSTS,
                    **{parameter: max(1, round(getattr(REFERENCE_COSTS, parameter) * factor))},
                )
                ise = dataclasses.replace(
                    ISE_COSTS,
                    **{parameter: max(1, round(getattr(ISE_COSTS, parameter) * factor))},
                )
                evaluated = self.evaluate(ref, ise)
                points.append(dataclasses.replace(
                    evaluated, parameter=parameter, factor=factor
                ))
        return points
