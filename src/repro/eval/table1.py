"""Table I: BCH(511,367,16) decode cycle counts, per phase.

Reproduces the paper's demonstration that the NIST round-2 submission
decoder is *not* constant time: its error-locator phase (and, less
visibly, syndrome and Chien phases) execute different numbers of
operations for 0 and 16 injected errors, while the Walters/Roy-style
constant-time decoder's counts are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bch.code import BCHCode, LAC_BCH_128_256
from repro.bch.ct_decoder import ConstantTimeBCHDecoder
from repro.bch.decoder import BCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.cosim.costs import REFERENCE_COSTS, CycleCosts, price_phases
from repro.metrics import OpCounter


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    scheme: str
    fails: int
    syndrome: int
    error_locator: int
    chien: int
    decode: int


#: The paper's measured values, for side-by-side comparison.
PAPER_TABLE1 = (
    Table1Row("LAC Subm.", 0, 61_994, 158, 107_431, 171_522),
    Table1Row("LAC Subm.", 16, 59_616, 10_172, 107_690, 179_798),
    Table1Row("Walters et al.", 0, 89_335, 33_810, 380_546, 514_169),
    Table1Row("Walters et al.", 16, 89_335, 33_867, 380_748, 514_428),
)


def _received_word(
    errors: int, seed: int = 2024, code: BCHCode = LAC_BCH_128_256
) -> np.ndarray:
    """A codeword of ``code`` with ``errors`` injected bit flips."""
    rng = np.random.default_rng(seed)
    message = rng.integers(0, 2, code.k).astype(np.uint8)
    codeword = BCHEncoder(code).encode(message)
    if errors:
        positions = rng.choice(code.n, size=errors, replace=False)
        codeword[positions] ^= 1
    return codeword


def measure_decode(
    constant_time: bool,
    errors: int,
    costs: CycleCosts = REFERENCE_COSTS,
    seed: int = 2024,
    code: BCHCode = LAC_BCH_128_256,
) -> Table1Row:
    """Decode one word and price the per-phase operation counts."""
    received = _received_word(errors, seed, code)
    counter = OpCounter()
    if constant_time:
        decoder = ConstantTimeBCHDecoder(code)
        result = decoder.decode(received, counter)
        name = "Walters et al."
    else:
        decoder = BCHDecoder(code)
        result = decoder.decode(received, counter)
        name = "LAC Subm."
    if not result.success:
        raise AssertionError(f"decode failed with {errors} errors")
    phases = price_phases(counter, costs)
    syndrome = phases.get("syndrome", 0)
    error_locator = phases.get("error_locator", 0)
    chien = phases.get("chien", 0)
    total = sum(phases.values())
    return Table1Row(name, errors, syndrome, error_locator, chien, total)


def generate_table1(
    seed: int = 2024, code: BCHCode = LAC_BCH_128_256
) -> list[Table1Row]:
    """All four rows of Table I (same codeword/error pattern per pair).

    ``code`` defaults to the BCH(511,367,16) of the paper's Table I;
    passing :data:`repro.bch.code.LAC_BCH_192` produces the analogous
    table for LAC-192's t = 8 code (an extension experiment — the
    timing leak and the constant-time property hold identically).
    """
    return [
        measure_decode(False, 0, seed=seed, code=code),
        measure_decode(False, code.t, seed=seed, code=code),
        measure_decode(True, 0, seed=seed, code=code),
        measure_decode(True, code.t, seed=seed, code=code),
    ]
