"""Table II: protocol and kernel cycle counts for all configurations.

Regenerates the paper's central results table: Key-Generation /
Encapsulation / Decapsulation plus the four bottleneck kernels for
LAC-{128,192,256} x {ref, const-BCH, ISE-optimized} on RISC-V.  The
ARM Cortex-M4 rows (pqm4 [4]) and the NewHope co-design row ([8]) are
carried as published reference values, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cosim.protocol import PROFILES, CycleModel, ProtocolCycles
from repro.lac.params import ALL_PARAMS, LacParams


@dataclass(frozen=True)
class Table2Row:
    """One Table II row (kernel columns None where the paper has '-')."""

    scheme: str
    device: str
    security_class: str
    key_generation: int
    encapsulation: int
    decapsulation: int
    gen_a: int | None = None
    sample_poly: int | None = None
    multiplication: int | None = None
    bch_decode: int | None = None

    @property
    def total(self) -> int:
        return self.key_generation + self.encapsulation + self.decapsulation


#: The paper's measured values (every row of Table II).
PAPER_TABLE2 = (
    Table2Row("LAC-128 ref. [4]", "ARM Cortex-M4", "CCA (I)",
              2_266_368, 3_979_851, 6_303_717),
    Table2Row("LAC-192 ref. [4]", "ARM Cortex-M4", "CCA (III)",
              7_532_180, 9_986_506, 17_452_435),
    Table2Row("LAC-256 ref. [4]", "ARM Cortex-M4", "CCA (V)",
              7_665_769, 13_533_851, 21_125_257),
    Table2Row("LAC-128 ref.", "RISC-V", "CCA (I)",
              2_980_721, 4_969_233, 7_544_632,
              159_097, 190_173, 2_381_843, 161_514),
    Table2Row("LAC-192 ref.", "RISC-V", "CCA (III)",
              10_162_116, 13_388_940, 22_984_529,
              287_609, 165_092, 9_482_261, 78_584),
    Table2Row("LAC-256 ref.", "RISC-V", "CCA (V)",
              10_516_000, 18_165_942, 27_879_782,
              287_736, 344_541, 9_482_263, 171_622),
    Table2Row("LAC-128 const. BCH", "RISC-V", "CCA (I)",
              2_981_055, 4_969_238, 7_897_403,
              159_192, 190_256, 2_381_843, 514_280),
    Table2Row("LAC-192 const. BCH", "RISC-V", "CCA (III)",
              10_162_502, 13_388_952, 23_126_138,
              287_736, 165_185, 9_482_261, 220_181),
    Table2Row("LAC-256 const. BCH", "RISC-V", "CCA (V)",
              10_515_588, 18_165_040, 28_220_945,
              287_609, 344_436, 9_482_263, 513_687),
    Table2Row("LAC-128 opt.", "RISC-V", "CCA (I)",
              542_814, 640_237, 839_132,
              154_746, 159_134, 6_390, 160_295),
    Table2Row("LAC-192 opt.", "RISC-V", "CCA (III)",
              816_635, 1_086_148, 1_324_014,
              282_264, 156_320, 151_354, 52_142),
    Table2Row("LAC-256 opt.", "RISC-V", "CCA (V)",
              1_086_252, 1_388_366, 1_759_756,
              282_264, 291_007, 151_355, 160_296),
    Table2Row("NewHope opt. [8]", "RISC-V", "CPA (V)",
              357_052, 589_285, 167_647,
              42_050, 75_682, 73_827, None),
)

#: Paper-reported headline speedups (sum of the three operations,
#: constant-time-BCH baseline vs. ISE-optimized).
PAPER_SPEEDUPS = {"LAC-128": 7.66, "LAC-192": 14.42, "LAC-256": 13.36}

_PROFILE_LABEL = {"ref": "ref.", "const_bch": "const. BCH", "ise": "opt."}


def _row_from_cycles(params: LacParams, cycles: ProtocolCycles) -> Table2Row:
    return Table2Row(
        scheme=f"{params.name} {_PROFILE_LABEL[cycles.profile]}",
        device="RISC-V (model)",
        security_class=f"CCA ({params.nist_level})",
        key_generation=cycles.key_generation,
        encapsulation=cycles.encapsulation,
        decapsulation=cycles.decapsulation,
        gen_a=cycles.kernels.gen_a,
        sample_poly=cycles.kernels.sample_poly,
        multiplication=cycles.kernels.multiplication,
        bch_decode=cycles.kernels.bch_decode,
    )


def generate_table2(
    params_list: tuple[LacParams, ...] = ALL_PARAMS,
    profiles: tuple[str, ...] = PROFILES,
) -> list[Table2Row]:
    """Measure every (parameter set, profile) cell of Table II."""
    rows = []
    for profile in profiles:
        for params in params_list:
            cycles = CycleModel(params, profile).measure_protocol()
            rows.append(_row_from_cycles(params, cycles))
    return rows


def measured_speedups(
    params_list: tuple[LacParams, ...] = ALL_PARAMS,
) -> dict[str, float]:
    """The headline factors on the model (const-BCH total / ISE total)."""
    out = {}
    for params in params_list:
        baseline = CycleModel(params, "const_bch").measure_protocol()
        optimized = CycleModel(params, "ise").measure_protocol()
        out[params.name] = baseline.total / optimized.total
    return out
