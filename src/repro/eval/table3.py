"""Table III: FPGA resource utilization.

The structural area model (:mod:`repro.hw.area`) estimates LUT and
register usage of every PQ-ALU unit from its component inventory; the
platform blocks (RISCY base core, peripherals) and the NewHope
accelerators of [8] are the paper's published values.  What must hold
(and is asserted by the Table III benchmark): the ternary multiplier
dominates LUTs and registers, the GF block is tiny, the Barrett unit
holds the design's only two DSP slices, and the PQ-ALU needs no BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.area import AreaEstimate, AreaModel


@dataclass(frozen=True)
class Table3Row:
    block: str
    luts: int
    registers: int
    brams: int
    dsps: int


#: The paper's synthesis results (Xilinx Zynq UltraScale+ ZCU102).
PAPER_TABLE3 = (
    Table3Row("Peripherals/Memory", 8_769, 7_369, 32, 0),
    Table3Row("RISC-V core total", 53_819, 13_928, 0, 10),
    Table3Row("- Ternary Multiplier", 31_465, 9_305, 0, 0),
    Table3Row("- GF-Multipliers", 86, 158, 0, 0),
    Table3Row("- SHA256", 1_031, 1_556, 0, 0),
    Table3Row("- Modulo (Barrett)", 35, 0, 0, 2),
    Table3Row("NTT accelerator [8]", 886, 618, 1, 26),
    Table3Row("Keccak accelerator [8]", 10_435, 4_225, 0, 0),
)

#: The abstract's headline accelerator overhead.
PAPER_PQ_ALU_OVERHEAD = AreaEstimate(luts=32_617, registers=11_019, dsps=2)


def generate_table3(mul_ter_length: int = 512) -> list[Table3Row]:
    """The full Table III layout from the structural area model."""
    report = AreaModel().full_report(mul_ter_length)
    return [
        Table3Row(name, est.luts, est.registers, est.brams, est.dsps)
        for name, est in report.items()
    ]


def pq_alu_overhead(mul_ter_length: int = 512) -> AreaEstimate:
    """Total accelerator cost (compare: 32,617 LUTs / 11,019 FF / 2 DSP)."""
    return AreaModel().pq_alu_overhead(mul_ter_length)
