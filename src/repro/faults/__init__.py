"""``repro.faults`` — deterministic fault injection for the KEM service.

The robustness counterpart of ``repro.serve``: a seeded
:class:`FaultPlan` describes *where* (transport read/write, kernel,
admission) and *how* (delay, drop, truncate, corrupt, stall, raise,
busy, timeout) the serving stack should misbehave, and the stack
consults it at fixed injection sites.  Because every site draws from
its own seed-derived random stream and every fire is counted both in
the plan and in ``repro.serve.metrics``, chaos runs are reproducible
and fully accounted for.

Used by ``tests/test_chaos_service.py`` (the seeded chaos suite) and
the ``chaos-smoke`` CI job; see the failure-semantics section of
``docs/SERVICE.md``.
"""

from repro.faults.plan import (
    ALL_SITES,
    KIND_BUSY,
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_DELAY,
    KIND_DROP,
    KIND_KILL,
    KIND_RAISE,
    KIND_STALL,
    KIND_TIMEOUT,
    KIND_TRUNCATE,
    SITE_ADMISSION,
    SITE_BACKEND,
    SITE_KERNEL,
    SITE_MEMBER_KILL,
    SITE_ROUTER_FORWARD,
    SITE_TRANSPORT_READ,
    SITE_TRANSPORT_WRITE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    random_plan,
)
from repro.faults.transport import FaultyReader, FaultyWriter, wrap_connection

__all__ = [
    "ALL_SITES",
    "FaultPlan",
    "FaultSpec",
    "FaultyReader",
    "FaultyWriter",
    "InjectedFault",
    "KIND_BUSY",
    "KIND_CORRUPT",
    "KIND_CRASH",
    "KIND_DELAY",
    "KIND_DROP",
    "KIND_KILL",
    "KIND_RAISE",
    "KIND_STALL",
    "KIND_TIMEOUT",
    "KIND_TRUNCATE",
    "SITE_ADMISSION",
    "SITE_BACKEND",
    "SITE_KERNEL",
    "SITE_MEMBER_KILL",
    "SITE_ROUTER_FORWARD",
    "SITE_TRANSPORT_READ",
    "SITE_TRANSPORT_WRITE",
    "random_plan",
    "wrap_connection",
]
