"""Deterministic, seeded fault plans for chaos-testing the KEM service.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules, each bound
to one injection *site* and one fault *kind*, plus a seed.  The serving
stack consults the plan at well-defined points (sites) and, when a rule
fires, perturbs its behaviour accordingly:

========================  =====================================================
site                      kinds that make sense there
========================  =====================================================
``transport.read``        ``delay`` (hold the frame), ``drop`` (reset the
                          connection), ``truncate`` (mid-frame EOF),
                          ``corrupt`` (flip a framing byte so the frame is
                          rejected — payload bytes are never touched, so a
                          corrupted request can never execute with altered
                          inputs)
``transport.write``       ``delay``, ``drop`` (close before responding),
                          ``truncate`` (half a response frame, then close)
``kernel``                ``stall`` (sleep inside the batch worker),
                          ``raise`` (abort the batch with
                          :class:`InjectedFault` → ``INTERNAL`` responses)
``admission``             ``busy`` (forced ``BUSY`` reject), ``timeout``
                          (forced ``TIMEOUT`` reject)
``backend``               ``crash`` (kill one execution-backend worker
                          process before the batch runs; a counted
                          no-op on backends without killable workers)
``router.forward``        ``delay`` (hold the forward), ``drop`` (fail the
                          forward attempt without sending — the router
                          fails over or answers a typed error),
                          ``corrupt`` (poison the member link so the
                          forward fails with a framing error; request
                          payloads are never touched)
``member.kill``           ``kill`` (SIGKILL the target member process —
                          or abort an in-process member — before the
                          forward, mid-load)
========================  =====================================================

The last two sites belong to :class:`repro.cluster.ClusterRouter`; a
single-service :class:`repro.serve.KemService` never draws them, so
plans remain interchangeable between the two layers.

Determinism: every site gets its **own** ``random.Random`` stream
derived from ``(seed, site)``, so the decision sequence at each site is
a pure function of the seed and the number of draws at that site —
independent of how draws at other sites interleave.  Two runs with the
same seed and the same per-site traffic see identical fault sequences.

Accounting: every fired fault is counted in :attr:`FaultPlan.fired`
*and* reported to the plan's :attr:`~FaultPlan.observer` (the service
installs its metrics recorder there), from the same locked region — the
two tallies cannot diverge, which is what lets the chaos suite assert
that ``/metrics`` accounts for every injected fault.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import InjectedFault
from repro.trace import annotate

__all__ = [
    "ALL_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "random_plan",
]

#: Injection sites understood by the serving stack.
SITE_TRANSPORT_READ = "transport.read"
SITE_TRANSPORT_WRITE = "transport.write"
SITE_KERNEL = "kernel"
SITE_ADMISSION = "admission"
SITE_BACKEND = "backend"
SITE_ROUTER_FORWARD = "router.forward"
SITE_MEMBER_KILL = "member.kill"

# cluster sites are appended *after* the original five: per-site RNG
# streams key on the site name, so extending the tuple cannot shift
# any existing site's decision sequence for a given seed
ALL_SITES = (
    SITE_TRANSPORT_READ,
    SITE_TRANSPORT_WRITE,
    SITE_KERNEL,
    SITE_ADMISSION,
    SITE_BACKEND,
    SITE_ROUTER_FORWARD,
    SITE_MEMBER_KILL,
)

#: Fault kinds (free-form strings; these are the ones the stack implements).
KIND_DELAY = "delay"
KIND_DROP = "drop"
KIND_TRUNCATE = "truncate"
KIND_CORRUPT = "corrupt"
KIND_STALL = "stall"
KIND_RAISE = "raise"
KIND_BUSY = "busy"
KIND_TIMEOUT = "timeout"
KIND_CRASH = "crash"
KIND_KILL = "kill"


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: where, what, how often, and for how long.

    ``probability`` is the per-draw chance of firing; ``max_fires``
    caps the total number of fires (``None`` = unlimited) — a rule with
    ``probability=1.0, max_fires=2`` is a deterministic two-request
    fault window.  ``delay_s`` parameterizes ``delay``/``stall``.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_fires: int | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


@dataclass
class _Armed:
    """Mutable per-plan state of one spec (remaining fire budget)."""

    spec: FaultSpec
    remaining: int | None = field(default=None)


class FaultPlan:
    """A seeded, reproducible schedule of faults for the serving stack.

    Thread-safe: transport sites draw on the event loop while ``kernel``
    draws on executor threads.  :meth:`draw` returns the
    :class:`FaultSpec` that fired (or ``None``); the caller then applies
    the fault — the plan itself never sleeps, raises or touches sockets.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._armed: list[_Armed] = []
        self._rngs: dict[str, random.Random] = {}
        #: fires per ``(site, kind)`` — compare against service metrics.
        self.fired: Counter[tuple[str, str]] = Counter()
        #: called as ``observer(site, kind)`` under the plan lock on
        #: every fire; the service points this at its metrics recorder.
        self.observer: Callable[[str, str], None] | None = None
        for spec in specs or []:
            self.add(spec)

    def add(self, spec: FaultSpec) -> FaultPlan:
        """Arm one more rule; returns ``self`` for chaining."""
        with self._lock:
            self._armed.append(_Armed(spec, spec.max_fires))
        return self

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.seed}:{site}")
        return rng

    def draw(self, site: str) -> FaultSpec | None:
        """One decision at ``site``: the spec that fired, or ``None``.

        At most one rule fires per draw (the first armed rule for the
        site, in insertion order, whose coin toss succeeds).
        """
        with self._lock:
            rng = self._rng(site)
            for armed in self._armed:
                if armed.spec.site != site:
                    continue
                if armed.remaining == 0:
                    continue
                if armed.spec.probability < 1.0 and (
                    rng.random() >= armed.spec.probability
                ):
                    continue
                if armed.remaining is not None:
                    armed.remaining -= 1
                self.fired[site, armed.spec.kind] += 1
                if self.observer is not None:
                    self.observer(site, armed.spec.kind)
                # tag whatever span covers this region (a no-op when
                # tracing is off or the site is outside any span)
                annotate(fault_site=site, fault_kind=armed.spec.kind)
                return armed.spec
        return None

    def total_fired(self) -> int:
        """Total faults fired so far, across all sites and kinds."""
        with self._lock:
            return sum(self.fired.values())

    def has_site(self, site: str) -> bool:
        """Whether any rule (fired-out or not) targets ``site``."""
        with self._lock:
            return any(armed.spec.site == site for armed in self._armed)


def random_plan(
    seed: int,
    intensity: float = 0.05,
    stall_s: float = 0.005,
    delay_s: float = 0.002,
) -> FaultPlan:
    """A randomized-but-reproducible plan covering every fault site.

    The workhorse of the chaos suite: ``intensity`` scales the per-draw
    probabilities, and a ``random.Random(seed)`` perturbs each rule's
    probability so different seeds exercise different mixes.  The same
    seed always yields the same plan *and* (via :class:`FaultPlan`
    seeding) the same decision sequences.
    """
    rng = random.Random(seed)

    def p(scale: float = 1.0) -> float:
        return min(1.0, intensity * scale * (0.5 + rng.random()))

    specs = [
        FaultSpec(SITE_TRANSPORT_READ, KIND_DELAY, p(), delay_s=delay_s),
        FaultSpec(SITE_TRANSPORT_READ, KIND_CORRUPT, p()),
        FaultSpec(SITE_TRANSPORT_READ, KIND_TRUNCATE, p(0.5)),
        FaultSpec(SITE_TRANSPORT_READ, KIND_DROP, p(0.5)),
        FaultSpec(SITE_TRANSPORT_WRITE, KIND_DELAY, p(), delay_s=delay_s),
        FaultSpec(SITE_TRANSPORT_WRITE, KIND_TRUNCATE, p(0.5)),
        FaultSpec(SITE_TRANSPORT_WRITE, KIND_DROP, p(0.5)),
        FaultSpec(SITE_KERNEL, KIND_STALL, p(), delay_s=stall_s),
        FaultSpec(SITE_KERNEL, KIND_RAISE, p()),
        FaultSpec(SITE_ADMISSION, KIND_BUSY, p(2.0)),
        FaultSpec(SITE_ADMISSION, KIND_TIMEOUT, p()),
        FaultSpec(SITE_BACKEND, KIND_CRASH, p(0.25)),
        # cluster sites last: ``p()`` consumes ``rng`` in list order,
        # so appending keeps every earlier spec's probability — and
        # with it the per-seed fault mix of existing suites — stable
        FaultSpec(SITE_ROUTER_FORWARD, KIND_DELAY, p(), delay_s=delay_s),
        FaultSpec(SITE_ROUTER_FORWARD, KIND_DROP, p(0.5)),
        FaultSpec(SITE_ROUTER_FORWARD, KIND_CORRUPT, p(0.5)),
        # a kill per fire is brutal, so cap the budget: two members at
        # most die per plan, and the router's supervisor restarts them
        FaultSpec(SITE_MEMBER_KILL, KIND_KILL, p(0.25), max_fires=2),
    ]
    return FaultPlan(specs, seed=seed)
