"""Fault-injecting wrappers for the service's asyncio stream transports.

:func:`wrap_connection` interposes :class:`FaultyReader` /
:class:`FaultyWriter` between the server's connection handler and the
real asyncio streams.  Faults are drawn from the connection's
:class:`~repro.faults.plan.FaultPlan` once per *frame* (on the
header-sized read, and once per written frame), never per byte:

* ``delay`` — the frame is held for ``delay_s`` before proceeding;
* ``drop`` — the connection is reset (read side) or closed before the
  response is written (write side);
* ``truncate`` — the peer sees a mid-frame EOF;
* ``corrupt`` (read side only) — the first *framing* byte (the magic)
  is flipped, so the frame is guaranteed to be rejected as malformed.
  Payload bytes are deliberately never corrupted: a corrupted request
  must fail loudly, not execute with silently altered inputs — payload
  integrity beyond framing is an authentication concern, out of scope
  for this transport (see ``docs/SERVICE.md``).

The wrappers only implement the stream surface the frame codec uses
(``readexactly``; ``write``/``drain``/``close``/``wait_closed``), which
keeps them honest: anything else the server might call on a transport
would fail fast rather than silently bypass injection.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable

from repro.faults.plan import (
    KIND_CORRUPT,
    KIND_DELAY,
    KIND_DROP,
    KIND_TRUNCATE,
    SITE_TRANSPORT_READ,
    SITE_TRANSPORT_WRITE,
    FaultPlan,
)
from repro.serve.protocol import HEADER_SIZE, FrameReader, FrameWriter

_Sleep = Callable[[float], Awaitable[None]]


class FaultyReader:
    """A ``readexactly`` stream that perturbs one frame per fault draw.

    Faults are drawn only on header-sized reads — the one read per
    frame — so a single draw decides the whole frame's fate and payload
    reads always pass through untouched.
    """

    def __init__(
        self,
        reader: FrameReader,
        plan: FaultPlan,
        sleep: _Sleep = asyncio.sleep,
    ) -> None:
        self._reader = reader
        self._plan = plan
        self._sleep = sleep

    async def readexactly(self, n: int) -> bytes:
        """Read exactly ``n`` bytes, subject to the fault plan."""
        if n != HEADER_SIZE:
            return await self._reader.readexactly(n)
        spec = self._plan.draw(SITE_TRANSPORT_READ)
        if spec is None:
            return await self._reader.readexactly(n)
        if spec.kind == KIND_DELAY:
            await self._sleep(spec.delay_s)
            return await self._reader.readexactly(n)
        if spec.kind == KIND_DROP:
            raise ConnectionResetError("injected fault: connection drop")
        data = await self._reader.readexactly(n)
        if spec.kind == KIND_TRUNCATE:
            raise asyncio.IncompleteReadError(data[: n // 2], n)
        if spec.kind == KIND_CORRUPT:
            return bytes([data[0] ^ 0xFF]) + data[1:]
        return data


class FaultyWriter:
    """A frame-writing stream that perturbs one response per fault draw.

    ``delay`` faults are applied in :meth:`drain` (the write itself is
    synchronous); ``drop``/``truncate`` close the underlying transport
    so the peer observes a dead or mid-frame connection.
    """

    def __init__(
        self,
        writer: FrameWriter,
        plan: FaultPlan,
        sleep: _Sleep = asyncio.sleep,
    ) -> None:
        self._writer = writer
        self._plan = plan
        self._sleep = sleep
        self._pending_delay = 0.0

    def write(self, data: bytes) -> None:
        """Write one frame's bytes, subject to the fault plan."""
        spec = self._plan.draw(SITE_TRANSPORT_WRITE)
        if spec is None:
            self._writer.write(data)
            return
        if spec.kind == KIND_DELAY:
            self._pending_delay += spec.delay_s
            self._writer.write(data)
            return
        if spec.kind == KIND_TRUNCATE:
            self._writer.write(data[: max(1, len(data) // 2)])
            self._writer.close()
            return
        if spec.kind == KIND_DROP:
            self._writer.close()
            return
        self._writer.write(data)

    async def drain(self) -> None:
        """Flush, after serving any injected delay."""
        if self._pending_delay > 0.0:
            delay, self._pending_delay = self._pending_delay, 0.0
            await self._sleep(delay)
        await self._writer.drain()

    def close(self) -> None:
        """Close the underlying transport."""
        self._writer.close()

    async def wait_closed(self) -> None:
        """Await the underlying transport's teardown."""
        await self._writer.wait_closed()


def wrap_connection(
    reader: FrameReader,
    writer: FrameWriter,
    plan: FaultPlan | None,
) -> tuple[FrameReader, FrameWriter]:
    """Interpose fault wrappers where the plan has transport rules.

    Streams without matching rules are returned unwrapped, so a plan
    that only injects kernel or admission faults adds zero overhead to
    the transport path.
    """
    if plan is None:
        return reader, writer
    wrapped_reader: FrameReader = reader
    wrapped_writer: FrameWriter = writer
    if plan.has_site(SITE_TRANSPORT_READ):
        wrapped_reader = FaultyReader(reader, plan)
    if plan.has_site(SITE_TRANSPORT_WRITE):
        wrapped_writer = FaultyWriter(writer, plan)
    return wrapped_reader, wrapped_writer
