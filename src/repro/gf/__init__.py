"""Finite-field arithmetic over GF(2^m).

This subpackage provides the Galois-field substrate used by the BCH
error-correcting code of LAC (Sec. IV-B of the paper) and by the
hardware models of the GF multiplier and the Chien-search engine.

Public API:

* :class:`repro.gf.field.GF2m` — a binary extension field with
  log/antilog tables, constant-time multiplication, and minimal
  polynomial computation.
* :data:`repro.gf.field.GF512` — the GF(2^9) instance used by LAC,
  built on the primitive polynomial p(x) = 1 + x^4 + x^9.
* :class:`repro.gf.poly2.Poly2` — polynomials over GF(2) (bitmask
  representation), used to construct BCH generator polynomials.
* :mod:`repro.gf.polygf` — dense polynomials over GF(2^m), used by the
  BCH decoders (error-locator polynomials, syndrome polynomials).
"""

from repro.gf.field import GF2m, GF512, LAC_PRIMITIVE_POLY
from repro.gf.poly2 import Poly2
from repro.gf.polygf import PolyGF

__all__ = ["GF2m", "GF512", "LAC_PRIMITIVE_POLY", "Poly2", "PolyGF"]
