"""Polynomials over GF(2), stored as integer bitmasks.

Bit i of the mask is the coefficient of x^i.  These polynomials are the
natural representation for BCH codewords and generator polynomials:
multiplication is a carry-less product and reduction is long division
with XOR.  The class is immutable and hashable so polynomials can be
used as dict keys (e.g. caching minimal polynomials).
"""

from __future__ import annotations


class Poly2:
    """An immutable polynomial over GF(2).

    Construct from an integer bitmask or from an iterable of coefficient
    indices::

        Poly2(0b1011)            # x^3 + x + 1
        Poly2.from_terms([3, 1, 0])
    """

    __slots__ = ("mask",)

    def __init__(self, mask: int):
        if mask < 0:
            raise ValueError("polynomial mask must be non-negative")
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Poly2 is immutable")

    @classmethod
    def from_terms(cls, exponents: list[int]) -> "Poly2":
        """Build a polynomial from a list of exponents with coefficient 1."""
        mask = 0
        for e in exponents:
            mask ^= 1 << e
        return cls(mask)

    @classmethod
    def zero(cls) -> "Poly2":
        return cls(0)

    @classmethod
    def one(cls) -> "Poly2":
        return cls(1)

    @classmethod
    def x(cls) -> "Poly2":
        return cls(2)

    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return self.mask.bit_length() - 1

    @property
    def weight(self) -> int:
        """Hamming weight (number of nonzero coefficients)."""
        return bin(self.mask).count("1")

    def coefficient(self, i: int) -> int:
        """Coefficient of x^i (0 or 1)."""
        return (self.mask >> i) & 1

    def terms(self) -> list[int]:
        """Exponents with nonzero coefficients, ascending."""
        return [i for i in range(self.mask.bit_length()) if (self.mask >> i) & 1]

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "Poly2") -> "Poly2":
        return Poly2(self.mask ^ other.mask)

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "Poly2") -> "Poly2":
        """Carry-less multiplication."""
        a, b = self.mask, other.mask
        result = 0
        shift = 0
        while b:
            if b & 1:
                result ^= a << shift
            b >>= 1
            shift += 1
        return Poly2(result)

    def __lshift__(self, n: int) -> "Poly2":
        """Multiply by x^n."""
        return Poly2(self.mask << n)

    def divmod(self, divisor: "Poly2") -> tuple["Poly2", "Poly2"]:
        """Polynomial long division: returns (quotient, remainder)."""
        if divisor.mask == 0:
            raise ZeroDivisionError("polynomial division by zero")
        remainder = self.mask
        quotient = 0
        dividend_degree = remainder.bit_length() - 1
        divisor_degree = divisor.degree
        for shift in range(dividend_degree - divisor_degree, -1, -1):
            if remainder & (1 << (shift + divisor_degree)):
                remainder ^= divisor.mask << shift
                quotient |= 1 << shift
        return Poly2(quotient), Poly2(remainder)

    def __mod__(self, divisor: "Poly2") -> "Poly2":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Poly2") -> "Poly2":
        return self.divmod(divisor)[0]

    def gcd(self, other: "Poly2") -> "Poly2":
        """Greatest common divisor by the Euclidean algorithm."""
        a, b = self, other
        while b.mask:
            a, b = b, a % b
        return a

    def eval_gf2(self, point: int) -> int:
        """Evaluate at a GF(2) point (0 or 1)."""
        if point == 0:
            return self.mask & 1
        return self.weight & 1

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly2) and self.mask == other.mask

    def __hash__(self) -> int:
        return hash(("Poly2", self.mask))

    def __bool__(self) -> bool:
        return self.mask != 0

    def __repr__(self) -> str:
        if self.mask == 0:
            return "Poly2(0)"
        terms = []
        for e in reversed(self.terms()):
            if e == 0:
                terms.append("1")
            elif e == 1:
                terms.append("x")
            else:
                terms.append(f"x^{e}")
        return f"Poly2({' + '.join(terms)})"
