"""Dense polynomials with coefficients in GF(2^m).

Used by the BCH decoders for syndrome polynomials, error-locator
polynomials (Berlekamp--Massey) and their evaluation (Chien search /
Horner).  Coefficients are stored low-degree-first in a plain list of
ints (vector representation of :class:`repro.gf.field.GF2m` elements).
"""

from __future__ import annotations

from repro.gf.field import GF2m


class PolyGF:
    """A polynomial over GF(2^m), low-degree-first coefficient list."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF2m, coeffs: list[int] | None = None):
        self.field = field
        coeffs = list(coeffs or [])
        # normalize: strip trailing zeros
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        for c in coeffs:
            if not 0 <= c < field.order:
                raise ValueError(f"coefficient {c} outside GF(2^{field.m})")
        self.coeffs = coeffs

    @classmethod
    def zero(cls, field: GF2m) -> "PolyGF":
        return cls(field, [])

    @classmethod
    def one(cls, field: GF2m) -> "PolyGF":
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: GF2m, degree: int, coeff: int = 1) -> "PolyGF":
        """coeff * x^degree."""
        return cls(field, [0] * degree + [coeff])

    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def coefficient(self, i: int) -> int:
        """Coefficient of x^i (0 if beyond the stored degree)."""
        if 0 <= i < len(self.coeffs):
            return self.coeffs[i]
        return 0

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def _require_same_field(self, other: "PolyGF") -> None:
        if self.field != other.field:
            raise ValueError("polynomials belong to different fields")

    def __add__(self, other: "PolyGF") -> "PolyGF":
        self._require_same_field(other)
        n = max(len(self.coeffs), len(other.coeffs))
        out = [self.coefficient(i) ^ other.coefficient(i) for i in range(n)]
        return PolyGF(self.field, out)

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "PolyGF") -> "PolyGF":
        self._require_same_field(other)
        if self.is_zero() or other.is_zero():
            return PolyGF.zero(self.field)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        mul = self.field.mul
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    out[i + j] ^= mul(a, b)
        return PolyGF(self.field, out)

    def scale(self, scalar: int) -> "PolyGF":
        """Multiply every coefficient by a field scalar."""
        mul = self.field.mul
        return PolyGF(self.field, [mul(c, scalar) for c in self.coeffs])

    def shift(self, n: int) -> "PolyGF":
        """Multiply by x^n."""
        if self.is_zero():
            return PolyGF.zero(self.field)
        return PolyGF(self.field, [0] * n + self.coeffs)

    def eval(self, point: int) -> int:
        """Evaluate at a field point using Horner's rule."""
        mul = self.field.mul
        acc = 0
        for c in reversed(self.coeffs):
            acc = mul(acc, point) ^ c
        return acc

    def eval_powers(self, base: int, count: int, start: int = 0) -> list[int]:
        """Evaluate at alpha^start, alpha^(start+1), ..., for ``count`` points.

        ``base`` must be a primitive element power index source, i.e. the
        evaluation points are ``field.alpha_pow(start + i)``.  Returns the
        list of evaluations (used by naive Chien-search checks in tests).
        """
        field = self.field
        return [
            self.eval(field.alpha_pow(start + i))
            for i in range(count)
        ]

    def derivative(self) -> "PolyGF":
        """Formal derivative: in characteristic 2, even-degree terms vanish."""
        out = [0] * max(len(self.coeffs) - 1, 0)
        for i in range(1, len(self.coeffs)):
            if i % 2 == 1:  # i * c = c when i odd, 0 when i even (char 2)
                out[i - 1] = self.coeffs[i]
        return PolyGF(self.field, out)

    def roots(self) -> list[int]:
        """All roots in the field, by exhaustive evaluation (test helper)."""
        return [p for p in range(self.field.order) if self.eval(p) == 0]

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolyGF)
            and self.field == other.field
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, tuple(self.coeffs)))

    def __repr__(self) -> str:
        return f"PolyGF(GF(2^{self.field.m}), {self.coeffs})"
