"""Hashing substrate: SHA-256 and the LAC seed-expansion PRNG.

LAC generates its public polynomial and all secret/error polynomials
by expanding short seeds through SHA-256 (Sec. III-B of the paper) —
which is why the paper's third accelerator is a SHA256 core.  The
implementation here is written from scratch (and verified against
``hashlib`` in the test suite) so the same round schedule can back
both the software cycle model and the hardware accelerator model.
"""

from repro.hashes.sha256 import SHA256, sha256
from repro.hashes.prng import Sha256Prng

__all__ = ["SHA256", "sha256", "Sha256Prng"]
