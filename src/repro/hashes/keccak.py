"""Keccak-f[1600] and the SHAKE extendable-output functions.

Two of the paper's reference points need Keccak: the NewHope co-design
of [8] generates its polynomials with SHAKE-128, and the paper's own
future work proposes replacing the SHA256 accelerator with a Keccak
core ("Changing the SHA256 accelerator with a Keccak accelerator to
further increase the performance of LAC has been left for a future
work").  This module implements the permutation and the SHAKE-128/256
XOFs from scratch (verified against ``hashlib`` in the test suite);
the hardware model lives in :mod:`repro.hw.keccak_accel`.

One ``keccak_f`` operation is recorded per permutation so the cycle
models can price software vs. accelerator execution.
"""

from __future__ import annotations

from repro.metrics import OpCounter, ensure_counter

_MASK64 = (1 << 64) - 1

#: Round constants of Keccak-f[1600] (FIPS 202, Sec. 3.2.5).
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

#: Rotation offsets rho[x][y] (FIPS 202, Sec. 3.2.2).
ROTATION_OFFSETS = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)


def _rotl(value: int, offset: int) -> int:
    offset %= 64
    return ((value << offset) | (value >> (64 - offset))) & _MASK64


def keccak_f1600(state: list[int]) -> list[int]:
    """One Keccak-f[1600] permutation over 25 lanes (x + 5y indexing)."""
    if len(state) != 25:
        raise ValueError("the Keccak state is 25 64-bit lanes")
    lanes = [[state[x + 5 * y] for y in range(5)] for x in range(5)]

    for round_constant in ROUND_CONSTANTS:
        # theta
        parity = [
            lanes[x][0] ^ lanes[x][1] ^ lanes[x][2] ^ lanes[x][3] ^ lanes[x][4]
            for x in range(5)
        ]
        for x in range(5):
            d = parity[(x - 1) % 5] ^ _rotl(parity[(x + 1) % 5], 1)
            for y in range(5):
                lanes[x][y] ^= d
        # rho + pi
        moved = [[0] * 5 for _ in range(5)]
        for x in range(5):
            for y in range(5):
                moved[y][(2 * x + 3 * y) % 5] = _rotl(
                    lanes[x][y], ROTATION_OFFSETS[x][y]
                )
        # chi
        for x in range(5):
            for y in range(5):
                lanes[x][y] = moved[x][y] ^ (
                    (~moved[(x + 1) % 5][y]) & moved[(x + 2) % 5][y] & _MASK64
                )
        # iota
        lanes[0][0] ^= round_constant

    return [lanes[x][y] for y in range(5) for x in range(5)]


class KeccakSponge:
    """The sponge construction over Keccak-f[1600].

    Parameters
    ----------
    rate_bytes:
        Sponge rate in bytes (168 for SHAKE-128, 136 for SHAKE-256).
    domain_suffix:
        Padding domain byte (0x1F for the SHAKE XOFs).
    counter:
        Optional operation counter; one ``keccak_f`` per permutation.
    """

    def __init__(
        self,
        rate_bytes: int,
        domain_suffix: int = 0x1F,
        counter: OpCounter | None = None,
    ):
        if not 0 < rate_bytes < 200:
            raise ValueError("rate must be between 1 and 199 bytes")
        self.rate = rate_bytes
        self.domain_suffix = domain_suffix
        self._counter = ensure_counter(counter)
        self._state = [0] * 25
        self._buffer = b""
        self._squeezing = False
        self._squeeze_pool = b""

    def _permute(self) -> None:
        self._state = keccak_f1600(self._state)
        self._counter.count("keccak_f")

    def _absorb_block(self, block: bytes) -> None:
        for i in range(0, self.rate, 8):
            lane = int.from_bytes(block[i : i + 8].ljust(8, b"\x00"), "little")
            self._state[i // 8] ^= lane
        self._permute()

    def absorb(self, data: bytes) -> "KeccakSponge":
        """Feed message bytes into the sponge (before any squeeze)."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing started")
        self._buffer += data
        while len(self._buffer) >= self.rate:
            self._absorb_block(self._buffer[: self.rate])
            self._buffer = self._buffer[self.rate :]
        return self

    def _finalize(self) -> None:
        padded = bytearray(self._buffer.ljust(self.rate, b"\x00"))
        padded[len(self._buffer)] ^= self.domain_suffix
        padded[self.rate - 1] ^= 0x80
        self._absorb_block(bytes(padded))
        self._buffer = b""
        self._squeezing = True

    def squeeze(self, n: int) -> bytes:
        """Extract ``n`` output bytes (can be called repeatedly)."""
        if n < 0:
            raise ValueError("cannot squeeze a negative number of bytes")
        if not self._squeezing:
            self._finalize()
        while len(self._squeeze_pool) < n:
            block = b"".join(
                lane.to_bytes(8, "little") for lane in self._state[: (self.rate + 7) // 8]
            )[: self.rate]
            self._squeeze_pool += block
            self._permute()
        out, self._squeeze_pool = self._squeeze_pool[:n], self._squeeze_pool[n:]
        return out


def shake128(data: bytes, n: int, counter: OpCounter | None = None) -> bytes:
    """SHAKE-128 XOF: ``n`` output bytes."""
    return KeccakSponge(168, counter=counter).absorb(data).squeeze(n)


def shake256(data: bytes, n: int, counter: OpCounter | None = None) -> bytes:
    """SHAKE-256 XOF: ``n`` output bytes."""
    return KeccakSponge(136, counter=counter).absorb(data).squeeze(n)


class ShakePrng:
    """A SHAKE-128 byte stream with the Sha256Prng interface.

    Drop-in alternative seed expander: this is what NewHope [8] uses
    for polynomial generation, and what the paper's future-work Keccak
    accelerator would back for LAC.  Per-byte stream-management
    overhead is recorded as ``prng_byte`` exactly like the SHA-256
    expander, so the two are comparable under the same cost model.
    """

    def __init__(self, seed: bytes, counter: OpCounter | None = None):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self.seed = bytes(seed)
        self._counter = ensure_counter(counter)
        self._sponge = KeccakSponge(168, counter=self._counter)
        self._sponge.absorb(self.seed)

    def read(self, n: int) -> bytes:
        """The next ``n`` stream bytes (records per-byte overhead)."""
        out = self._sponge.squeeze(n)
        self._counter.count("prng_byte", n)
        return out

    def read_u8(self) -> int:
        """One stream byte as an integer."""
        return self.read(1)[0]

    def read_u32(self) -> int:
        """Four stream bytes as a little-endian integer."""
        return int.from_bytes(self.read(4), "little")

    def uniform_below(self, bound: int) -> int:
        """An unbiased uniform integer in [0, bound) via rejection."""
        if bound < 1:
            raise ValueError("bound must be positive")
        if bound == 1:
            return 0
        nbytes = (bound - 1).bit_length() // 8 + 1
        limit = (256**nbytes // bound) * bound
        while True:
            value = int.from_bytes(self.read(nbytes), "little")
            if value < limit:
                return value % bound

    def fork(self, label: bytes) -> "ShakePrng":
        """A domain-separated child stream."""
        child_seed = shake128(self.seed + label, 32, counter=self._counter)
        return ShakePrng(child_seed, counter=self._counter)
