"""Seed expansion for polynomial generation (GenA / Sample poly).

LAC expands short seeds into long pseudorandom byte streams with
SHA-256 (Sec. III-B: "expands this seed using a pseudo random number
generator (SHA256 in LAC)").  The exact domain-separation details of
the reference code are immaterial to the paper's evaluation (what is
measured is the number of SHA-256 compressions); we use the standard
counter-mode construction

    stream = SHA256(seed || LE32(0)) || SHA256(seed || LE32(1)) || ...

which performs one compression per 32 output bytes for 32-byte seeds,
matching the accounting of the reference implementation.
"""

from __future__ import annotations

import hashlib

from repro.hashes.sha256 import SHA256, sha256
from repro.metrics import NullCounter, OpCounter, ensure_counter


class Sha256Prng:
    """A deterministic byte stream expanded from a seed via SHA-256.

    Parameters
    ----------
    seed:
        Arbitrary-length seed bytes (LAC uses 32).
    counter:
        Optional operation counter; every SHA-256 compression performed
        during expansion is recorded (``sha256_block``), so GenA and
        sampling costs in the cycle model scale with real hash work.
    """

    def __init__(self, seed: bytes, counter: OpCounter | None = None):
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self.seed = bytes(seed)
        self._counter = ensure_counter(counter)
        self._fast = isinstance(self._counter, NullCounter)
        self._block_index = 0
        self._pool = bytearray()
        self._offset = 0
        #: SHA-256 state with the seed already absorbed, cloned per
        #: squeeze block so the seed is hashed exactly once instead of
        #: being re-absorbed on every refill (lazy: first squeeze).  A
        #: raw ``hashlib`` object on the uncounted fast path, the
        #: block-accounted from-scratch hasher otherwise.
        self._base = None

    def _squeeze(self, blocks: int) -> None:
        """Append ``blocks`` counter-mode output blocks to the pool."""
        if self._base is None:
            self._base = (
                hashlib.sha256(self.seed)
                if self._fast
                else SHA256(self.seed, counter=self._counter)
            )
        base, pool = self._base, self._pool
        stop = self._block_index + blocks
        for index in range(self._block_index, stop):
            hasher = base.copy()
            hasher.update(index.to_bytes(4, "little"))
            pool += hasher.digest()
        self._block_index = stop

    def read(self, n: int) -> bytes:
        """Return the next ``n`` bytes of the stream.

        Besides the SHA-256 compressions, one ``prng_byte`` operation is
        recorded per byte delivered: the reference implementation's
        stream-state management (buffer bookkeeping, call layering) costs
        a roughly constant amount per output byte on top of the hashing,
        and dominates the polynomial-generation kernels of Table II.
        """
        if n < 0:
            raise ValueError("cannot read a negative number of bytes")
        deficit = n - (len(self._pool) - self._offset)
        if deficit > 0:
            self._squeeze(-(-deficit // 32))
        out = bytes(self._pool[self._offset : self._offset + n])
        self._offset += n
        if self._offset >= 4096:
            del self._pool[: self._offset]
            self._offset = 0
        self._counter.count("prng_byte", n)
        return out

    def read_u8(self) -> int:
        """One stream byte as an integer."""
        return self.read(1)[0]

    def read_u32(self) -> int:
        """Four stream bytes as a little-endian integer."""
        return int.from_bytes(self.read(4), "little")

    def uniform_below(self, bound: int) -> int:
        """An unbiased uniform integer in [0, bound) via rejection sampling."""
        if bound < 1:
            raise ValueError("bound must be positive")
        if bound == 1:
            return 0
        nbytes = (bound - 1).bit_length() // 8 + 1
        limit = (256**nbytes // bound) * bound
        while True:
            value = int.from_bytes(self.read(nbytes), "little")
            if value < limit:
                return value % bound

    def fork(self, label: bytes) -> "Sha256Prng":
        """A domain-separated child stream (seed' = SHA256(seed || label))."""
        if self._fast:
            return Sha256Prng(hashlib.sha256(self.seed + label).digest())
        hasher = SHA256(counter=self._counter)
        hasher.update(self.seed)
        hasher.update(label)
        return Sha256Prng(hasher.digest(), counter=self._counter)
