"""SHA-256, implemented from scratch (FIPS 180-4).

The compression function is written round-by-round so that (a) the
test suite can verify it bit-exactly against ``hashlib``, (b) the
SHA256 hardware accelerator model (:mod:`repro.hw.sha256_accel`) can
reuse the exact same round schedule while counting clock cycles, and
(c) the software cycle model can charge per-compression costs
(``sha256_block`` operations) that correspond to real work performed.
"""

from __future__ import annotations

import hashlib
import struct

from repro.metrics import NullCounter, OpCounter, ensure_counter

_MASK32 = 0xFFFFFFFF

#: Initial hash values H0..H7 (FIPS 180-4, Sec. 5.3.3).
IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

#: Round constants K0..K63 (FIPS 180-4, Sec. 4.2.2).
K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


def _rotr(x: int, r: int) -> int:
    return ((x >> r) | (x << (32 - r))) & _MASK32


def compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    """One SHA-256 compression: 64-byte block folded into the 8-word state.

    This is the unit of work the SHA256 hardware accelerator performs
    per activation (one message schedule expansion + 64 rounds).
    """
    if len(block) != 64:
        raise ValueError("SHA-256 blocks are exactly 64 bytes")
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, h = state
    for i in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + big_s1 + ch + K[i] + w[i]) & _MASK32
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK32
        h, g, f, e = g, f, e, (d + temp1) & _MASK32
        d, c, b, a = c, b, a, (temp1 + temp2) & _MASK32

    return tuple((s + v) & _MASK32 for s, v in zip(state, (a, b, c, d, e, f, g, h)))


def pad(message_length: int) -> bytes:
    """The FIPS padding appended to a message of the given byte length."""
    bit_length = message_length * 8
    padding = b"\x80" + b"\x00" * ((55 - message_length) % 64)
    return padding + struct.pack(">Q", bit_length)


class SHA256:
    """Incremental SHA-256 hasher (hashlib-like interface).

    The optional ``counter`` records one ``sha256_block`` operation per
    compression, which the cycle model prices at the software cost of
    a compression on the RISC-V core.

    When nothing is being counted the instance delegates to the C
    implementation in ``hashlib`` (bit-identical — a tested invariant);
    with a counter attached the from-scratch compression runs so every
    block is accounted.  ``copy()`` preserves whichever engine is
    active, so pre-absorbed states (the PRNG's incremental squeeze) stay
    cheap on the fast path and correctly accounted on the counted path.
    """

    digest_size = 32
    block_size = 64

    def __init__(self, data: bytes = b"", counter: OpCounter | None = None):
        self._counter = ensure_counter(counter)
        self._fast = hashlib.sha256() if isinstance(self._counter, NullCounter) else None
        self._state = IV
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "SHA256":
        """Absorb more message bytes; returns self for chaining."""
        if self._fast is not None:
            self._fast.update(data)
            return self
        self._buffer += data
        self._length += len(data)
        while len(self._buffer) >= 64:
            self._state = compress(self._state, self._buffer[:64])
            self._counter.count("sha256_block")
            self._buffer = self._buffer[64:]
        return self

    def digest(self) -> bytes:
        """The 32-byte digest of everything absorbed so far."""
        if self._fast is not None:
            return self._fast.digest()
        state = self._state
        tail = self._buffer + pad(self._length)
        blocks_done = 0
        for offset in range(0, len(tail), 64):
            state = compress(state, tail[offset : offset + 64])
            blocks_done += 1
        self._counter.count("sha256_block", blocks_done)
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        """The digest as a hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA256":
        """An independent clone of the current hash state."""
        clone = SHA256()
        clone._counter = self._counter
        if self._fast is not None:
            clone._fast = self._fast.copy()
        else:
            clone._fast = None
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha256(data: bytes, counter: OpCounter | None = None) -> bytes:
    """One-shot SHA-256 digest.

    When no operations are being counted, the C implementation from
    ``hashlib`` computes the (bit-identical — a tested invariant)
    digest; with a counter, the from-scratch compression runs so every
    block is accounted.
    """
    counter = ensure_counter(counter)
    if isinstance(counter, NullCounter):
        return hashlib.sha256(data).digest()
    return SHA256(data, counter=counter).digest()
