"""Cycle-accurate behavioral models of the paper's hardware accelerators.

Each model simulates the register-transfer behaviour of one PQ-ALU
unit (Sec. IV / Fig. 2-4 of the paper) cycle by cycle, is verified
bit-exactly against the software golden models, and reports both its
cycle schedule and a structural component inventory from which the
area estimator (:mod:`repro.hw.area`) reproduces Table III.

Units:

* :class:`repro.hw.mul_ter.MulTerUnit` — the length-512 ternary
  polynomial multiplier (Fig. 2): one serialized ternary coefficient
  per clock through an array of 512 Modular Arithmetic Units, with
  sign multiplexers selecting positive/negative wrapped convolution.
* :class:`repro.hw.mul_gf.MulGfUnit` — the GF(2^9) shift-and-add
  multiplier (Fig. 3): 9 clocks per product, reduction interleaved via
  the p(x) = 1 + x^4 + x^9 feedback taps.
* :class:`repro.hw.chien.ChienUnit` — the Chien-search engine
  (Fig. 4): four MUL GF instances in parallel with an input feedback
  loop, evaluating the error-locator polynomial one power of alpha per
  activation group.
* :class:`repro.hw.sha256_accel.Sha256Unit` — the SHA256 core
  (one compression per 65 clocks plus byte-wise I/O).
* :class:`repro.hw.barrett.BarrettUnit` — the single-cycle MOD q
  reduction (Barrett, two DSP multipliers).
"""

from repro.hw.common import ComponentInventory
from repro.hw.mau import ModularArithmeticUnit
from repro.hw.mul_ter import MulTerUnit
from repro.hw.mul_gf import MulGfUnit
from repro.hw.chien import ChienUnit
from repro.hw.sha256_accel import Sha256Unit
from repro.hw.barrett import BarrettUnit
from repro.hw.area import AreaEstimate, AreaModel
from repro.hw.keccak_accel import KeccakUnit
from repro.hw.ntt_accel import NttAccelUnit
from repro.hw.vcd import VcdWriter, dump_mul_gf_trace, dump_mul_ter_trace

__all__ = [
    "ComponentInventory",
    "ModularArithmeticUnit",
    "MulTerUnit",
    "MulGfUnit",
    "ChienUnit",
    "Sha256Unit",
    "BarrettUnit",
    "AreaEstimate",
    "AreaModel",
    "KeccakUnit",
    "NttAccelUnit",
    "VcdWriter",
    "dump_mul_gf_trace",
    "dump_mul_ter_trace",
]
