"""FPGA resource estimation (Table III substitution).

We cannot synthesize RTL, so Table III is reproduced with a structural
area model: every unit reports a :class:`ComponentInventory` (adder
bits, mux bits, gates, flip-flops, DSPs, BRAMs) and this module maps
primitives to Xilinx UltraScale+ CLB resources with standard per-
primitive costs:

* a w-bit ripple/carry adder maps to ~w LUTs (carry chain),
* a 2:1 mux bit or comparator bit to ~0.5 LUT (two fit one LUT6),
* a 2-input gate to ~0.5 LUT (synthesis packs several per LUT but
  routing and control overhead roughly cancel the packing at this
  granularity),
* flip-flops map 1:1 to CLB registers; DSP and BRAM pass through.

The RISCY base core and the platform peripherals are carried as
published constants (they are the paper's measurement of third-party
RTL, not something our models produce); the PQ-ALU units are estimated
from their inventories.  What the model must preserve from Table III:
the ternary multiplier dominating LUTs and registers, the GF block
being tiny, Barrett holding the only two DSPs, and the PQ-ALU using
zero BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.barrett import BarrettUnit
from repro.hw.chien import ChienUnit
from repro.hw.common import ComponentInventory
from repro.hw.mul_ter import MulTerUnit
from repro.hw.sha256_accel import Sha256Unit

#: LUTs per primitive unit (see module docstring).
LUTS_PER_ADDER_BIT = 1.0
LUTS_PER_MUX_BIT = 0.5
LUTS_PER_COMPARATOR_BIT = 0.5
LUTS_PER_GATE = 0.5


@dataclass(frozen=True)
class AreaEstimate:
    """LUT/register/BRAM/DSP usage of one block."""

    luts: int
    registers: int
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )


#: Paper-reported baseline blocks (third-party RTL we do not model).
RISCY_BASE_CORE = AreaEstimate(luts=21_202, registers=2_909, brams=0, dsps=8)
PERIPHERALS_AND_MEMORY = AreaEstimate(luts=8_769, registers=7_369, brams=32, dsps=0)

#: Paper values for the comparison rows of Table III ([8]'s accelerators).
NEWHOPE_NTT_ACCELERATOR = AreaEstimate(luts=886, registers=618, brams=1, dsps=26)
NEWHOPE_KECCAK_ACCELERATOR = AreaEstimate(luts=10_435, registers=4_225, brams=0, dsps=0)


class AreaModel:
    """Maps component inventories to UltraScale+ resource estimates."""

    def estimate(self, inventory: ComponentInventory) -> AreaEstimate:
        """Map a component inventory to LUT/FF/BRAM/DSP figures."""
        luts = (
            inventory.adder_bits * LUTS_PER_ADDER_BIT
            + inventory.mux_bits * LUTS_PER_MUX_BIT
            + inventory.comparator_bits * LUTS_PER_COMPARATOR_BIT
            + inventory.gates * LUTS_PER_GATE
        )
        return AreaEstimate(
            luts=round(luts),
            registers=inventory.flipflops,
            brams=inventory.bram,
            dsps=inventory.dsp,
        )

    # ------------------------------------------------------------------

    def pq_alu_report(self, mul_ter_length: int = 512) -> dict[str, AreaEstimate]:
        """Per-unit estimates for the PQ-ALU (Table III's indented rows)."""
        return {
            "Ternary Multiplier": self.estimate(MulTerUnit(mul_ter_length).inventory()),
            "GF-Multipliers": self.estimate(ChienUnit().inventory()),
            "SHA256": self.estimate(Sha256Unit().inventory()),
            "Modulo (Barrett)": self.estimate(BarrettUnit().inventory()),
        }

    def full_report(self, mul_ter_length: int = 512) -> dict[str, AreaEstimate]:
        """The complete Table III layout: platform + extended core + units."""
        units = self.pq_alu_report(mul_ter_length)
        pq_alu_total = AreaEstimate(0, 0)
        for estimate in units.values():
            pq_alu_total = pq_alu_total + estimate
        report = {"Peripherals/Memory": PERIPHERALS_AND_MEMORY}
        report["RISC-V core total"] = RISCY_BASE_CORE + pq_alu_total
        report.update({f"- {name}": est for name, est in units.items()})
        report["NTT accelerator [8]"] = NEWHOPE_NTT_ACCELERATOR
        report["Keccak accelerator [8]"] = NEWHOPE_KECCAK_ACCELERATOR
        return report

    def pq_alu_overhead(self, mul_ter_length: int = 512) -> AreaEstimate:
        """The accelerators' total cost (the abstract's headline numbers)."""
        total = AreaEstimate(0, 0)
        for estimate in self.pq_alu_report(mul_ter_length).values():
            total = total + estimate
        return total
