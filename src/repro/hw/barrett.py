"""The MOD q constant-time Barrett reduction unit.

The paper integrates a single-cycle modulo-q=251 reducer into the
PQ-ALU (Fig. 5), exposed through the pure R-type instruction
``pq.modq rd, rs1``.  Software reductions on RV32IM need a divider
(``remu``, many cycles) or a branchy subtract loop; the hardware unit
computes

    quotient  = (x * M) >> S        with M = floor(2^S / q)
    remainder = x - quotient * q    (one conditional correction)

in one clock using two DSP multipliers — exactly the two DSP slices
Table III attributes to the "Modulo (Barrett)" row.
"""

from __future__ import annotations

from repro.hw.common import ClockedUnit, ComponentInventory
from repro.ring.poly import LAC_Q

#: Barrett shift chosen so the approximation is exact for 32-bit inputs.
BARRETT_SHIFT = 40


class BarrettUnit(ClockedUnit):
    """Single-cycle Barrett reducer for q = 251."""

    def __init__(self, q: int = LAC_Q, shift: int = BARRETT_SHIFT):
        super().__init__()
        self.q = q
        self.shift = shift
        self.multiplier = (1 << shift) // q

    def reduce(self, value: int) -> int:
        """value mod q, for any unsigned 32-bit input, in one clock."""
        if not 0 <= value < (1 << 32):
            raise ValueError("the data path is 32 bits wide")
        quotient = (value * self.multiplier) >> self.shift
        remainder = value - quotient * self.q
        if remainder >= self.q:  # single correction stage
            remainder -= self.q
        self.tick()
        return remainder

    def _tick(self) -> None:
        pass  # purely combinational; tick only counts the issue clock

    def inventory(self) -> ComponentInventory:
        """Two DSP multipliers + correction subtract (Table III: 2 DSPs)."""
        return ComponentInventory(
            flipflops=0,
            adder_bits=9 + 9,       # x - q*quot (low bits) + correction
            mux_bits=8,             # corrected/uncorrected select
            comparator_bits=8,
            dsp=2,                  # x*M (wide) and quot*q
            gates=0,
            notes=["single-cycle Barrett mod 251"],
        )
