"""The MUL CHIEN Chien-search engine (Fig. 4 of the paper).

The unit holds **four** MUL GF multipliers and processes **one group**
of four error-locator terms at a time (Eq. (4) splits the locator sum
into t/4 such groups: four for t = 16, two for t = 8).  Its three
operation modes (Sec. V) are:

* load four field elements for the *left* two multipliers (the pinned
  constants alpha^{1+4j}, alpha^{2+4j} and lambdas for lanes 0-1),
* load four elements for the *right* two multipliers (lanes 2-3),
* calculate and return out_j = sum of the four products.

The feedback loop is the key optimization: after the first activation
each multiplier's output (lambda_k * alpha^{i*k}) is fed back as its
next second operand while the first operand stays pinned at alpha^k —
so a whole probe window needs only one load per group.  The software
driver iterates groups in the outer loop, accumulating the per-probe
partial sums, and combines them with lambda_0 for the root test.

Starting the window at alpha^{start} (the shortened-code windows of
Sec. IV-B) is handled by pre-scaling the loaded lambdas with
alpha^{(start-1)*k} in software, once per decode.
"""

from __future__ import annotations

from repro.gf.field import GF2m, GF512
from repro.hw.common import ClockedUnit, ComponentInventory
from repro.hw.mul_gf import MulGfUnit

#: Parallel GF multipliers instantiated in the unit (Fig. 4).
PARALLEL_MULTIPLIERS = 4
#: Extra clock for the XOR/accumulate output latch per activation.
GROUP_LATCH_CYCLES = 1
#: Field elements packed per load instruction (4 x 9 bits over rs1/rs2).
ELEMENTS_PER_TRANSFER = 4


class ChienUnit(ClockedUnit):
    """Cycle-accurate model of the Chien-search accelerator."""

    def __init__(self, field: GF2m = GF512):
        super().__init__()
        self.field = field
        self.multipliers = [MulGfUnit(field) for _ in range(PARALLEL_MULTIPLIERS)]
        #: pinned first operands (constants alpha^{k+4j})
        self.constants = [0] * PARALLEL_MULTIPLIERS
        #: second operands; feed back after each activation (loop signal)
        self.feedback = [0] * PARALLEL_MULTIPLIERS
        self._loaded_half = [False, False]

    # ------------------------------------------------------------------
    # operation modes
    # ------------------------------------------------------------------

    def load_left(self, elements: list[int]) -> None:
        """Mode 0: constants+lambdas for multiplier lanes 0 and 1."""
        self._load_half(0, elements)

    def load_right(self, elements: list[int]) -> None:
        """Mode 1: constants+lambdas for multiplier lanes 2 and 3."""
        self._load_half(1, elements)

    def _load_half(self, half: int, elements: list[int]) -> None:
        if len(elements) != ELEMENTS_PER_TRANSFER:
            raise ValueError("each load transfers exactly four field elements")
        for e in elements:
            self.field._check(e)
        base = half * 2
        self.constants[base] = elements[0]
        self.feedback[base] = elements[1]
        self.constants[base + 1] = elements[2]
        self.feedback[base + 1] = elements[3]
        self._loaded_half[half] = True
        self.tick()  # one clock per buffered transfer

    def step(self) -> int:
        """Mode 2: one activation — four parallel products, XOR-summed.

        Returns out_j for the current probe and advances the feedback
        registers.  Cycle cost: 9 multiplier clocks + 1 latch clock.
        """
        if not all(self._loaded_half):
            raise RuntimeError("both multiplier halves must be loaded first")
        out = 0
        for lane in range(PARALLEL_MULTIPLIERS):
            product = self.multipliers[lane].multiply(
                self.constants[lane], self.feedback[lane]
            )
            self.feedback[lane] = product  # loop signal enabled
            out ^= product
        self.tick(self.multipliers[0].compute_cycles + GROUP_LATCH_CYCLES)
        return out

    # ------------------------------------------------------------------
    # software-driver helpers
    # ------------------------------------------------------------------

    @property
    def cycles_per_step(self) -> int:
        """Busy clocks per activation (excluding instruction issue)."""
        return self.multipliers[0].compute_cycles + GROUP_LATCH_CYCLES

    def group_elements(
        self, lambdas: list[int], group: int, start_exponent: int
    ) -> tuple[list[int], list[int], int]:
        """Prepare the two load transfers for group ``group``.

        Returns (left_elements, right_elements, software_gf_muls) where
        the lambdas are pre-scaled by alpha^{(start-1)k} so the first
        activation evaluates at alpha^{start}.
        """
        field = self.field
        left: list[int] = []
        right: list[int] = []
        prescale_muls = 0
        for lane in range(PARALLEL_MULTIPLIERS):
            k = group * PARALLEL_MULTIPLIERS + lane + 1
            lam = lambdas[k] if k < len(lambdas) else 0
            if start_exponent != 1:
                lam = field.mul(lam, field.alpha_pow((start_exponent - 1) * k))
                prescale_muls += 1
            target = left if lane < 2 else right
            target.append(field.alpha_pow(k))
            target.append(lam)
        return left, right, prescale_muls

    def search(
        self, lambdas: list[int], t: int, start: int, stop: int
    ) -> list[int]:
        """Full accelerated Chien search: the roots l in [start, stop].

        Functional reference for the driver loop: iterate groups in the
        outer loop (one load per group), accumulate partial sums per
        probe in software, then test lambda_0 ^ sum == 0.
        """
        if t % PARALLEL_MULTIPLIERS:
            raise ValueError("t must be a multiple of the multiplier count")
        probes = stop - start + 1
        partial = [0] * probes
        for group in range(t // PARALLEL_MULTIPLIERS):
            left, right, _ = self.group_elements(lambdas, group, start)
            self.load_left(left)
            self.load_right(right)
            for i in range(probes):
                partial[i] ^= self.step()
        lambda0 = lambdas[0] if lambdas else 0
        return [start + i for i in range(probes) if (lambda0 ^ partial[i]) == 0]

    def _tick(self) -> None:
        pass  # cycle accounting only; the datapath advances in step()

    # ------------------------------------------------------------------

    def inventory(self) -> ComponentInventory:
        """Four multipliers + operand/feedback latches + output stage.

        Matches the small footprint of Table III's "GF-Multipliers"
        row: the unit stores only one group at a time.
        """
        m = self.field.m
        multipliers = self.multipliers[0].inventory().scaled(PARALLEL_MULTIPLIERS)
        feedback_muxes = ComponentInventory(
            mux_bits=m * PARALLEL_MULTIPLIERS,  # load vs. loop selects
        )
        output = ComponentInventory(
            flipflops=m,                        # out_j latch
            gates=m * (PARALLEL_MULTIPLIERS - 1),  # XOR tree
        )
        control = ComponentInventory(flipflops=5, gates=10, comparator_bits=2)
        return multipliers + feedback_muxes + output + control
