"""Shared infrastructure for the hardware models.

Every unit exposes a :class:`ComponentInventory` describing its
structural composition — the flip-flops, adders, multiplexers and
gates a synthesis tool would map to LUTs and registers.  The inventory
is what the area model (:mod:`repro.hw.area`) consumes to reproduce
Table III; keeping it structural (counts of primitives, not magic LUT
numbers) means the MUL TER size ablation changes area estimates for
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ComponentInventory:
    """Structural primitive counts of a hardware block.

    Widths are tracked because an UltraScale+ LUT6 absorbs roughly two
    bits of simple logic: a w-bit adder costs about w LUTs (carry chain),
    a w-bit 2:1 mux about w/2 LUTs, and w flip-flops w registers.
    """

    #: flip-flop bits (registers)
    flipflops: int = 0
    #: total adder/subtractor bit-width (sum over all adders)
    adder_bits: int = 0
    #: total 2:1 multiplexer bit-width
    mux_bits: int = 0
    #: total comparator bit-width (equality/magnitude)
    comparator_bits: int = 0
    #: 2-input gate equivalents (AND/XOR/OR), counted individually
    gates: int = 0
    #: DSP48 slices consumed by wide multipliers
    dsp: int = 0
    #: 36kb BRAM blocks
    bram: int = 0
    #: free-form notes on the block's structure
    notes: list[str] = field(default_factory=list)

    def __add__(self, other: "ComponentInventory") -> "ComponentInventory":
        return ComponentInventory(
            flipflops=self.flipflops + other.flipflops,
            adder_bits=self.adder_bits + other.adder_bits,
            mux_bits=self.mux_bits + other.mux_bits,
            comparator_bits=self.comparator_bits + other.comparator_bits,
            gates=self.gates + other.gates,
            dsp=self.dsp + other.dsp,
            bram=self.bram + other.bram,
            notes=self.notes + other.notes,
        )

    def scaled(self, factor: int) -> "ComponentInventory":
        """Inventory of ``factor`` identical instances."""
        return ComponentInventory(
            flipflops=self.flipflops * factor,
            adder_bits=self.adder_bits * factor,
            mux_bits=self.mux_bits * factor,
            comparator_bits=self.comparator_bits * factor,
            gates=self.gates * factor,
            dsp=self.dsp * factor,
            bram=self.bram * factor,
            notes=list(self.notes),
        )


class ClockedUnit:
    """Base class for cycle-accurate unit models.

    Subclasses implement :meth:`_tick` (one clock edge) and use
    :meth:`run` to advance a whole operation while accounting cycles.
    ``cycle_count`` accumulates over the unit's lifetime, mirroring a
    hardware performance counter.
    """

    def __init__(self) -> None:
        self.cycle_count = 0

    def tick(self, n: int = 1) -> None:
        """Advance ``n`` clock cycles."""
        for _ in range(n):
            self._tick()
            self.cycle_count += 1

    def _tick(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def reset_cycles(self) -> None:
        """Zero the performance counter (datapath state is preserved)."""
        self.cycle_count = 0
