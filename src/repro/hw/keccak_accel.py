"""The Keccak accelerator model (the [8] comparison / future-work core).

Table III lists the Keccak accelerator of the NewHope co-design [8] at
10,435 LUTs and 4,225 registers — an order of magnitude more logic
than the SHA256 core, the price of its 1600-bit state.  The paper
leaves swapping LAC's SHA256 core for such a Keccak core as future
work; this model makes that trade quantifiable.

Schedule: one Keccak-f round per clock (the standard mid-range
implementation point), i.e. 24 clocks per permutation, plus word-wise
I/O through the same R-type transfer style as the other units
(4 bytes per write, rate/4 transfers to refill the absorb buffer).
"""

from __future__ import annotations

from repro.hashes.keccak import KeccakSponge, keccak_f1600
from repro.hw.common import ClockedUnit, ComponentInventory

#: Clocks per Keccak-f[1600] permutation (one round per clock).
PERMUTATION_CYCLES = 24
#: Input bytes per transfer instruction.
BYTES_PER_TRANSFER = 4


class KeccakUnit(ClockedUnit):
    """Cycle-accurate model of a SHAKE-128 accelerator."""

    def __init__(self, rate_bytes: int = 168):
        super().__init__()
        self.rate = rate_bytes
        self.state = [0] * 25
        self.block = bytearray(rate_bytes)

    def _tick(self) -> None:
        pass  # cycle accounting only; the datapath advances per operation

    # ------------------------------------------------------------------

    def reset_state(self) -> None:
        """Clear the 1600-bit state (one configuration clock)."""
        self.state = [0] * 25
        self.tick()

    def write_bytes(self, address: int, data: bytes) -> None:
        """One input transfer into the absorb buffer."""
        if len(data) > BYTES_PER_TRANSFER:
            raise ValueError("at most 4 bytes per transfer")
        if address < 0 or address + len(data) > self.rate:
            raise ValueError("transfer exceeds the rate buffer")
        self.block[address : address + len(data)] = data
        self.tick()

    def absorb_block(self) -> None:
        """XOR the buffered block into the state and permute."""
        for i in range(0, self.rate, 8):
            lane = int.from_bytes(bytes(self.block[i : i + 8]).ljust(8, b"\x00"), "little")
            self.state[i // 8] ^= lane
        self.state = keccak_f1600(self.state)
        self.tick(PERMUTATION_CYCLES)

    def squeeze_block(self) -> bytes:
        """Read the rate portion of the state, then permute."""
        out = b"".join(
            lane.to_bytes(8, "little") for lane in self.state[: (self.rate + 7) // 8]
        )[: self.rate]
        self.state = keccak_f1600(self.state)
        self.tick(PERMUTATION_CYCLES)
        return out

    # ------------------------------------------------------------------

    def shake(self, data: bytes, n: int) -> bytes:
        """Full SHAKE transaction through the transfer protocol."""
        self.reset_state()
        sponge = KeccakSponge(self.rate)
        sponge.absorb(data)
        # drive the same padding the sponge applies
        padded = bytearray(data)
        pad_start = len(data) % self.rate
        tail = bytearray(self.rate - pad_start)
        full_blocks, remainder = divmod(len(data), self.rate)
        blocks = [data[i * self.rate : (i + 1) * self.rate] for i in range(full_blocks)]
        last = bytearray(data[full_blocks * self.rate :].ljust(self.rate, b"\x00"))
        last[remainder] ^= 0x1F
        last[self.rate - 1] ^= 0x80
        blocks.append(bytes(last))
        for block in blocks:
            for offset in range(0, self.rate, BYTES_PER_TRANSFER):
                self.write_bytes(offset, block[offset : offset + BYTES_PER_TRANSFER])
            self.absorb_block()
        out = b""
        while len(out) < n:
            out += self.squeeze_block()
        return out[:n]

    # ------------------------------------------------------------------

    @property
    def cycles_per_permutation(self) -> int:
        return PERMUTATION_CYCLES

    def inventory(self) -> ComponentInventory:
        """One-round-per-clock Keccak core (Table III's [8] row scale).

        The 1600-bit state register plus a double buffer for the absorb
        path dominates the flip-flops; theta/chi/iota are wide XOR/AND
        networks (5-input parity per column, 2-gate chi per bit).
        """
        state_bits = 1600
        return ComponentInventory(
            flipflops=state_bits + 1600 + 168 * 8 // 2 + 5 + 5,  # state + shadow + buffer
            # theta: 4-gate column parity + 2-gate apply per bit; chi:
            # NOT/AND/XOR (3 gates) per bit; iota; absorb-path XORs
            # (rate bits); pi/rho are wiring in a 1-round/clock core
            gates=state_bits * 4 + state_bits * 2 + state_bits * 3 + 64 + 168 * 8,
            mux_bits=2 * state_bits,  # absorb/squeeze/bypass path selects
            adder_bits=0,
            comparator_bits=5,    # round counter terminal
            notes=["Keccak-f[1600], one round per clock"],
        )
