"""The Modular Arithmetic Unit (MAU) of the ternary multiplier.

Each MAU (Fig. 2) is a combinational block with three operation modes
selected by the serialized ternary coefficient a_i:

* a_i = +1: out = (acc + b) mod q
* a_i = -1: out = (acc - b) mod q
* a_i =  0: out = acc (forward)

q = 251 fits in 8 bits, so the MAU is an 8-bit adder/subtractor with a
conditional correction step (add/subtract q on overflow/underflow) —
no DSP resources needed, which is why Table III shows the ternary
multiplier consuming only LUTs and registers.
"""

from __future__ import annotations

from repro.hw.common import ComponentInventory
from repro.ring.poly import LAC_Q


class ModularArithmeticUnit:
    """One 8-bit add/sub/forward-mod-q lane."""

    def __init__(self, q: int = LAC_Q, width: int = 8):
        if q > (1 << width):
            raise ValueError("modulus does not fit the data path width")
        self.q = q
        self.width = width

    def compute(self, acc: int, operand: int, mode: int) -> int:
        """Apply one MAU operation.

        ``mode`` is the ternary control: +1 add, -1 subtract, 0 forward.
        Inputs must already be reduced; the output is reduced with a
        single conditional correction (the hardware's second adder).
        """
        if not 0 <= acc < self.q or not 0 <= operand < self.q:
            raise ValueError("MAU inputs must be reduced mod q")
        if mode == 1:
            result = acc + operand
            if result >= self.q:  # conditional correction subtract
                result -= self.q
        elif mode == -1:
            result = acc - operand
            if result < 0:  # conditional correction add
                result += self.q
        elif mode == 0:
            result = acc
        else:
            raise ValueError(f"MAU mode must be in {{-1,0,1}}, got {mode}")
        return result

    def inventory(self) -> ComponentInventory:
        """Structural cost of one MAU lane.

        The three-mode unit keeps separate adder and subtractor paths
        (the paper's "adders/subtractors"), each with its own
        conditional correction stage, plus the mode-select and
        corrected/uncorrected output muxes.
        """
        w = self.width
        return ComponentInventory(
            flipflops=0,  # the result register is counted by the array
            adder_bits=4 * w,      # add path, sub path, two corrections
            mux_bits=4 * w,        # mode select, two correction selects, output
            comparator_bits=2 * w,  # overflow + underflow detect
            gates=8,               # mode decode
        )
