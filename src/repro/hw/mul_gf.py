"""The MUL GF Galois-field multiplier (Fig. 3 of the paper).

A shift-and-add GF(2^9) multiplier with interleaved reduction by the
primitive polynomial p(x) = 1 + x^4 + x^9.  The bits a_i of operand a
sit at the first inputs of nine AND gates; the Control Unit feeds the
bits of operand b sequentially (b_8 first) to the second inputs.  The
heart is the 9-bit shift register c whose feedback taps (c_8 into c_0
and c_4) perform the reduction.  After m = 9 clocks the register holds
the product — always exactly 9 clocks, i.e. the unit is constant-time
by construction, which is what makes it suitable for the protected
Chien search.
"""

from __future__ import annotations

from repro.gf.field import GF2m, GF512
from repro.hw.common import ClockedUnit, ComponentInventory


class MulGfUnit(ClockedUnit):
    """Cycle-accurate model of the GF(2^m) shift-and-add multiplier."""

    def __init__(self, field: GF2m = GF512):
        super().__init__()
        self.field = field
        self.m = field.m
        self.a = 0
        self.b = 0
        self.c = 0  # the result shift register
        self._bit_index = self.m - 1
        self._running = False

    # ------------------------------------------------------------------

    def load(self, a: int, b: int) -> None:
        """Latch operands and reset the result register (rst signal)."""
        self.field._check(a)
        self.field._check(b)
        self.a = a
        self.b = b
        self.c = 0
        self._bit_index = self.m - 1
        self._running = True  # en goes high after start

    def _tick(self) -> None:
        if not self._running:
            return
        # shift left with the primitive-polynomial feedback: the bit
        # leaving c_{m-1} re-enters at the reduction taps
        carry = (self.c >> (self.m - 1)) & 1
        self.c = (self.c << 1) & ((1 << self.m) - 1)
        if carry:
            self.c ^= self.field.primitive_poly & ((1 << self.m) - 1)
        # AND gates inject a when the current b bit (MSB first) is set
        if (self.b >> self._bit_index) & 1:
            self.c ^= self.a
        self._bit_index -= 1
        if self._bit_index < 0:
            self._running = False  # control unit drops en

    def run_to_completion(self) -> int:
        """Clock until done; returns the cycles spent (always m)."""
        spent = 0
        while self._running:
            self.tick()
            spent += 1
        return spent

    def multiply(self, a: int, b: int) -> int:
        """Full transaction: load, clock m cycles, read c."""
        self.load(a, b)
        self.run_to_completion()
        return self.c

    # ------------------------------------------------------------------

    @property
    def compute_cycles(self) -> int:
        return self.m

    def inventory(self) -> ComponentInventory:
        """One multiplier: c shift register + operand latches + gates."""
        m = self.m
        taps = bin(self.field.primitive_poly).count("1") - 1
        return ComponentInventory(
            flipflops=3 * m + 4,       # c, a latch, b latch, small FSM
            gates=m + m + taps,        # m AND, m XOR inject, tap XORs
            mux_bits=m,                # rst/en gating on the register
            adder_bits=0,
            comparator_bits=4,         # bit counter terminal detect
        )
