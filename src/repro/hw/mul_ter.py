"""The MUL TER ternary polynomial multiplier (Fig. 2 of the paper).

Architecture: an array of ``length`` Modular Arithmetic Units, one per
coefficient of the general operand b, feeding a circularly shifting
bank of 8-bit result registers.  The Control Unit serializes one
ternary coefficient a_cntr per clock (starting from a_0); each lane's
multiplexer forwards a_cntr or its negation depending on ``conv_n``
and the lane index (negation for lanes m > length-1-cntr implements
the negative wrap of x^n + 1 without any extra cycles).  After
``length`` clocks the registers hold the wrapped convolution.

The register bank is simulated cycle by cycle (vectorized across
lanes), so the model is faithful to the RTL schedule: ``length``
compute cycles, plus buffered I/O (5 coefficient pairs written per
transfer, 4 result coefficients read per transfer — Sec. V).

The unit is length-parameterizable for the area/performance ablation;
the paper's instance is length 512.
"""

from __future__ import annotations

import numpy as np

from repro.hw.common import ClockedUnit, ComponentInventory
from repro.hw.mau import ModularArithmeticUnit
from repro.ring.poly import LAC_Q

#: Coefficient pairs (general + ternary) accepted per input transfer.
INPUT_COEFFS_PER_TRANSFER = 5
#: Result coefficients returned per output transfer.
OUTPUT_COEFFS_PER_TRANSFER = 4


class MulTerUnit(ClockedUnit):
    """Cycle-accurate model of the MUL TER accelerator."""

    def __init__(self, length: int = 512, q: int = LAC_Q):
        super().__init__()
        if length < 2:
            raise ValueError("MUL TER length must be >= 2")
        self.length = length
        self.q = q
        self.mau = ModularArithmeticUnit(q)
        # input buffers (written via the pq.mul_ter read-input mode)
        self.general_buffer = np.zeros(length, dtype=np.int64)
        self.ternary_buffer = np.zeros(length, dtype=np.int64)
        # the shifting result register bank
        self.registers = np.zeros(length, dtype=np.int64)
        self.conv_n = True  # negative wrapped convolution by default
        self._cntr = 0
        self._running = False

    # ------------------------------------------------------------------
    # buffer access (driven by the ISE transfer protocol)
    # ------------------------------------------------------------------

    def load_coefficients(
        self, index: int, general: list[int], ternary: list[int]
    ) -> None:
        """One input transfer: up to 5 coefficient pairs at ``index``.

        Models a single-cycle buffer write (the instruction's data path).
        """
        if len(general) != len(ternary) or len(general) > INPUT_COEFFS_PER_TRANSFER:
            raise ValueError("at most 5 matched coefficient pairs per transfer")
        if index < 0 or index + len(general) > self.length:
            raise ValueError("transfer exceeds the coefficient buffer")
        for offset, (g, t) in enumerate(zip(general, ternary)):
            if not 0 <= g < self.q:
                raise ValueError(f"general coefficient {g} not reduced mod q")
            if t not in (-1, 0, 1):
                raise ValueError(f"ternary coefficient {t} not in {{-1,0,1}}")
            self.general_buffer[index + offset] = g
            self.ternary_buffer[index + offset] = t
        self.tick()  # one clock per buffered write

    def read_result(self, index: int) -> list[int]:
        """One output transfer: 4 result coefficients starting at ``index``."""
        if self._running:
            raise RuntimeError("MUL TER is still computing")
        stop = min(index + OUTPUT_COEFFS_PER_TRANSFER, self.length)
        if index < 0 or index >= self.length:
            raise ValueError("read index outside the register bank")
        self.tick()  # one clock per buffered read
        return [int(x) for x in self.registers[index:stop]]

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------

    def start(self, conv_n: bool) -> None:
        """Pulse the start signal: clear registers, select convolution."""
        self.conv_n = conv_n
        self.registers[:] = 0
        self._cntr = 0
        self._running = True

    def _tick(self) -> None:
        if not self._running:
            return  # idle / I/O clock
        n = self.length
        cntr = self._cntr
        a_t = int(self.ternary_buffer[cntr])
        # per-lane sign mux: negate a_cntr for lanes m > n-1-cntr when
        # the negative wrapped convolution is selected (paper's sel_i)
        signs = np.ones(n, dtype=np.int64)
        if self.conv_n:
            signs[np.arange(n) > n - 1 - cntr] = -1
        # every MAU lane computes r_m +/- a_t*b_m (or forwards on a_t=0)
        out = np.mod(self.registers + signs * a_t * self.general_buffer, self.q)
        # register bank shift: r_{m-1} <- out_m, rightmost MAU wraps to
        # register c_{n-1} (the paper's feedback loop)
        self.registers = np.roll(out, -1)
        self._cntr += 1
        if self._cntr == n:
            self._running = False

    def run_to_completion(self) -> int:
        """Clock the unit until the multiplication finishes.

        Returns the number of cycles spent (always ``length``).
        """
        spent = 0
        while self._running:
            self.tick()
            spent += 1
        return spent

    # ------------------------------------------------------------------
    # convenience drivers
    # ------------------------------------------------------------------

    def multiply(
        self, ternary: np.ndarray, general: np.ndarray, negacyclic: bool = True
    ) -> np.ndarray:
        """Full transaction: load buffers, compute, read back.

        ``cycle_count`` advances by the complete schedule:
        ceil(n/5) input transfers + n compute + ceil(n/4) output reads.
        """
        n = self.length
        if ternary.size != n or general.size != n:
            raise ValueError(f"operands must have length {n}")
        for index in range(0, n, INPUT_COEFFS_PER_TRANSFER):
            stop = min(index + INPUT_COEFFS_PER_TRANSFER, n)
            self.load_coefficients(
                index,
                [int(x) % self.q for x in general[index:stop]],
                [int(x) for x in ternary[index:stop]],
            )
        self.start(negacyclic)
        self.run_to_completion()
        out = np.empty(n, dtype=np.int64)
        for index in range(0, n, OUTPUT_COEFFS_PER_TRANSFER):
            chunk = self.read_result(index)
            out[index : index + len(chunk)] = chunk
        return out

    def as_mul512(self):
        """Adapter matching the :data:`repro.ring.splitting.Mul512` signature."""

        def mul512(ternary: np.ndarray, general: np.ndarray, negacyclic: bool) -> np.ndarray:
            return self.multiply(ternary, general, negacyclic)

        return mul512

    # ------------------------------------------------------------------
    # schedule / structure
    # ------------------------------------------------------------------

    @property
    def input_transfers(self) -> int:
        return -(-self.length // INPUT_COEFFS_PER_TRANSFER)

    @property
    def output_transfers(self) -> int:
        return -(-self.length // OUTPUT_COEFFS_PER_TRANSFER)

    @property
    def compute_cycles(self) -> int:
        return self.length

    def inventory(self) -> ComponentInventory:
        """Structural cost: n MAU lanes + registers + control.

        Register budget (n = 512): 512x8 result + 512x8 general buffer
        + 512x2 ternary buffer + control = 9,216 + control bits, which
        is what Table III reports (9,305 registers).
        """
        n = self.length
        lanes = self.mau.inventory().scaled(n)
        # per-lane sign mux on the serialized ternary coefficient
        sign_muxes = ComponentInventory(mux_bits=2 * n, comparator_bits=10)
        storage = ComponentInventory(
            flipflops=8 * n + 8 * n + 2 * n,  # result, general, ternary
        )
        control = ComponentInventory(
            flipflops=2 * (n.bit_length() + 1) + 8,  # cntr, address, FSM
            adder_bits=n.bit_length() + 1,
            comparator_bits=n.bit_length() + 1,
            gates=40,
            notes=[f"MUL TER length {n}"],
        )
        io = ComponentInventory(
            mux_bits=8 * OUTPUT_COEFFS_PER_TRANSFER * (n.bit_length() - 2),
            notes=["input/output transfer muxing"],
        )
        return lanes + sign_muxes + storage + control + io
