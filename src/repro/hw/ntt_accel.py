"""The NTT accelerator model (the [8] comparison point).

The NewHope co-design of [8] accelerates the Number Theoretic
Transform with a loosely-coupled unit: one butterfly data path fed
from a twiddle BRAM, with operands shipped over the system bus (the
paper contrasts this with its own tightly-coupled PQ-ALU).  Table III
lists it at 886 LUTs, 618 registers, 1 BRAM and 26 DSP slices — lots
of DSPs (the 14-bit modular multiplier pipeline) where LAC's ternary
multiplier needs none.

Schedule model: (n/2) log2 n butterflies at initiation interval 2 (the
shared modular-multiply pipeline), plus bus transfers of all n
coefficients in and out at ``BUS_CYCLES_PER_WORD`` each — landing near
the 24,609 cycles per transform that [8] reports for n = 1024.
"""

from __future__ import annotations

import numpy as np

from repro.hw.common import ClockedUnit, ComponentInventory
from repro.ring.ntt import NEWHOPE_Q, NttContext, get_context

#: Initiation interval of the butterfly pipeline (shared mod-mul path).
BUTTERFLY_II = 2
#: Bus cycles per 32-bit word on the loosely-coupled interconnect.
BUS_CYCLES_PER_WORD = 5
#: Fixed per-transform control overhead (configuration, drain).
CONTROL_OVERHEAD = 64


class NttAccelUnit(ClockedUnit):
    """Cycle-accurate model of the loosely-coupled NTT accelerator."""

    def __init__(self, n: int = 1024, q: int = NEWHOPE_Q):
        super().__init__()
        self.context: NttContext = get_context(n, q)
        self.n = n
        self.q = q

    def _tick(self) -> None:
        pass  # cycle accounting only

    # ------------------------------------------------------------------

    @property
    def butterfly_cycles(self) -> int:
        return BUTTERFLY_II * self.context.butterflies_per_transform

    @property
    def transfer_cycles(self) -> int:
        """Operands in + results out over the bus."""
        return 2 * self.n * BUS_CYCLES_PER_WORD

    @property
    def transform_cycles(self) -> int:
        """Full loosely-coupled transform: transfers + compute + control.

        For n = 1024 this is 2*5120 + 2*1024*5 + 64 = 20,544, against
        the 24,609 cycles [8] reports (their figure includes driver
        software we do not model).
        """
        return self.butterfly_cycles + self.transfer_cycles + CONTROL_OVERHEAD

    # ------------------------------------------------------------------

    def forward(self, poly: np.ndarray) -> np.ndarray:
        """One accelerated forward transform (charges the full schedule)."""
        self.tick(self.transform_cycles)
        return self.context.forward(poly)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """One accelerated inverse transform (full schedule charged)."""
        self.tick(self.transform_cycles)
        return self.context.inverse(values)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """A full multiplication: 2 forward + 1 inverse + pointwise.

        The pointwise products run on the same DSP pipeline (n cycles
        at II=1 once loaded) — [8]'s "> 73,827 cycles" lower bound is
        its three transforms alone.
        """
        a_hat = self.forward(a)
        b_hat = self.forward(b)
        self.tick(self.n + 2 * self.n * BUS_CYCLES_PER_WORD)
        return self.inverse(self.context.pointwise(a_hat, b_hat))

    # ------------------------------------------------------------------

    def inventory(self) -> ComponentInventory:
        """One butterfly + mod-mul pipeline + twiddle BRAM (Table III)."""
        w = 14  # coefficient width for q = 12289
        return ComponentInventory(
            # butterfly operand regs, a ~12-stage mod-mul pipeline, the
            # bus-interface FIFOs and address generators, config regs
            flipflops=8 * w + 12 * w + 2 * 64 + 3 * 32 + 32 + 26,
            adder_bits=10 * w,       # butterfly add/sub, address adders,
                                     # reduction correction stages
            mux_bits=16 * w,         # operand routing + bus word steering
            comparator_bits=3 * w,
            gates=90 * w,            # control FSM, reduction logic, handshake
            dsp=26,                  # the modular multiplier pipeline
            bram=1,                  # twiddle factor ROM
            notes=["loosely-coupled NTT butterfly unit, II=2"],
        )
