"""The SHA256 hardware accelerator model.

The paper reuses the SHA256 core of the authors' earlier NTRU work
[7]; its role here is to back the polynomial-generation kernels (GenA
and Sample poly).  The model performs one compression per activation
with the canonical schedule of an iterative SHA-256 core: 64 round
clocks plus one state-update clock.  I/O goes through the pq.sha256
instruction (Sec. V): rs1 carries input bytes, rs2 the write address
and the configuration signals (generate-hash, reset-internal-state).

The functional datapath reuses :func:`repro.hashes.sha256.compress`,
so the unit is bit-exact against the software implementation by
construction — the tests additionally check it against ``hashlib``.
"""

from __future__ import annotations

from repro.hashes.sha256 import IV, compress, pad
from repro.hw.common import ClockedUnit, ComponentInventory

#: Clocks per compression: 64 rounds + 1 final state addition.
COMPRESSION_CYCLES = 65
#: Input bytes accepted per pq.sha256 transfer (packed into rs1).
BYTES_PER_TRANSFER = 4
#: Digest bytes returned per read transfer (packed into rd).
DIGEST_BYTES_PER_TRANSFER = 4


class Sha256Unit(ClockedUnit):
    """Cycle-accurate model of the SHA256 accelerator."""

    def __init__(self) -> None:
        super().__init__()
        self.state = IV
        self.block = bytearray(64)
        self.message_length = 0

    def _tick(self) -> None:
        pass  # cycle accounting only; the datapath advances per operation

    # ------------------------------------------------------------------

    def reset_state(self) -> None:
        """The rs2 reset-internal-state configuration signal."""
        self.state = IV
        self.message_length = 0
        self.tick()

    def write_bytes(self, address: int, data: bytes) -> None:
        """One input transfer: up to 4 bytes into the block buffer."""
        if len(data) > BYTES_PER_TRANSFER:
            raise ValueError("at most 4 bytes per transfer")
        if address < 0 or address + len(data) > 64:
            raise ValueError("transfer exceeds the 64-byte block buffer")
        self.block[address : address + len(data)] = data
        self.tick()

    def generate_hash(self) -> None:
        """The generate-hash signal: one compression of the block buffer."""
        self.state = compress(self.state, bytes(self.block))
        self.message_length += 64
        self.tick(COMPRESSION_CYCLES)

    def read_digest_word(self, index: int) -> bytes:
        """One output transfer: digest word ``index`` (0..7)."""
        if not 0 <= index < 8:
            raise ValueError("digest word index must be in 0..7")
        self.tick()
        return self.state[index].to_bytes(4, "big")

    # ------------------------------------------------------------------

    def digest_message(self, message: bytes) -> bytes:
        """Full transaction: hash an arbitrary message (with FIPS padding).

        Drives the transfer protocol exactly as the software wrapper
        would: 16 input transfers and one compression per block, then
        8 digest reads.
        """
        self.reset_state()
        padded = message + pad(len(message))
        for block_start in range(0, len(padded), 64):
            block = padded[block_start : block_start + 64]
            for offset in range(0, 64, BYTES_PER_TRANSFER):
                self.write_bytes(offset, block[offset : offset + BYTES_PER_TRANSFER])
            self.generate_hash()
        return b"".join(self.read_digest_word(i) for i in range(8))

    # ------------------------------------------------------------------

    @property
    def cycles_per_block(self) -> int:
        """Busy clocks per compression (excluding I/O transfers)."""
        return COMPRESSION_CYCLES

    @property
    def transfers_per_block(self) -> int:
        return 64 // BYTES_PER_TRANSFER

    def inventory(self) -> ComponentInventory:
        """Iterative SHA-256 core: ~1.5k registers, ~1k LUTs (Table III).

        State: 8x32 hash value, 8x32 working variables, 16x32 message
        schedule window, 64-byte input buffer, round counter.
        """
        return ComponentInventory(
            flipflops=8 * 32 + 8 * 32 + 16 * 32 + 64 * 8 + 7 + 9,
            adder_bits=7 * 32,      # the round's carry-save/add network
            mux_bits=16 * 32 // 4,  # schedule/input selects
            # sigma functions (4 x 32 x 2 XOR3), ch/maj (7 x 32), message
            # schedule sigmas (4 x 32), K-constant injection, byte-enable
            # write decode on the 64-byte buffer and control glue
            gates=4 * 32 * 2 + 7 * 32 + 4 * 32 + 2 * 32 + 64 * 12,
            comparator_bits=7,      # round counter terminal
            notes=["iterative SHA-256 core, 65 clocks per block"],
        )
