"""VCD (Value Change Dump) export for the hardware models.

The behavioral models advance cycle by cycle; this module records
their registers into standard IEEE-1364 VCD files, so the schedules of
Figs. 2-4 can be inspected in any waveform viewer (GTKWave etc.) —
the artifact a hardware engineer would actually diff against RTL
simulation.

* :class:`VcdWriter` — a minimal standalone VCD writer (header, scope,
  per-cycle value changes);
* :func:`dump_mul_gf_trace` — the 9-cycle shift-and-add schedule of
  the GF(2^9) multiplier;
* :func:`dump_mul_ter_trace` — the serialized-coefficient /
  rotating-accumulator schedule of the ternary multiplier;
* :func:`parse_vcd` — a small parser (used by the tests to verify the
  dumped transitions against the models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.gf.field import GF512
from repro.hw.mul_gf import MulGfUnit
from repro.hw.mul_ter import MulTerUnit

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


@dataclass
class _Signal:
    name: str
    width: int
    ident: str
    last: int | None = None


class VcdWriter:
    """A minimal IEEE-1364 VCD writer.

    Usage::

        writer = VcdWriter("unit")
        clk = writer.add_signal("clk", 1)
        acc = writer.add_signal("acc", 9)
        writer.begin()
        for cycle, value in enumerate(trace):
            writer.step(cycle, {clk: cycle % 2, acc: value})
        text = writer.render()
    """

    def __init__(self, module: str, timescale: str = "1ns"):
        self.module = module
        self.timescale = timescale
        self._signals: list[_Signal] = []
        self._changes: list[str] = []
        self._began = False

    def add_signal(self, name: str, width: int) -> str:
        """Declare a signal; returns its identifier handle."""
        if self._began:
            raise RuntimeError("all signals must be declared before begin()")
        if width < 1:
            raise ValueError("signal width must be >= 1")
        ident = self._make_ident(len(self._signals))
        self._signals.append(_Signal(name, width, ident))
        return ident

    @staticmethod
    def _make_ident(index: int) -> str:
        base = len(_ID_CHARS)
        out = ""
        index += 1
        while index:
            index, digit = divmod(index - 1, base)
            out = _ID_CHARS[digit] + out
        return out

    def begin(self) -> None:
        """Freeze the signal list and start accepting value changes."""
        self._began = True

    def step(self, time: int, values: dict[str, int]) -> None:
        """Record the signal values at ``time`` (only changes are kept)."""
        if not self._began:
            raise RuntimeError("call begin() before stepping")
        changes = []
        by_ident = {s.ident: s for s in self._signals}
        for ident, value in values.items():
            signal = by_ident[ident]
            if signal.last == value:
                continue
            signal.last = value
            if signal.width == 1:
                changes.append(f"{value & 1}{ident}")
            else:
                changes.append(f"b{value:0{signal.width}b} {ident}")
        if changes:
            self._changes.append(f"#{time}")
            self._changes.extend(changes)

    def render(self) -> str:
        """The complete VCD file as text."""
        header = [
            "$date repro $end",
            "$version repro.hw.vcd $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for signal in self._signals:
            header.append(
                f"$var wire {signal.width} {signal.ident} {signal.name} $end"
            )
        header += ["$upscope $end", "$enddefinitions $end"]
        return "\n".join(header + self._changes) + "\n"

    def write(self, path: str | Path) -> Path:
        """Render and write the VCD file to ``path``."""
        path = Path(path)
        path.write_text(self.render())
        return path


# ---------------------------------------------------------------------------
# instrumented traces of the accelerator models
# ---------------------------------------------------------------------------


def dump_mul_gf_trace(a: int, b: int, path: str | Path) -> Path:
    """Trace one MUL GF multiplication (Fig. 3) into a VCD file.

    Signals: clk, en, the serialized b bit, and the c shift register.
    """
    unit = MulGfUnit()
    writer = VcdWriter("mul_gf")
    clk = writer.add_signal("clk", 1)
    en = writer.add_signal("en", 1)
    b_bit = writer.add_signal("b_bit", 1)
    c_reg = writer.add_signal("c", unit.m)
    a_in = writer.add_signal("a", unit.m)
    writer.begin()

    unit.load(a, b)
    writer.step(0, {clk: 0, en: 1, a_in: a, c_reg: 0,
                    b_bit: (b >> (unit.m - 1)) & 1})
    cycle = 0
    while unit._running:
        bit_index = unit._bit_index
        unit.tick()
        cycle += 1
        writer.step(2 * cycle - 1, {clk: 1})
        writer.step(2 * cycle, {
            clk: 0,
            c_reg: unit.c,
            en: 1 if unit._running else 0,
            b_bit: (b >> max(bit_index - 1, 0)) & 1,
        })
    assert unit.c == GF512.mul(a, b)
    return writer.write(path)


def dump_mul_ter_trace(
    ternary: np.ndarray,
    general: np.ndarray,
    path: str | Path,
    negacyclic: bool = True,
) -> Path:
    """Trace a MUL TER computation (Fig. 2) into a VCD file.

    Signals: clk, the cntr counter, the serialized ternary coefficient
    (2-bit code), conv_n, and the first four result registers.
    """
    length = ternary.size
    unit = MulTerUnit(length)
    for index in range(0, length, 5):
        stop = min(index + 5, length)
        unit.load_coefficients(
            index,
            [int(x) % unit.q for x in general[index:stop]],
            [int(x) for x in ternary[index:stop]],
        )

    writer = VcdWriter("mul_ter")
    clk = writer.add_signal("clk", 1)
    cntr = writer.add_signal("cntr", max(length.bit_length(), 1))
    a_i = writer.add_signal("a_i", 2)
    conv = writer.add_signal("conv_n", 1)
    regs = [writer.add_signal(f"c{i}", 8) for i in range(min(4, length))]
    running = writer.add_signal("running", 1)
    writer.begin()

    code = {0: 0b00, 1: 0b01, -1: 0b10}
    unit.start(negacyclic)
    writer.step(0, {clk: 0, cntr: 0, conv: int(negacyclic), running: 1,
                    a_i: code[int(ternary[0])],
                    **{regs[i]: 0 for i in range(len(regs))}})
    cycle = 0
    while unit._running:
        current = unit._cntr
        unit.tick()
        cycle += 1
        writer.step(2 * cycle - 1, {clk: 1})
        values = {
            clk: 0,
            cntr: unit._cntr,
            running: 1 if unit._running else 0,
        }
        if unit._running:
            values[a_i] = code[int(ternary[unit._cntr])]
        for i, ident in enumerate(regs):
            values[ident] = int(unit.registers[i])
        writer.step(2 * cycle, values)
    return writer.write(path)


# ---------------------------------------------------------------------------
# a small parser, for verification
# ---------------------------------------------------------------------------


@dataclass
class VcdTrace:
    """Parsed VCD content: signal names and value timelines."""

    signals: dict[str, str] = field(default_factory=dict)  # name -> ident
    changes: dict[str, list[tuple[int, int]]] = field(default_factory=dict)

    def timeline(self, name: str) -> list[tuple[int, int]]:
        """The (time, value) changes of a signal, in order."""
        return self.changes.get(self.signals[name], [])

    def value_at(self, name: str, time: int) -> int | None:
        """The signal's value at ``time`` (None before its first change)."""
        value = None
        for t, v in self.timeline(name):
            if t > time:
                break
            value = v
        return value


def parse_vcd(text: str) -> VcdTrace:
    """Parse the subset of VCD this module emits."""
    trace = VcdTrace()
    time = 0
    in_header = True
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$var"):
                parts = line.split()
                width, ident, name = parts[2], parts[3], parts[4]
                trace.signals[name] = ident
                trace.changes[ident] = []
            elif line.startswith("$enddefinitions"):
                in_header = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
        elif line.startswith("b"):
            bits, ident = line[1:].split()
            trace.changes[ident].append((time, int(bits, 2)))
        else:
            value, ident = int(line[0]), line[1:]
            trace.changes[ident].append((time, value))
    return trace
