"""The LAC post-quantum public-key cryptosystem (NIST round 2).

This is the paper's workload: an RLWE-based PKE/KEM with byte-sized
modulus q = 251, ternary secrets, and a strong BCH error-correcting
code (Sec. III).  All three security levels are supported:

========  ======  ====  =======================  ====  ==========
Name      n       h     BCH code                 D2    NIST level
========  ======  ====  =======================  ====  ==========
LAC-128   512     256   BCH(511,367,16)/256      no    I
LAC-192   1024    256   BCH(511,439,8)/256       no    III
LAC-256   1024    384   BCH(511,367,16)/256      yes   V
========  ======  ====  =======================  ====  ==========

Public API:

* :data:`LAC_128`, :data:`LAC_192`, :data:`LAC_256` — parameter sets.
* :class:`repro.lac.pke.LacPke` — the CPA-secure public-key encryption.
* :class:`repro.lac.kem.LacKem` — the CCA-secure KEM (Fujisaki-Okamoto
  transform with re-encryption, the "CCA" rows of Table II).
"""

from repro.lac.params import LAC_128, LAC_192, LAC_256, ALL_PARAMS, LacParams
from repro.lac.sampling import gen_a, sample_ternary_fixed_weight
from repro.lac.encoding import MessageCodec
from repro.lac.pke import Ciphertext, LacPke, PublicKey, SecretKey
from repro.lac.kem import KemKeyPair, KemSecretKey, LacKem
from repro.lac.hybrid import HybridCiphertext, HybridDecryptionError, LacHybrid

__all__ = [
    "LAC_128",
    "LAC_192",
    "LAC_256",
    "ALL_PARAMS",
    "LacParams",
    "gen_a",
    "sample_ternary_fixed_weight",
    "MessageCodec",
    "LacPke",
    "LacKem",
    "PublicKey",
    "SecretKey",
    "Ciphertext",
    "KemKeyPair",
    "KemSecretKey",
    "LacHybrid",
    "HybridCiphertext",
    "HybridDecryptionError",
]
