"""Message <-> ring-element encoding, including D2 and compression.

Encryption path (Sec. III-C): the 256-bit plaintext is BCH-encoded
into a codeword, each codeword bit is scaled to floor(q/2) = 125 and
placed into a ring coefficient (twice, at offset ``codeword_bits``,
for D2 parameter sets).  Only the occupied ``v_slots`` coefficients of
v are transmitted, each compressed to 4 bits.

Decryption path (Sec. III-D): coefficients are threshold-decoded back
to bits — a bit is 1 when the (noisy) coefficient is closer to q/2
than to 0; D2 pairs vote by summed distance — and the BCH decoder
removes the remaining bit errors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bch.decoder import BCHDecoder, DecodeResult
from repro.bch.ct_decoder import ConstantTimeBCHDecoder
from repro.bch.encoder import BCHEncoder
from repro.bitutils import bits_to_bytes, bytes_to_bits
from repro.lac.params import LacParams
from repro.metrics import OpCounter, ensure_counter


@dataclass
class DecodedMessage:
    """Threshold + BCH decode outcome."""

    message: bytes
    bch_result: DecodeResult
    #: Bit errors the threshold stage handed to the BCH decoder
    #: (relative to the corrected codeword) — a noise health metric.
    channel_errors: int


class MessageCodec:
    """Encode/decode 32-byte messages into/out of ring coefficients."""

    def __init__(self, params: LacParams):
        self.params = params
        self.encoder = BCHEncoder(params.bch)
        self.decoder = BCHDecoder(params.bch)
        self.ct_decoder = ConstantTimeBCHDecoder(params.bch)

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------

    def encode(self, message: bytes, counter: OpCounter | None = None) -> np.ndarray:
        """BCH-encode and embed a message into a full ring element.

        Unused coefficients are zero; the caller adds this to the RLWE
        mask b*s' + e'' and truncates to ``params.v_slots``.
        """
        params = self.params
        counter = ensure_counter(counter)
        if len(message) != params.message_bytes:
            raise ValueError(f"message must be {params.message_bytes} bytes")
        bits = bytes_to_bits(message, params.bch.k)
        codeword = self.encoder.encode(bits, counter)

        out = np.zeros(params.n, dtype=np.int64)
        amplitude = params.half_q
        cw_len = params.codeword_bits
        out[:cw_len] = codeword.astype(np.int64) * amplitude
        if params.d2:
            out[cw_len : 2 * cw_len] = out[:cw_len]
        with counter.phase("encode"):
            counter.count("loop", params.v_slots)
            counter.count("alu", params.v_slots)
            counter.count("store", params.v_slots)
        return out

    # ------------------------------------------------------------------
    # threshold decode
    # ------------------------------------------------------------------

    def threshold_decode(
        self, noisy: np.ndarray, counter: OpCounter | None = None
    ) -> np.ndarray:
        """Map ``v_slots`` noisy Z_q values to hard codeword bits.

        Per coefficient w, let d0 = distance(w, 0) and
        d1 = distance(w, floor(q/2)) on the Z_q circle; the bit is 1
        when d1 < d0.  D2 pairs sum both distances before comparing —
        a 1-bit soft combination that roughly halves the noise standard
        deviation, which is what lets LAC-256 keep t = 16.
        """
        params = self.params
        counter = ensure_counter(counter)
        q, half = params.q, params.half_q
        cw_len = params.codeword_bits
        if noisy.size != params.v_slots:
            raise ValueError(f"expected {params.v_slots} coefficients")

        values = np.mod(noisy, q)
        d0 = np.minimum(values, q - values)
        shifted = np.mod(values - half, q)
        d1 = np.minimum(shifted, q - shifted)
        with counter.phase("threshold"):
            counter.count("loop", params.v_slots)
            counter.count("load", params.v_slots)
            counter.count("alu", 4 * params.v_slots)
            counter.count("branch", params.v_slots)
            counter.count("store", cw_len)
        if params.d2:
            bit_metric0 = d0[:cw_len] + d0[cw_len : 2 * cw_len]
            bit_metric1 = d1[:cw_len] + d1[cw_len : 2 * cw_len]
            return (bit_metric1 < bit_metric0).astype(np.uint8)
        return (d1[:cw_len] < d0[:cw_len]).astype(np.uint8)

    def decode(
        self,
        noisy: np.ndarray,
        counter: OpCounter | None = None,
        constant_time: bool = True,
        bch_decoder=None,
    ) -> DecodedMessage:
        """Full decode: threshold bits, then BCH error correction.

        ``bch_decoder`` overrides the decoder choice (anything with a
        ``decode(bits, counter) -> DecodeResult`` method, e.g. the
        ISE-accelerated decoder of the co-design layer).
        """
        counter = ensure_counter(counter)
        hard_bits = self.threshold_decode(noisy, counter)
        if bch_decoder is not None:
            result = bch_decoder.decode(hard_bits, counter)
        elif constant_time:
            result = self.ct_decoder.decode(hard_bits, counter)
        else:
            result = self.decoder.decode(hard_bits, counter)
        channel_errors = int(np.count_nonzero(hard_bits != result.codeword))
        message = bits_to_bytes(result.message)
        return DecodedMessage(
            message=message, bch_result=result, channel_errors=channel_errors
        )

    # ------------------------------------------------------------------
    # ciphertext compression of v (4 bits per slot)
    # ------------------------------------------------------------------

    def compress_v(self, v: np.ndarray) -> np.ndarray:
        """Drop the low ``8 - v_bits`` bits of each v coefficient."""
        shift = 8 - self.params.v_bits
        return (np.mod(v, self.params.q).astype(np.int64) >> shift).astype(np.uint8)

    def decompress_v(self, compressed: np.ndarray) -> np.ndarray:
        """Re-center the dropped bits (adds uniform noise of +-2^(shift-1))."""
        shift = 8 - self.params.v_bits
        if shift == 0:
            return compressed.astype(np.int64)
        return (compressed.astype(np.int64) << shift) + (1 << (shift - 1))
