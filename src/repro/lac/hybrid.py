"""Hybrid public-key encryption (KEM-DEM) on top of the LAC KEM.

The KEM transports 32-byte secrets; real payloads need a data
encapsulation mechanism.  This module provides the standard KEM-DEM
construction with primitives already in the repository:

* stream cipher: SHA-256 in counter mode, keyed from the KEM secret;
* integrity: an encrypt-then-MAC tag (keyed hash) over the whole
  ciphertext, so tampering anywhere — KEM part or payload — is
  rejected before any plaintext is released.

Wire format: ``kem_ciphertext || nonce (12) || body || tag (32)``.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.hashes.sha256 import sha256
from repro.lac.kem import KemSecretKey, LacKem
from repro.lac.params import LacParams
from repro.lac.pke import Ciphertext, PublicKey

_NONCE_BYTES = 12
_TAG_BYTES = 32


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += sha256(key + nonce + counter.to_bytes(8, "little"))
        counter += 1
    return bytes(out[:length])


def _tag(key: bytes, data: bytes) -> bytes:
    """Nested keyed hash (HMAC-style envelope)."""
    return sha256(key + sha256(key + data))


def _derive_keys(shared_secret: bytes) -> tuple[bytes, bytes]:
    return sha256(shared_secret + b"hybrid-enc"), sha256(shared_secret + b"hybrid-mac")


@dataclass
class HybridCiphertext:
    """A sealed message."""

    params: LacParams
    kem_ciphertext: Ciphertext
    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Wire format: kem_ct || nonce || body || tag."""
        return (
            self.kem_ciphertext.to_bytes() + self.nonce + self.body + self.tag
        )

    @classmethod
    def from_bytes(cls, params: LacParams, blob: bytes) -> "HybridCiphertext":
        kem_len = params.ciphertext_bytes
        minimum = kem_len + _NONCE_BYTES + _TAG_BYTES
        if len(blob) < minimum:
            raise ValueError(f"hybrid ciphertext must be >= {minimum} bytes")
        kem_ct = Ciphertext.from_bytes(params, blob[:kem_len])
        nonce = blob[kem_len : kem_len + _NONCE_BYTES]
        body = blob[kem_len + _NONCE_BYTES : -_TAG_BYTES]
        return cls(params, kem_ct, nonce, body, blob[-_TAG_BYTES:])


class HybridDecryptionError(Exception):
    """Authentication failed — the ciphertext was tampered with."""


class LacHybrid:
    """Seal/open arbitrary-length messages under a LAC public key."""

    def __init__(self, params: LacParams):
        self.params = params
        self.kem = LacKem(params)

    def seal(self, pk: PublicKey, plaintext: bytes) -> HybridCiphertext:
        """Encrypt and authenticate ``plaintext`` for the key holder."""
        encapsulated = self.kem.encaps(pk)
        enc_key, mac_key = _derive_keys(encapsulated.shared_secret)
        nonce = secrets.token_bytes(_NONCE_BYTES)
        body = bytes(
            p ^ k
            for p, k in zip(plaintext, _keystream(enc_key, nonce, len(plaintext)))
        )
        kem_ct = encapsulated.ciphertext
        tag = _tag(mac_key, kem_ct.to_bytes() + nonce + body)
        return HybridCiphertext(self.params, kem_ct, nonce, body, tag)

    def open(self, sk: KemSecretKey, sealed: HybridCiphertext) -> bytes:
        """Authenticate and decrypt; raises on any tampering.

        Implicit rejection does the heavy lifting: a tampered KEM part
        decapsulates to a decoy secret, whose MAC key then rejects the
        tag — one uniform failure path, no decryption oracle.
        """
        shared = self.kem.decaps(sk, sealed.kem_ciphertext)
        enc_key, mac_key = _derive_keys(shared)
        expected = _tag(
            mac_key, sealed.kem_ciphertext.to_bytes() + sealed.nonce + sealed.body
        )
        if expected != sealed.tag:
            raise HybridDecryptionError("authentication failed")
        stream = _keystream(enc_key, sealed.nonce, len(sealed.body))
        return bytes(c ^ k for c, k in zip(sealed.body, stream))
