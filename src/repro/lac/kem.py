"""LAC CCA-secure KEM via the Fujisaki-Okamoto transform.

The paper benchmarks the CCA variant (Table II, "Security Class CCA"),
whose decapsulation re-encrypts the recovered message and compares
ciphertexts — that re-encryption is why LAC decapsulation costs
roughly a key generation plus an encryption plus a decryption, and why
the accelerators pay off twice per decapsulation.

Key derivations (SHA-256 with domain separation):

* coins  = H(m || H(pk) || "coins")  — deterministic encryption randomness
* shared = H(m || H(ct) || "shared") — the session key
* reject = H(z || H(ct) || "reject") — implicit rejection on FO failure
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.hashes.sha256 import sha256
from repro.lac.params import LacParams
from repro.lac.pke import Ciphertext, LacPke, Multiplier, PublicKey, SecretKey, fast_multiplier
from repro.metrics import OpCounter, ensure_counter


def _hash3(a: bytes, b: bytes, label: bytes, counter: OpCounter | None = None) -> bytes:
    # sha256() takes the hashlib fast path when nothing is counted
    return sha256(a + b + label, counter=counter)


@dataclass
class KemSecretKey:
    """Decapsulation key: the PKE secret, the public key (for
    re-encryption), its digest, and the implicit-rejection secret z."""

    sk: SecretKey
    pk: PublicKey
    pk_digest: bytes
    z: bytes

    def to_bytes(self) -> bytes:
        """Serialize for storage: sk || pk || pk_digest || z."""
        return self.sk.to_bytes() + self.pk.to_bytes() + self.pk_digest + self.z

    @classmethod
    def from_bytes(cls, params: LacParams, blob: bytes) -> "KemSecretKey":
        expected = (
            params.secret_key_bytes + params.public_key_bytes + 32 + 32
        )
        if len(blob) != expected:
            raise ValueError(f"KEM secret key must be {expected} bytes")
        offset = params.secret_key_bytes
        sk = SecretKey.from_bytes(params, blob[:offset])
        pk = PublicKey.from_bytes(
            params, blob[offset : offset + params.public_key_bytes]
        )
        offset += params.public_key_bytes
        pk_digest = blob[offset : offset + 32]
        z = blob[offset + 32 : offset + 64]
        return cls(sk, pk, pk_digest, z)


@dataclass
class KemKeyPair:
    public_key: PublicKey
    secret_key: KemSecretKey


@dataclass
class EncapsResult:
    ciphertext: Ciphertext
    shared_secret: bytes


class LacKem:
    """The CCA-secure LAC key encapsulation mechanism."""

    def __init__(
        self,
        params: LacParams,
        multiplier: Multiplier = fast_multiplier,
        constant_time_bch: bool = True,
        v_multiplier=None,
        bch_decoder=None,
    ):
        self.params = params
        self.pke = LacPke(
            params,
            multiplier,
            v_multiplier=v_multiplier,
            bch_decoder=bch_decoder,
        )
        self.constant_time_bch = constant_time_bch

    # ------------------------------------------------------------------

    def keygen(
        self, seed: bytes | None = None, counter: OpCounter | None = None
    ) -> KemKeyPair:
        """Generate a key pair (random seed drawn from the OS when omitted)."""
        counter = ensure_counter(counter)
        params = self.params
        if seed is None:
            seed = secrets.token_bytes(params.seed_bytes + 32)
        if len(seed) < params.seed_bytes + 32:
            raise ValueError(
                f"seed must provide {params.seed_bytes + 32} bytes "
                "(PKE seed + implicit-rejection secret)"
            )
        pke_seed, z = seed[: params.seed_bytes], seed[params.seed_bytes :][:32]
        pk, sk = self.pke.keygen(pke_seed, counter)
        with counter.phase("kem_glue"):
            pk_digest = _hash3(pk.to_bytes(), b"", b"pk", counter)
        return KemKeyPair(pk, KemSecretKey(sk, pk, pk_digest, z))

    # ------------------------------------------------------------------

    def encaps(
        self,
        pk: PublicKey,
        message: bytes | None = None,
        counter: OpCounter | None = None,
    ) -> EncapsResult:
        """Encapsulate a fresh shared secret under ``pk``.

        ``message`` fixes the FO randomness (tests/KATs only); normal
        callers leave it None for an OS-random message.
        """
        counter = ensure_counter(counter)
        params = self.params
        if message is None:
            message = secrets.token_bytes(params.message_bytes)
        if len(message) != params.message_bytes:
            raise ValueError(f"message must be {params.message_bytes} bytes")

        with counter.phase("kem_glue"):
            pk_digest = _hash3(pk.to_bytes(), b"", b"pk", counter)
            coins = _hash3(message, pk_digest, b"coins", counter)
        ciphertext = self.pke.encrypt(pk, message, coins, counter)
        with counter.phase("kem_glue"):
            ct_digest = _hash3(ciphertext.to_bytes(), b"", b"ct", counter)
            shared = _hash3(message, ct_digest, b"shared", counter)
        return EncapsResult(ciphertext, shared)

    # ------------------------------------------------------------------

    def encaps_many(
        self,
        pk: PublicKey,
        messages: list[bytes] | None = None,
        count: int | None = None,
        workers: int | None = None,
        executor=None,
        backend=None,
        cache=None,
    ) -> list["EncapsResult"]:
        """Encapsulate a whole batch under ``pk`` (vectorized fast path).

        Stacks the batch into 2-D arrays and runs batched negacyclic
        multiplication, matrix BCH encoding and vectorized sampling
        (:mod:`repro.batch`); ``GenA`` and the public-key digest are
        computed once per batch.  Output is positionally bit-identical
        to calling :meth:`encaps` in a loop with the same messages.
        ``workers`` optionally fans sub-batches out across the shared
        thread pool (or an injected ``executor``); ``backend`` instead
        routes the batch through a :class:`repro.backend.KemBackend` —
        the hook the :mod:`repro.serve` micro-batch scheduler uses.
        ``cache`` accepts a :class:`repro.ring.KeyTransformCache`:
        repeated batches under the same key then reuse the key-side
        forward FFT (and skip GenA), still bit-identical to the scalar
        path.  Cycle accounting is not available on the batch path —
        use the scalar method with a counter for that.
        """
        from repro.batch import encaps_many as _encaps_many

        return _encaps_many(
            self, pk, messages=messages, count=count, workers=workers,
            executor=executor, backend=backend, cache=cache,
        )

    def decaps_many(
        self,
        keys: KemSecretKey,
        ciphertexts: list[Ciphertext],
        workers: int | None = None,
        executor=None,
        backend=None,
        cache=None,
    ) -> list[bytes]:
        """Decapsulate a whole batch (vectorized fast path).

        The counterpart of :meth:`encaps_many`; positionally identical
        to looping :meth:`decaps`, including implicit rejection.
        ``executor`` overrides the shared fan-out pool, ``backend``
        routes through a :class:`repro.backend.KemBackend`, and
        ``cache`` reuses the hosted key's transforms across batches, as
        for :meth:`encaps_many`.
        """
        from repro.batch import decaps_many as _decaps_many

        return _decaps_many(
            self, keys, ciphertexts, workers=workers, executor=executor,
            backend=backend, cache=cache,
        )

    # ------------------------------------------------------------------

    def decaps(
        self,
        keys: KemSecretKey,
        ciphertext: Ciphertext,
        counter: OpCounter | None = None,
    ) -> bytes:
        """Recover the shared secret (implicit rejection on FO failure)."""
        counter = ensure_counter(counter)
        decoded = self.pke.decrypt(
            keys.sk, ciphertext, counter, constant_time_bch=self.constant_time_bch
        )
        with counter.phase("kem_glue"):
            coins = _hash3(decoded.message, keys.pk_digest, b"coins", counter)
        # FO re-encryption: the decapsulation's second big cost block
        reencrypted = self.pke.encrypt(keys.pk, decoded.message, coins, counter)
        with counter.phase("kem_glue"):
            ct_bytes = ciphertext.to_bytes()
            ct_digest = _hash3(ct_bytes, b"", b"ct", counter)
            counter.count("loop", len(ct_bytes))
            counter.count("load", 2 * len(ct_bytes))
            counter.count("alu", len(ct_bytes))
            if reencrypted.to_bytes() == ct_bytes:
                return _hash3(decoded.message, ct_digest, b"shared", counter)
            return _hash3(keys.z, ct_digest, b"reject", counter)
