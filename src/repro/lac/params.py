"""LAC parameter sets (NIST round-2 submission, as used by the paper).

The three security levels share q = 251 and a 256-bit message; they
differ in ring size n, secret weight h, BCH code, and whether the
codeword is redundantly (D2) encoded:

* **LAC-128** — n = 512, BCH(511,367,16), plain encoding (NIST level I)
* **LAC-192** — n = 1024, BCH(511,439,8), plain encoding (level III);
  the sparser secrets (h/n = 1/4) keep the noise small enough for t=8
* **LAC-256** — n = 1024, BCH(511,367,16), D2 encoding: every codeword
  bit is embedded twice and the decoder combines both observations
  (level V)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bch.code import BCHCode, LAC_BCH_128_256, LAC_BCH_192
from repro.ring.poly import LAC_Q, PolyRing


@dataclass(frozen=True)
class LacParams:
    """A complete LAC parameter set."""

    name: str
    n: int
    #: Fixed Hamming weight of secret/error polynomials (h/2 ones, h/2
    #: minus-ones), the round-2 fixed-weight distribution.
    h: int
    bch: BCHCode
    #: D2 redundant encoding: each codeword bit occupies two ring slots.
    d2: bool
    nist_level: str
    q: int = LAC_Q
    seed_bytes: int = 32
    message_bytes: int = 32
    #: Bits kept per v-coefficient after ciphertext compression.
    v_bits: int = 4

    def __post_init__(self) -> None:
        if self.h % 2:
            raise ValueError("weight h must be even (h/2 ones, h/2 minus-ones)")
        if self.h > self.n:
            raise ValueError("weight cannot exceed the ring size")
        if self.bch.k != 8 * self.message_bytes:
            raise ValueError("BCH payload must match the message size")
        if self.v_slots > self.n:
            raise ValueError("encoded codeword does not fit in the ring")

    # ------------------------------------------------------------------

    @property
    def ring(self) -> PolyRing:
        """The negacyclic ring Z_q[x]/(x^n + 1)."""
        return PolyRing(self.n, self.q, negacyclic=True)

    @property
    def codeword_bits(self) -> int:
        """Length of the shortened BCH codeword."""
        return self.bch.n

    @property
    def v_slots(self) -> int:
        """Ring coefficients carried by the ciphertext component v."""
        return self.codeword_bits * (2 if self.d2 else 1)

    @property
    def half_q(self) -> int:
        """The encoding amplitude floor(q/2) = 125."""
        return self.q // 2

    # ------------------------------------------------------------------
    # wire sizes (bytes), for comparison with the paper's Sec. VI-B
    # ------------------------------------------------------------------

    @property
    def public_key_bytes(self) -> int:
        """seed_a || b (one byte per coefficient)."""
        return self.seed_bytes + self.n

    @property
    def secret_key_bytes(self) -> int:
        """s, one byte per coefficient (the paper's ||sk|| convention)."""
        return self.n

    @property
    def ciphertext_bytes(self) -> int:
        """u (one byte per coefficient) || v (v_bits per slot)."""
        return self.n + (self.v_slots * self.v_bits + 7) // 8

    def __str__(self) -> str:
        return self.name


LAC_128 = LacParams(
    name="LAC-128", n=512, h=256, bch=LAC_BCH_128_256, d2=False, nist_level="I"
)

LAC_192 = LacParams(
    name="LAC-192", n=1024, h=256, bch=LAC_BCH_192, d2=False, nist_level="III"
)

LAC_256 = LacParams(
    name="LAC-256", n=1024, h=384, bch=LAC_BCH_128_256, d2=True, nist_level="V"
)

#: All parameter sets, in ascending security order.
ALL_PARAMS = (LAC_128, LAC_192, LAC_256)
