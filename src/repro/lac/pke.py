"""LAC CPA-secure public-key encryption (Fig. 1 of the paper).

Key generation:   a = GenA(seed);  b = a*s + e
Encryption:       u = a*s' + e';   v = (b*s')[:slots] + e''[:slots] + Enc(mu)
Decryption:       mu = Dec(v - (u*s)[:slots])

All multiplications are ternary-times-general, which is the property
the MUL TER accelerator exploits.  The multiplication strategy is
injectable so the same protocol code runs the numpy golden model, the
cycle-annotated reference schedule, and the hardware-accelerated
schedule of the co-design layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hashes.prng import Sha256Prng
from repro.hashes.sha256 import sha256
from repro.lac.encoding import DecodedMessage, MessageCodec
from repro.lac.params import LacParams
from repro.lac.sampling import gen_a, sample_secret_and_error
from repro.metrics import OpCounter, ensure_counter
from repro.ring.poly import PolyRing
from repro.ring.ternary import TernaryPoly

#: Multiplication strategy: (ring, ternary, general, counter) -> product.
Multiplier = Callable[[PolyRing, TernaryPoly, np.ndarray, "OpCounter | None"], np.ndarray]


def fast_multiplier(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Vectorized golden-model multiplication (no cycle accounting)."""
    return ring.mul(ternary.to_zq(ring.q), general)


@dataclass
class PublicKey:
    """pk = (seed_a, b): the GenA seed and the RLWE instance b = a*s + e."""

    params: LacParams
    seed_a: bytes
    b: np.ndarray

    def to_bytes(self) -> bytes:
        """Wire format: seed_a || b (one byte per coefficient)."""
        return self.seed_a + self.b.astype(np.uint8).tobytes()

    @classmethod
    def from_bytes(cls, params: LacParams, blob: bytes) -> "PublicKey":
        expected = params.public_key_bytes
        if len(blob) != expected:
            raise ValueError(f"public key must be {expected} bytes")
        seed_a = blob[: params.seed_bytes]
        b = np.frombuffer(blob[params.seed_bytes :], dtype=np.uint8).astype(np.int64)
        if np.any(b >= params.q):
            raise ValueError("public key coefficient out of range")
        return cls(params, seed_a, b)

    def digest(self) -> bytes:
        """SHA-256 binding of the public key (used by the KEM)."""
        return sha256(self.to_bytes())


@dataclass
class SecretKey:
    """sk = s, the ternary secret polynomial."""

    params: LacParams
    s: TernaryPoly

    def to_bytes(self) -> bytes:
        """Wire format: s mod q, one byte per coefficient."""
        return self.s.to_zq(self.params.q).astype(np.uint8).tobytes()

    @classmethod
    def from_bytes(cls, params: LacParams, blob: bytes) -> "SecretKey":
        if len(blob) != params.secret_key_bytes:
            raise ValueError(f"secret key must be {params.secret_key_bytes} bytes")
        coeffs = np.frombuffer(blob, dtype=np.uint8).astype(np.int64)
        return cls(params, TernaryPoly.from_zq(coeffs, params.q))


@dataclass
class Ciphertext:
    """ct = (u, v): u over the full ring, v compressed to 4 bits/slot."""

    params: LacParams
    u: np.ndarray
    v_compressed: np.ndarray

    def to_bytes(self) -> bytes:
        """Wire format: u bytes, then two 4-bit v values per byte."""
        params = self.params
        if params.v_bits != 4:
            raise NotImplementedError(
                "wire serialization packs nibbles; experimental v_bits "
                "variants are in-memory only"
            )
        u_bytes = self.u.astype(np.uint8).tobytes()
        packed = np.zeros((params.v_slots + 1) // 2, dtype=np.uint8)
        v = self.v_compressed
        packed[:] = v[0::2]
        packed[: v[1::2].size] |= v[1::2] << 4
        return u_bytes + packed.tobytes()

    @classmethod
    def from_bytes(cls, params: LacParams, blob: bytes) -> "Ciphertext":
        expected = params.ciphertext_bytes
        if len(blob) != expected:
            raise ValueError(f"ciphertext must be {expected} bytes")
        u = np.frombuffer(blob[: params.n], dtype=np.uint8).astype(np.int64)
        if np.any(u >= params.q):
            raise ValueError("ciphertext coefficient out of range")
        packed = np.frombuffer(blob[params.n :], dtype=np.uint8)
        v = np.zeros(params.v_slots, dtype=np.uint8)
        v[0::2] = packed & 0x0F
        v[1::2] = (packed >> 4)[: params.v_slots // 2]
        return cls(params, u, v)


class LacPke:
    """The CPA-secure LAC public-key encryption scheme.

    Strategy hooks (used by the co-design cycle models):

    * ``multiplier`` — full ring multiplication;
    * ``v_multiplier`` — optional truncated multiplication
      ``(ring, ternary, general, slots, counter) -> slots coefficients``
      for the v component: the reference implementation only computes
      the ``v_slots`` coefficients that carry the message (visible in
      the paper's encapsulation totals);
    * ``bch_decoder`` — optional decoder override for decryption.
    """

    def __init__(
        self,
        params: LacParams,
        multiplier: Multiplier = fast_multiplier,
        v_multiplier=None,
        bch_decoder=None,
    ):
        self.params = params
        self.ring = params.ring
        self.codec = MessageCodec(params)
        self.multiplier = multiplier
        self.v_multiplier = v_multiplier
        self.bch_decoder = bch_decoder

    # ------------------------------------------------------------------

    def keygen(
        self, seed: bytes, counter: OpCounter | None = None
    ) -> tuple[PublicKey, SecretKey]:
        """Derive a key pair deterministically from a master seed."""
        params = self.params
        counter = ensure_counter(counter)
        if len(seed) != params.seed_bytes:
            raise ValueError(f"seed must be {params.seed_bytes} bytes")
        root = Sha256Prng(seed)
        seed_a = root.fork(b"seed-a").seed
        seed_sk = root.fork(b"seed-sk").seed

        a = gen_a(seed_a, params, counter)
        s, e = sample_secret_and_error(seed_sk, params, 2, counter)
        with counter.phase("keygen_arith"):
            b = self.ring.add(
                self.multiplier(self.ring, s, a, counter), e.to_zq(params.q)
            )
            counter.count("loop", params.n)
            counter.count("alu", params.n)
            counter.count("modq", params.n)
            counter.count("load", 2 * params.n)
            counter.count("store", params.n)
        return PublicKey(params, seed_a, b), SecretKey(params, s)

    # ------------------------------------------------------------------

    def encrypt(
        self,
        pk: PublicKey,
        message: bytes,
        coins: bytes,
        counter: OpCounter | None = None,
    ) -> Ciphertext:
        """Deterministic encryption of a 32-byte message with given coins."""
        params = self.params
        counter = ensure_counter(counter)
        slots = params.v_slots

        a = gen_a(pk.seed_a, params, counter)
        s_prime, e_prime, e_dprime = sample_secret_and_error(coins, params, 3, counter)

        u = self.ring.add(
            self.multiplier(self.ring, s_prime, a, counter),
            e_prime.to_zq(params.q),
        )
        encoded = self.codec.encode(message, counter)
        if self.v_multiplier is not None:
            bs_slots = self.v_multiplier(self.ring, s_prime, pk.b, slots, counter)
        else:
            bs_slots = self.multiplier(self.ring, s_prime, pk.b, counter)[:slots]
        with counter.phase("encrypt_arith"):
            v_full = np.mod(
                bs_slots + e_dprime.to_zq(params.q)[:slots] + encoded[:slots],
                params.q,
            )
            counter.count("loop", params.n + slots)
            counter.count("alu", params.n + 2 * slots)
            counter.count("modq", params.n + slots)
            counter.count("load", 2 * params.n + 3 * slots)
            counter.count("store", params.n + slots)
        return Ciphertext(params, u, self.codec.compress_v(v_full))

    # ------------------------------------------------------------------

    def decrypt(
        self,
        sk: SecretKey,
        ct: Ciphertext,
        counter: OpCounter | None = None,
        constant_time_bch: bool = True,
    ) -> DecodedMessage:
        """Recover the message: threshold-decode v - u*s, then BCH-correct."""
        params = self.params
        counter = ensure_counter(counter)
        slots = params.v_slots

        us = self.multiplier(self.ring, sk.s, ct.u, counter)
        v = self.codec.decompress_v(ct.v_compressed)
        with counter.phase("decrypt_arith"):
            noisy = np.mod(v - us[:slots], params.q)
            counter.count("loop", slots)
            counter.count("alu", slots)
            counter.count("modq", slots)
            counter.count("load", 2 * slots)
            counter.count("store", slots)
        return self.codec.decode(
            noisy,
            counter,
            constant_time=constant_time_bch,
            bch_decoder=self.bch_decoder,
        )
