"""Polynomial generation: GenA and fixed-weight ternary sampling.

Both generators expand SHA-256 output (Sec. III-B), which is why the
paper accelerates SHA256 in hardware: GenA and Sample-poly are two of
the four bottleneck kernels of Table II.

* :func:`gen_a` models *GenA*: rejection-samples uniform Z_q
  coefficients from the seed-expanded byte stream (one byte per
  candidate, accepted when < q; acceptance rate 251/256).
* :func:`sample_ternary_fixed_weight` models *Sample poly*: the
  round-2 fixed-weight distribution.  Exactly h/2 coefficients are +1
  and h/2 are -1, placed by a Fisher-Yates shuffle whose swap indices
  come from the PRNG.  The shuffle structure (n-1 swaps, each with a
  rejection-sampled index) is input-independent, matching the
  submission's constant-time sampler.
"""

from __future__ import annotations

import numpy as np

from repro.hashes.prng import Sha256Prng
from repro.lac.params import LacParams
from repro.metrics import OpCounter, ensure_counter
from repro.ring.ternary import TernaryPoly


def gen_a(
    seed: bytes,
    params: LacParams,
    counter: OpCounter | None = None,
    prng=None,
) -> np.ndarray:
    """Expand ``seed`` into the public polynomial a (uniform over Z_q^n).

    Rejection sampling on single bytes keeps the distribution exactly
    uniform; the expected stream consumption is n * 256/251 bytes.
    ``prng`` overrides the expander (any object with ``read``) — used
    by the future-work ablation that swaps SHA-256 for SHAKE-128.
    """
    counter = ensure_counter(counter)
    with counter.phase("gen_a"):
        counter.count("call")
        if prng is None:
            prng = Sha256Prng(seed, counter=counter)
        out = np.empty(params.n, dtype=np.int64)
        filled = 0
        while filled < params.n:
            chunk = prng.read(max(params.n - filled, 32))
            counter.count("loop", len(chunk))
            counter.count("load", len(chunk))
            counter.count("branch", len(chunk))
            counter.count("store", len(chunk))
            for byte in chunk:
                if byte < params.q and filled < params.n:
                    out[filled] = byte
                    filled += 1
    return out


def sample_ternary_fixed_weight(
    prng: Sha256Prng,
    params: LacParams,
    counter: OpCounter | None = None,
) -> TernaryPoly:
    """Sample a ternary polynomial with exactly h/2 ones and h/2 minus-ones.

    The round-2 fixed-weight sampler draws uniform positions and
    rejects collisions: each nonzero coefficient consumes 16 PRNG bits
    (n is a power of two for all LAC parameter sets, so masking is
    unbiased), retrying until an unoccupied slot is hit.  The expected
    draw count is n * ln(n / (n - h)), which reproduces the paper's
    Sample-poly ordering across security levels (LAC-192 cheaper than
    LAC-128 despite the larger ring; LAC-256 the most expensive).
    """
    counter = ensure_counter(counter)
    n, h = params.n, params.h
    coeffs = np.zeros(n, dtype=np.int8)
    power_of_two = (n & (n - 1)) == 0

    with counter.phase("sample_poly"):
        counter.count("call")
        for k in range(h):
            value = 1 if k < h // 2 else -1
            while True:
                counter.count("loop")
                counter.count("alu", 2)   # mask + occupancy test setup
                counter.count("load")
                counter.count("branch")
                if power_of_two:
                    index = int.from_bytes(prng.read(2), "little") & (n - 1)
                else:
                    index = prng.uniform_below(n)
                if coeffs[index] == 0:
                    break
            coeffs[index] = value
            counter.count("store")
    return TernaryPoly(coeffs)


def sample_secret_and_error(
    seed: bytes,
    params: LacParams,
    how_many: int,
    counter: OpCounter | None = None,
) -> list[TernaryPoly]:
    """Derive ``how_many`` independent fixed-weight polynomials from a seed.

    Each polynomial uses a domain-separated child stream so the secret
    and error polynomials of one operation are independent.
    """
    counter = ensure_counter(counter)
    root = Sha256Prng(seed, counter=counter)
    polys = []
    for index in range(how_many):
        child = root.fork(b"poly" + index.to_bytes(2, "little"))
        polys.append(sample_ternary_fixed_weight(child, params, counter))
    return polys
