"""``repro.loadgen`` — open-loop load generation for SLO testing.

The measurement counterpart of the serving layer's SLO defenses: a
driver that offers load the way the world does (open loop — the
arrival process, not the service's speed, decides when the next
request fires) and records what actually happened to every scheduled
request, shed and hung ones included.

* :mod:`repro.loadgen.arrivals` — seeded arrival processes: Poisson,
  Markov-modulated bursts, diurnal trace replay;
* :mod:`repro.loadgen.generator` — :class:`OpenLoopLoadGen`, firing
  per-tier requests at scheduled times with a hang guard;
* :mod:`repro.loadgen.recorder` — :class:`LatencyRecorder`, exact
  percentiles over scheduled-time latencies (no coordinated omission).

``benchmarks/bench_capacity.py`` combines the three into the capacity
sweep committed as ``BENCH_capacity.json``; the SLO knobs it exercises
live on :class:`repro.serve.ServiceConfig`.
"""

from repro.loadgen.arrivals import (
    ArrivalProcess,
    MarkovModulatedProcess,
    PoissonProcess,
    TraceReplayProcess,
)
from repro.loadgen.generator import OpenLoopLoadGen, Send, TierSpec
from repro.loadgen.recorder import OUTCOMES, LatencyRecorder, percentile

__all__ = [
    "ArrivalProcess",
    "LatencyRecorder",
    "MarkovModulatedProcess",
    "OUTCOMES",
    "OpenLoopLoadGen",
    "PoissonProcess",
    "Send",
    "TierSpec",
    "TraceReplayProcess",
    "percentile",
]
