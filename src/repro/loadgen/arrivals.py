"""Arrival processes for the open-loop load generator.

A closed-loop driver (send, wait, send again) measures a different
system than the one production sees: when the service slows down the
driver slows down with it, so queueing delay never accumulates and the
recorded latencies flatter the service — the *coordinated omission*
trap.  An **open-loop** driver fires at times drawn from an arrival
process regardless of how the service is doing, which is what these
classes model.

Every process is an iterator factory: :meth:`ArrivalProcess.gaps`
yields inter-arrival gaps in seconds, deterministically per seed, so a
load test replays exactly.  Three shapes cover the capacity-planning
questions:

* :class:`PoissonProcess` — memoryless steady load, the canonical
  offered-load model (exponential gaps at a fixed rate);
* :class:`MarkovModulatedProcess` — bursty traffic: a two-state
  (calm/burst) Markov chain modulates the instantaneous rate, so the
  generator produces the clumped arrivals that defeat autoscalers
  tuned on averages;
* :class:`TraceReplayProcess` — diurnal replay: per-slot relative
  intensities (committed as ``benchmarks/traces/diurnal.json``)
  scale a base rate through a repeating day-shaped cycle.

All rates are in requests/second.  ``at_rate(r)`` returns a copy of
the process rescaled so its *mean* rate is ``r`` — the capacity sweep
reuses one traffic shape across load rungs.
"""

from __future__ import annotations

import json
import random
from collections.abc import Iterator, Sequence
from pathlib import Path


class ArrivalProcess:
    """Base contract: a seeded, replayable stream of arrival gaps."""

    #: long-run average arrival rate (requests/second)
    mean_rate: float

    def gaps(self) -> Iterator[float]:
        """Yield inter-arrival gaps (seconds), forever."""
        raise NotImplementedError

    def at_rate(self, rate: float) -> ArrivalProcess:
        """A copy of this process rescaled to mean rate ``rate``."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential gaps at a constant ``rate``."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.mean_rate = rate
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        """Exponential gaps with mean ``1/rate`` (seeded)."""
        rng = random.Random(self.seed)
        rate = self.mean_rate
        while True:
            yield rng.expovariate(rate)

    def at_rate(self, rate: float) -> PoissonProcess:
        """Same seed, new rate."""
        return PoissonProcess(rate, seed=self.seed)


class MarkovModulatedProcess(ArrivalProcess):
    """Bursty arrivals: a calm/burst chain modulates a Poisson rate.

    Between consecutive arrivals the chain may flip state —
    ``p_enter`` is the per-arrival probability of a calm→burst
    transition, ``p_exit`` of burst→calm — and each gap is drawn
    exponentially at the *current* state's rate (``base_rate`` calm,
    ``burst_mult * base_rate`` bursting).  The stationary burst
    fraction is ``p_enter / (p_enter + p_exit)``, which fixes the mean
    rate used by :meth:`at_rate` scaling.
    """

    def __init__(
        self,
        base_rate: float,
        burst_mult: float = 8.0,
        p_enter: float = 0.05,
        p_exit: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if burst_mult < 1.0:
            raise ValueError("burst_mult must be >= 1")
        if not (0.0 < p_enter < 1.0 and 0.0 < p_exit < 1.0):
            raise ValueError("transition probabilities must be in (0, 1)")
        self.base_rate = base_rate
        self.burst_mult = burst_mult
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.seed = seed
        # the state flips once per arrival, so the stationary fraction
        # p_enter/(p_enter+p_exit) weights *gaps*, not wall time: the
        # mean gap is the occupancy-weighted mean of the state gaps
        burst_frac = p_enter / (p_enter + p_exit)
        mean_gap = (1.0 - burst_frac) / base_rate + burst_frac / (
            base_rate * burst_mult
        )
        self.mean_rate = 1.0 / mean_gap

    def gaps(self) -> Iterator[float]:
        """Exponential gaps at the state's rate; state flips per arrival."""
        rng = random.Random(self.seed)
        bursting = False
        while True:
            rate = self.base_rate * (self.burst_mult if bursting else 1.0)
            yield rng.expovariate(rate)
            flip = rng.random()
            if bursting:
                bursting = flip >= self.p_exit
            else:
                bursting = flip < self.p_enter

    def at_rate(self, rate: float) -> MarkovModulatedProcess:
        """Rescale ``base_rate`` so the stationary mean becomes ``rate``."""
        scale = rate / self.mean_rate
        return MarkovModulatedProcess(
            self.base_rate * scale,
            burst_mult=self.burst_mult,
            p_enter=self.p_enter,
            p_exit=self.p_exit,
            seed=self.seed,
        )


class TraceReplayProcess(ArrivalProcess):
    """Replay a committed intensity trace (e.g. a diurnal curve).

    ``weights`` are relative intensities, one per time slot of
    ``slot_s`` seconds; the cycle repeats.  The instantaneous rate in
    slot ``i`` is ``rate * weights[i] / mean(weights)``, so ``rate``
    is the cycle-average arrival rate regardless of the curve's shape.
    Gaps are exponential at the slot's rate, and a gap that would
    cross a slot boundary is re-drawn from the boundary at the next
    slot's rate — intensity changes take effect on time, not one
    arrival late.
    """

    def __init__(
        self,
        weights: Sequence[float],
        rate: float,
        slot_s: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative with a positive sum")
        if rate <= 0:
            raise ValueError("rate must be positive")
        if slot_s <= 0:
            raise ValueError("slot_s must be positive")
        self.weights = tuple(float(w) for w in weights)
        self.mean_rate = rate
        self.slot_s = slot_s
        self.seed = seed

    @classmethod
    def from_file(
        cls, path: str | Path, rate: float, seed: int = 0
    ) -> TraceReplayProcess:
        """Load a trace file: ``{"slot_s": ..., "weights": [...]}``."""
        data = json.loads(Path(path).read_text())
        return cls(
            data["weights"], rate, slot_s=float(data.get("slot_s", 1.0)), seed=seed
        )

    def gaps(self) -> Iterator[float]:
        """Exponential gaps at the current slot's scaled rate."""
        rng = random.Random(self.seed)
        mean_weight = sum(self.weights) / len(self.weights)
        n_slots = len(self.weights)
        clock = 0.0  # virtual time within the repeating cycle
        last = 0.0
        while True:
            slot = int(clock / self.slot_s) % n_slots
            weight = self.weights[slot]
            if weight == 0.0:
                # silent slot: jump to its end, no arrivals
                clock = (int(clock / self.slot_s) + 1) * self.slot_s
                continue
            rate = self.mean_rate * weight / mean_weight
            gap = rng.expovariate(rate)
            boundary = (int(clock / self.slot_s) + 1) * self.slot_s
            if clock + gap > boundary:
                # the draw crossed into the next slot; restart there
                clock = boundary
                continue
            clock += gap
            yield clock - last
            last = clock

    def at_rate(self, rate: float) -> TraceReplayProcess:
        """Same curve and seed, new cycle-average rate."""
        return TraceReplayProcess(
            self.weights, rate, slot_s=self.slot_s, seed=self.seed
        )


__all__ = [
    "ArrivalProcess",
    "MarkovModulatedProcess",
    "PoissonProcess",
    "TraceReplayProcess",
]
