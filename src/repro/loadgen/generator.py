"""The open-loop load generator.

:class:`OpenLoopLoadGen` fires requests at the times an
:class:`~repro.loadgen.arrivals.ArrivalProcess` dictates, regardless
of whether earlier requests have been answered — each firing is its
own asyncio task, so a slow service accumulates in-flight work exactly
the way it would behind a real client population.  Latency is measured
from the request's *scheduled* arrival time: if the event loop falls
behind and a request fires 40 ms late, those 40 ms are part of its
recorded latency, not silently forgiven (coordinated omission, again).

Traffic splits across priority :class:`TierSpec` tiers by weight; each
tier carries its own deadline budget, which the driver's ``send``
callable is expected to attach as wire QoS.  Outcomes map from the
typed client errors:

=============================================  =========
raised                                         outcome
=============================================  =========
(returns)                                      ``ok``
:class:`repro.errors.ServiceBusy`              ``busy``
:class:`repro.errors.RequestTimedOut`          ``timeout``
:class:`repro.errors.DeadlineExceeded`,
``asyncio.TimeoutError`` (hang guard)          ``late``
anything else                                  ``error``
=============================================  =========

The generator is transport-agnostic: ``send`` is any async callable
``(TierSpec) -> Awaitable``; ``benchmarks/bench_capacity.py`` binds it
to an :class:`repro.serve.AsyncKemClient` ``encaps``.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections.abc import Awaitable, Callable
from dataclasses import dataclass

from repro.errors import DeadlineExceeded, RequestTimedOut, ServiceBusy
from repro.loadgen.arrivals import ArrivalProcess
from repro.loadgen.recorder import LatencyRecorder

#: One request sender, given the tier the request was assigned to.
Send = Callable[["TierSpec"], Awaitable[object]]


@dataclass(frozen=True)
class TierSpec:
    """One priority class of generated traffic.

    ``weight`` is the relative share of arrivals assigned to this
    tier; ``deadline_s`` is the per-request budget the sender should
    attach as wire QoS (``None`` = no deadline); ``tenant`` is the
    tenant id the sender should declare on the wire, so one generator
    can emit a multi-tenant mix and the recorder keeps the per-tenant
    outcome ledger.
    """

    tier: int = 0
    weight: float = 1.0
    deadline_s: float | None = None
    tenant: int = 0

    def __post_init__(self) -> None:
        if self.tier < 0:
            raise ValueError("tier must be >= 0")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.tenant < 0:
            raise ValueError("tenant must be >= 0")


class OpenLoopLoadGen:
    """Fire requests open-loop and record honest latencies.

    ``duration_s`` and/or ``max_requests`` bound the run (at least one
    is required).  ``hang_timeout_s`` is the last-resort guard around
    each ``send`` — a request nobody ever answers is recorded ``late``
    instead of wedging the run.  ``seed`` fixes the tier assignment
    stream; the arrival process carries its own seed.
    """

    def __init__(
        self,
        send: Send,
        arrivals: ArrivalProcess,
        duration_s: float | None = None,
        max_requests: int | None = None,
        tiers: tuple[TierSpec, ...] = (TierSpec(),),
        seed: int = 0,
        hang_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if duration_s is None and max_requests is None:
            raise ValueError("bound the run with duration_s or max_requests")
        if duration_s is not None and duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if not tiers:
            raise ValueError("at least one TierSpec is required")
        if hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        self._send = send
        self._arrivals = arrivals
        self._duration_s = duration_s
        self._max_requests = max_requests
        self._tiers = tiers
        self._seed = seed
        self._hang_timeout_s = hang_timeout_s
        self._clock = clock
        self.recorder = LatencyRecorder()
        self.elapsed_s = 0.0

    async def run(self) -> LatencyRecorder:
        """Drive the full schedule; returns the filled recorder."""
        rng = random.Random(self._seed)
        weights = [spec.weight for spec in self._tiers]
        start = self._clock()
        scheduled = start
        fired = 0
        tasks: set[asyncio.Task[None]] = set()
        for gap in self._arrivals.gaps():
            scheduled += gap
            if (
                self._duration_s is not None
                and scheduled - start > self._duration_s
            ):
                break
            if self._max_requests is not None and fired >= self._max_requests:
                break
            delay = scheduled - self._clock()
            if delay > 0:
                await asyncio.sleep(delay)
            # fire even when behind schedule: the lag becomes measured
            # latency (scheduled-time accounting), never thinned load
            spec = (
                self._tiers[0]
                if len(self._tiers) == 1
                else rng.choices(self._tiers, weights=weights)[0]
            )
            task = asyncio.create_task(self._fire(spec, scheduled))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            fired += 1
        if tasks:
            await asyncio.gather(*tasks)
        self.elapsed_s = self._clock() - start
        return self.recorder

    async def _fire(self, spec: TierSpec, scheduled: float) -> None:
        try:
            await asyncio.wait_for(self._send(spec), self._hang_timeout_s)
            outcome = "ok"
        except ServiceBusy:
            outcome = "busy"
        except RequestTimedOut:
            outcome = "timeout"
        except (DeadlineExceeded, asyncio.TimeoutError):
            outcome = "late"
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - the mix is the measurement
            outcome = "error"
        self.recorder.record(
            outcome, self._clock() - scheduled, spec.tier, tenant=spec.tenant
        )


__all__ = ["OpenLoopLoadGen", "Send", "TierSpec"]
