"""Honest latency accounting for open-loop load tests.

The recorder stores one observation per *scheduled* request — including
the ones the service shed, timed out, or never answered — and computes
exact percentiles from the raw samples (no histogram buckets, no
dropped outliers).  Latency is measured from the request's scheduled
arrival time, not from when the driver got around to sending it, so a
lagging driver shows up as latency instead of silently thinning the
offered load (the coordinated-omission correction).

Outcomes form a small closed vocabulary:

* ``ok`` — an OK response within the attempt;
* ``busy`` — the service shed the request at admission
  (:class:`repro.errors.ServiceBusy`: watermark or hopeless-deadline);
* ``timeout`` — the service answered ``TIMEOUT``
  (queue expiry or a predicted deadline miss);
* ``late`` — no usable answer in time on the client side
  (client attempt deadline, generator hang guard);
* ``error`` — anything else (connection loss, internal errors).

``accepted`` = ``ok`` + ``timeout`` — requests the service admitted.
The SLO verdicts in ``benchmarks/bench_capacity.py`` are computed over
``ok`` latencies but reported next to the full outcome mix, so a rung
that "meets p99" by shedding half its traffic is visibly doing so.
"""

from __future__ import annotations

from collections import Counter

#: The closed outcome vocabulary (see module docstring).
OUTCOMES = ("ok", "busy", "timeout", "late", "error")


def percentile(samples: list[float], p: float) -> float | None:
    """Exact percentile by nearest-rank (``None`` on no samples).

    ``p`` in ``[0, 100]``.  Nearest-rank keeps the answer an actual
    observed sample — a p99 that was really measured, not interpolated
    between two points that never happened.
    """
    if not samples:
        return None
    if not 0.0 <= p <= 100.0:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(samples)
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyRecorder:
    """Per-outcome, per-tier latency samples with exact percentiles."""

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self.tier_counts: Counter[tuple[str, int]] = Counter()
        self.tenant_counts: Counter[tuple[str, int]] = Counter()
        self._samples: dict[str, list[float]] = {o: [] for o in OUTCOMES}
        self._tenant_ok: dict[int, list[float]] = {}

    def record(
        self, outcome: str, latency_s: float, tier: int = 0, tenant: int = 0
    ) -> None:
        """Store one observation (latency from *scheduled* arrival)."""
        if outcome not in self._samples:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.counts[outcome] += 1
        self.tier_counts[(outcome, tier)] += 1
        self.tenant_counts[(outcome, tenant)] += 1
        self._samples[outcome].append(latency_s)
        if outcome == "ok":
            self._tenant_ok.setdefault(tenant, []).append(latency_s)

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        """Every scheduled request, whatever became of it."""
        return sum(self.counts.values())

    @property
    def accepted(self) -> int:
        """Requests the service admitted (``ok`` + ``timeout``)."""
        return self.counts["ok"] + self.counts["timeout"]

    def samples(self, outcome: str = "ok") -> list[float]:
        """The raw latency samples of one outcome (a copy)."""
        return list(self._samples[outcome])

    def latency_percentile(
        self, p: float, outcome: str = "ok"
    ) -> float | None:
        """Exact percentile of one outcome's latencies (seconds)."""
        return percentile(self._samples[outcome], p)

    def tenant_latency_percentile(self, tenant: int, p: float) -> float | None:
        """Exact percentile of one tenant's ``ok`` latencies (seconds)."""
        return percentile(self._tenant_ok.get(tenant, []), p)

    def tenant_ledger(self) -> dict[int, dict[str, int]]:
        """Per-tenant outcome counts (every scheduled request accounted)."""
        tenants = sorted({tenant for _, tenant in self.tenant_counts})
        return {
            tenant: {
                o: self.tenant_counts[(o, tenant)]
                for o in OUTCOMES
                if self.tenant_counts[(o, tenant)]
            }
            for tenant in tenants
        }

    def ok_rate(self) -> float:
        """Fraction of all scheduled requests that ended ``ok``."""
        total = self.total
        return self.counts["ok"] / total if total else 0.0

    def summary(self, duration_s: float | None = None) -> dict:
        """A JSON-shaped digest (counts, rates, ok percentiles).

        ``duration_s`` adds achieved throughput (ok responses per
        second of wall clock) when the caller knows the window.
        """
        ok = self._samples["ok"]
        out: dict = {
            "total": self.total,
            "counts": {o: self.counts[o] for o in OUTCOMES},
            "ok_rate": round(self.ok_rate(), 6),
            "latency_ok_s": {
                "p50": percentile(ok, 50.0),
                "p95": percentile(ok, 95.0),
                "p99": percentile(ok, 99.0),
                "max": max(ok) if ok else None,
            },
        }
        tiers = sorted({tier for _, tier in self.tier_counts})
        if tiers != [0]:
            out["tiers"] = {
                str(tier): {
                    o: self.tier_counts[(o, tier)]
                    for o in OUTCOMES
                    if self.tier_counts[(o, tier)]
                }
                for tier in tiers
            }
        tenants = sorted({tenant for _, tenant in self.tenant_counts})
        if tenants != [0]:
            out["tenants"] = {
                str(tenant): ledger
                for tenant, ledger in self.tenant_ledger().items()
            }
        if duration_s is not None and duration_s > 0:
            out["duration_s"] = round(duration_s, 3)
            out["ok_per_s"] = round(self.counts["ok"] / duration_s, 3)
        return out


__all__ = ["OUTCOMES", "LatencyRecorder", "percentile"]
