"""Operation counting used for cycle estimation.

The paper's evaluation (Tables I and II) is entirely about *cycle
counts* on a RISC-V core.  We cannot run the authors' compiled C code,
so the cycle-annotated implementations in this repository count the
operations they actually execute — field multiplications, branches,
loads, loop iterations — and the co-design layer
(:mod:`repro.cosim.costs`) maps operation counts to RISCY-model cycles.

Crucially the counts are *recorded during execution*, so data-dependent
control flow (the timing leak of Table I) produces data-dependent
counts without any hard-coding.

Operation names are free-form strings; the conventional ones are listed
in :data:`CONVENTIONAL_OPS`.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator

#: Conventional operation names charged by annotated implementations.
#: The cost model assigns a per-operation cycle cost to each.
CONVENTIONAL_OPS = (
    "gf_mul_table",  # GF(2^9) mult via log/antilog tables (branchy fast path)
    "gf_mul_ct",     # GF(2^9) mult via constant-time shift-and-add in SW
    "gf_add",        # GF(2^9) addition (XOR)
    "branch",        # conditional branch evaluated
    "load",          # memory word load
    "store",         # memory word store
    "alu",           # simple integer ALU op (add/sub/shift/logic)
    "mul",           # integer multiply (RV32M)
    "div",           # integer divide / remainder (RV32M)
    "modq",          # reduction modulo q=251 in software
    "loop",          # loop-bookkeeping overhead per iteration
    "call",          # function call + return overhead
    "sha256_block",  # one SHA-256 compression in software
    "pq_issue",      # one custom PQ instruction issued (ISE path)
    "pq_busy",       # one stall cycle waiting on a PQ accelerator
)


class OpCounter:
    """A hierarchical counter of executed operations.

    Operations are attributed to the currently active *phase* (e.g.
    ``"syndrome"``, ``"error_locator"``, ``"chien"``), mirroring the
    per-phase breakdown of Table I.  Counts outside any phase go to the
    ``"_top"`` phase.

    The counter is deliberately permissive about operation names so
    that new annotated code does not need central registration; the
    cost model raises on names it has no cost for, which catches typos
    at evaluation time.
    """

    def __init__(self) -> None:
        self.phases: dict[str, Counter] = {"_top": Counter()}
        self._stack: list[str] = ["_top"]

    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all counts inside the ``with`` block to ``name``."""
        self.phases.setdefault(name, Counter())
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def count(self, op: str, n: int = 1) -> None:
        """Record ``n`` occurrences of operation ``op`` in the active phase."""
        self.phases[self._stack[-1]][op] += n

    # ------------------------------------------------------------------

    def totals(self) -> Counter:
        """Aggregate counts across all phases."""
        total: Counter = Counter()
        for counts in self.phases.values():
            total.update(counts)
        return total

    def phase_counts(self, name: str) -> Counter:
        """Counts recorded in one phase (empty counter if never entered)."""
        return self.phases.get(name, Counter())

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's phases into this one."""
        for name, counts in other.phases.items():
            self.phases.setdefault(name, Counter()).update(counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        phases = {k: dict(v) for k, v in self.phases.items() if v}
        return f"OpCounter({phases})"


class NullCounter(OpCounter):
    """A counter that discards everything (zero-overhead-ish fast path).

    Annotated implementations accept ``counter=None`` and substitute
    this singleton so the hot path stays a single no-op method call.
    """

    def count(self, op: str, n: int = 1) -> None:
        """Discard the count (the zero-overhead fast path)."""
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """No-op phase context."""
        yield


#: Shared do-nothing counter.
NULL_COUNTER = NullCounter()


def ensure_counter(counter: OpCounter | None) -> OpCounter:
    """Return ``counter`` or the shared null counter."""
    return counter if counter is not None else NULL_COUNTER
