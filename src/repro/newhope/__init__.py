"""The NewHope lattice KEM — the paper's comparison baseline.

Table II compares the LAC co-design against the RISC-V NewHope
co-design of [8] (CPA-secure, NIST level V), and Table III against its
NTT and Keccak accelerators.  Rather than carrying those rows purely
as citations, this subpackage implements the baseline itself:

* NewHope512/NewHope1024 CPA-PKE and CPA-KEM (q = 12289, binomial
  noise psi_8, SHAKE-128 generation, NTT-domain public keys,
  3-bit-compressed second ciphertext component);
* cycle-annotated kernels matching [8]'s measurement style, with the
  NTT running on the loosely-coupled accelerator model
  (:mod:`repro.hw.ntt_accel`) and generation on the Keccak core.

The structural differences the paper highlights all become measurable:
NewHope's NTT needs DSPs and BRAM where LAC's ternary multiplier needs
LUTs; NewHope's Keccak generation is faster but 10x larger than LAC's
SHA256 core; LAC pays for its error-correcting decoder but wins on
key and ciphertext sizes.
"""

from repro.newhope.cpa import (
    NewHopeCiphertext,
    NewHopeCpaKem,
    NewHopeKeyPair,
    NewHopePke,
)
from repro.newhope.params import NEWHOPE_1024, NEWHOPE_512, NewHopeParams

__all__ = [
    "NEWHOPE_512",
    "NEWHOPE_1024",
    "NewHopeParams",
    "NewHopePke",
    "NewHopeCpaKem",
    "NewHopeKeyPair",
    "NewHopeCiphertext",
]
