"""CCA-secure NewHope KEM (what a fair comparison with LAC needs).

The paper points out that "[8] only provides results for the CPA-secure
version" while its own LAC numbers are CCA — i.e., LAC's decapsulation
carries a full re-encryption that the NewHope row does not pay.  This
module supplies the missing piece: the same Fujisaki-Okamoto transform
LAC uses, wrapped around the NewHope CPA-PKE, so the CCA-vs-CCA
comparison the paper could not make becomes measurable (see the
NewHope benchmark's fairness check).

Derivations (SHAKE-256 with domain separation, mirroring
:mod:`repro.lac.kem`):

* coins  = H(m || H(pk) || "coins")
* shared = H(m || H(ct) || "shared")
* reject = H(z || H(ct) || "reject")
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

import numpy as np

from repro.hashes.keccak import shake256
from repro.metrics import OpCounter, ensure_counter
from repro.newhope.cpa import NewHopeCiphertext, NewHopeKeyPair, NewHopePke
from repro.newhope.params import NewHopeParams


def _hash3(a: bytes, b: bytes, label: bytes, counter: OpCounter | None = None) -> bytes:
    return shake256(a + b + label, 32, counter=counter)


def _ct_bytes(ct: NewHopeCiphertext) -> bytes:
    return ct.u_hat.astype("<u2").tobytes() + ct.v_compressed.tobytes()


def _pk_bytes(keys: NewHopeKeyPair) -> bytes:
    return keys.seed_a + keys.b_hat.astype("<u2").tobytes()


@dataclass
class NewHopeCcaSecretKey:
    """Decapsulation key: CPA keys + FO material."""

    keys: NewHopeKeyPair
    pk_digest: bytes
    z: bytes


class NewHopeCcaKem:
    """The CCA-secure NewHope KEM via the FO transform."""

    def __init__(self, params: NewHopeParams, transformer=None):
        self.params = params
        self.pke = NewHopePke(params, transformer)

    # ------------------------------------------------------------------

    def keygen(
        self, seed: bytes | None = None, counter: OpCounter | None = None
    ) -> NewHopeCcaSecretKey:
        """Generate CPA keys plus the FO material (digest, z)."""
        counter = ensure_counter(counter)
        params = self.params
        if seed is None:
            seed = secrets.token_bytes(params.seed_bytes + 32)
        if len(seed) < params.seed_bytes + 32:
            raise ValueError(
                f"seed must provide {params.seed_bytes + 32} bytes"
            )
        keys = self.pke.keygen(seed[: params.seed_bytes], counter)
        with counter.phase("kem_glue"):
            pk_digest = _hash3(_pk_bytes(keys), b"", b"pk", counter)
        return NewHopeCcaSecretKey(keys, pk_digest, seed[params.seed_bytes :][:32])

    # ------------------------------------------------------------------

    def encaps(
        self,
        sk: NewHopeCcaSecretKey,
        message: bytes | None = None,
        counter: OpCounter | None = None,
    ) -> tuple[NewHopeCiphertext, bytes]:
        """Encapsulate with FO-derived coins; returns (ct, shared)."""
        counter = ensure_counter(counter)
        params = self.params
        if message is None:
            message = secrets.token_bytes(params.message_bytes)
        with counter.phase("kem_glue"):
            coins = _hash3(message, sk.pk_digest, b"coins", counter)
        ct = self.pke.encrypt(
            sk.keys.seed_a, sk.keys.b_hat, message, coins, counter
        )
        with counter.phase("kem_glue"):
            ct_digest = _hash3(_ct_bytes(ct), b"", b"ct", counter)
            shared = _hash3(message, ct_digest, b"shared", counter)
        return ct, shared

    # ------------------------------------------------------------------

    def decaps(
        self,
        sk: NewHopeCcaSecretKey,
        ct: NewHopeCiphertext,
        counter: OpCounter | None = None,
    ) -> bytes:
        """Decrypt, re-encrypt, compare — implicit rejection on mismatch."""
        counter = ensure_counter(counter)
        message = self.pke.decrypt(sk.keys, ct, counter)
        with counter.phase("kem_glue"):
            coins = _hash3(message, sk.pk_digest, b"coins", counter)
        reencrypted = self.pke.encrypt(
            sk.keys.seed_a, sk.keys.b_hat, message, coins, counter
        )
        with counter.phase("kem_glue"):
            ct_digest = _hash3(_ct_bytes(ct), b"", b"ct", counter)
            same = np.array_equal(reencrypted.u_hat, ct.u_hat) and np.array_equal(
                reencrypted.v_compressed, ct.v_compressed
            )
            counter.count("loop", self.params.n)
            counter.count("load", 4 * self.params.n)
            counter.count("alu", 2 * self.params.n)
            if same:
                return _hash3(message, ct_digest, b"shared", counter)
            return _hash3(sk.z, ct_digest, b"reject", counter)
