"""NewHope CPA-PKE and CPA-KEM (the [8] baseline protocol).

NTT-domain protocol exactly as the NewHope submission defines it:

* keygen:  b_hat = a_hat o NTT(s) + NTT(e);     pk = (seed, b_hat), sk = NTT(s)
* encrypt: u_hat = a_hat o NTT(s') + NTT(e')
           v = INTT(b_hat o NTT(s')) + e'' + Encode(m), compressed to 3 bits
* decrypt: m = Decode(v - INTT(u_hat o s_hat))

Encode spreads each of the 256 message bits over ``redundancy``
coefficients (4 for n = 1024); Decode sums the distances, which is the
soft combining that gives NewHope its negligible failure rate without
an error-correcting code — the structural contrast with LAC that the
paper's related-work section draws.

The comparison rows measured in Table II are CPA (no FO re-encryption),
which is why [8]'s decapsulation is so much cheaper than its
encapsulation; the KEM here mirrors that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitutils import bytes_to_bits
from repro.hashes.keccak import ShakePrng, shake256
from repro.metrics import OpCounter, ensure_counter
from repro.newhope.params import NewHopeParams
from repro.newhope.sampling import gen_a, sample_noise_polys

#: Transform strategy: (context-transform, counter) -> transformed poly.
#: Injected so the cycle model can route through the accelerator model.


@dataclass
class NewHopeKeyPair:
    params: NewHopeParams
    seed_a: bytes
    b_hat: np.ndarray
    s_hat: np.ndarray


@dataclass
class NewHopeCiphertext:
    params: NewHopeParams
    u_hat: np.ndarray
    v_compressed: np.ndarray


class NewHopePke:
    """The CPA-secure NewHope public-key encryption scheme."""

    def __init__(self, params: NewHopeParams, transformer=None):
        self.params = params
        self.ntt = params.ntt
        #: object with forward/inverse/pointwise (defaults to the pure
        #: software context; the cycle model injects the accelerator)
        self.transformer = transformer or self.ntt

    # ------------------------------------------------------------------

    def keygen(
        self, seed: bytes, counter: OpCounter | None = None
    ) -> NewHopeKeyPair:
        """b_hat = a_hat o NTT(s) + NTT(e); keys stay in the NTT domain."""
        params = self.params
        counter = ensure_counter(counter)
        if len(seed) != params.seed_bytes:
            raise ValueError(f"seed must be {params.seed_bytes} bytes")
        root = ShakePrng(seed)
        seed_a = root.fork(b"seed-a").seed
        seed_noise = root.fork(b"seed-noise").seed

        a_hat = gen_a(seed_a, params, counter)
        s, e = sample_noise_polys(seed_noise, params, 2, counter)
        with counter.phase("ntt"):
            s_hat = self.transformer.forward(s)
            e_hat = self.transformer.forward(e)
        with counter.phase("keygen_arith"):
            b_hat = (self.ntt.pointwise(a_hat, s_hat) + e_hat) % params.q
            counter.count("loop", params.n)
            counter.count("mul", params.n)
            counter.count("modq", 2 * params.n)
            counter.count("load", 3 * params.n)
            counter.count("store", params.n)
        return NewHopeKeyPair(params, seed_a, b_hat, s_hat)

    # ------------------------------------------------------------------

    def encrypt(
        self,
        seed_a: bytes,
        b_hat: np.ndarray,
        message: bytes,
        coins: bytes,
        counter: OpCounter | None = None,
    ) -> NewHopeCiphertext:
        """Deterministic encryption of a 32-byte message with given coins."""
        params = self.params
        counter = ensure_counter(counter)
        if len(message) != params.message_bytes:
            raise ValueError(f"message must be {params.message_bytes} bytes")

        a_hat = gen_a(seed_a, params, counter)
        s_prime, e_prime, e_dprime = sample_noise_polys(coins, params, 3, counter)
        with counter.phase("ntt"):
            t_hat = self.transformer.forward(s_prime)
            e_prime_hat = self.transformer.forward(e_prime)
        with counter.phase("encrypt_arith"):
            u_hat = (self.ntt.pointwise(a_hat, t_hat) + e_prime_hat) % params.q
            counter.count("loop", params.n)
            counter.count("mul", params.n)
            counter.count("modq", 2 * params.n)
            counter.count("load", 3 * params.n)
            counter.count("store", params.n)
        with counter.phase("ntt"):
            masked = self.transformer.inverse(self.ntt.pointwise(b_hat, t_hat))
        with counter.phase("encrypt_arith"):
            v_full = (masked + e_dprime + self.encode(message)) % params.q
            counter.count("loop", params.n)
            counter.count("mul", params.n)
            counter.count("alu", 2 * params.n)
            counter.count("modq", 2 * params.n)
            counter.count("load", 3 * params.n)
            counter.count("store", params.n)
        return NewHopeCiphertext(params, u_hat, self.compress_v(v_full))

    # ------------------------------------------------------------------

    def decrypt(
        self,
        keys: NewHopeKeyPair,
        ct: NewHopeCiphertext,
        counter: OpCounter | None = None,
    ) -> bytes:
        """Recover the message: v - INTT(u_hat o s_hat), then Decode."""
        params = self.params
        counter = ensure_counter(counter)
        with counter.phase("ntt"):
            mask = self.transformer.inverse(
                self.ntt.pointwise(ct.u_hat, keys.s_hat)
            )
        with counter.phase("decrypt_arith"):
            noisy = np.mod(self.decompress_v(ct.v_compressed) - mask, params.q)
            counter.count("loop", params.n)
            counter.count("alu", params.n)
            counter.count("modq", params.n)
            counter.count("load", 2 * params.n)
            counter.count("store", params.n)
        return self.decode(noisy, counter)

    # ------------------------------------------------------------------
    # message encoding: repetition over `redundancy` coefficients
    # ------------------------------------------------------------------

    def encode(self, message: bytes) -> np.ndarray:
        """Spread each message bit over ``redundancy`` coefficients."""
        params = self.params
        bits = bytes_to_bits(message, 8 * params.message_bytes)
        amplitude = params.q // 2
        # bit i occupies coefficients i, i+256, i+512, ... (spec layout)
        return np.tile(bits, params.redundancy).astype(np.int64) * amplitude

    def decode(self, noisy: np.ndarray, counter: OpCounter | None = None) -> bytes:
        """Summed-distance majority vote back to 32 message bytes."""
        params = self.params
        counter = ensure_counter(counter)
        q, half = params.q, params.q // 2
        values = np.mod(noisy, q).reshape(params.redundancy, -1)
        distance_zero = np.minimum(values, q - values).sum(axis=0)
        shifted = np.mod(values - half, q)
        distance_half = np.minimum(shifted, q - shifted).sum(axis=0)
        with counter.phase("threshold"):
            counter.count("loop", params.n)
            counter.count("load", params.n)
            counter.count("alu", 5 * params.n)
            counter.count("store", params.n // params.redundancy)
        bits = (distance_half < distance_zero).astype(np.uint8)
        return np.packbits(bits, bitorder="little").tobytes()

    # ------------------------------------------------------------------
    # v compression (3 bits per coefficient)
    # ------------------------------------------------------------------

    def compress_v(self, v: np.ndarray) -> np.ndarray:
        """Round each coefficient to ``v_bits`` bits (NewHope's 3)."""
        q, bits = self.params.q, self.params.v_bits
        return ((np.mod(v, q) * (1 << bits) + q // 2) // q % (1 << bits)).astype(
            np.uint8
        )

    def decompress_v(self, compressed: np.ndarray) -> np.ndarray:
        """Expand compressed values back to Z_q midpoints."""
        q, bits = self.params.q, self.params.v_bits
        return (compressed.astype(np.int64) * q + (1 << (bits - 1))) >> bits


class NewHopeCpaKem:
    """CPA-secure KEM (what [8] benchmarks: no re-encryption check)."""

    def __init__(self, params: NewHopeParams, transformer=None):
        self.params = params
        self.pke = NewHopePke(params, transformer)

    def keygen(self, seed: bytes, counter: OpCounter | None = None) -> NewHopeKeyPair:
        """Generate a CPA key pair from a 32-byte seed."""
        return self.pke.keygen(seed, counter)

    def encaps(
        self,
        keys_or_pk: NewHopeKeyPair,
        message: bytes | None = None,
        counter: OpCounter | None = None,
    ) -> tuple[NewHopeCiphertext, bytes]:
        """Encapsulate a shared secret (CPA: hash-derived, no FO check)."""
        params = self.params
        counter = ensure_counter(counter)
        if message is None:
            import secrets

            message = secrets.token_bytes(params.message_bytes)
        with counter.phase("kem_glue"):
            coins = shake256(message + b"coins", 32, counter=counter)
        ct = self.pke.encrypt(
            keys_or_pk.seed_a, keys_or_pk.b_hat, message, coins, counter
        )
        with counter.phase("kem_glue"):
            shared = shake256(message + b"shared", 32, counter=counter)
        return ct, shared

    def decaps(
        self,
        keys: NewHopeKeyPair,
        ct: NewHopeCiphertext,
        counter: OpCounter | None = None,
    ) -> bytes:
        """Decrypt and hash: the cheap CPA decapsulation of [8]."""
        counter = ensure_counter(counter)
        message = self.pke.decrypt(keys, ct, counter)
        with counter.phase("kem_glue"):
            return shake256(message + b"shared", 32, counter=counter)
