"""NewHope parameter sets (NIST round-2 CPA variant).

Both sets share q = 12289, binomial parameter k = 8, a 256-bit
message, and 3-bit compression of the second ciphertext component;
they differ in the ring size (and hence in how many coefficients carry
each message bit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ring.ntt import NEWHOPE_Q, NttContext, get_context


@dataclass(frozen=True)
class NewHopeParams:
    """One NewHope parameter set."""

    name: str
    n: int
    nist_level: str
    q: int = NEWHOPE_Q
    #: Binomial noise parameter: coefficients are HW(a) - HW(b) with
    #: a, b k-bit strings (variance k/2).
    k: int = 8
    seed_bytes: int = 32
    message_bytes: int = 32
    #: Bits kept per coefficient of the compressed component v.
    v_bits: int = 3

    def __post_init__(self) -> None:
        if self.n % (8 * self.message_bytes):
            raise ValueError("ring size must be a multiple of the message bits")

    @property
    def ntt(self) -> NttContext:
        return get_context(self.n, self.q)

    @property
    def redundancy(self) -> int:
        """Ring coefficients per message bit (4 for n=1024, 2 for n=512)."""
        return self.n // (8 * self.message_bytes)

    # ------------------------------------------------------------------
    # wire sizes (bytes) — the paper quotes pk 1824 / sk 1792 / ct 2176
    # for level V; those figures use 14-bit packed polynomials.
    # ------------------------------------------------------------------

    @property
    def poly_bytes(self) -> int:
        """A full polynomial packed at 14 bits per coefficient."""
        return (14 * self.n + 7) // 8

    @property
    def public_key_bytes(self) -> int:
        return self.seed_bytes + self.poly_bytes

    @property
    def secret_key_bytes(self) -> int:
        return self.poly_bytes

    @property
    def ciphertext_bytes(self) -> int:
        return self.poly_bytes + (self.v_bits * self.n + 7) // 8

    def __str__(self) -> str:
        return self.name


NEWHOPE_512 = NewHopeParams(name="NewHope512", n=512, nist_level="I")
NEWHOPE_1024 = NewHopeParams(name="NewHope1024", n=1024, nist_level="V")
