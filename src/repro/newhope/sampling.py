"""NewHope polynomial generation: uniform GenA and binomial noise.

Both run on SHAKE-128 (:class:`repro.hashes.keccak.ShakePrng`), the
choice that makes [8]'s generation kernels faster than LAC's
SHA-256-based ones (Table II: GenA 42,050 vs. 154,746 cycles) at 10x
the accelerator area (Table III).
"""

from __future__ import annotations

import numpy as np

from repro.hashes.keccak import ShakePrng
from repro.metrics import OpCounter, ensure_counter
from repro.newhope.params import NewHopeParams


def gen_a(
    seed: bytes, params: NewHopeParams, counter: OpCounter | None = None
) -> np.ndarray:
    """Uniform public polynomial (already in the NTT domain, per spec).

    16-bit rejection sampling below q keeps the distribution exactly
    uniform; the acceptance rate is q / 2^14-aligned-bound = 75%.
    """
    counter = ensure_counter(counter)
    with counter.phase("gen_a"):
        counter.count("call")
        prng = ShakePrng(seed, counter=counter)
        out = np.empty(params.n, dtype=np.int64)
        filled = 0
        while filled < params.n:
            counter.count("loop")
            counter.count("load")
            counter.count("alu", 2)
            counter.count("branch")
            candidate = int.from_bytes(prng.read(2), "little") & 0x3FFF
            if candidate < params.q:
                out[filled] = candidate
                filled += 1
                counter.count("store")
    return out


def sample_binomial(
    prng: ShakePrng, params: NewHopeParams, counter: OpCounter | None = None
) -> np.ndarray:
    """A noise polynomial from the centered binomial psi_k.

    Each coefficient is HW(a) - HW(b) for independent k-bit strings a
    and b (k = 8: one byte each), reduced into Z_q.  The sampler's
    schedule is input-independent.
    """
    counter = ensure_counter(counter)
    n, k, q = params.n, params.k, params.q
    if k != 8:
        raise ValueError("the byte-wise sampler supports k = 8")
    with counter.phase("sample_poly"):
        counter.count("call")
        raw = np.frombuffer(prng.read(2 * n), dtype=np.uint8).astype(np.int64)
        # per coefficient: two loads, two popcounts (~12 ALU with the
        # SWAR bit tricks the reference code uses), subtract, reduce
        counter.count("loop", n)
        counter.count("load", 2 * n)
        counter.count("alu", 26 * n)
        counter.count("store", n)
        ones_a = np.array([bin(x).count("1") for x in raw[:n]], dtype=np.int64)
        ones_b = np.array([bin(x).count("1") for x in raw[n:]], dtype=np.int64)
    return np.mod(ones_a - ones_b, q)


def sample_noise_polys(
    seed: bytes,
    params: NewHopeParams,
    how_many: int,
    counter: OpCounter | None = None,
) -> list[np.ndarray]:
    """Derive independent binomial polynomials from one seed."""
    counter = ensure_counter(counter)
    root = ShakePrng(seed, counter=counter)
    polys = []
    for index in range(how_many):
        child = root.fork(b"noise" + index.to_bytes(2, "little"))
        polys.append(sample_binomial(child, params, counter))
    return polys
