"""Polynomial ring arithmetic for LAC.

All LAC arithmetic happens in R_n = Z_q[x] / (x^n + 1) with q = 251
(Sec. IV-A of the paper).  This subpackage provides:

* :class:`repro.ring.poly.PolyRing` — the ring, with golden-model
  schoolbook multiplication (Eq. 1), vectorized arithmetic, and both
  wrapped-convolution variants;
* :mod:`repro.ring.ternary` — ternary polynomials (coefficients in
  {-1, 0, 1}) and the addition/subtraction-only multiplication that
  the MUL TER hardware exploits;
* :mod:`repro.ring.splitting` — the two-level software polynomial
  splitting of Algorithms 1 and 2, which lets a length-512 multiplier
  serve the n = 1024 parameter sets;
* :mod:`repro.ring.cache` — the per-key forward-transform LRU that
  lets hosted-key traffic skip the forward FFT of long-lived operands
  (:class:`~repro.ring.cache.KeyTransformCache`).
"""

from repro.ring.cache import DEFAULT_CACHE_ENTRIES, KeyTransformCache, fingerprint
from repro.ring.poly import LAC_Q, PolyRing
from repro.ring.ternary import (
    TernaryPoly,
    ternary_mul,
    ternary_mul_truncated,
    ternary_to_zq,
    zq_to_centered,
)
from repro.ring.splitting import (
    UNIT_LEN,
    ring_multiply,
    software_mul512,
    split_mul_general,
    split_mul_high,
    split_mul_low,
)

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "KeyTransformCache",
    "LAC_Q",
    "PolyRing",
    "fingerprint",
    "TernaryPoly",
    "ternary_mul",
    "ternary_mul_truncated",
    "ternary_to_zq",
    "zq_to_centered",
    "split_mul_general",
    "split_mul_high",
    "split_mul_low",
    "ring_multiply",
    "software_mul512",
    "UNIT_LEN",
]
