"""Per-key forward-transform caching for the ring multiply hot path.

Hosted KEM keys serve thousands of requests, yet every batched
multiplication used to re-derive the forward FFT of the same key-side
operand: ``PolyRing.mul_many`` transformed the hosted secret ``s`` on
every decapsulation batch, and ``mul_many_multi`` re-transformed the
public ``a`` and ``b`` polynomials on every encapsulation batch.  The
paper's FPAU wins the same way in hardware — keep the transform-domain
representation of long-lived operands resident so a polynomial product
collapses to pointwise work plus one inverse transform.

:class:`KeyTransformCache` is the software version of that register
file: a bounded, thread-safe LRU keyed by ``(ring, fingerprint)``
holding the raw operand *and* its forward ``rfft``.  Keeping the raw
operand alongside the transform matters for exactness — the 0.25
integrality guard of :meth:`repro.ring.poly.PolyRing.mul_many` can
always fall back to the exact convolution path, so cached and cold
multiplications stay bit-identical.

Fingerprints are **content-derived** (BLAKE2b over domain-separated
byte strings), so a stale hit is impossible by construction: a
re-registered or rotated key hashes to a different fingerprint and can
never alias another key's transform.  Explicit
:meth:`~KeyTransformCache.invalidate` therefore only reclaims memory
early (on key removal); correctness never depends on it.

Memory cost per entry: the raw ``int64`` operand (8n bytes) plus the
``complex128`` transform (16(n+1) bytes) — about 24 KiB for n = 512
and 48 KiB for n = 1024.  A hosted key populates up to three entries
(``b``, the GenA expansion ``a``, and the secret ``s``), so the
default capacity of 256 entries holds roughly 85 hosted LAC-256 keys
in ~4 MiB.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable, Iterable
from typing import Any, NamedTuple

import numpy as np

from repro.ring.poly import PolyRing

#: Default LRU capacity (entries, not keys — a hosted key uses up to 3).
DEFAULT_CACHE_ENTRIES = 256


def fingerprint(*parts: bytes) -> bytes:
    """A 16-byte content fingerprint over length-prefixed parts.

    Length-prefixing keeps the encoding injective (``(b"ab", b"c")``
    and ``(b"a", b"bc")`` hash differently); callers add a domain
    label as the first part.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(len(part).to_bytes(4, "little"))
        h.update(part)
    return h.digest()


class CachedOperand(NamedTuple):
    """One cache lookup result: the raw operand, its transform, and
    whether the entry was already resident."""

    raw: np.ndarray
    transform: np.ndarray
    hit: bool


class KeyTransformCache:
    """A bounded, thread-safe LRU of per-key ring-operand transforms.

    ``capacity`` bounds the entry count; the least recently used entry
    is evicted beyond it.  Entries are keyed by the owning ring's
    ``(n, q, negacyclic)`` triple plus a caller-supplied content
    fingerprint, so one cache can serve every parameter set at once.
    All returned arrays are marked read-only — they are shared across
    batches and threads.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_ENTRIES) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple[int, int, bool, bytes], tuple[np.ndarray, np.ndarray]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _key(ring: PolyRing, fp: bytes) -> tuple[int, int, bool, bytes]:
        return (ring.n, ring.q, ring.negacyclic, fp)

    def operand(
        self,
        ring: PolyRing,
        fp: bytes,
        produce: Callable[[], np.ndarray],
    ) -> CachedOperand:
        """The cached ``(raw, transform)`` pair for a fingerprint.

        On a miss, ``produce()`` supplies the raw operand (lazily — a
        hit never materializes it, which is what lets the encaps path
        skip the GenA expansion entirely) and its forward transform is
        computed once and stored.
        """
        key = self._key(ring, fp)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return CachedOperand(entry[0], entry[1], True)
            self.misses += 1
        # produce + transform outside the lock: the FFT is the expensive
        # part and must not serialize concurrent batches
        raw = np.asarray(produce(), dtype=np.int64).copy()
        transform = ring.forward_transform(raw)
        raw.setflags(write=False)
        transform.setflags(write=False)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # a racing batch landed first; keep one object so
                # repeated hits share memory
                self._entries.move_to_end(key)
                return CachedOperand(existing[0], existing[1], False)
            self._entries[key] = (raw, transform)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return CachedOperand(raw, transform, False)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def invalidate(self, fps: Iterable[bytes]) -> int:
        """Drop every entry (across rings) for the given fingerprints.

        Returns the number of entries removed.  Purely a memory
        reclaim: content-derived fingerprints already make stale hits
        impossible.
        """
        wanted = set(fps)
        with self._lock:
            doomed = [key for key in self._entries if key[3] in wanted]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> tuple[int, int, int]:
        """``(hits, misses, evictions)`` — for cheap before/after deltas."""
        with self._lock:
            return (self.hits, self.misses, self.evictions)

    def stats(self) -> dict[str, Any]:
        """Counters for metrics/INFO export."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }


__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "CachedOperand",
    "KeyTransformCache",
    "fingerprint",
]
