"""Karatsuba polynomial multiplication (the paper's future-work note).

Sec. IV-A observes that Karatsuba's identity would reduce the four
sub-multiplications of Eq. (2) to three — but only for *general x
general* products: the sum a^l + a^h of two ternary polynomials has
coefficients in {-2..2}, so the ternary MUL TER data path (adders and
subtractors only) can no longer serve, and the hardware would need
real multipliers.  The paper therefore leaves Karatsuba as future
work.

This module supplies the machinery to quantify that trade:

* :func:`karatsuba_full` — recursive Karatsuba over Z_q with operation
  counting (the general multiplier a Karatsuba split would need);
* :func:`karatsuba_ring_mul` — the negacyclic product via Karatsuba;
* :func:`base_multiplications` — the D&C recurrence 3^levels, vs. the
  4^levels of the paper's splitting.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import OpCounter, ensure_counter
from repro.ring.poly import LAC_Q, PolyRing

#: Below this size the recursion falls back to schoolbook.
DEFAULT_THRESHOLD = 32


def _schoolbook_full(
    a: np.ndarray, b: np.ndarray, q: int, counter: OpCounter
) -> np.ndarray:
    """Plain product (length 2n-1) with general-coefficient costs.

    Unlike the ternary schedule, every partial product is a real
    integer multiplication plus a reduction.
    """
    n = a.size
    counter.count("loop", n * n)
    counter.count("load", 2 * n * n)
    counter.count("mul", n * n)
    counter.count("alu", n * n)
    counter.count("modq", n * n)
    counter.count("store", n * n)
    return np.mod(np.convolve(a, b), q)


def karatsuba_full(
    a: np.ndarray,
    b: np.ndarray,
    q: int = LAC_Q,
    counter: OpCounter | None = None,
    threshold: int = DEFAULT_THRESHOLD,
) -> np.ndarray:
    """The unreduced product a*b (length 2n-1) by recursive Karatsuba.

    c = a^l b^l + ((a^l + a^h)(b^l + b^h) - a^l b^l - a^h b^h) x^{n/2}
        + a^h b^h x^n
    """
    counter = ensure_counter(counter)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.size != b.size:
        raise ValueError("operands must have equal length")
    n = a.size
    if n <= threshold or n % 2:
        return _schoolbook_full(a, b, q, counter)

    half = n // 2
    a_lo, a_hi = a[:half], a[half:]
    b_lo, b_hi = b[:half], b[half:]

    # three half-size products instead of four
    low = karatsuba_full(a_lo, b_lo, q, counter, threshold)
    high = karatsuba_full(a_hi, b_hi, q, counter, threshold)
    counter.count("loop", 2 * half)
    counter.count("alu", 2 * half)
    counter.count("modq", 2 * half)
    counter.count("load", 4 * half)
    counter.count("store", 2 * half)
    cross = karatsuba_full(
        np.mod(a_lo + a_hi, q), np.mod(b_lo + b_hi, q), q, counter, threshold
    )

    middle = np.mod(cross - low - high, q)
    counter.count("loop", middle.size)
    counter.count("alu", 2 * middle.size)
    counter.count("modq", middle.size)
    counter.count("load", 3 * middle.size)
    counter.count("store", middle.size)

    out = np.zeros(2 * n - 1, dtype=np.int64)
    out[: low.size] += low
    out[half : half + middle.size] += middle
    out[n : n + high.size] += high
    counter.count("loop", 2 * n)
    counter.count("alu", 2 * n)
    counter.count("modq", 2 * n)
    counter.count("load", 4 * n)
    counter.count("store", 2 * n)
    return np.mod(out, q)


def karatsuba_ring_mul(
    ring: PolyRing,
    a: np.ndarray,
    b: np.ndarray,
    counter: OpCounter | None = None,
    threshold: int = DEFAULT_THRESHOLD,
) -> np.ndarray:
    """Reduced ring product via Karatsuba + wrap-around."""
    counter = ensure_counter(counter)
    full = karatsuba_full(a, b, ring.q, counter, threshold)
    counter.count("loop", ring.n)
    counter.count("alu", ring.n)
    counter.count("modq", ring.n)
    counter.count("load", 2 * ring.n)
    counter.count("store", ring.n)
    return ring.reduce_full(full)


def base_multiplications(n: int, threshold: int = DEFAULT_THRESHOLD) -> int:
    """Coefficient multiplications performed by the recursion.

    Karatsuba's 3-way recurrence vs. the 4-way of plain splitting:
    the quantity the paper's future-work note is about.
    """
    if n <= threshold or n % 2:
        return n * n
    return 3 * base_multiplications(n // 2, threshold)
