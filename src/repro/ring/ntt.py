"""Number Theoretic Transform over Z_q[x]/(x^n + 1), q = 12289.

LAC deliberately avoids the NTT (q = 251 admits no suitable roots of
unity; ternary secrets make schoolbook addition-only multiplication
attractive).  The NewHope baseline of [8], which the paper compares
against in Tables II/III, is built entirely on the NTT — so the
reproduction needs one.

Standard negacyclic NTT: with psi a primitive 2n-th root of unity and
omega = psi^2, the transform of the psi-twisted input diagonalizes
multiplication modulo x^n + 1:

    c = INTT( NTT(a) * NTT(b) )    (pointwise product)

The implementation is an iterative Cooley-Tukey butterfly network with
numpy-vectorized stages; :class:`NttContext` precomputes the twiddle
tables once per (n, q).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: NewHope's modulus: the smallest prime with 2^14 | q - 1.
NEWHOPE_Q = 12289


def _is_probable_prime(n: int) -> bool:
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_primitive_2n_root(n: int, q: int) -> int:
    """The smallest primitive 2n-th root of unity modulo q."""
    if (q - 1) % (2 * n):
        raise ValueError(f"q-1 = {q - 1} is not divisible by 2n = {2 * n}")
    if not _is_probable_prime(q):
        raise ValueError(f"{q} is not prime")
    exponent = (q - 1) // (2 * n)
    for candidate in range(2, q):
        root = pow(candidate, exponent, q)
        # primitive iff root^n = -1 (order exactly 2n)
        if pow(root, n, q) == q - 1:
            return root
    raise ValueError("no primitive root found")  # pragma: no cover


def _bit_reverse_indices(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        reversed_indices |= ((indices >> b) & 1) << (bits - 1 - b)
    return reversed_indices


class NttContext:
    """Precomputed tables for the negacyclic NTT of size n modulo q."""

    def __init__(self, n: int, q: int = NEWHOPE_Q):
        if n & (n - 1) or n < 2:
            raise ValueError("NTT size must be a power of two >= 2")
        self.n = n
        self.q = q
        self.psi = find_primitive_2n_root(n, q)
        self.omega = self.psi * self.psi % q
        self.psi_powers = self._powers(self.psi)
        self.psi_inv_powers = self._powers(pow(self.psi, q - 2, q))
        self.n_inv = pow(n, q - 2, q)
        self._bitrev = _bit_reverse_indices(n)

    def _powers(self, base: int) -> np.ndarray:
        out = np.empty(self.n, dtype=np.int64)
        value = 1
        for i in range(self.n):
            out[i] = value
            value = value * base % self.q
        return out

    # ------------------------------------------------------------------

    def _transform(self, values: np.ndarray, root: int) -> np.ndarray:
        """Iterative Cooley-Tukey butterflies (vectorized per stage)."""
        n, q = self.n, self.q
        a = values[self._bitrev].astype(np.int64)
        length = 2
        while length <= n:
            half = length // 2
            stage_root = pow(root, n // length, q)
            twiddles = np.empty(half, dtype=np.int64)
            w = 1
            for j in range(half):
                twiddles[j] = w
                w = w * stage_root % q
            blocks = a.reshape(n // length, length)
            upper = blocks[:, half:] * twiddles % q
            lower = blocks[:, :half].copy()
            blocks[:, :half] = (lower + upper) % q
            blocks[:, half:] = (lower - upper) % q
            a = blocks.reshape(n)
            length *= 2
        return a

    def forward(self, poly: np.ndarray) -> np.ndarray:
        """Negacyclic forward transform of a coefficient vector."""
        poly = np.mod(np.asarray(poly, dtype=np.int64), self.q)
        if poly.size != self.n:
            raise ValueError(f"expected {self.n} coefficients")
        twisted = poly * self.psi_powers % self.q
        return self._transform(twisted, self.omega)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse transform back to (psi-untwisted) coefficients."""
        values = np.asarray(values, dtype=np.int64)
        if values.size != self.n:
            raise ValueError(f"expected {self.n} values")
        omega_inv = pow(self.omega, self.q - 2, self.q)
        untransformed = self._transform(values, omega_inv)
        return untransformed * self.n_inv % self.q * self.psi_inv_powers % self.q

    def pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise product in the transform domain."""
        return np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64) % self.q

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full negacyclic product via NTT -> pointwise -> INTT."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))

    # ------------------------------------------------------------------

    @property
    def butterflies_per_transform(self) -> int:
        """(n/2) log2(n) butterfly operations per transform."""
        return (self.n // 2) * (self.n.bit_length() - 1)

    def __repr__(self) -> str:
        return f"NttContext(n={self.n}, q={self.q}, psi={self.psi})"


@lru_cache(maxsize=None)
def get_context(n: int, q: int = NEWHOPE_Q) -> NttContext:
    """Shared, cached NTT context."""
    return NttContext(n, q)
