"""The coefficient ring R_n = Z_q[x] / (x^n ± 1), q = 251.

Polynomials are plain 1-D numpy arrays of dtype ``int64`` with values
in [0, q).  The class methods keep results reduced.  The schoolbook
multiplication implements Eq. (1) of the paper directly and serves as
the golden model against which the ternary multiplier, the splitting
algorithms, and the MUL TER hardware model are all verified.
"""

from __future__ import annotations

import numpy as np

#: LAC's coefficient modulus (a single byte, prime).
LAC_Q = 251


class PolyRing:
    """Z_q[x] / (x^n - wrap), where wrap is +1 (positive convolution,
    i.e. reduction by x^n - 1) or -1 (negative convolution, x^n + 1).

    LAC uses the negative wrapped convolution; the positive variant is
    needed because the MUL TER hardware supports both (Fig. 2) and the
    splitting algorithms rely on wrap-free products of padded inputs.
    """

    def __init__(self, n: int, q: int = LAC_Q, negacyclic: bool = True):
        if n < 1:
            raise ValueError("ring degree must be positive")
        if q < 2:
            raise ValueError("modulus must be >= 2")
        self.n = n
        self.q = q
        self.negacyclic = negacyclic

    # ------------------------------------------------------------------
    # construction / validation
    # ------------------------------------------------------------------

    def zero(self) -> np.ndarray:
        """The zero element."""
        return np.zeros(self.n, dtype=np.int64)

    def element(self, coeffs) -> np.ndarray:
        """Coerce and reduce an arbitrary coefficient sequence."""
        array = np.asarray(coeffs, dtype=np.int64)
        if array.ndim != 1 or array.size != self.n:
            raise ValueError(f"expected {self.n} coefficients, got shape {array.shape}")
        return np.mod(array, self.q)

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random ring element (test/benchmark helper)."""
        return rng.integers(0, self.q, self.n, dtype=np.int64)

    def is_element(self, a: np.ndarray) -> bool:
        """True when ``a`` is a reduced coefficient vector of this ring."""
        a = np.asarray(a)
        return a.ndim == 1 and a.size == self.n and bool(
            np.all((0 <= a) & (a < self.q))
        )

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise addition mod q."""
        return np.mod(a + b, self.q)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise subtraction mod q."""
        return np.mod(a - b, self.q)

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Additive inverse mod q."""
        return np.mod(-a, self.q)

    def mul_schoolbook(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Direct evaluation of Eq. (1): the golden-model multiplication.

        c_i = sum_{j<=i} a_j b_{i-j}  -/+  sum_{j>i} a_j b_{n+i-j}  (mod q)

        with the sign of the wrap-around term set by the convolution
        variant.
        """
        n, q = self.n, self.q
        if a.size != n or b.size != n:
            raise ValueError("operands must be full-length ring elements")
        wrap_sign = -1 if self.negacyclic else 1
        out = np.zeros(n, dtype=np.int64)
        for i in range(n):
            low = int(np.dot(a[: i + 1], b[i::-1]))
            high = int(np.dot(a[i + 1 :], b[n - 1 : i : -1])) if i + 1 < n else 0
            out[i] = (low + wrap_sign * high) % q
        return out

    def mul_full(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The unreduced product (length 2n-1), before any wrap-around."""
        return np.mod(np.convolve(a, b), self.q)

    def reduce_full(self, product: np.ndarray) -> np.ndarray:
        """Reduce an unreduced product (length <= 2n-1) by x^n -/+ 1."""
        n, q = self.n, self.q
        out = np.zeros(n, dtype=np.int64)
        out[: min(n, product.size)] = product[:n]
        if product.size > n:
            tail = product[n:]
            sign = -1 if self.negacyclic else 1
            out[: tail.size] += sign * tail
        return np.mod(out, q)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fast reduced multiplication (convolve + wrap), vectorized."""
        return self.reduce_full(np.convolve(a, b))

    def forward_transform(self, operand: np.ndarray) -> np.ndarray:
        """The reusable forward half of :meth:`mul_many`: ``rfft`` at 2n.

        Long-lived operands (hosted public/secret key polynomials) can
        be transformed once and the result passed back through the
        ``a_transform=``/``b_transform=`` hooks, collapsing every later
        product against them to pointwise multiply + inverse transform
        (see :mod:`repro.ring.cache`).  The transform preserves the
        operand's dimensionality, so it broadcasts exactly like the
        operand itself would.
        """
        operand = np.asarray(operand, dtype=np.int64)
        if operand.shape[-1] != self.n:
            raise ValueError("operands must be full-length ring elements")
        return np.fft.rfft(operand, 2 * self.n, axis=-1)

    def mul_many(
        self,
        stacked: np.ndarray,
        b: np.ndarray,
        a_transform: np.ndarray | None = None,
        b_transform: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduced products of a whole stack of ring elements at once.

        ``stacked`` is a 2-D array whose rows are ring elements (values
        may be signed, e.g. ternary coefficients in {-1, 0, 1}; the
        result is always reduced into [0, q)).  ``b`` is either a single
        ring element applied to every row or a matching 2-D stack for
        row-wise products.  Either side may also have a single row that
        broadcasts against the other.

        The products run as one batched FFT of length 2n (negacyclic or
        cyclic wrap applied afterwards).  ``a_transform``/``b_transform``
        optionally supply a precomputed :meth:`forward_transform` of the
        corresponding operand (the per-key caching hook); the raw
        operands are still required so the exactness fallback below
        never depends on the cache.  Float rounding is verified against
        a 0.25 integrality margin — far above the error floor for
        q = 251 operands — and the method falls back to the exact
        per-row ``np.convolve`` path if the margin is ever violated, so
        results are always bit-identical to :meth:`mul`.
        """
        n, q = self.n, self.q
        stacked = np.atleast_2d(np.asarray(stacked, dtype=np.int64))
        b = np.asarray(b, dtype=np.int64)
        if stacked.shape[-1] != n or b.shape[-1] != n:
            raise ValueError("operands must be full-length ring elements")
        if b.ndim not in (1, 2):
            raise ValueError("b must be one ring element or a stack of them")
        length = 2 * n
        fa = (
            np.fft.rfft(stacked, length, axis=-1)
            if a_transform is None
            else np.atleast_2d(a_transform)
        )
        fb = np.fft.rfft(b, length, axis=-1) if b_transform is None else b_transform
        full = np.fft.irfft(fa * fb, length, axis=-1)
        rounded = np.rint(full)
        if np.max(np.abs(full - rounded)) > 0.25:  # guard: exact fallback
            rows = np.broadcast_arrays(
                stacked, b if b.ndim == 2 else b[None, :]
            )
            return np.stack([self.mul(x, y) for x, y in zip(*rows)])
        full_int = rounded.astype(np.int64)
        sign = -1 if self.negacyclic else 1
        # linear convolution occupies 2n-1 slots; slot 2n-1 is zero, so
        # the wrap is a plain halves add/subtract
        return np.mod(full_int[..., :n] + sign * full_int[..., n:], q)

    def mul_many_multi(
        self,
        stacked: np.ndarray,
        operands: list[np.ndarray],
        operand_transforms: list[np.ndarray | None] | None = None,
    ) -> list[np.ndarray]:
        """Products of one stack against several operands, sharing the FFT.

        Equivalent to ``[self.mul_many(stacked, b) for b in operands]``
        but the (large) forward FFT of ``stacked`` is computed once and
        reused for every operand — the dominant cost when the stack is a
        whole batch and the operands are single ring elements (e.g. the
        KEM's ``s * a`` and ``s * b`` against the same secret stack).

        ``operand_transforms`` optionally carries a precomputed
        :meth:`forward_transform` per operand (``None`` entries are
        computed here) — the hook the per-key transform cache uses to
        skip re-transforming hosted key material every batch.
        """
        n, q = self.n, self.q
        stacked = np.atleast_2d(np.asarray(stacked, dtype=np.int64))
        if stacked.shape[-1] != n:
            raise ValueError("operands must be full-length ring elements")
        if operand_transforms is not None and len(operand_transforms) != len(operands):
            raise ValueError("one transform (or None) per operand")
        length = 2 * n
        fa = np.fft.rfft(stacked, length, axis=-1)
        sign = -1 if self.negacyclic else 1
        out = []
        for i, b in enumerate(operands):
            b = np.asarray(b, dtype=np.int64)
            if b.shape[-1] != n or b.ndim not in (1, 2):
                raise ValueError("operands must be full-length ring elements")
            fb = (
                operand_transforms[i]
                if operand_transforms is not None
                and operand_transforms[i] is not None
                else np.fft.rfft(b, length, axis=-1)
            )
            full = np.fft.irfft(fa * fb, length, axis=-1)
            rounded = np.rint(full)
            if np.max(np.abs(full - rounded)) > 0.25:  # guard: exact fallback
                out.append(self.mul_many(stacked, b))
                continue
            full_int = rounded.astype(np.int64)
            out.append(np.mod(full_int[..., :n] + sign * full_int[..., n:], q))
        return out

    def scalar_mul(self, a: np.ndarray, s: int) -> np.ndarray:
        """Multiply every coefficient by an integer scalar mod q."""
        return np.mod(a * s, self.q)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        wrap = "+1" if self.negacyclic else "-1"
        return f"PolyRing(Z_{self.q}[x]/(x^{self.n}{wrap}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolyRing)
            and (self.n, self.q, self.negacyclic)
            == (other.n, other.q, other.negacyclic)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.q, self.negacyclic))
