"""The coefficient ring R_n = Z_q[x] / (x^n ± 1), q = 251.

Polynomials are plain 1-D numpy arrays of dtype ``int64`` with values
in [0, q).  The class methods keep results reduced.  The schoolbook
multiplication implements Eq. (1) of the paper directly and serves as
the golden model against which the ternary multiplier, the splitting
algorithms, and the MUL TER hardware model are all verified.
"""

from __future__ import annotations

import numpy as np

#: LAC's coefficient modulus (a single byte, prime).
LAC_Q = 251


class PolyRing:
    """Z_q[x] / (x^n - wrap), where wrap is +1 (positive convolution,
    i.e. reduction by x^n - 1) or -1 (negative convolution, x^n + 1).

    LAC uses the negative wrapped convolution; the positive variant is
    needed because the MUL TER hardware supports both (Fig. 2) and the
    splitting algorithms rely on wrap-free products of padded inputs.
    """

    def __init__(self, n: int, q: int = LAC_Q, negacyclic: bool = True):
        if n < 1:
            raise ValueError("ring degree must be positive")
        if q < 2:
            raise ValueError("modulus must be >= 2")
        self.n = n
        self.q = q
        self.negacyclic = negacyclic

    # ------------------------------------------------------------------
    # construction / validation
    # ------------------------------------------------------------------

    def zero(self) -> np.ndarray:
        """The zero element."""
        return np.zeros(self.n, dtype=np.int64)

    def element(self, coeffs) -> np.ndarray:
        """Coerce and reduce an arbitrary coefficient sequence."""
        array = np.asarray(coeffs, dtype=np.int64)
        if array.ndim != 1 or array.size != self.n:
            raise ValueError(f"expected {self.n} coefficients, got shape {array.shape}")
        return np.mod(array, self.q)

    def random(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random ring element (test/benchmark helper)."""
        return rng.integers(0, self.q, self.n, dtype=np.int64)

    def is_element(self, a: np.ndarray) -> bool:
        """True when ``a`` is a reduced coefficient vector of this ring."""
        a = np.asarray(a)
        return a.ndim == 1 and a.size == self.n and bool(
            np.all((0 <= a) & (a < self.q))
        )

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise addition mod q."""
        return np.mod(a + b, self.q)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise subtraction mod q."""
        return np.mod(a - b, self.q)

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Additive inverse mod q."""
        return np.mod(-a, self.q)

    def mul_schoolbook(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Direct evaluation of Eq. (1): the golden-model multiplication.

        c_i = sum_{j<=i} a_j b_{i-j}  -/+  sum_{j>i} a_j b_{n+i-j}  (mod q)

        with the sign of the wrap-around term set by the convolution
        variant.
        """
        n, q = self.n, self.q
        if a.size != n or b.size != n:
            raise ValueError("operands must be full-length ring elements")
        wrap_sign = -1 if self.negacyclic else 1
        out = np.zeros(n, dtype=np.int64)
        for i in range(n):
            low = int(np.dot(a[: i + 1], b[i::-1]))
            high = int(np.dot(a[i + 1 :], b[n - 1 : i : -1])) if i + 1 < n else 0
            out[i] = (low + wrap_sign * high) % q
        return out

    def mul_full(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The unreduced product (length 2n-1), before any wrap-around."""
        return np.mod(np.convolve(a, b), self.q)

    def reduce_full(self, product: np.ndarray) -> np.ndarray:
        """Reduce an unreduced product (length <= 2n-1) by x^n -/+ 1."""
        n, q = self.n, self.q
        out = np.zeros(n, dtype=np.int64)
        out[: min(n, product.size)] = product[:n]
        if product.size > n:
            tail = product[n:]
            sign = -1 if self.negacyclic else 1
            out[: tail.size] += sign * tail
        return np.mod(out, q)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fast reduced multiplication (convolve + wrap), vectorized."""
        return self.reduce_full(np.convolve(a, b))

    def scalar_mul(self, a: np.ndarray, s: int) -> np.ndarray:
        """Multiply every coefficient by an integer scalar mod q."""
        return np.mod(a * s, self.q)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        wrap = "+1" if self.negacyclic else "-1"
        return f"PolyRing(Z_{self.q}[x]/(x^{self.n}{wrap}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PolyRing)
            and (self.n, self.q, self.negacyclic)
            == (other.n, other.q, other.negacyclic)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.q, self.negacyclic))
