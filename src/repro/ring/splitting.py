"""Software polynomial splitting (Algorithms 1 and 2 of the paper).

The MUL TER hardware unit has a fixed length of 512 coefficients.  To
reuse it for the n = 1024 parameter sets (LAC-192/LAC-256), the paper
splits each multiplication in two levels:

* **Algorithm 2** (``split_mul_low``) multiplies two length-512
  polynomials by splitting them into length-256 halves, zero-padding
  each half into the length-512 unit, and running the unit in
  *positive* convolution mode — the padded product has degree <= 510,
  so no wrap-around occurs and the unit returns the plain product.
  The four partial products are recombined into the (unreduced)
  length-1023 product.
* **Algorithm 1** (``split_mul_high``) splits the length-1024 operands
  into length-512 halves, feeds them through four instances of
  Algorithm 2, and recombines with the reduction by x^1024 + 1 folded
  in (coefficients at degree >= 1024 wrap around negatively).

Both functions are parameterized over the ``mul512`` primitive so the
same code path drives the software golden model, the cycle-annotated
reference, and the MUL TER hardware model.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.metrics import OpCounter, ensure_counter
from repro.ring.poly import LAC_Q, PolyRing
from repro.ring.ternary import TernaryPoly, ternary_mul

#: Signature of the length-512 multiplier primitive: takes a ternary
#: operand (int8, {-1,0,1}, length 512), a general operand (int64,
#: Z_q, length 512) and the convolution mode; returns 512 coefficients.
Mul512 = Callable[[np.ndarray, np.ndarray, bool], np.ndarray]

#: The unit length the paper's accelerator fixes.
UNIT_LEN = 512


def software_mul512(ternary: np.ndarray, general: np.ndarray, negacyclic: bool) -> np.ndarray:
    """Golden-model length-512 multiply (numpy convolution + wrap)."""
    ring = PolyRing(UNIT_LEN, LAC_Q, negacyclic=negacyclic)
    return ring.reduce_full(np.convolve(ternary.astype(np.int64), general))


def _pad_to_unit(half: np.ndarray, dtype) -> np.ndarray:
    out = np.zeros(UNIT_LEN, dtype=dtype)
    out[: half.size] = half
    return out


def split_mul_low(
    ternary: np.ndarray,
    general: np.ndarray,
    mul512: Mul512 = software_mul512,
    counter: OpCounter | None = None,
    q: int = LAC_Q,
) -> np.ndarray:
    """Algorithm 2: length-512 operands -> unreduced length-1024 product.

    ``ternary`` has 512 coefficients in {-1, 0, 1}; ``general`` has 512
    coefficients in Z_q.  Each length-256 half is zero-padded into the
    length-512 unit and multiplied in positive-convolution mode.
    """
    counter = ensure_counter(counter)
    if ternary.size != UNIT_LEN or general.size != UNIT_LEN:
        raise ValueError("split_mul_low expects length-512 operands")
    half = UNIT_LEN // 2
    t_lo, t_hi = ternary[:half], ternary[half:]
    g_lo, g_hi = general[:half], general[half:]

    def unit(t_half: np.ndarray, g_half: np.ndarray) -> np.ndarray:
        return mul512(
            _pad_to_unit(t_half, ternary.dtype),
            _pad_to_unit(g_half, np.int64),
            False,  # positive convolution: pad leaves the product wrap-free
        )

    c_ll = unit(t_lo, g_lo)
    c_hh = unit(t_hi, g_hi)
    c_lh = unit(t_lo, g_hi)
    c_hl = unit(t_hi, g_lo)

    out = np.zeros(2 * UNIT_LEN, dtype=np.int64)
    with counter.phase("split_recombine_low"):
        # Algorithm 2, lines 3-7: three length-512 accumulation loops
        counter.count("loop", UNIT_LEN)
        counter.count("load", 5 * UNIT_LEN)
        counter.count("alu", 3 * UNIT_LEN)
        counter.count("modq", 2 * UNIT_LEN)
        counter.count("store", 3 * UNIT_LEN)
        out[:UNIT_LEN] = c_ll
        out[half : half + UNIT_LEN] = np.mod(
            out[half : half + UNIT_LEN] + c_lh + c_hl, q
        )
        out[UNIT_LEN:] = np.mod(out[UNIT_LEN:] + c_hh, q)
    return out


def split_mul_high(
    ternary: TernaryPoly,
    general: np.ndarray,
    mul512: Mul512 = software_mul512,
    counter: OpCounter | None = None,
    q: int = LAC_Q,
) -> np.ndarray:
    """Algorithm 1: multiply in Z_q[x]/(x^1024 + 1) via a length-512 unit."""
    counter = ensure_counter(counter)
    n = 2 * UNIT_LEN
    if ternary.n != n or general.size != n:
        raise ValueError("split_mul_high expects length-1024 operands")
    t = ternary.coeffs
    t_lo, t_hi = t[:UNIT_LEN], t[UNIT_LEN:]
    g_lo, g_hi = general[:UNIT_LEN], general[UNIT_LEN:]

    c_ll = split_mul_low(t_lo, g_lo, mul512, counter, q)
    c_hh = split_mul_low(t_hi, g_hi, mul512, counter, q)
    c_lh = split_mul_low(t_lo, g_hi, mul512, counter, q)
    c_hl = split_mul_low(t_hi, g_lo, mul512, counter, q)

    out = np.zeros(n, dtype=np.int64)
    with counter.phase("split_recombine_high"):
        # Algorithm 1, lines 3-12
        counter.count("loop", 2 * n)
        counter.count("load", 6 * n)
        counter.count("alu", 4 * n)
        counter.count("modq", 2 * n)
        counter.count("store", 2 * n)
        # lines 3-6: c_i = c^ll_i - c^hh_i (x^1024 wraps negatively)
        out[:] = np.mod(c_ll[:n] - c_hh[:n], q)
        # lines 7-9: add the x^512 cross terms that stay in range
        out[UNIT_LEN:] = np.mod(out[UNIT_LEN:] + c_lh[:UNIT_LEN] + c_hl[:UNIT_LEN], q)
        # lines 10-12: cross terms at degree >= 1024 wrap negatively
        out[:UNIT_LEN] = np.mod(out[:UNIT_LEN] - c_lh[UNIT_LEN:] - c_hl[UNIT_LEN:], q)
    return out


class SupportsMul512(Protocol):
    """Anything exposing the length-512 multiplier interface."""

    def __call__(
        self, ternary: np.ndarray, general: np.ndarray, negacyclic: bool
    ) -> np.ndarray: ...


def split_mul_general(
    ternary: np.ndarray,
    general: np.ndarray,
    unit_len: int,
    mul_unit,
    counter: OpCounter | None = None,
    q: int = LAC_Q,
) -> np.ndarray:
    """Generalized splitting: multiply in Z_q[x]/(x^m + 1) on a
    length-``unit_len`` unit, for any power-of-two ratio m/unit_len.

    The paper's Algorithms 1/2 are the (m = 1024, L = 512) instance;
    this generalization (used by the MUL TER length ablation) splits
    both operands into pieces of length L/2 — the longest pieces whose
    wrap-free products fit the unit — computes the (2m/L)^2 piece
    products in positive-convolution mode, recombines them into the
    plain length-2m product, and folds by x^m + 1.

    ``mul_unit(ternary_padded, general_padded, negacyclic)`` is the
    unit primitive at length ``unit_len``.
    """
    counter = ensure_counter(counter)
    m = ternary.size
    if general.size != m:
        raise ValueError("operands must have equal length")
    if m == unit_len:
        return np.mod(mul_unit(ternary, general, True), q)
    if m < unit_len or m % unit_len:
        raise ValueError(
            f"operand length {m} must be a multiple of the unit length {unit_len}"
        )

    piece = unit_len // 2
    pieces = m // piece  # = 2m/L per operand

    def padded(vector: np.ndarray, index: int) -> np.ndarray:
        out = np.zeros(unit_len, dtype=vector.dtype)
        out[:piece] = vector[index * piece : (index + 1) * piece]
        return out

    # accumulate the plain product of the two length-m polynomials
    full = np.zeros(2 * m, dtype=np.int64)
    with counter.phase("split_general"):
        for i in range(pieces):
            t_piece = padded(ternary, i)
            for j in range(pieces):
                g_piece = padded(general, j)
                product = mul_unit(t_piece, g_piece, False)  # wrap-free
                base = (i + j) * piece
                full[base : base + unit_len] += product
                counter.count("loop", unit_len)
                counter.count("load", 2 * unit_len)
                counter.count("alu", unit_len)
                counter.count("modq", unit_len)
                counter.count("store", unit_len)
        full %= q
        # fold by x^m + 1
        out = np.mod(full[:m] - full[m:], q)
        counter.count("loop", m)
        counter.count("load", 2 * m)
        counter.count("alu", m)
        counter.count("modq", m)
        counter.count("store", m)
    return out


def ring_multiply(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    mul512: Mul512 | None = None,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Multiply using the accelerator-shaped data path for any LAC size.

    For n = 512 the unit is used directly in negative-convolution mode;
    for n = 1024 the two-level split of Algorithm 1 is applied.  With
    ``mul512=None`` the reference software schedule
    (:func:`repro.ring.ternary.ternary_mul`) runs instead — this is the
    "LAC ref." configuration of Table II.
    """
    if mul512 is None:
        return ternary_mul(ring, ternary, general, counter)
    if ring.n == UNIT_LEN:
        return np.mod(mul512(ternary.coeffs, general, ring.negacyclic), ring.q)
    if ring.n == 2 * UNIT_LEN:
        return split_mul_high(ternary, general, mul512, counter, ring.q)
    raise ValueError(f"unsupported ring size {ring.n} for the length-512 unit")
