"""Ternary polynomials and the addition-only multiplication of LAC.

LAC's secret and error polynomials have coefficients in {-1, 0, +1}
(Sec. IV-A), so multiplying a ternary polynomial with a general one
needs no integer multiplications at all — each partial product is an
addition, a subtraction, or a no-op.  This is the insight the MUL TER
hardware exploits, and :func:`ternary_mul` is its software equivalent
(and the reference implementation's inner loop, which dominates the
cycle counts of Table II's "Multiplication" column).
"""

from __future__ import annotations

import numpy as np

from repro.metrics import OpCounter, ensure_counter
from repro.ring.poly import LAC_Q, PolyRing


class TernaryPoly:
    """A polynomial with coefficients in {-1, 0, +1}.

    Stored as an ``int8`` array.  Provides conversions to the Z_q
    representation (-1 maps to q-1) and weight inspection.
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs):
        array = np.asarray(coeffs, dtype=np.int8)
        if array.ndim != 1:
            raise ValueError("ternary polynomial must be one-dimensional")
        if np.any((array < -1) | (array > 1)):
            raise ValueError("coefficients must lie in {-1, 0, 1}")
        self.coeffs = array

    @classmethod
    def from_zq(cls, coeffs: np.ndarray, q: int = LAC_Q) -> "TernaryPoly":
        """Interpret Z_q values {0, 1, q-1} as {0, +1, -1}."""
        array = np.asarray(coeffs, dtype=np.int64)
        out = np.zeros(array.size, dtype=np.int8)
        out[array == 1] = 1
        out[array == q - 1] = -1
        bad = ~np.isin(array, (0, 1, q - 1))
        if np.any(bad):
            raise ValueError("values are not a ternary polynomial mod q")
        return cls(out)

    @property
    def n(self) -> int:
        return self.coeffs.size

    @property
    def weight(self) -> int:
        """Number of nonzero coefficients (LAC fixes this by parameter h)."""
        return int(np.count_nonzero(self.coeffs))

    def to_zq(self, q: int = LAC_Q) -> np.ndarray:
        """The Z_q representation (-1 maps to q-1)."""
        return ternary_to_zq(self.coeffs, q)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TernaryPoly) and np.array_equal(
            self.coeffs, other.coeffs
        )

    def __repr__(self) -> str:
        return f"TernaryPoly(n={self.n}, weight={self.weight})"


def ternary_to_zq(coeffs: np.ndarray, q: int = LAC_Q) -> np.ndarray:
    """Map {-1, 0, 1} coefficients into Z_q (as int64)."""
    return np.mod(np.asarray(coeffs, dtype=np.int64), q)


def zq_to_centered(coeffs: np.ndarray, q: int = LAC_Q) -> np.ndarray:
    """Map Z_q values to the centered representation (-q/2, q/2]."""
    array = np.asarray(coeffs, dtype=np.int64)
    return np.where(array > q // 2, array - q, array)


def ternary_mul(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Multiply a ternary polynomial by a general one in the ring.

    This is the reference software schedule: for every coefficient
    ``t_j`` of the ternary operand, the general operand is rotated and
    conditionally added/subtracted into the accumulator.  The operation
    counts recorded here (one pass of n loads/branches per ternary
    coefficient) model the O(n^2) inner loop of the LAC reference code.
    """
    counter = ensure_counter(counter)
    n, q = ring.n, ring.q
    if ternary.n != n or general.size != n:
        raise ValueError("operands must match the ring size")
    wrap_sign = -1 if ring.negacyclic else 1

    acc = np.zeros(n, dtype=np.int64)
    with counter.phase("ternary_mul"):
        counter.count("call")
        for j in range(n):
            counter.count("loop")
            counter.count("load")
            counter.count("branch")
            t = int(ternary.coeffs[j])
            # each iteration touches all n accumulator slots: the
            # reference code's inner loop runs regardless of t so the
            # multiplication is weight-independent (constant-time).
            # Per slot: load acc + load b, add/sub with a branchless
            # conditional correction, store back.
            counter.count("loop", n)
            counter.count("load", 2 * n)
            counter.count("alu", 2 * n)
            counter.count("store", n)
            if t == 0:
                continue
            # x^j * general, reduced by x^n -/+ 1
            rotated = np.empty(n, dtype=np.int64)
            rotated[j:] = general[: n - j]
            rotated[:j] = wrap_sign * general[n - j :]
            acc += t * rotated
        acc = np.mod(acc, q)
    return acc


def ternary_mul_truncated(
    ring: PolyRing,
    ternary: TernaryPoly,
    general: np.ndarray,
    slots: int,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Multiplication computing only the first ``slots`` output coefficients.

    The LAC reference encryption never needs the full product b*s' —
    only the ``v_slots`` coefficients that carry the encoded message —
    so its inner loop runs slots*n instead of n*n iterations.  This is
    visible in Table II: the encapsulation totals are consistent with a
    truncated second multiplication, and this function charges exactly
    that reduced amount of work.
    """
    counter = ensure_counter(counter)
    n = ring.n
    if not 0 < slots <= n:
        raise ValueError(f"slots must be in 1..{n}")
    with counter.phase("ternary_mul_truncated"):
        counter.count("call")
        counter.count("loop", n)
        counter.count("load", n)
        counter.count("branch", n)
        counter.count("loop", n * slots)
        counter.count("load", 2 * n * slots)
        counter.count("alu", 2 * n * slots)
        counter.count("store", n * slots)
    return ternary_mul(ring, ternary, general)[:slots]
