"""RV32IM instruction-set simulator with the paper's PQ extension.

The paper integrates its accelerators into the execute stage of the
RISCY core (PULPino) and reaches them through four custom R-type
instructions on opcode 0x77 (Sec. V).  This subpackage provides the
equivalent substrate in simulation:

* :mod:`repro.riscv.encoding` — RV32I + M + PQ instruction encoding
  and decoding (bit-exact RISC-V formats);
* :mod:`repro.riscv.assembler` — a two-pass assembler (labels,
  ABI register names, common pseudo-instructions, data directives);
* :mod:`repro.riscv.cpu` — the instruction-set simulator with a
  RISCY-style cycle cost model (4-stage pipeline approximation);
* :mod:`repro.riscv.pq_alu` — the PQ-ALU: the four accelerator units
  behind ``pq.mul_ter``, ``pq.mul_chien``, ``pq.sha256``, ``pq.modq``,
  including the bit-level operand packing protocol of Sec. V.

Kernels assembled here execute with real cycle accounting, which is
how the analytical cost model of :mod:`repro.cosim` is validated.
"""

from repro.riscv.encoding import decode, encode, Instruction
from repro.riscv.assembler import Assembler, AssemblerError
from repro.riscv.compressed import decode_compressed, encode_compressed, is_compressed
from repro.riscv.cpu import Cpu, CpuError, ExecutionResult
from repro.riscv.disasm import disassemble, disassemble_word
from repro.riscv.memory import Memory
from repro.riscv.pq_alu import PqAlu
from repro.riscv.platform import CycleTimer, MmioMemory, Uart, make_platform
from repro.riscv.trace import Tracer
from repro.riscv.cost_model import RiscyCostModel

__all__ = [
    "Assembler",
    "AssemblerError",
    "Cpu",
    "CpuError",
    "ExecutionResult",
    "Instruction",
    "Memory",
    "MmioMemory",
    "PqAlu",
    "Tracer",
    "Uart",
    "CycleTimer",
    "make_platform",
    "RiscyCostModel",
    "decode",
    "decode_compressed",
    "disassemble",
    "disassemble_word",
    "encode",
    "encode_compressed",
    "is_compressed",
]
