"""A two-pass assembler for RV32IM + the PQ extension.

Supports the subset needed to write real benchmark kernels:

* all RV32IM instructions plus ``pq.mul_ter`` / ``pq.mul_chien`` /
  ``pq.sha256`` / ``pq.modq``;
* labels (``name:``), decimal/hex immediates, ABI and ``x``-register
  names;
* pseudo-instructions: ``nop``, ``mv``, ``li`` (12-bit or lui+addi
  pair), ``la``, ``j``, ``call``, ``ret``, ``beqz``, ``bnez``,
  ``bgt``, ``ble``, ``bgtu``, ``bleu``, ``not``, ``neg``, ``seqz``,
  ``snez``;
* data directives: ``.word``, ``.half``, ``.byte``, ``.space``,
  ``.align``, and ``.equ NAME, value`` constants;
* comments with ``#`` or ``//``.

The output is a flat image placed at a base address (PULPino-style
single address space), plus the symbol table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.riscv.encoding import Instruction, SPECS, encode

ABI_NAMES = {
    "zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
    "t0": 5, "t1": 6, "t2": 7,
    "s0": 8, "fp": 8, "s1": 9,
    "a0": 10, "a1": 11, "a2": 12, "a3": 13,
    "a4": 14, "a5": 15, "a6": 16, "a7": 17,
    "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "s8": 24, "s9": 25, "s10": 26, "s11": 27,
    "t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_LOADS = ("lb", "lh", "lw", "lbu", "lhu")
_STORES = ("sb", "sh", "sw")


class AssemblerError(ValueError):
    """Syntax or resolution error, annotated with the source line."""


@dataclass
class Program:
    """An assembled image."""

    base: int
    image: bytes
    symbols: dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.image)

    def entry(self, label: str = "_start") -> int:
        """Address of an entry label (defaults to the image base)."""
        return self.symbols.get(label, self.base)


@dataclass
class _Item:
    """One statement after pass 1 (an instruction or data blob)."""

    kind: str  # "instr" or "data"
    address: int
    line_no: int
    mnemonic: str = ""
    operands: list[str] = field(default_factory=list)
    blob: bytes = b""


class Assembler:
    """Two-pass assembler."""

    def __init__(self, base: int = 0):
        self.base = base

    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble source text into a flat image plus symbol table."""
        items, symbols = self._pass1(source)
        image = bytearray()
        top = self.base
        for item in items:
            top = max(top, item.address + (4 if item.kind == "instr" else len(item.blob)))
        image = bytearray(top - self.base)
        for item in items:
            offset = item.address - self.base
            if item.kind == "data":
                image[offset : offset + len(item.blob)] = item.blob
                continue
            try:
                instr = self._build(item, symbols)
                word = encode(instr)
            except AssemblerError:
                raise
            except ValueError as exc:
                raise AssemblerError(f"line {item.line_no}: {exc}") from exc
            image[offset : offset + 4] = word.to_bytes(4, "little")
        return Program(self.base, bytes(image), symbols)

    # ------------------------------------------------------------------
    # pass 1: layout and symbol collection
    # ------------------------------------------------------------------

    def _pass1(self, source: str) -> tuple[list[_Item], dict[str, int]]:
        items: list[_Item] = []
        symbols: dict[str, int] = {}
        equs: dict[str, int] = {}
        pc = self.base
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#")[0].split("//")[0].strip()
            while line:
                label, sep, rest = line.partition(":")
                if sep and " " not in label and "," not in label and label:
                    if label in symbols:
                        raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                    symbols[label] = pc
                    line = rest.strip()
                    continue
                break
            if not line:
                continue

            parts = line.split(None, 1)
            head = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""

            if head == ".equ":
                name, _, value = (x.strip() for x in rest.partition(","))
                equs[name] = self._int(value, line_no, equs)
                continue
            if head == ".align":
                alignment = 1 << self._int(rest, line_no, equs)
                padding = (-pc) % alignment
                if padding:
                    items.append(_Item("data", pc, line_no, blob=bytes(padding)))
                    pc += padding
                continue
            if head == ".space":
                size = self._int(rest, line_no, equs)
                items.append(_Item("data", pc, line_no, blob=bytes(size)))
                pc += size
                continue
            if head in (".word", ".half", ".byte"):
                width = {".word": 4, ".half": 2, ".byte": 1}[head]
                blob = bytearray()
                for token in rest.split(","):
                    value = self._int(token.strip(), line_no, equs)
                    blob += (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
                items.append(_Item("data", pc, line_no, blob=bytes(blob)))
                pc += len(blob)
                continue
            if head.startswith("."):
                continue  # .text/.data/.globl are accepted and ignored

            operands = [op.strip() for op in rest.split(",")] if rest else []
            for expanded in self._expand_pseudo(head, operands, line_no, equs):
                items.append(
                    _Item("instr", pc, line_no, mnemonic=expanded[0], operands=expanded[1])
                )
                pc += 4
        # fold .equ constants into the symbol table (labels win)
        for name, value in equs.items():
            symbols.setdefault(name, value)
        return items, symbols

    # ------------------------------------------------------------------
    # pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _expand_pseudo(
        self, head: str, ops: list[str], line_no: int, equs: dict[str, int]
    ) -> list[tuple[str, list[str]]]:
        def err(msg: str) -> AssemblerError:
            return AssemblerError(f"line {line_no}: {msg}")

        if head == "nop":
            return [("addi", ["x0", "x0", "0"])]
        if head == "mv":
            if len(ops) != 2:
                raise err("mv needs rd, rs")
            return [("addi", [ops[0], ops[1], "0"])]
        if head == "not":
            return [("xori", [ops[0], ops[1], "-1"])]
        if head == "neg":
            return [("sub", [ops[0], "x0", ops[1]])]
        if head == "seqz":
            return [("sltiu", [ops[0], ops[1], "1"])]
        if head == "snez":
            return [("sltu", [ops[0], "x0", ops[1]])]
        if head == "rdcycle":
            return [("csrrs", [ops[0], "x0", "0xC00"])]
        if head == "rdinstret":
            return [("csrrs", [ops[0], "x0", "0xC02"])]
        if head in ("li", "la"):
            if len(ops) != 2:
                raise err(f"{head} needs rd, value")
            try:
                value = self._int(ops[1], line_no, equs)
            except AssemblerError:
                if head == "la":
                    # label address resolved in pass 2 via %hi/%lo markers
                    return [
                        ("lui", [ops[0], f"%hi({ops[1]})"]),
                        ("addi", [ops[0], ops[0], f"%lo({ops[1]})"]),
                    ]
                raise
            if -2048 <= value <= 2047:
                return [("addi", [ops[0], "x0", str(value)])]
            hi = ((value + 0x800) >> 12) & 0xFFFFF
            lo = value - ((hi << 12) if hi < 0x80000 else ((hi - 0x100000) << 12))
            lo = ((lo + 0x800) % 0x1000) - 0x800
            return [
                ("lui", [ops[0], str(hi)]),
                ("addi", [ops[0], ops[0], str(lo)]),
            ]
        if head == "j":
            return [("jal", ["x0"] + ops)]
        if head == "call":
            return [("jal", ["ra"] + ops)]
        if head == "ret":
            return [("jalr", ["x0", "ra", "0"])]
        if head == "beqz":
            return [("beq", [ops[0], "x0", ops[1]])]
        if head == "bnez":
            return [("bne", [ops[0], "x0", ops[1]])]
        if head == "bgt":
            return [("blt", [ops[1], ops[0], ops[2]])]
        if head == "ble":
            return [("bge", [ops[1], ops[0], ops[2]])]
        if head == "bgtu":
            return [("bltu", [ops[1], ops[0], ops[2]])]
        if head == "bleu":
            return [("bgeu", [ops[1], ops[0], ops[2]])]
        if head == "jal" and len(ops) == 1:
            return [("jal", ["ra"] + ops)]
        if head == "jr":
            return [("jalr", ["x0", ops[0], "0"])]
        if head not in SPECS:
            raise err(f"unknown instruction {head!r}")
        return [(head, ops)]

    # ------------------------------------------------------------------
    # pass 2: operand resolution and encoding
    # ------------------------------------------------------------------

    def _build(self, item: _Item, symbols: dict[str, int]) -> Instruction:
        spec = SPECS[item.mnemonic]
        ops = item.operands
        line_no = item.line_no

        def err(msg: str) -> AssemblerError:
            return AssemblerError(f"line {line_no}: {msg}")

        def reg(token: str) -> int:
            name = token.lower()
            if name in ABI_NAMES:
                return ABI_NAMES[name]
            if name.startswith("x") and name[1:].isdigit():
                index = int(name[1:])
                if 0 <= index < 32:
                    return index
            raise err(f"bad register {token!r}")

        def imm(token: str, pc_relative: bool = False) -> int:
            token = token.strip()
            if token.startswith("%hi(") and token.endswith(")"):
                value = self._resolve(token[4:-1], symbols, line_no)
                return ((value + 0x800) >> 12) & 0xFFFFF
            if token.startswith("%lo(") and token.endswith(")"):
                value = self._resolve(token[4:-1], symbols, line_no)
                return ((value & 0xFFF) ^ 0x800) - 0x800
            value = self._resolve(token, symbols, line_no)
            if pc_relative and token in symbols:
                return value - item.address
            return value

        m = item.mnemonic
        if m in ("ecall", "ebreak", "fence"):
            return Instruction(m)
        if spec.fmt == "R":
            if m.startswith("pq.") and len(ops) == 2:
                ops = ops + ["x0"]  # rs2 defaults to zero for pure forms
            if len(ops) != 3:
                raise err(f"{m} needs rd, rs1, rs2")
            return Instruction(m, rd=reg(ops[0]), rs1=reg(ops[1]), rs2=reg(ops[2]))
        if spec.fmt == "shift":
            return Instruction(m, rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
        if m in _LOADS or m == "jalr":
            if len(ops) == 2 and "(" in ops[1]:
                offset, _, base = ops[1].partition("(")
                return Instruction(
                    m, rd=reg(ops[0]), rs1=reg(base.rstrip(")")),
                    imm=imm(offset or "0"),
                )
            if m == "jalr" and len(ops) == 3:
                return Instruction(m, rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
            raise err(f"{m} needs rd, offset(base)")
        if spec.fmt == "I":
            if len(ops) != 3:
                raise err(f"{m} needs rd, rs1, imm")
            return Instruction(m, rd=reg(ops[0]), rs1=reg(ops[1]), imm=imm(ops[2]))
        if spec.fmt == "S":
            if len(ops) != 2 or "(" not in ops[1]:
                raise err(f"{m} needs rs2, offset(base)")
            offset, _, base = ops[1].partition("(")
            return Instruction(
                m, rs1=reg(base.rstrip(")")), rs2=reg(ops[0]), imm=imm(offset or "0")
            )
        if spec.fmt == "B":
            if len(ops) != 3:
                raise err(f"{m} needs rs1, rs2, target")
            return Instruction(
                m, rs1=reg(ops[0]), rs2=reg(ops[1]), imm=imm(ops[2], pc_relative=True)
            )
        if spec.fmt == "U":
            return Instruction(m, rd=reg(ops[0]), imm=imm(ops[1]))
        if spec.fmt == "J":
            if len(ops) != 2:
                raise err(f"{m} needs rd, target")
            return Instruction(m, rd=reg(ops[0]), imm=imm(ops[1], pc_relative=True))
        raise err(f"unhandled format for {m}")  # pragma: no cover

    # ------------------------------------------------------------------

    def _resolve(self, token: str, symbols: dict[str, int], line_no: int) -> int:
        token = token.strip()
        if token in symbols:
            return symbols[token]
        return self._int(token, line_no, symbols)

    @staticmethod
    def _int(token: str, line_no: int, names: dict[str, int]) -> int:
        token = token.strip()
        if token in names:
            return names[token]
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblerError(
                f"line {line_no}: cannot resolve {token!r}"
            ) from exc
