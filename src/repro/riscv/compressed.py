"""RV32C: the compressed instruction extension.

The paper's RISCY core "fully supports the RISC-V base integer
instruction set (I), the compressed instruction set (C), and the
multiplication instruction set (M)" (Sec. V).  This module implements
the C extension for the ISS: every 16-bit instruction decodes to its
32-bit equivalent :class:`~repro.riscv.encoding.Instruction` (the
standard expansion), and :func:`encode_compressed` produces the RVC
encoding for instructions that have one.

The CPU fetches 16 bits first; if the two low bits are ``11`` the
parcel is the start of a 32-bit instruction, otherwise it executes the
compressed expansion and advances the PC by 2.
"""

from __future__ import annotations

from repro.riscv.encoding import EncodingError, Instruction, sign_extend

#: Registers addressable by the 3-bit rd'/rs' fields: x8..x15.
_CREG_BASE = 8


def _creg(bits: int) -> int:
    return _CREG_BASE + (bits & 0x7)


def is_compressed(parcel: int) -> bool:
    """True when the 16-bit parcel is an RVC instruction."""
    return (parcel & 0x3) != 0x3


def decode_compressed(parcel: int) -> Instruction:
    """Expand a 16-bit RVC instruction to its 32-bit equivalent."""
    parcel &= 0xFFFF
    quadrant = parcel & 0x3
    funct3 = (parcel >> 13) & 0x7

    if quadrant == 0b00:
        return _decode_q0(parcel, funct3)
    if quadrant == 0b01:
        return _decode_q1(parcel, funct3)
    if quadrant == 0b10:
        return _decode_q2(parcel, funct3)
    raise EncodingError(f"parcel {parcel:#06x} is not compressed")


def _decode_q0(parcel: int, funct3: int) -> Instruction:
    if parcel == 0:
        raise EncodingError("the all-zero parcel is defined illegal")
    if funct3 == 0b000:  # c.addi4spn rd', sp, nzuimm
        imm = (
            (((parcel >> 11) & 0x3) << 4)
            | (((parcel >> 7) & 0xF) << 6)
            | (((parcel >> 6) & 0x1) << 2)
            | (((parcel >> 5) & 0x1) << 3)
        )
        if imm == 0:
            raise EncodingError("c.addi4spn with zero immediate is reserved")
        return Instruction("addi", rd=_creg(parcel >> 2), rs1=2, imm=imm)
    if funct3 == 0b010:  # c.lw rd', offset(rs1')
        imm = (
            (((parcel >> 10) & 0x7) << 3)
            | (((parcel >> 6) & 0x1) << 2)
            | (((parcel >> 5) & 0x1) << 6)
        )
        return Instruction("lw", rd=_creg(parcel >> 2), rs1=_creg(parcel >> 7), imm=imm)
    if funct3 == 0b110:  # c.sw rs2', offset(rs1')
        imm = (
            (((parcel >> 10) & 0x7) << 3)
            | (((parcel >> 6) & 0x1) << 2)
            | (((parcel >> 5) & 0x1) << 6)
        )
        return Instruction("sw", rs1=_creg(parcel >> 7), rs2=_creg(parcel >> 2), imm=imm)
    raise EncodingError(f"unsupported Q0 compressed instruction {parcel:#06x}")


def _decode_q1(parcel: int, funct3: int) -> Instruction:
    rd = (parcel >> 7) & 0x1F
    imm6 = sign_extend((((parcel >> 12) & 1) << 5) | ((parcel >> 2) & 0x1F), 6)

    if funct3 == 0b000:  # c.addi / c.nop
        return Instruction("addi", rd=rd, rs1=rd, imm=imm6)
    if funct3 == 0b001:  # c.jal (RV32)
        return Instruction("jal", rd=1, imm=_cj_offset(parcel))
    if funct3 == 0b010:  # c.li
        return Instruction("addi", rd=rd, rs1=0, imm=imm6)
    if funct3 == 0b011:
        if rd == 2:  # c.addi16sp
            imm = sign_extend(
                (((parcel >> 12) & 1) << 9)
                | (((parcel >> 6) & 1) << 4)
                | (((parcel >> 5) & 1) << 6)
                | (((parcel >> 3) & 0x3) << 7)
                | (((parcel >> 2) & 1) << 5),
                10,
            )
            if imm == 0:
                raise EncodingError("c.addi16sp with zero immediate is reserved")
            return Instruction("addi", rd=2, rs1=2, imm=imm)
        if imm6 == 0:
            raise EncodingError("c.lui with zero immediate is reserved")
        return Instruction("lui", rd=rd, imm=imm6 & 0xFFFFF)  # c.lui
    if funct3 == 0b100:
        sub = (parcel >> 10) & 0x3
        rd_prime = _creg(parcel >> 7)
        if sub == 0b00:  # c.srli
            shamt = ((parcel >> 12) & 1) << 5 | ((parcel >> 2) & 0x1F)
            return Instruction("srli", rd=rd_prime, rs1=rd_prime, imm=shamt)
        if sub == 0b01:  # c.srai
            shamt = ((parcel >> 12) & 1) << 5 | ((parcel >> 2) & 0x1F)
            return Instruction("srai", rd=rd_prime, rs1=rd_prime, imm=shamt)
        if sub == 0b10:  # c.andi
            return Instruction("andi", rd=rd_prime, rs1=rd_prime, imm=imm6)
        rs2_prime = _creg(parcel >> 2)
        op = (parcel >> 5) & 0x3
        mnemonic = {0b00: "sub", 0b01: "xor", 0b10: "or", 0b11: "and"}[op]
        return Instruction(mnemonic, rd=rd_prime, rs1=rd_prime, rs2=rs2_prime)
    if funct3 == 0b101:  # c.j
        return Instruction("jal", rd=0, imm=_cj_offset(parcel))
    # c.beqz / c.bnez
    offset = sign_extend(
        (((parcel >> 12) & 1) << 8)
        | (((parcel >> 10) & 0x3) << 3)
        | (((parcel >> 5) & 0x3) << 6)
        | (((parcel >> 3) & 0x3) << 1)
        | (((parcel >> 2) & 1) << 5),
        9,
    )
    mnemonic = "beq" if funct3 == 0b110 else "bne"
    return Instruction(mnemonic, rs1=_creg(parcel >> 7), rs2=0, imm=offset)


def _cj_offset(parcel: int) -> int:
    return sign_extend(
        (((parcel >> 12) & 1) << 11)
        | (((parcel >> 11) & 1) << 4)
        | (((parcel >> 9) & 0x3) << 8)
        | (((parcel >> 8) & 1) << 10)
        | (((parcel >> 7) & 1) << 6)
        | (((parcel >> 6) & 1) << 7)
        | (((parcel >> 3) & 0x7) << 1)
        | (((parcel >> 2) & 1) << 5),
        12,
    )


def _decode_q2(parcel: int, funct3: int) -> Instruction:
    rd = (parcel >> 7) & 0x1F
    rs2 = (parcel >> 2) & 0x1F
    bit12 = (parcel >> 12) & 1

    if funct3 == 0b000:  # c.slli
        shamt = (bit12 << 5) | rs2
        return Instruction("slli", rd=rd, rs1=rd, imm=shamt)
    if funct3 == 0b010:  # c.lwsp
        imm = (bit12 << 5) | (((parcel >> 4) & 0x7) << 2) | (((parcel >> 2) & 0x3) << 6)
        if rd == 0:
            raise EncodingError("c.lwsp with rd = x0 is reserved")
        return Instruction("lw", rd=rd, rs1=2, imm=imm)
    if funct3 == 0b100:
        if bit12 == 0:
            if rs2 == 0:  # c.jr
                if rd == 0:
                    raise EncodingError("c.jr with rs1 = x0 is reserved")
                return Instruction("jalr", rd=0, rs1=rd, imm=0)
            return Instruction("add", rd=rd, rs1=0, rs2=rs2)  # c.mv
        if rs2 == 0:
            if rd == 0:  # c.ebreak
                return Instruction("ebreak")
            return Instruction("jalr", rd=1, rs1=rd, imm=0)  # c.jalr
        return Instruction("add", rd=rd, rs1=rd, rs2=rs2)  # c.add
    if funct3 == 0b110:  # c.swsp
        imm = (((parcel >> 9) & 0xF) << 2) | (((parcel >> 7) & 0x3) << 6)
        return Instruction("sw", rs1=2, rs2=rs2, imm=imm)
    raise EncodingError(f"unsupported Q2 compressed instruction {parcel:#06x}")


# ---------------------------------------------------------------------------
# compression (encode 32-bit instructions into RVC when possible)
# ---------------------------------------------------------------------------


def _is_creg(reg: int) -> bool:
    return 8 <= reg <= 15


def encode_compressed(instr: Instruction) -> int | None:
    """The RVC encoding of ``instr``, or None when no form exists.

    Covers the common forms a compiler emits: c.addi, c.li, c.mv,
    c.add, c.sub/xor/or/and, c.slli/srli/srai/andi, c.lw/sw,
    c.lwsp/swsp, c.j/jal, c.beqz/bnez, c.jr/jalr, c.ebreak, c.nop.
    """
    m, rd, rs1, rs2, imm = instr.mnemonic, instr.rd, instr.rs1, instr.rs2, instr.imm

    if m == "addi":
        if rd == rs1 and -32 <= imm < 32 and not (rd == 0 and imm != 0):
            return (0b000 << 13) | (((imm >> 5) & 1) << 12) | (rd << 7) | ((imm & 0x1F) << 2) | 0b01
        if rs1 == 0 and rd != 0 and -32 <= imm < 32:  # c.li
            return (0b010 << 13) | (((imm >> 5) & 1) << 12) | (rd << 7) | ((imm & 0x1F) << 2) | 0b01
        if rd == 2 and rs1 == 2 and imm and imm % 16 == 0 and -512 <= imm < 512:
            value = imm & 0x3FF
            return (
                (0b011 << 13) | (((value >> 9) & 1) << 12) | (2 << 7)
                | (((value >> 4) & 1) << 6) | (((value >> 6) & 1) << 5)
                | (((value >> 7) & 0x3) << 3) | (((value >> 5) & 1) << 2) | 0b01
            )
    if m == "add":
        if rs1 == 0 and rd != 0 and rs2 != 0:  # c.mv
            return (0b100 << 13) | (0 << 12) | (rd << 7) | (rs2 << 2) | 0b10
        if rd == rs1 and rd != 0 and rs2 != 0:  # c.add
            return (0b100 << 13) | (1 << 12) | (rd << 7) | (rs2 << 2) | 0b10
    if m in ("sub", "xor", "or", "and") and rd == rs1 and _is_creg(rd) and _is_creg(rs2):
        op = {"sub": 0b00, "xor": 0b01, "or": 0b10, "and": 0b11}[m]
        return (
            (0b100 << 13) | (0b0 << 12) | (0b11 << 10) | ((rd - 8) << 7)
            | (op << 5) | ((rs2 - 8) << 2) | 0b01
        )
    if m == "andi" and rd == rs1 and _is_creg(rd) and -32 <= imm < 32:
        return (
            (0b100 << 13) | (((imm >> 5) & 1) << 12) | (0b10 << 10)
            | ((rd - 8) << 7) | ((imm & 0x1F) << 2) | 0b01
        )
    if m in ("srli", "srai") and rd == rs1 and _is_creg(rd) and 0 < imm < 32:
        sub = 0b00 if m == "srli" else 0b01
        return (
            (0b100 << 13) | (0 << 12) | (sub << 10) | ((rd - 8) << 7)
            | ((imm & 0x1F) << 2) | 0b01
        )
    if m == "slli" and rd == rs1 and rd != 0 and 0 < imm < 32:
        return (0b000 << 13) | (0 << 12) | (rd << 7) | ((imm & 0x1F) << 2) | 0b10
    if m == "lw":
        if rs1 == 2 and rd != 0 and imm % 4 == 0 and 0 <= imm < 256:  # c.lwsp
            return (
                (0b010 << 13) | (((imm >> 5) & 1) << 12) | (rd << 7)
                | (((imm >> 2) & 0x7) << 4) | (((imm >> 6) & 0x3) << 2) | 0b10
            )
        if _is_creg(rd) and _is_creg(rs1) and imm % 4 == 0 and 0 <= imm < 128:
            return (
                (0b010 << 13) | (((imm >> 3) & 0x7) << 10) | ((rs1 - 8) << 7)
                | (((imm >> 2) & 1) << 6) | (((imm >> 6) & 1) << 5)
                | ((rd - 8) << 2) | 0b00
            )
    if m == "sw":
        if rs1 == 2 and imm % 4 == 0 and 0 <= imm < 256:  # c.swsp
            return (
                (0b110 << 13) | (((imm >> 2) & 0xF) << 9)
                | (((imm >> 6) & 0x3) << 7) | (rs2 << 2) | 0b10
            )
        if _is_creg(rs2) and _is_creg(rs1) and imm % 4 == 0 and 0 <= imm < 128:
            return (
                (0b110 << 13) | (((imm >> 3) & 0x7) << 10) | ((rs1 - 8) << 7)
                | (((imm >> 2) & 1) << 6) | (((imm >> 6) & 1) << 5)
                | ((rs2 - 8) << 2) | 0b00
            )
    if m == "jal" and rd in (0, 1) and -2048 <= imm < 2048 and imm % 2 == 0:
        funct3 = 0b101 if rd == 0 else 0b001
        v = imm & 0xFFF
        return (
            (funct3 << 13)
            | (((v >> 11) & 1) << 12) | (((v >> 4) & 1) << 11)
            | (((v >> 8) & 0x3) << 9) | (((v >> 10) & 1) << 8)
            | (((v >> 6) & 1) << 7) | (((v >> 7) & 1) << 6)
            | (((v >> 1) & 0x7) << 3) | (((v >> 5) & 1) << 2) | 0b01
        )
    if m in ("beq", "bne") and rs2 == 0 and _is_creg(rs1) and -256 <= imm < 256 and imm % 2 == 0:
        funct3 = 0b110 if m == "beq" else 0b111
        v = imm & 0x1FF
        return (
            (funct3 << 13)
            | (((v >> 8) & 1) << 12) | (((v >> 3) & 0x3) << 10)
            | ((rs1 - 8) << 7) | (((v >> 6) & 0x3) << 5)
            | (((v >> 1) & 0x3) << 3) | (((v >> 5) & 1) << 2) | 0b01
        )
    if m == "jalr" and imm == 0 and rs1 != 0:
        if rd == 0:  # c.jr
            return (0b100 << 13) | (0 << 12) | (rs1 << 7) | 0b10
        if rd == 1:  # c.jalr
            return (0b100 << 13) | (1 << 12) | (rs1 << 7) | 0b10
    if m == "ebreak":
        return (0b100 << 13) | (1 << 12) | 0b10
    return None
