"""RISCY-style cycle cost model.

The paper's platform is PULPino's RISCY: a 4-stage in-order core
(IF/ID/EX/WB).  The ISS charges per-instruction cycle costs that
approximate that pipeline:

* simple ALU ops, LUI/AUIPC and single-cycle custom ops retire at 1
  cycle (full forwarding, no stalls);
* loads take 2 cycles (the data interface inserts one wait state, the
  common case on PULPino's shared TCDM) and stores 1;
* taken branches and jumps flush the front-end (2 flush cycles on a
  4-stage core); not-taken branches cost 1;
* RV32M multiplies are single-cycle (RISCY's fast multiplier);
  divisions/remainders use the serial divider (bit-per-cycle class,
  modelled at a flat 35);
* multi-cycle PQ instructions stall the EX stage until the accelerator
  reports done, so their cost is 1 + busy cycles (the busy count comes
  from the cycle-accurate unit models).

The same constants price the *operation counts* recorded by the
annotated software implementations (:mod:`repro.cosim.costs`), so the
analytical model and the ISS agree by construction; the validation
benchmark (`benchmarks/test_validation_iss.py`) checks that they agree
in practice on real kernels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RiscyCostModel:
    """Per-instruction cycle costs of the RISCY approximation."""

    alu: int = 1
    load: int = 2
    store: int = 1
    branch_taken: int = 3
    branch_not_taken: int = 1
    jump: int = 3
    mul: int = 1
    div: int = 35
    csr: int = 1
    pq_issue: int = 1  # a PQ instruction's own EX cycle; busy adds on top

    def branch(self, taken: bool) -> int:
        """Cycle cost of a conditional branch by outcome."""
        return self.branch_taken if taken else self.branch_not_taken

    def instruction_cost(self, mnemonic: str, taken: bool = False) -> int:
        """Cycle cost of one retired instruction (PQ busy not included)."""
        if mnemonic in ("lb", "lh", "lw", "lbu", "lhu"):
            return self.load
        if mnemonic in ("sb", "sh", "sw"):
            return self.store
        if mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            return self.branch(taken)
        if mnemonic in ("jal", "jalr"):
            return self.jump
        if mnemonic in ("mul", "mulh", "mulhsu", "mulhu"):
            return self.mul
        if mnemonic in ("div", "divu", "rem", "remu"):
            return self.div
        if mnemonic.startswith("pq."):
            return self.pq_issue
        return self.alu


#: The default model used by the ISS and the analytical cost layer.
DEFAULT_COST_MODEL = RiscyCostModel()
