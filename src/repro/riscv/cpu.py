"""The RV32IM + PQ instruction-set simulator.

A functional ISS with a RISCY-style cycle cost model: every retired
instruction charges the cost from :class:`RiscyCostModel`, and PQ
instructions additionally stall for their accelerator's busy cycles.
The simulator is deliberately simple (no MMU, no interrupts, flat
memory) — it models what the paper measures: cycle counts of bare-
metal kernels on a small embedded core.

Program termination: ``ebreak`` halts; ``ecall`` halts with the exit
code taken from register a0 (x10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.riscv.compressed import decode_compressed, is_compressed
from repro.riscv.cost_model import DEFAULT_COST_MODEL, RiscyCostModel
from repro.riscv.encoding import Instruction, decode, sign_extend
from repro.riscv.memory import Memory
from repro.riscv.pq_alu import PqAlu

_MASK32 = 0xFFFFFFFF

#: ABI register indices used by the convenience API.
REG_RA, REG_SP, REG_A0, REG_A1 = 1, 2, 10, 11


class CpuError(Exception):
    """Illegal instruction, bad memory access, or runaway execution."""


@dataclass
class ExecutionResult:
    """Summary of one :meth:`Cpu.run`."""

    cycles: int
    instructions: int
    reason: str  # "ebreak", "ecall", or "limit"
    exit_code: int = 0


class Cpu:
    """The instruction-set simulator."""

    def __init__(
        self,
        memory: Memory | None = None,
        pq_alu: PqAlu | None = None,
        cost_model: RiscyCostModel = DEFAULT_COST_MODEL,
    ):
        self.memory = memory or Memory()
        self.pq_alu = pq_alu or PqAlu()
        self.cost_model = cost_model
        self.regs = [0] * 32
        self.pc = 0
        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.halt_reason = ""

    # ------------------------------------------------------------------

    def reset(self, pc: int = 0, sp: int | None = None) -> None:
        """Clear architectural state (memory is preserved)."""
        self.regs = [0] * 32
        self.pc = pc
        self.cycles = 0
        self.instret = 0
        self.halted = False
        self.halt_reason = ""
        if sp is None:
            sp = self.memory.size - 16
        self.regs[REG_SP] = sp

    def read_reg(self, index: int) -> int:
        """The current value of register x<index>."""
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write a register (writes to x0 are discarded)."""
        if index:
            self.regs[index] = value & _MASK32

    def _signed(self, index: int) -> int:
        return sign_extend(self.regs[index], 32)

    # ------------------------------------------------------------------

    def step(self) -> Instruction:
        """Fetch, decode and execute one instruction (16 or 32 bits).

        The low two bits of the first parcel distinguish compressed
        instructions (RV32C, which RISCY supports) from full-width
        ones; compressed instructions execute their standard 32-bit
        expansion and advance the PC by 2.
        """
        if self.halted:
            raise CpuError("stepping a halted CPU")
        parcel = self.memory.load(self.pc, 2)
        if is_compressed(parcel):
            instr = decode_compressed(parcel)
            self._execute(instr, size=2)
        else:
            instr = decode(self.memory.load_word(self.pc))
            self._execute(instr, size=4)
        self.instret += 1
        return instr

    def run(self, max_instructions: int = 50_000_000) -> ExecutionResult:
        """Run until ebreak/ecall or the instruction limit."""
        while not self.halted and self.instret < max_instructions:
            self.step()
        reason = self.halt_reason if self.halted else "limit"
        return ExecutionResult(
            cycles=self.cycles,
            instructions=self.instret,
            reason=reason,
            exit_code=self.regs[REG_A0],
        )

    # ------------------------------------------------------------------

    def _execute(self, instr: Instruction, size: int = 4) -> None:
        m = instr.mnemonic
        cost = self.cost_model
        regs = self.regs
        next_pc = (self.pc + size) & _MASK32
        cycle_cost = 1

        if m == "lui":
            self.write_reg(instr.rd, instr.imm << 12)
        elif m == "auipc":
            self.write_reg(instr.rd, self.pc + (instr.imm << 12))
        elif m == "jal":
            self.write_reg(instr.rd, next_pc)
            next_pc = (self.pc + instr.imm) & _MASK32
            cycle_cost = cost.jump
        elif m == "jalr":
            target = (regs[instr.rs1] + instr.imm) & _MASK32 & ~1
            self.write_reg(instr.rd, next_pc)
            next_pc = target
            cycle_cost = cost.jump
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = self._branch_taken(m, instr.rs1, instr.rs2)
            if taken:
                next_pc = (self.pc + instr.imm) & _MASK32
            cycle_cost = cost.branch(taken)
        elif m in ("lb", "lh", "lw", "lbu", "lhu"):
            address = (regs[instr.rs1] + instr.imm) & _MASK32
            width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            value = self.memory.load(address, width)
            if m in ("lb", "lh"):
                value = sign_extend(value, 8 * width) & _MASK32
            self.write_reg(instr.rd, value)
            cycle_cost = cost.load
        elif m in ("sb", "sh", "sw"):
            address = (regs[instr.rs1] + instr.imm) & _MASK32
            width = {"sb": 1, "sh": 2, "sw": 4}[m]
            self.memory.store(address, regs[instr.rs2], width)
            cycle_cost = cost.store
        elif m in ("addi", "slti", "sltiu", "xori", "ori", "andi"):
            self.write_reg(instr.rd, self._alu_imm(m, instr.rs1, instr.imm))
        elif m in ("slli", "srli", "srai"):
            self.write_reg(instr.rd, self._shift_imm(m, instr.rs1, instr.imm))
        elif m in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"):
            self.write_reg(instr.rd, self._alu_reg(m, instr.rs1, instr.rs2))
        elif m in ("mul", "mulh", "mulhsu", "mulhu"):
            self.write_reg(instr.rd, self._multiply(m, instr.rs1, instr.rs2))
            cycle_cost = cost.mul
        elif m in ("div", "divu", "rem", "remu"):
            self.write_reg(instr.rd, self._divide(m, instr.rs1, instr.rs2))
            cycle_cost = cost.div
        elif m.startswith("pq."):
            funct3 = {"pq.mul_ter": 0, "pq.mul_chien": 1, "pq.sha256": 2, "pq.modq": 3}[m]
            value, busy = self.pq_alu.execute(funct3, regs[instr.rs1], regs[instr.rs2])
            self.write_reg(instr.rd, value)
            cycle_cost = cost.pq_issue + busy
        elif m in ("csrrw", "csrrs", "csrrc"):
            # the performance-counter subset of Zicsr: reads return the
            # counters RISCY exposes; writes to the read-only counters
            # are ignored (kernels only ever read them)
            self.write_reg(instr.rd, self._read_csr(instr.imm))
            cycle_cost = cost.csr
        elif m == "ebreak":
            self.halted = True
            self.halt_reason = "ebreak"
        elif m == "ecall":
            self.halted = True
            self.halt_reason = "ecall"
        elif m == "fence":
            pass
        else:  # pragma: no cover - decode() only yields known mnemonics
            raise CpuError(f"unimplemented instruction {m}")

        self.cycles += cycle_cost
        if not self.halted:
            self.pc = next_pc

    def _read_csr(self, address: int) -> int:
        """The performance counters of the RISC-V counter extension."""
        if address == 0xC00:  # cycle
            return self.cycles & _MASK32
        if address == 0xC80:  # cycleh
            return (self.cycles >> 32) & _MASK32
        if address == 0xC02:  # instret
            return self.instret & _MASK32
        if address == 0xC82:  # instreth
            return (self.instret >> 32) & _MASK32
        if address == 0xF14:  # mhartid
            return 0
        raise CpuError(f"unimplemented CSR {address:#x}")

    # ------------------------------------------------------------------
    # ALU helpers
    # ------------------------------------------------------------------

    def _branch_taken(self, m: str, rs1: int, rs2: int) -> bool:
        u1, u2 = self.regs[rs1], self.regs[rs2]
        s1, s2 = sign_extend(u1, 32), sign_extend(u2, 32)
        return {
            "beq": u1 == u2,
            "bne": u1 != u2,
            "blt": s1 < s2,
            "bge": s1 >= s2,
            "bltu": u1 < u2,
            "bgeu": u1 >= u2,
        }[m]

    def _alu_imm(self, m: str, rs1: int, imm: int) -> int:
        u = self.regs[rs1]
        s = sign_extend(u, 32)
        if m == "addi":
            return (u + imm) & _MASK32
        if m == "slti":
            return 1 if s < imm else 0
        if m == "sltiu":
            return 1 if u < (imm & _MASK32) else 0
        if m == "xori":
            return (u ^ imm) & _MASK32
        if m == "ori":
            return (u | imm) & _MASK32
        return (u & imm) & _MASK32  # andi

    def _shift_imm(self, m: str, rs1: int, shamt: int) -> int:
        u = self.regs[rs1]
        if m == "slli":
            return (u << shamt) & _MASK32
        if m == "srli":
            return u >> shamt
        return (sign_extend(u, 32) >> shamt) & _MASK32  # srai

    def _alu_reg(self, m: str, rs1: int, rs2: int) -> int:
        u1, u2 = self.regs[rs1], self.regs[rs2]
        s1, s2 = sign_extend(u1, 32), sign_extend(u2, 32)
        shamt = u2 & 0x1F
        return {
            "add": (u1 + u2) & _MASK32,
            "sub": (u1 - u2) & _MASK32,
            "sll": (u1 << shamt) & _MASK32,
            "slt": 1 if s1 < s2 else 0,
            "sltu": 1 if u1 < u2 else 0,
            "xor": u1 ^ u2,
            "srl": u1 >> shamt,
            "sra": (s1 >> shamt) & _MASK32,
            "or": u1 | u2,
            "and": u1 & u2,
        }[m]

    def _multiply(self, m: str, rs1: int, rs2: int) -> int:
        u1, u2 = self.regs[rs1], self.regs[rs2]
        s1, s2 = sign_extend(u1, 32), sign_extend(u2, 32)
        if m == "mul":
            return (s1 * s2) & _MASK32
        if m == "mulh":
            return ((s1 * s2) >> 32) & _MASK32
        if m == "mulhsu":
            return ((s1 * u2) >> 32) & _MASK32
        return ((u1 * u2) >> 32) & _MASK32  # mulhu

    def _divide(self, m: str, rs1: int, rs2: int) -> int:
        u1, u2 = self.regs[rs1], self.regs[rs2]
        s1, s2 = sign_extend(u1, 32), sign_extend(u2, 32)
        if m == "div":
            if s2 == 0:
                return _MASK32  # -1
            if s1 == -(1 << 31) and s2 == -1:
                return 1 << 31  # overflow: returns dividend
            quotient = abs(s1) // abs(s2)
            return (quotient if (s1 < 0) == (s2 < 0) else -quotient) & _MASK32
        if m == "divu":
            return _MASK32 if u2 == 0 else u1 // u2
        if m == "rem":
            if s2 == 0:
                return u1
            if s1 == -(1 << 31) and s2 == -1:
                return 0
            remainder = abs(s1) % abs(s2)
            return (remainder if s1 >= 0 else -remainder) & _MASK32
        return u1 if u2 == 0 else u1 % u2  # remu
