"""Disassembler for RV32IM + PQ machine code.

Produces assembler-compatible text: every line disassembled from a
valid instruction word re-assembles to the same word (the round-trip
property the test suite checks).  Branch and jump offsets are printed
as numeric immediates (PC-relative), annotated with the absolute
target when a base address is supplied.
"""

from __future__ import annotations

from repro.riscv.assembler import ABI_NAMES
from repro.riscv.compressed import decode_compressed, is_compressed
from repro.riscv.encoding import EncodingError, Instruction, SPECS, decode

#: index -> preferred ABI name
_REG_NAMES = {index: name for name, index in ABI_NAMES.items() if name != "fp"}

_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_LOADS = ("lb", "lh", "lw", "lbu", "lhu")
_STORES = ("sb", "sh", "sw")


def _reg(index: int) -> str:
    return _REG_NAMES.get(index, f"x{index}")


def format_instruction(instr: Instruction) -> str:
    """Assembler-syntax text of one decoded instruction."""
    m = instr.mnemonic
    spec = SPECS[m]
    if m in ("ecall", "ebreak", "fence"):
        return m
    if spec.fmt == "R":
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {_reg(instr.rs2)}"
    if m in _LOADS:
        return f"{m} {_reg(instr.rd)}, {instr.imm}({_reg(instr.rs1)})"
    if m == "jalr":
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.imm}"
    if spec.fmt in ("I", "shift"):
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.imm}"
    if spec.fmt == "S":
        return f"{m} {_reg(instr.rs2)}, {instr.imm}({_reg(instr.rs1)})"
    if spec.fmt == "B":
        return f"{m} {_reg(instr.rs1)}, {_reg(instr.rs2)}, {instr.imm}"
    if spec.fmt == "U":
        return f"{m} {_reg(instr.rd)}, {instr.imm}"
    if spec.fmt == "J":
        return f"{m} {_reg(instr.rd)}, {instr.imm}"
    raise EncodingError(f"unformattable instruction {instr}")  # pragma: no cover


def disassemble_word(word: int) -> str:
    """Disassemble one 32-bit instruction word."""
    return format_instruction(decode(word))


def disassemble(
    image: bytes, base: int = 0, include_addresses: bool = True
) -> list[str]:
    """Disassemble a code image (handles mixed 16/32-bit streams).

    Undecodable parcels are rendered as ``.word``/``.half`` data lines,
    so the output is always a complete, re-assemblable listing.
    """
    lines = []
    offset = 0
    while offset < len(image):
        address = base + offset
        parcel = int.from_bytes(image[offset : offset + 2], "little")
        if is_compressed(parcel):
            try:
                text = "c: " + format_instruction(decode_compressed(parcel))
            except EncodingError:
                text = f".half {parcel:#06x}"
            size = 2
        else:
            if offset + 4 > len(image):
                text = f".half {parcel:#06x}"
                size = 2
            else:
                word = int.from_bytes(image[offset : offset + 4], "little")
                try:
                    text = format_instruction(decode(word))
                except EncodingError:
                    text = f".word {word:#010x}"
                size = 4
        if include_addresses:
            lines.append(f"{address:#010x}:  {text}")
        else:
            lines.append(text)
        offset += size
    return lines
