"""RV32IM + PQ instruction encoding/decoding.

Implements the four RISC-V base formats the paper mentions (R/I/S/U,
plus the B and J immediate variants) bit-exactly per the RISC-V
unprivileged specification, and the paper's PQ extension: R-type
instructions on the custom opcode 0x77 with the accelerator selected
by funct3 (Fig. 6):

====== ===============
funct3 instruction
====== ===============
0      pq.mul_ter
1      pq.mul_chien
2      pq.sha256
3      pq.modq
====== ===============
"""

from __future__ import annotations

from dataclasses import dataclass

#: The custom opcode activating the PQ-ALU (Sec. V).
PQ_OPCODE = 0x77

_MASK32 = 0xFFFFFFFF


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    fmt: str  # one of R, I, S, B, U, J, shift
    opcode: int
    funct3: int | None = None
    funct7: int | None = None


# ---------------------------------------------------------------------------
# instruction table
# ---------------------------------------------------------------------------

_R = lambda m, f3, f7, op=0x33: InstrSpec(m, "R", op, f3, f7)
_I = lambda m, f3, op: InstrSpec(m, "I", op, f3)

SPECS: dict[str, InstrSpec] = {}


def _register(spec: InstrSpec) -> None:
    SPECS[spec.mnemonic] = spec


for _spec in [
    InstrSpec("lui", "U", 0x37),
    InstrSpec("auipc", "U", 0x17),
    InstrSpec("jal", "J", 0x6F),
    _I("jalr", 0, 0x67),
    InstrSpec("beq", "B", 0x63, 0),
    InstrSpec("bne", "B", 0x63, 1),
    InstrSpec("blt", "B", 0x63, 4),
    InstrSpec("bge", "B", 0x63, 5),
    InstrSpec("bltu", "B", 0x63, 6),
    InstrSpec("bgeu", "B", 0x63, 7),
    _I("lb", 0, 0x03),
    _I("lh", 1, 0x03),
    _I("lw", 2, 0x03),
    _I("lbu", 4, 0x03),
    _I("lhu", 5, 0x03),
    InstrSpec("sb", "S", 0x23, 0),
    InstrSpec("sh", "S", 0x23, 1),
    InstrSpec("sw", "S", 0x23, 2),
    _I("addi", 0, 0x13),
    _I("slti", 2, 0x13),
    _I("sltiu", 3, 0x13),
    _I("xori", 4, 0x13),
    _I("ori", 6, 0x13),
    _I("andi", 7, 0x13),
    InstrSpec("slli", "shift", 0x13, 1, 0x00),
    InstrSpec("srli", "shift", 0x13, 5, 0x00),
    InstrSpec("srai", "shift", 0x13, 5, 0x20),
    _R("add", 0, 0x00),
    _R("sub", 0, 0x20),
    _R("sll", 1, 0x00),
    _R("slt", 2, 0x00),
    _R("sltu", 3, 0x00),
    _R("xor", 4, 0x00),
    _R("srl", 5, 0x00),
    _R("sra", 5, 0x20),
    _R("or", 6, 0x00),
    _R("and", 7, 0x00),
    # M extension
    _R("mul", 0, 0x01),
    _R("mulh", 1, 0x01),
    _R("mulhsu", 2, 0x01),
    _R("mulhu", 3, 0x01),
    _R("div", 4, 0x01),
    _R("divu", 5, 0x01),
    _R("rem", 6, 0x01),
    _R("remu", 7, 0x01),
    # system
    InstrSpec("ecall", "I", 0x73, 0),
    InstrSpec("ebreak", "I", 0x73, 0),
    InstrSpec("fence", "I", 0x0F, 0),
    # Zicsr (the performance counters RISCY exposes; the paper's cycle
    # measurements read exactly these)
    InstrSpec("csrrw", "I", 0x73, 1),
    InstrSpec("csrrs", "I", 0x73, 2),
    InstrSpec("csrrc", "I", 0x73, 3),
    # PQ extension (opcode 0x77, funct3 selects the accelerator)
    InstrSpec("pq.mul_ter", "R", PQ_OPCODE, 0, 0x00),
    InstrSpec("pq.mul_chien", "R", PQ_OPCODE, 1, 0x00),
    InstrSpec("pq.sha256", "R", PQ_OPCODE, 2, 0x00),
    InstrSpec("pq.modq", "R", PQ_OPCODE, 3, 0x00),
]:
    _register(_spec)


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __str__(self) -> str:
        spec = SPECS[self.mnemonic]
        if spec.fmt == "R":
            return f"{self.mnemonic} x{self.rd}, x{self.rs1}, x{self.rs2}"
        if spec.fmt in ("I", "shift"):
            return f"{self.mnemonic} x{self.rd}, x{self.rs1}, {self.imm}"
        if spec.fmt == "S":
            return f"{self.mnemonic} x{self.rs2}, {self.imm}(x{self.rs1})"
        if spec.fmt == "B":
            return f"{self.mnemonic} x{self.rs1}, x{self.rs2}, {self.imm}"
        return f"{self.mnemonic} x{self.rd}, {self.imm}"


class EncodingError(ValueError):
    """Raised for malformed instructions or immediates out of range."""


def _check_reg(value: int, name: str) -> None:
    if not 0 <= value < 32:
        raise EncodingError(f"{name} must be x0..x31, got {value}")


def _check_range(imm: int, bits: int, name: str) -> None:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= imm <= high:
        raise EncodingError(f"{name} immediate {imm} outside [{low}, {high}]")


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    spec = SPECS.get(instr.mnemonic)
    if spec is None:
        raise EncodingError(f"unknown mnemonic {instr.mnemonic!r}")
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    _check_reg(rd, "rd")
    _check_reg(rs1, "rs1")
    _check_reg(rs2, "rs2")
    op = spec.opcode

    if instr.mnemonic == "ebreak":
        return 0x00100073
    if instr.mnemonic == "ecall":
        return 0x00000073
    if instr.mnemonic == "fence":
        return 0x0000000F

    if spec.fmt == "R":
        return (
            (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (rd << 7) | op
        )
    if spec.fmt == "I":
        if instr.mnemonic.startswith("csr"):
            # the immediate is the unsigned 12-bit CSR address
            if not 0 <= imm < (1 << 12):
                raise EncodingError(f"CSR address {imm} outside 0..4095")
            return (imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
        _check_range(imm, 12, instr.mnemonic)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | op
    if spec.fmt == "shift":
        if not 0 <= imm < 32:
            raise EncodingError(f"shift amount {imm} outside 0..31")
        return (
            (spec.funct7 << 25) | (imm << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (rd << 7) | op
        )
    if spec.fmt == "S":
        _check_range(imm, 12, instr.mnemonic)
        value = imm & 0xFFF
        return (
            ((value >> 5) << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | ((value & 0x1F) << 7) | op
        )
    if spec.fmt == "B":
        _check_range(imm, 13, instr.mnemonic)
        if imm % 2:
            raise EncodingError("branch offsets must be even")
        value = imm & 0x1FFF
        return (
            (((value >> 12) & 1) << 31)
            | (((value >> 5) & 0x3F) << 25)
            | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12)
            | (((value >> 1) & 0xF) << 8)
            | (((value >> 11) & 1) << 7)
            | op
        )
    if spec.fmt == "U":
        if not 0 <= imm < (1 << 20):
            raise EncodingError(f"U immediate {imm} outside 0..2^20-1")
        return (imm << 12) | (rd << 7) | op
    if spec.fmt == "J":
        _check_range(imm, 21, instr.mnemonic)
        if imm % 2:
            raise EncodingError("jump offsets must be even")
        value = imm & 0x1FFFFF
        return (
            (((value >> 20) & 1) << 31)
            | (((value >> 1) & 0x3FF) << 21)
            | (((value >> 11) & 1) << 20)
            | (((value >> 12) & 0xFF) << 12)
            | (rd << 7) | op
        )
    raise EncodingError(f"unhandled format {spec.fmt}")  # pragma: no cover


# decode lookup: (opcode, funct3, funct7-or-None) -> spec
_BY_OPCODE: dict[int, list[InstrSpec]] = {}
for _spec in SPECS.values():
    _BY_OPCODE.setdefault(_spec.opcode, []).append(_spec)


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    word &= _MASK32
    if word == 0x00100073:
        return Instruction("ebreak")
    if word == 0x00000073:
        return Instruction("ecall")
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    candidates = _BY_OPCODE.get(opcode)
    if not candidates:
        raise EncodingError(f"unknown opcode {opcode:#x} in word {word:#010x}")

    for spec in candidates:
        if spec.funct3 is not None and spec.funct3 != funct3:
            continue
        if spec.fmt in ("R", "shift") and spec.funct7 != funct7:
            continue
        m = spec.mnemonic
        if spec.fmt == "R":
            return Instruction(m, rd=rd, rs1=rs1, rs2=rs2)
        if spec.fmt == "shift":
            return Instruction(m, rd=rd, rs1=rs1, imm=rs2)
        if spec.fmt == "I":
            if m.startswith("csr"):
                return Instruction(m, rd=rd, rs1=rs1, imm=word >> 20)
            return Instruction(m, rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12))
        if spec.fmt == "S":
            imm = sign_extend(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
            return Instruction(m, rs1=rs1, rs2=rs2, imm=imm)
        if spec.fmt == "B":
            imm = (
                (((word >> 31) & 1) << 12)
                | (((word >> 7) & 1) << 11)
                | (((word >> 25) & 0x3F) << 5)
                | (((word >> 8) & 0xF) << 1)
            )
            return Instruction(m, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13))
        if spec.fmt == "U":
            return Instruction(m, rd=rd, imm=word >> 12)
        if spec.fmt == "J":
            imm = (
                (((word >> 31) & 1) << 20)
                | (((word >> 12) & 0xFF) << 12)
                | (((word >> 20) & 1) << 11)
                | (((word >> 21) & 0x3FF) << 1)
            )
            return Instruction(m, rd=rd, imm=sign_extend(imm, 21))
    raise EncodingError(
        f"no matching instruction for word {word:#010x} "
        f"(opcode {opcode:#x}, funct3 {funct3}, funct7 {funct7:#x})"
    )
