"""Flat little-endian memory for the instruction-set simulator."""

from __future__ import annotations


class MemoryError_(Exception):
    """Out-of-range or misaligned access."""


class Memory:
    """A flat byte-addressable RAM (little-endian, like PULPino's TCDM)."""

    def __init__(self, size: int = 1 << 20):
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.data = bytearray(size)

    def _check(self, address: int, width: int) -> None:
        if address < 0 or address + width > self.size:
            raise MemoryError_(
                f"access of {width} bytes at {address:#x} outside "
                f"memory of {self.size:#x} bytes"
            )

    # ------------------------------------------------------------------

    def load(self, address: int, width: int) -> int:
        """Little-endian load of ``width`` bytes."""
        self._check(address, width)
        return int.from_bytes(self.data[address : address + width], "little")

    def store(self, address: int, value: int, width: int) -> None:
        """Little-endian store of the low ``width`` bytes of ``value``."""
        self._check(address, width)
        self.data[address : address + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little"
        )

    # convenience accessors -------------------------------------------

    def load_word(self, address: int) -> int:
        """32-bit load."""
        return self.load(address, 4)

    def store_word(self, address: int, value: int) -> None:
        """32-bit store."""
        self.store(address, value, 4)

    def write_bytes(self, address: int, blob: bytes) -> None:
        """Bulk image write (program loading, test preloads)."""
        self._check(address, len(blob))
        self.data[address : address + len(blob)] = blob

    def read_bytes(self, address: int, length: int) -> bytes:
        """Bulk read (result extraction)."""
        self._check(address, length)
        return bytes(self.data[address : address + length])
