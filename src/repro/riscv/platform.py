"""Memory-mapped peripherals (the PULPino-style platform layer).

The paper's system is the PULPino microcontroller: the RISCY core plus
peripherals on a memory-mapped bus (Table III's "Peripherals/Memory"
row).  This module provides the simulation equivalent so machine-code
programs can do real I/O:

* :class:`MmioMemory` — a :class:`~repro.riscv.memory.Memory` with
  device windows; loads/stores inside a window route to the device;
* :class:`Uart` — a transmit-only UART (status + data registers);
  everything written appears in ``output``;
* :class:`CycleTimer` — a free-running timer readable as two 32-bit
  words (the memory-mapped sibling of the rdcycle CSR).

Register maps (word offsets from the device base):

UART:   0x0 TX data (write: one byte)   0x4 status (read: 1 = ready)
Timer:  0x0 cycles low                   0x4 cycles high
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.riscv.memory import Memory, MemoryError_

#: Conventional device bases used by the bundled programs.
UART_BASE = 0x80000
TIMER_BASE = 0x81000


class MmioDevice(Protocol):
    """A bus target: byte-addressed reads/writes within its window."""

    def read(self, offset: int, width: int) -> int:
        """Read ``width`` bytes at ``offset`` within the window."""
        ...

    def write(self, offset: int, value: int, width: int) -> None:
        """Write ``width`` bytes at ``offset`` within the window."""
        ...


class Uart:
    """Transmit-only UART; written bytes accumulate in ``output``."""

    WINDOW = 8

    def __init__(self) -> None:
        self.output = bytearray()

    def read(self, offset: int, width: int) -> int:
        """Status register at 0x4 (always ready); data reads as 0."""
        if offset == 4:
            return 1  # always ready to transmit
        return 0

    def write(self, offset: int, value: int, width: int) -> None:
        """A write to 0x0 transmits one byte."""
        if offset == 0:
            self.output.append(value & 0xFF)
        # writes elsewhere are ignored (config registers not modelled)

    @property
    def text(self) -> str:
        return self.output.decode("ascii", errors="replace")


class CycleTimer:
    """A free-running cycle counter on the bus.

    ``cycles`` is a callable so the timer always reflects the CPU's
    current count (wire it as ``CycleTimer(lambda: cpu.cycles)``).
    """

    WINDOW = 8

    def __init__(self, cycles: Callable[[], int]):
        self._cycles = cycles

    def read(self, offset: int, width: int) -> int:
        """Cycle counter: low word at 0x0, high word at 0x4."""
        value = self._cycles()
        if offset == 0:
            return value & 0xFFFFFFFF
        if offset == 4:
            return (value >> 32) & 0xFFFFFFFF
        return 0

    def write(self, offset: int, value: int, width: int) -> None:
        """Ignored: the timer is read-only."""
        pass  # read-only


class MmioMemory(Memory):
    """Flat RAM with memory-mapped device windows."""

    def __init__(self, size: int = 1 << 20):
        super().__init__(size)
        self._windows: list[tuple[int, int, MmioDevice]] = []

    def attach(self, base: int, device: MmioDevice, window: int | None = None) -> None:
        """Map ``device`` at ``base`` (window defaults to device.WINDOW)."""
        size = window if window is not None else getattr(device, "WINDOW", 4)
        for existing_base, existing_size, _ in self._windows:
            if base < existing_base + existing_size and existing_base < base + size:
                raise ValueError("device windows overlap")
        self._windows.append((base, size, device))

    def _device_at(self, address: int, width: int):
        for base, size, device in self._windows:
            if base <= address < base + size:
                if address + width > base + size:
                    raise MemoryError_(
                        f"access of {width} bytes at {address:#x} crosses "
                        "a device window boundary"
                    )
                return device, address - base
        return None, 0

    def load(self, address: int, width: int) -> int:
        """RAM load, or a device read inside a mapped window."""
        device, offset = self._device_at(address, width)
        if device is not None:
            return device.read(offset, width) & ((1 << (8 * width)) - 1)
        return super().load(address, width)

    def store(self, address: int, value: int, width: int) -> None:
        """RAM store, or a device write inside a mapped window."""
        device, offset = self._device_at(address, width)
        if device is not None:
            device.write(offset, value, width)
            return
        super().store(address, value, width)


def make_platform(memory_size: int = 1 << 20):
    """A ready-to-use platform: (memory, uart, attach_timer).

    The timer needs the CPU's cycle counter, which exists only after
    the CPU is constructed; call ``attach_timer(cpu)`` afterwards::

        memory, uart, attach_timer = make_platform()
        cpu = Cpu(memory)
        attach_timer(cpu)
    """
    memory = MmioMemory(memory_size)
    uart = Uart()
    memory.attach(UART_BASE, uart)

    def attach_timer(cpu) -> CycleTimer:
        timer = CycleTimer(lambda: cpu.cycles)
        memory.attach(TIMER_BASE, timer)
        return timer

    return memory, uart, attach_timer
