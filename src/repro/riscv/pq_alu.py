"""The PQ-ALU: four accelerators behind the 0x77 custom opcode.

This module defines the *bit-level operand protocol* of the paper's
instruction set extension (Sec. V).  All four instructions are R-type;
``funct3`` selects the unit; modes and addresses ride in the upper
bits of rs2, as the paper describes ("Remaining bits of the input
registers ... are used to control the accelerator").

``pq.mul_ter`` (funct3 = 0) — mode = rs2[31:28]:

* mode 0, *write input*: five coefficient pairs per transfer —
  rs1[7:0] .. rs1[31:24] carry general coefficients g0..g3, rs2[7:0]
  carries g4, rs2[17:8] five 2-bit ternary codes (00 -> 0, 01 -> +1,
  10 -> -1), rs2[27:18] the transfer index (coefficient base = 5x).
* mode 1, *start*: rs1[0] = conv_n (1 = negative wrapped convolution);
  the instruction stalls for the unit's ``length`` compute cycles.
* mode 2, *read output*: rs2[17:8] = output group index; rd returns
  four result coefficients (8 bits each, little end first).

``pq.mul_chien`` (funct3 = 1) — mode = rs2[31:28]:

* mode 0/1, *load left/right multiplier pair*: four 9-bit field
  elements packed as rs1[8:0], rs1[24:16], rs2[8:0], rs2[24:16], in
  (constant, lambda, constant, lambda) order.
* mode 2, *step*: one activation (9 + 1 busy cycles); rd returns the
  9-bit partial sum out_j, and the feedback loop latches the products.

``pq.sha256`` (funct3 = 2) — mode = rs2[31:28]:

* mode 0, *write input*: rs1 = four message bytes, rs2[13:8] = block
  buffer address (0, 4, ..., 60).
* mode 1, *generate hash*: one compression, 65 busy cycles.
* mode 2, *read digest*: rs2[10:8] = digest word index; rd = the word.
* mode 3, *reset internal state*.

``pq.modq`` (funct3 = 3) — pure: rd = rs1 mod 251 (single cycle,
Barrett).
"""

from __future__ import annotations

from repro.hw.barrett import BarrettUnit
from repro.hw.chien import ChienUnit
from repro.hw.mul_ter import MulTerUnit
from repro.hw.sha256_accel import Sha256Unit

#: funct3 values of the four PQ instructions (Fig. 6).
FUNCT3_MUL_TER = 0
FUNCT3_MUL_CHIEN = 1
FUNCT3_SHA256 = 2
FUNCT3_MODQ = 3

#: 2-bit ternary coefficient codes used by the transfer protocol.
TERNARY_CODE = {0: 0b00, 1: 0b01, -1: 0b10}
TERNARY_DECODE = {0b00: 0, 0b01: 1, 0b10: -1}


class PqAluError(Exception):
    """Malformed PQ instruction operands."""


class PqAlu:
    """The accelerator cluster attached to the RISCY execute stage."""

    def __init__(self, mul_ter_length: int = 512):
        self.mul_ter = MulTerUnit(mul_ter_length)
        self.chien = ChienUnit()
        self.sha256 = Sha256Unit()
        self.barrett = BarrettUnit()

    # ------------------------------------------------------------------

    def execute(self, funct3: int, rs1: int, rs2: int) -> tuple[int, int]:
        """Dispatch one PQ instruction.

        Returns ``(rd_value, busy_cycles)`` — busy cycles are the EX
        stall on top of the instruction's own issue cycle.
        """
        if funct3 == FUNCT3_MUL_TER:
            return self._mul_ter(rs1, rs2)
        if funct3 == FUNCT3_MUL_CHIEN:
            return self._mul_chien(rs1, rs2)
        if funct3 == FUNCT3_SHA256:
            return self._sha256(rs1, rs2)
        if funct3 == FUNCT3_MODQ:
            return self.barrett.reduce(rs1 & 0xFFFFFFFF), 0
        raise PqAluError(f"no PQ unit behind funct3={funct3}")

    # ------------------------------------------------------------------

    def _mul_ter(self, rs1: int, rs2: int) -> tuple[int, int]:
        mode = (rs2 >> 28) & 0xF
        unit = self.mul_ter
        if mode == 0:
            index = ((rs2 >> 18) & 0x3FF) * 5
            general = [
                (rs1 >> 0) & 0xFF, (rs1 >> 8) & 0xFF,
                (rs1 >> 16) & 0xFF, (rs1 >> 24) & 0xFF,
                rs2 & 0xFF,
            ]
            ternary = []
            for lane in range(5):
                code = (rs2 >> (8 + 2 * lane)) & 0x3
                if code not in TERNARY_DECODE:
                    raise PqAluError(f"invalid ternary code {code:#b}")
                ternary.append(TERNARY_DECODE[code])
            count = min(5, unit.length - index)
            if count <= 0:
                raise PqAluError("transfer index beyond the coefficient buffer")
            unit.load_coefficients(index, general[:count], ternary[:count])
            return 0, 0
        if mode == 1:
            unit.start(conv_n=bool(rs1 & 1))
            return 0, unit.run_to_completion()
        if mode == 2:
            index = ((rs2 >> 8) & 0x3FF) * 4
            coeffs = unit.read_result(index)
            word = 0
            for lane, c in enumerate(coeffs):
                word |= (c & 0xFF) << (8 * lane)
            return word, 0
        raise PqAluError(f"pq.mul_ter has no mode {mode}")

    def _mul_chien(self, rs1: int, rs2: int) -> tuple[int, int]:
        mode = (rs2 >> 28) & 0xF
        elements = [rs1 & 0x1FF, (rs1 >> 16) & 0x1FF, rs2 & 0x1FF, (rs2 >> 16) & 0x1FF]
        if mode == 0:
            self.chien.load_left(elements)
            return 0, 0
        if mode == 1:
            self.chien.load_right(elements)
            return 0, 0
        if mode == 2:
            value = self.chien.step()
            return value, self.chien.cycles_per_step
        raise PqAluError(f"pq.mul_chien has no mode {mode}")

    def _sha256(self, rs1: int, rs2: int) -> tuple[int, int]:
        mode = (rs2 >> 28) & 0xF
        unit = self.sha256
        if mode == 0:
            address = (rs2 >> 8) & 0x3F
            unit.write_bytes(address, rs1.to_bytes(4, "little"))
            return 0, 0
        if mode == 1:
            unit.generate_hash()
            return 0, unit.cycles_per_block
        if mode == 2:
            index = (rs2 >> 8) & 0x7
            return int.from_bytes(unit.read_digest_word(index), "big"), 0
        if mode == 3:
            unit.reset_state()
            return 0, 0
        raise PqAluError(f"pq.sha256 has no mode {mode}")

    # ------------------------------------------------------------------
    # software-side packing helpers (used by drivers and tests)
    # ------------------------------------------------------------------

    @staticmethod
    def pack_mul_ter_input(
        index: int, general: list[int], ternary: list[int]
    ) -> tuple[int, int]:
        """Build (rs1, rs2) for a mode-0 pq.mul_ter transfer."""
        if len(general) > 5 or len(general) != len(ternary):
            raise PqAluError("five matched coefficient pairs per transfer")
        general = list(general) + [0] * (5 - len(general))
        ternary = list(ternary) + [0] * (5 - len(ternary))
        rs1 = 0
        for lane in range(4):
            rs1 |= (general[lane] & 0xFF) << (8 * lane)
        rs2 = general[4] & 0xFF
        for lane, t in enumerate(ternary):
            rs2 |= TERNARY_CODE[t] << (8 + 2 * lane)
        rs2 |= (index & 0x3FF) << 18
        # mode 0 in the top nibble (already zero)
        return rs1, rs2

    @staticmethod
    def pack_mul_ter_start(conv_n: bool) -> tuple[int, int]:
        return (1 if conv_n else 0), 1 << 28

    @staticmethod
    def pack_mul_ter_read(group: int) -> tuple[int, int]:
        return 0, (2 << 28) | ((group & 0x3FF) << 8)

    @staticmethod
    def pack_chien_load(elements: list[int], right: bool) -> tuple[int, int]:
        if len(elements) != 4:
            raise PqAluError("chien loads carry four field elements")
        rs1 = (elements[0] & 0x1FF) | ((elements[1] & 0x1FF) << 16)
        rs2 = (elements[2] & 0x1FF) | ((elements[3] & 0x1FF) << 16)
        rs2 |= (1 if right else 0) << 28
        return rs1, rs2

    @staticmethod
    def pack_chien_step() -> tuple[int, int]:
        return 0, 2 << 28

    @staticmethod
    def pack_sha_write(address: int, data: bytes) -> tuple[int, int]:
        if len(data) != 4:
            raise PqAluError("sha transfers carry four bytes")
        return int.from_bytes(data, "little"), ((address & 0x3F) << 8)

    @staticmethod
    def pack_sha_hash() -> tuple[int, int]:
        return 0, 1 << 28

    @staticmethod
    def pack_sha_read(index: int) -> tuple[int, int]:
        return 0, (2 << 28) | ((index & 0x7) << 8)

    @staticmethod
    def pack_sha_reset() -> tuple[int, int]:
        return 0, 3 << 28
