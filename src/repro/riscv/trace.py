"""Execution tracing for the instruction-set simulator.

Debug aid for kernel development: wraps a :class:`~repro.riscv.cpu.Cpu`
and records one :class:`TraceEntry` per retired instruction — address,
disassembly, cycle delta, and the destination-register writeback — with
formatting helpers for human-readable listings.

Example::

    tracer = Tracer(cpu)
    tracer.run(max_instructions=100)
    print(tracer.format())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.riscv.cpu import Cpu, ExecutionResult
from repro.riscv.disasm import format_instruction
from repro.riscv.encoding import Instruction


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction."""

    index: int
    pc: int
    text: str
    cycles: int           # cycles charged by this instruction
    total_cycles: int     # cumulative, after the instruction
    rd: int | None        # destination register (None when no writeback)
    rd_value: int | None

    def format(self) -> str:
        """One human-readable trace line."""
        writeback = ""
        if self.rd is not None and self.rd != 0:
            writeback = f"   x{self.rd} <- {self.rd_value:#010x}"
        return (
            f"{self.index:6d}  {self.pc:#010x}  {self.text:<32s}"
            f" [{self.cycles:>4d} cyc]{writeback}"
        )


_WRITEBACK_FREE = {
    "sb", "sh", "sw", "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "ecall", "ebreak", "fence",
}


class Tracer:
    """Step a CPU while recording a bounded execution trace."""

    def __init__(self, cpu: Cpu, limit: int = 100_000):
        self.cpu = cpu
        self.limit = limit
        self.entries: list[TraceEntry] = []

    def step(self) -> TraceEntry:
        """Retire one instruction and record it."""
        cpu = self.cpu
        pc_before = cpu.pc
        cycles_before = cpu.cycles
        instr: Instruction = cpu.step()
        rd = None
        rd_value = None
        if instr.mnemonic not in _WRITEBACK_FREE:
            rd = instr.rd
            rd_value = cpu.regs[instr.rd]
        entry = TraceEntry(
            index=cpu.instret,
            pc=pc_before,
            text=format_instruction(instr),
            cycles=cpu.cycles - cycles_before,
            total_cycles=cpu.cycles,
            rd=rd,
            rd_value=rd_value,
        )
        if len(self.entries) < self.limit:
            self.entries.append(entry)
        return entry

    def run(self, max_instructions: int = 1_000_000) -> ExecutionResult:
        """Run to halt (or the limit), tracing every instruction."""
        cpu = self.cpu
        while not cpu.halted and cpu.instret < max_instructions:
            self.step()
        return ExecutionResult(
            cycles=cpu.cycles,
            instructions=cpu.instret,
            reason=cpu.halt_reason if cpu.halted else "limit",
            exit_code=cpu.regs[10],
        )

    # ------------------------------------------------------------------

    def format(self, last: int | None = None) -> str:
        """The trace as text (optionally only the last ``last`` entries)."""
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(e.format() for e in entries)

    def cycles_by_mnemonic(self) -> dict[str, int]:
        """Cycle attribution per mnemonic (a quick profiler)."""
        out: dict[str, int] = {}
        for entry in self.entries:
            mnemonic = entry.text.split()[0]
            out[mnemonic] = out.get(mnemonic, 0) + entry.cycles
        return out

    def hotspots(self, top: int = 10) -> list[tuple[int, int]]:
        """The ``top`` addresses by cumulative cycles (pc, cycles)."""
        by_pc: dict[int, int] = {}
        for entry in self.entries:
            by_pc[entry.pc] = by_pc.get(entry.pc, 0) + entry.cycles
        return sorted(by_pc.items(), key=lambda kv: -kv[1])[:top]
