"""``repro.schemes`` — the scheme registry behind the serving stack.

One :class:`KemScheme` adapter per KEM family (LAC, NewHope), a
registry assigning stable ``SchemeId``/``ParamId`` wire identities,
and :func:`resolve` — the single front door that turns any parameter
spec (a ``ParamId``, a scheme-native params object, a name, a wire id)
into the ``(scheme, params)`` pair the server, clients, router, and
facade all share.  See ``docs/SERVICE.md`` ("Schemes") for the wire
encoding.
"""

from repro.schemes.base import KemScheme
from repro.schemes.lac import LacScheme
from repro.schemes.newhope import NewHopeScheme
from repro.schemes.registry import (
    LAC_SCHEME,
    NEWHOPE_SCHEME,
    PARAM_NONE,
    ParamId,
    SchemeId,
    all_param_ids,
    all_schemes,
    param_id_of,
    params_for_wire_id,
    register_scheme,
    resolve,
    scheme_for,
    scheme_of,
    wire_id_for_params,
)

__all__ = [
    "KemScheme",
    "LAC_SCHEME",
    "LacScheme",
    "NEWHOPE_SCHEME",
    "NewHopeScheme",
    "PARAM_NONE",
    "ParamId",
    "SchemeId",
    "all_param_ids",
    "all_schemes",
    "param_id_of",
    "params_for_wire_id",
    "register_scheme",
    "resolve",
    "scheme_for",
    "scheme_of",
    "wire_id_for_params",
]
