"""The ``KemScheme`` seam: one protocol for every served KEM.

Before this package the serving stack spoke exactly one dialect —
``LacParams`` in, LAC ciphertexts out — even though the repo already
carried a complete NewHope CCA KEM and a hybrid channel.  A
:class:`KemScheme` adapter narrows a scheme to the five things the
serving stack actually needs:

* **keygen** from an explicit seed (so restarts re-derive hosted keys),
* **batch encaps/decaps over wire bytes** (the scheduler coalesces
  per key; the transport never sees scheme-native objects),
* **wire sizes** for request validation and response parsing,
* **param-set enumeration** so the registry can assign stable ids,
* the **public-key serialization** returned by KEYGEN.

Adapters are stateless aside from caching scheme-native engines per
parameter set; a ``pair`` is whatever the scheme's ``keygen`` returns
and is treated as opaque by every caller (the LAC pair is a
``KemKeyPair``, the NewHope pair is the ``NewHopeCcaSecretKey`` that
carries its own public material).

This module depends only on the math packages (``repro.lac``,
``repro.newhope``) — never on ``repro.serve`` or ``repro.backend`` —
so the protocol codec and the backend seam can import it without
cycles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import Any


class KemScheme(ABC):
    """One KEM family the serving stack can host.

    ``scheme_id`` is the stable wire identity (the high nibble of the
    frame param byte); ``name`` is the stable human label used in
    metrics and benchmarks.  Parameter sets are enumerated by
    :attr:`param_sets` and addressed on the wire by their index in it,
    so the tuple order is part of the wire protocol — append only.
    """

    #: Stable wire scheme id (high nibble of the frame param byte).
    scheme_id: int
    #: Stable lowercase label ("lac", "newhope").
    name: str

    # ------------------------------------------------------------------
    # parameter enumeration
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def param_sets(self) -> tuple[Any, ...]:
        """All parameter sets, in wire-id order (append only)."""

    def param_index(self, params: Any) -> int:
        """The wire index of ``params`` within :attr:`param_sets`."""
        for index, candidate in enumerate(self.param_sets):
            if candidate is params or candidate.name == params.name:
                return index
        raise ValueError(
            f"{params.name!r} is not a registered {self.name} parameter set"
        )

    @abstractmethod
    def owns_params(self, params: Any) -> bool:
        """Whether ``params`` is this scheme's parameter type."""

    # ------------------------------------------------------------------
    # size metadata (bytes on the wire)
    # ------------------------------------------------------------------

    def seed_len(self, params: Any) -> int:
        """KEYGEN seed length: PKE seed + implicit-rejection secret."""
        return int(params.seed_bytes) + 32

    def message_bytes(self, params: Any) -> int:
        """Fixed encapsulation message size (32 for both families)."""
        return int(params.message_bytes)

    def shared_secret_bytes(self, params: Any) -> int:
        """Shared-secret size (32 for both families)."""
        return 32

    @abstractmethod
    def public_key_wire_bytes(self, params: Any) -> int:
        """Serialized public-key size as returned by KEYGEN."""

    @abstractmethod
    def ciphertext_wire_bytes(self, params: Any) -> int:
        """Serialized ciphertext size as carried by ENCAPS/DECAPS."""

    # ------------------------------------------------------------------
    # the KEM itself (wire-byte in, wire-byte out)
    # ------------------------------------------------------------------

    @abstractmethod
    def keygen(self, params: Any, seed: bytes | None = None) -> Any:
        """Generate a key pair; ``seed`` (``seed_len`` bytes) fixes it."""

    @abstractmethod
    def public_key_bytes_of(self, params: Any, pair: Any) -> bytes:
        """Serialize the pair's public key for the KEYGEN response."""

    @abstractmethod
    def encaps_many(
        self, params: Any, pair: Any, messages: Sequence[bytes]
    ) -> list[tuple[bytes, bytes]]:
        """Encapsulate a batch; returns ``(ct_bytes, shared)`` pairs.

        Positionally bit-identical to the scheme's scalar reference
        with the same messages — that parity is what the conformance
        sweep pins.
        """

    @abstractmethod
    def decaps_many(
        self, params: Any, pair: Any, ciphertexts: Sequence[bytes]
    ) -> list[bytes]:
        """Decapsulate a batch of wire ciphertexts (implicit rejection)."""

    # ------------------------------------------------------------------

    def encaps_one(
        self, params: Any, pair: Any, message: bytes
    ) -> tuple[bytes, bytes]:
        """Single encapsulation (the SESSION_OPEN handshake path)."""
        return self.encaps_many(params, pair, [message])[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KemScheme {self.name} id={self.scheme_id}>"


__all__ = ["KemScheme"]
