"""The LAC adapter: ``KemScheme`` over :mod:`repro.lac`.

Wire formats are exactly the ones the serving stack has always used —
``PublicKey.to_bytes()`` / ``Ciphertext.to_bytes()`` — so LAC keys
registered through the scheme seam are bit-compatible with every
pre-registry client.  Batch entry points route through
:meth:`repro.lac.kem.LacKem.encaps_many` / ``decaps_many`` (the PR-1
vectorized fast path), so scheme-seam parity with the scalar reference
is inherited rather than re-proven.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.lac.kem import KemKeyPair, LacKem
from repro.lac.params import ALL_PARAMS, LacParams
from repro.lac.pke import Ciphertext
from repro.schemes.base import KemScheme


class LacScheme(KemScheme):
    """LAC-128/192/256 behind the scheme seam (wire scheme id 0)."""

    scheme_id = 0
    name = "lac"

    def __init__(self) -> None:
        self._kems: dict[str, LacKem] = {}

    @property
    def param_sets(self) -> tuple[LacParams, ...]:
        return ALL_PARAMS

    def owns_params(self, params: Any) -> bool:
        """True for ``LacParams`` values."""
        return isinstance(params, LacParams)

    # ------------------------------------------------------------------

    def kem_for(self, params: LacParams) -> LacKem:
        """The cached per-parameter-set engine (GenA tables, BCH)."""
        kem = self._kems.get(params.name)
        if kem is None or kem.params is not params:
            kem = LacKem(params)
            self._kems[params.name] = kem
        return kem

    # ------------------------------------------------------------------

    def public_key_wire_bytes(self, params: LacParams) -> int:
        """``PublicKey.to_bytes()`` length (seed || packed b)."""
        return params.public_key_bytes

    def ciphertext_wire_bytes(self, params: LacParams) -> int:
        """``Ciphertext.to_bytes()`` length for this parameter set."""
        return params.ciphertext_bytes

    # ------------------------------------------------------------------

    def keygen(self, params: LacParams, seed: bytes | None = None) -> KemKeyPair:
        """A fresh (or seed-derived) :class:`KemKeyPair`."""
        return self.kem_for(params).keygen(seed)

    def public_key_bytes_of(self, params: LacParams, pair: KemKeyPair) -> bytes:
        """The pair's public key in wire form."""
        return pair.public_key.to_bytes()

    def encaps_many(
        self, params: LacParams, pair: KemKeyPair, messages: Sequence[bytes]
    ) -> list[tuple[bytes, bytes]]:
        """Batch encapsulation via the PR-1 vectorized fast path."""
        results = self.kem_for(params).encaps_many(
            pair.public_key, messages=list(messages)
        )
        return [(r.ciphertext.to_bytes(), r.shared_secret) for r in results]

    def decaps_many(
        self, params: LacParams, pair: KemKeyPair, ciphertexts: Sequence[bytes]
    ) -> list[bytes]:
        """Batch decapsulation (implicit rejection included)."""
        cts = [Ciphertext.from_bytes(params, blob) for blob in ciphertexts]
        return self.kem_for(params).decaps_many(pair.secret_key, cts)


__all__ = ["LacScheme"]
