"""The NewHope adapter: ``KemScheme`` over :mod:`repro.newhope.cca`.

The CCA module serializes with ``_ct_bytes`` / ``_pk_bytes`` — raw
little-endian 16-bit NTT-domain coefficients and the *unpacked* 3-bit
compressed component (one byte per coefficient) — not the 14-bit
packed sizes ``NewHopeParams`` quotes for the paper comparison.  The
wire sizes here follow the serialization actually used by the FO
transform (the ciphertext digest hashes these exact bytes), so a
served decapsulation is bit-identical to the scalar reference:

* public key  = seed_a (32) || b_hat as ``<u2``        = 32 + 2n bytes
* ciphertext  = u_hat as ``<u2`` || v_compressed bytes = 3n bytes

The pair object is the :class:`~repro.newhope.cca.NewHopeCcaSecretKey`
itself — NewHope encapsulation needs the pk digest the secret key
carries, so unlike LAC there is no separate public half to pass
around.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.newhope.cca import NewHopeCcaKem, NewHopeCcaSecretKey, _pk_bytes
from repro.newhope.cpa import NewHopeCiphertext
from repro.newhope.params import NEWHOPE_512, NEWHOPE_1024, NewHopeParams
from repro.schemes.base import KemScheme


class NewHopeScheme(KemScheme):
    """NewHope512/1024 (CCA, FO transform) behind the scheme seam."""

    scheme_id = 1
    name = "newhope"

    def __init__(self) -> None:
        self._kems: dict[str, NewHopeCcaKem] = {}

    @property
    def param_sets(self) -> tuple[NewHopeParams, ...]:
        return (NEWHOPE_512, NEWHOPE_1024)

    def owns_params(self, params: Any) -> bool:
        """True for ``NewHopeParams`` values."""
        return isinstance(params, NewHopeParams)

    # ------------------------------------------------------------------

    def kem_for(self, params: NewHopeParams) -> NewHopeCcaKem:
        """The cached per-parameter-set CCA engine."""
        kem = self._kems.get(params.name)
        if kem is None or kem.params is not params:
            kem = NewHopeCcaKem(params)
            self._kems[params.name] = kem
        return kem

    # ------------------------------------------------------------------

    def public_key_wire_bytes(self, params: NewHopeParams) -> int:
        """seed_a (32) || b_hat as ``<u2`` = 32 + 2n bytes."""
        return params.seed_bytes + 2 * params.n

    def ciphertext_wire_bytes(self, params: NewHopeParams) -> int:
        """u_hat as ``<u2`` (2n) || v_compressed bytes (n) = 3n bytes."""
        return 3 * params.n

    # ------------------------------------------------------------------

    def keygen(
        self, params: NewHopeParams, seed: bytes | None = None
    ) -> NewHopeCcaSecretKey:
        """A fresh (or seed-derived) CCA secret key (pk included)."""
        return self.kem_for(params).keygen(seed)

    def public_key_bytes_of(
        self, params: NewHopeParams, pair: NewHopeCcaSecretKey
    ) -> bytes:
        """The pair's public key in wire form (FO-digest bytes)."""
        return _pk_bytes(pair.keys)

    def encaps_many(
        self,
        params: NewHopeParams,
        pair: NewHopeCcaSecretKey,
        messages: Sequence[bytes],
    ) -> list[tuple[bytes, bytes]]:
        """Sequential CCA encapsulations, serialized to wire bytes."""
        kem = self.kem_for(params)
        out: list[tuple[bytes, bytes]] = []
        for message in messages:
            ct, shared = kem.encaps(pair, message)
            out.append(
                (ct.u_hat.astype("<u2").tobytes() + ct.v_compressed.tobytes(), shared)
            )
        return out

    def decaps_many(
        self,
        params: NewHopeParams,
        pair: NewHopeCcaSecretKey,
        ciphertexts: Sequence[bytes],
    ) -> list[bytes]:
        """Sequential CCA decapsulations from wire-format ciphertexts."""
        kem = self.kem_for(params)
        return [kem.decaps(pair, self._parse_ct(params, blob)) for blob in ciphertexts]

    # ------------------------------------------------------------------

    def _parse_ct(self, params: NewHopeParams, blob: bytes) -> NewHopeCiphertext:
        expected = self.ciphertext_wire_bytes(params)
        if len(blob) != expected:
            raise ValueError(f"ciphertext must be {expected} bytes")
        split = 2 * params.n
        u_hat = np.frombuffer(blob[:split], dtype="<u2").astype(np.int64)
        v_compressed = np.frombuffer(blob[split:], dtype=np.uint8)
        return NewHopeCiphertext(params, u_hat, v_compressed)


__all__ = ["NewHopeScheme"]
