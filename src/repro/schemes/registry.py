"""The scheme registry: stable ids and one resolver for every spec.

Wire encoding of the frame param byte (the redesigned "v2" meaning):

    param byte = scheme_id << 4 | param_index      (PARAM_NONE = 0xFF)

LAC is scheme 0, so its historical wire ids 0/1/2 (LAC-128/192/256)
are unchanged — every pre-registry client and recorded trace stays
valid.  NewHope is scheme 1: 0x10 (NewHope512) and 0x11
(NewHope1024).  Scheme 15 is never registered, keeping 0xFF free as
the "no param" sentinel.

:func:`resolve` is the one front door: it accepts a :class:`ParamId`,
a registered scheme's own parameter object (``LacParams`` /
``NewHopeParams``), a parameter-set name (``"LAC-128"``,
``"NewHope512"``), or a raw wire id, and returns the
``(scheme, params)`` pair everything downstream works with.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from repro.schemes.base import KemScheme
from repro.schemes.lac import LacScheme
from repro.schemes.newhope import NewHopeScheme

#: Frame param byte meaning "no parameter set" (INFO, REMOVE_KEY, ...).
PARAM_NONE = 0xFF

_SCHEME_SHIFT = 4
_INDEX_MASK = 0x0F


class SchemeId(IntEnum):
    """Stable wire scheme identifiers (the param byte's high nibble)."""

    LAC = 0
    NEWHOPE = 1


@dataclass(frozen=True)
class ParamId:
    """A fully-qualified (scheme, parameter set) identity."""

    scheme: SchemeId
    index: int
    name: str

    @property
    def wire_id(self) -> int:
        """The frame param byte encoding this parameter set."""
        return (int(self.scheme) << _SCHEME_SHIFT) | self.index

    def __str__(self) -> str:
        return self.name


_SCHEMES_BY_ID: dict[int, KemScheme] = {}
_SCHEMES_BY_NAME: dict[str, KemScheme] = {}


def register_scheme(scheme: KemScheme) -> KemScheme:
    """Register ``scheme`` under its id and name (idempotent by name)."""
    if not 0 <= scheme.scheme_id < 15:
        raise ValueError("scheme_id must be in [0, 14] (15 reserves PARAM_NONE)")
    if len(scheme.param_sets) > _INDEX_MASK + 1:
        raise ValueError("a scheme may register at most 16 parameter sets")
    existing = _SCHEMES_BY_ID.get(scheme.scheme_id)
    if existing is not None and existing.name != scheme.name:
        raise ValueError(
            f"scheme id {scheme.scheme_id} already taken by {existing.name!r}"
        )
    _SCHEMES_BY_ID[scheme.scheme_id] = scheme
    _SCHEMES_BY_NAME[scheme.name] = scheme
    return scheme


def scheme_for(spec: SchemeId | int | str | KemScheme) -> KemScheme:
    """Look up a registered scheme by id, name, or identity."""
    if isinstance(spec, KemScheme):
        return spec
    if isinstance(spec, str):
        try:
            return _SCHEMES_BY_NAME[spec.lower()]
        except KeyError:
            raise ValueError(f"unknown scheme {spec!r}") from None
    try:
        return _SCHEMES_BY_ID[int(spec)]
    except KeyError:
        raise ValueError(f"unknown scheme id {int(spec)}") from None


def all_schemes() -> tuple[KemScheme, ...]:
    """Registered schemes in scheme-id order."""
    return tuple(_SCHEMES_BY_ID[k] for k in sorted(_SCHEMES_BY_ID))


def all_param_ids() -> tuple[ParamId, ...]:
    """Every registered (scheme, parameter set) identity."""
    out = []
    for scheme in all_schemes():
        for index, params in enumerate(scheme.param_sets):
            out.append(ParamId(SchemeId(scheme.scheme_id), index, params.name))
    return tuple(out)


# ----------------------------------------------------------------------
# wire-id codec
# ----------------------------------------------------------------------


def wire_id_for_params(params: Any) -> int:
    """The frame param byte for ``params`` (scheme-qualified)."""
    scheme = scheme_of(params)
    return (scheme.scheme_id << _SCHEME_SHIFT) | scheme.param_index(params)


def params_for_wire_id(wire_id: int) -> tuple[KemScheme, Any]:
    """Decode a frame param byte to its ``(scheme, params)`` pair."""
    if not 0 <= wire_id <= 0xFF or wire_id == PARAM_NONE:
        raise ValueError(f"unknown parameter id {wire_id}")
    scheme_id = wire_id >> _SCHEME_SHIFT
    index = wire_id & _INDEX_MASK
    scheme = _SCHEMES_BY_ID.get(scheme_id)
    if scheme is None:
        raise ValueError(f"unknown scheme id {scheme_id} in parameter id {wire_id}")
    sets = scheme.param_sets
    if index >= len(sets):
        raise ValueError(f"unknown {scheme.name} parameter index {index}")
    return scheme, sets[index]


def scheme_of(params: Any) -> KemScheme:
    """The registered scheme owning ``params`` (by parameter type)."""
    for scheme in all_schemes():
        if scheme.owns_params(params):
            return scheme
    raise ValueError(
        f"no registered scheme owns parameter type {type(params).__name__}"
    )


def param_id_of(params: Any) -> ParamId:
    """The :class:`ParamId` identity of ``params``."""
    scheme = scheme_of(params)
    return ParamId(
        SchemeId(scheme.scheme_id), scheme.param_index(params), params.name
    )


# ----------------------------------------------------------------------
# the one resolver
# ----------------------------------------------------------------------


def resolve(spec: Any) -> tuple[KemScheme, Any]:
    """Resolve any parameter spec to its ``(scheme, params)`` pair.

    Accepts a :class:`ParamId`, a scheme-native parameter object, a
    parameter-set name (case-sensitive, e.g. ``"LAC-128"``), or a raw
    wire id (``int``).
    """
    if isinstance(spec, ParamId):
        return params_for_wire_id(spec.wire_id)
    if isinstance(spec, int):
        return params_for_wire_id(spec)
    if isinstance(spec, str):
        for scheme in all_schemes():
            for params in scheme.param_sets:
                if params.name == spec:
                    return scheme, params
        raise ValueError(f"unknown parameter set {spec!r}")
    scheme = scheme_of(spec)
    # normalize to the registered instance when the names match
    for params in scheme.param_sets:
        if params is spec or params.name == spec.name:
            return scheme, params
    return scheme, spec


#: The default registered scheme instances.
LAC_SCHEME = register_scheme(LacScheme())
NEWHOPE_SCHEME = register_scheme(NewHopeScheme())


__all__ = [
    "LAC_SCHEME",
    "NEWHOPE_SCHEME",
    "PARAM_NONE",
    "ParamId",
    "SchemeId",
    "all_param_ids",
    "all_schemes",
    "param_id_of",
    "params_for_wire_id",
    "register_scheme",
    "resolve",
    "scheme_for",
    "scheme_of",
    "wire_id_for_params",
]
