"""``repro.serve`` — serving the batched KEM to concurrent clients.

PR 1 made single-key batches fast (``LacKem.encaps_many`` /
``decaps_many``, 11–14x); this package makes those kernels reachable
from *independent concurrent callers*, the way an accelerated PQC
primitive sits behind a host interface in the paper's co-design: a
length-prefixed binary protocol (:mod:`repro.serve.protocol`), an
adaptive micro-batch scheduler that coalesces requests per (op, key)
(:mod:`repro.serve.scheduler`), an asyncio server with bounded-queue
backpressure, per-request timeouts and graceful drain
(:mod:`repro.serve.server`), async and sync clients
(:mod:`repro.serve.client`), and serving metrics exported through the
``INFO`` op (:mod:`repro.serve.metrics`).

See ``docs/SERVICE.md`` for the protocol spec and tuning guide,
``docs/OBSERVABILITY.md`` for the tracing layer threaded through the
request path (:mod:`repro.trace`), and
``benchmarks/bench_service.py`` for measured end-to-end throughput.
"""

from repro.serve.config import (
    BACKEND_WORKERS_ENV_VAR,
    CYCLE_PRIORS_ENV_VAR,
    ServiceConfig,
    TenantQuota,
)
from repro.serve.client import (
    AsyncKemClient,
    BadRequest,
    DeadlineExceeded,
    KemClient,
    KeyNotFound,
    RequestTimedOut,
    RetryPolicy,
    ServiceBusy,
    ServiceClosed,
    ServiceDraining,
    ServiceError,
)
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.protocol import (
    DEFAULT_TENANT,
    QOS_EXT_SIZE,
    SESSION_NONCE_SIZE,
    SESSION_TAG_SIZE,
    TRACE_EXT_SIZE,
    VERSION_MAX,
    VERSION_QOS,
    VERSION_TRACED,
    Frame,
    Op,
    ProtocolError,
    QosSpec,
    Status,
    qos_for,
)
from repro.serve.scheduler import (
    AdaptiveDeadlinePolicy,
    Batch,
    DeficitRoundRobin,
    MicroBatchScheduler,
)
from repro.serve.server import HostedKey, KemService, ThreadedService
from repro.serve.slo import (
    DEFAULT_CYCLE_PRIORS_HZ,
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    Autoscaler,
    CycleCostEstimator,
    KernelEstimator,
    predicted_miss,
)

__all__ = [
    "AsyncKemClient",
    "AdaptiveDeadlinePolicy",
    "Autoscaler",
    "BACKEND_WORKERS_ENV_VAR",
    "BadRequest",
    "Batch",
    "CYCLE_PRIORS_ENV_VAR",
    "CycleCostEstimator",
    "DEFAULT_CYCLE_PRIORS_HZ",
    "DEFAULT_TENANT",
    "DeadlineExceeded",
    "DeficitRoundRobin",
    "Frame",
    "HostedKey",
    "KemClient",
    "KemService",
    "KernelEstimator",
    "KeyNotFound",
    "LatencyHistogram",
    "MicroBatchScheduler",
    "Op",
    "ProtocolError",
    "QOS_EXT_SIZE",
    "QosSpec",
    "RequestTimedOut",
    "RetryPolicy",
    "SESSION_NONCE_SIZE",
    "SESSION_TAG_SIZE",
    "ServiceBusy",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceDraining",
    "ServiceError",
    "ServiceMetrics",
    "Status",
    "TenantQuota",
    "ThreadedService",
    "TIER_BATCH",
    "TIER_INTERACTIVE",
    "TIER_STANDARD",
    "TRACE_EXT_SIZE",
    "VERSION_MAX",
    "VERSION_QOS",
    "VERSION_TRACED",
    "predicted_miss",
    "qos_for",
]
