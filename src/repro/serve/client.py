"""Clients for the KEM service: asyncio (multiplexing) and blocking.

:class:`AsyncKemClient` pipelines many in-flight requests over one
connection — each request gets a fresh 4-byte id, a background reader
task matches responses back to their futures, so 64 concurrent
``encaps`` calls need one socket, not 64.  :class:`KemClient` is the
synchronous counterpart for scripts and examples: one blocking socket,
one outstanding request at a time.

Both speak the frames of :mod:`repro.serve.protocol` and translate
non-OK statuses into typed exceptions (:class:`ServiceBusy` for
backpressure rejects, :class:`RequestTimedOut`, …), so callers can
implement retry policies without looking at status bytes.

Both also implement one *built-in* retry policy — pass a
:class:`RetryPolicy` (and usually a ``reconnect`` factory) and the
clients transparently survive ``BUSY`` windows, per-request timeouts,
injected ``INTERNAL`` failures and dropped connections with capped
exponential backoff plus jitter.  The retry contract mirrors the ops'
semantics: ``KEYGEN``/``ENCAPS``/``INFO`` are idempotent from the
caller's perspective and retried freely; ``DECAPS`` is **never retried
unless** ``retry_decaps=True`` — resubmitting a ciphertext is a policy
decision (it doubles any side-channel exposure of the secret-key path),
so the caller must opt in.  See ``docs/SERVICE.md`` for the full
failure-semantics table.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.lac.params import LacParams
from repro.lac.pke import PublicKey
from repro.schemes import resolve, wire_id_for_params
from repro.serve.protocol import (
    PARAM_NONE,
    Frame,
    Op,
    ProtocolError,
    QosSpec,
    Status,
    pack_decaps_request,
    pack_encaps_request,
    pack_key_id,
    pack_open_request,
    pack_seal_request,
    pack_session_open_request,
    qos_for,
    read_frame,
    recv_frame,
    send_frame,
    unpack_encaps_response,
    unpack_keygen_response,
    unpack_session_open_response,
    write_frame,
)
from repro.trace import NULL_TRACER, TraceContext, Tracer

# The typed response errors live in the unified hierarchy of
# :mod:`repro.errors` (all are ``KemError`` subclasses with stable
# ``.reason`` tags); this module remains their historical import home
# and attaches the wire ``Status`` each maps to — ``repro.errors``
# cannot import the protocol without a cycle.
from repro.errors import (
    BadRequest,
    DeadlineExceeded,
    KeyNotFound,
    RequestTimedOut,
    ServiceBusy,
    ServiceClosed,
    ServiceDraining,
    ServiceError,
)

ServiceError.status = Status.INTERNAL
ServiceBusy.status = Status.BUSY
RequestTimedOut.status = Status.TIMEOUT
ServiceDraining.status = Status.SHUTTING_DOWN
BadRequest.status = Status.BAD_REQUEST
KeyNotFound.status = Status.NOT_FOUND
ServiceClosed.status = Status.INTERNAL
DeadlineExceeded.status = Status.TIMEOUT

_T = TypeVar("_T")


_ERRORS: dict[Status, type[ServiceError]] = {
    cls.status: cls
    for cls in (ServiceBusy, RequestTimedOut, ServiceDraining, BadRequest, KeyNotFound)
}

#: Transport-shaped failures: the connection (not the request) is the
#: problem, so a retry needs a ``reconnect`` factory to be meaningful.
_CONNECTION_ERRORS = (ServiceClosed, DeadlineExceeded, ProtocolError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries: capped exponential backoff with jitter.

    Attempt ``k`` (0-based) that fails retryably sleeps
    ``min(max_delay_s, base_delay_s * 2**k)``, scaled down by up to
    ``jitter`` (a fraction in ``[0, 1]``; 0 = deterministic, 0.5 =
    each backoff uniformly in [50%, 100%] of nominal) before the next
    try — the standard recipe that keeps retry storms from
    synchronizing against a busy service.

    What is retried:

    * non-OK responses whose status is in ``retry_statuses``
      (``BUSY``, ``TIMEOUT`` and ``INTERNAL`` by default — all three
      mean "the request did not execute to completion, try again");
    * connection failures (:class:`ServiceClosed`,
      :class:`DeadlineExceeded`, ``ProtocolError``, ``OSError``) —
      these additionally trigger the client's ``reconnect`` factory,
      and are **not** retried when the client has none (a dead or
      desynchronized connection cannot be retried in place);
    * never ``BAD_REQUEST`` / ``NOT_FOUND`` (resending a malformed
      request cannot help);
    * ``DECAPS`` only when ``retry_decaps=True``: decapsulation
      touches the secret-key path, so resubmission is an explicit
      caller decision, not a transport default.

    ``attempt_timeout_s`` bounds each attempt; an attempt that exceeds
    it fails with :class:`DeadlineExceeded` (and counts as a
    connection failure, since an unanswered request leaves unknown
    state on the wire).
    """

    max_attempts: int = 5
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    jitter: float = 0.5
    attempt_timeout_s: float | None = 10.0
    retry_statuses: frozenset[Status] = frozenset(
        {Status.BUSY, Status.TIMEOUT, Status.INTERNAL}
    )
    retry_decaps: bool = False

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """The sleep before the retry that follows failed ``attempt``."""
        delay = min(self.max_delay_s, self.base_delay_s * (2.0**attempt))
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def should_retry(
        self, op: Op, exc: Exception, attempt: int, can_reconnect: bool
    ) -> bool:
        """Whether ``exc`` on 0-based ``attempt`` of ``op`` warrants a retry."""
        if attempt + 1 >= self.max_attempts:
            return False
        if op is Op.DECAPS and not self.retry_decaps:
            return False
        if isinstance(exc, _CONNECTION_ERRORS):
            return can_reconnect
        if isinstance(exc, ServiceError):
            return exc.status in self.retry_statuses
        return False


def raise_for_status(frame: Frame) -> Frame:
    """Return OK frames; raise the typed error for anything else."""
    if frame.status is Status.OK:
        return frame
    message = frame.payload.decode(errors="replace")
    raise _ERRORS.get(frame.status, ServiceError)(message)


class _KeyRegistry:
    """key id -> parameter set, learned from keygen or registered.

    Holds parameter sets of *any* registered scheme (resolved through
    :func:`repro.schemes.resolve`, so names, wire ids and
    :class:`~repro.schemes.ParamId` specs all work).
    """

    def __init__(self) -> None:
        self._params: dict[int, Any] = {}

    def register(self, key_id: int, spec: Any) -> None:
        _, params = resolve(spec)
        self._params[key_id] = params

    def params(self, key_id: int) -> Any:
        try:
            return self._params[key_id]
        except KeyError:
            raise KeyNotFound(
                f"key {key_id} unknown to this client; register_key() it"
            ) from None


#: Async reconnect factory: yields fresh (reader, writer) streams.
AsyncReconnect = Callable[
    [], Awaitable[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
]


class AsyncKemClient:
    """A pipelined asyncio client over one service connection.

    Create from streams (``KemService.connect`` or
    ``asyncio.open_connection``), then call :meth:`keygen`,
    :meth:`encaps`, :meth:`decaps`, :meth:`info` freely — including
    concurrently from many tasks.  Close with :meth:`aclose`.

    Resilience is opt-in: pass ``retry=RetryPolicy(...)`` to survive
    ``BUSY``/``TIMEOUT``/``INTERNAL`` responses, and additionally a
    ``reconnect`` factory (e.g. ``service.connect``) to survive dropped
    or corrupted connections — in-flight requests on a replaced
    connection fail over to fresh attempts transparently.

    Tracing is opt-in too: pass an enabled
    :class:`repro.trace.Tracer` and every request wire-propagates a
    fresh trace context (protocol version 2) and emits a
    ``client.request`` span covering the round trip, so server-side
    stage spans stitch to the client span that caused them.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: RetryPolicy | None = None,
        reconnect: AsyncReconnect | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._retry = retry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._reconnect_factory = reconnect
        self._rng = rng if rng is not None else random.Random()
        self._pending: dict[int, asyncio.Future[Frame]] = {}
        self._next_id = 0
        self._keys = _KeyRegistry()
        self._read_task: asyncio.Task[None] | None = None
        self._conn_gen = 0
        self._reconnect_lock = asyncio.Lock()

    @classmethod
    async def open_tcp(
        cls,
        host: str,
        port: int,
        retry: RetryPolicy | None = None,
        auto_reconnect: bool = False,
    ) -> AsyncKemClient:
        """Connect to a TCP service endpoint.

        With ``auto_reconnect=True`` the client re-dials the same
        endpoint when the connection fails mid-retry.
        """
        reader, writer = await asyncio.open_connection(host, port)

        async def redial() -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
            return await asyncio.open_connection(host, port)

        return cls(
            reader, writer, retry=retry, reconnect=redial if auto_reconnect else None
        )

    def register_key(self, key_id: int, spec: Any) -> None:
        """Teach the client a hosted key's parameter set (for keys it
        did not create itself, e.g. pre-provisioned server keys).
        ``spec`` is anything :func:`repro.schemes.resolve` accepts."""
        self._keys.register(key_id, spec)

    # ------------------------------------------------------------------

    async def request(
        self,
        op: Op,
        param_id: int = PARAM_NONE,
        payload: bytes = b"",
        *,
        trace: TraceContext | None = None,
        qos: QosSpec | None = None,
        tenant: int | None = None,
    ) -> Frame:
        """Send one frame and await its matching response (any status).

        ``trace`` propagates an *explicit* trace context on the wire
        instead of minting one: the caller owns the surrounding span
        and no ``client.request`` span is emitted — this is how the
        cluster router nests member-side ``server.request`` spans under
        its own ``router.forward`` span.

        ``qos`` attaches a deadline budget / priority tier extension
        (build one with :func:`repro.serve.protocol.qos_for`); the
        server may shed the request ``BUSY``/``TIMEOUT`` when the
        budget cannot be met.

        ``tenant`` declares the request's tenant on the wire (the QoS
        extension's sibling byte); the server applies that tenant's
        quotas and fair-share.  ``None`` omits the extension (the
        server reads tenant 0).
        """
        if self._read_task is None or self._read_task.done():
            # (re)start the reader: bound to the *current* connection's
            # stream and pending-map so a later reconnect cannot cross
            # generations
            self._read_task = asyncio.create_task(
                self._read_loop(self._reader, self._pending)
            )
        pending = self._pending
        request_id = self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        tracer = self._tracer
        explicit_trace = trace is not None
        t_start = 0.0
        if not explicit_trace and tracer.enabled:
            trace = TraceContext(tracer.new_trace_id(), tracer.new_span_id())
            t_start = tracer.clock()
        future: asyncio.Future[Frame] = asyncio.get_running_loop().create_future()
        pending[request_id] = future
        try:
            write_frame(
                self._writer,
                Frame(
                    op, request_id, param_id, payload=payload, trace=trace,
                    qos=qos, tenant=tenant,
                ),
            )
            await self._writer.drain()
            response = await future
            if trace is not None and not explicit_trace:
                tracer.record_span(
                    "client.request",
                    t_start,
                    tracer.clock() - t_start,
                    trace.trace_id,
                    span_id=trace.span_id,
                    tags={"op": op.name, "status": response.status.name},
                )
            return response
        finally:
            pending.pop(request_id, None)
            if not future.done():
                future.cancel()
            elif not future.cancelled():
                future.exception()  # retrieved: no GC warning if unawaited

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        pending: dict[int, asyncio.Future[Frame]],
    ) -> None:
        error: Exception = ServiceClosed("connection closed")
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                future = pending.pop(frame.request_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception as exc:  # noqa: BLE001 - surfaced via futures
            error = exc
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        pending.clear()

    async def _reconnect(self, seen_gen: int) -> None:
        """Replace the connection (once per failure generation).

        Concurrent requests that all observed the same dead connection
        race into this; only the first actually reconnects — the rest
        see the bumped generation and reuse the fresh streams.
        """
        assert self._reconnect_factory is not None
        async with self._reconnect_lock:
            if self._conn_gen != seen_gen:
                return  # a sibling request already reconnected
            old_writer, old_task = self._writer, self._read_task
            old_pending = self._pending
            self._pending = {}
            self._read_task = None
            self._reader, self._writer = await self._reconnect_factory()
            self._conn_gen += 1
            if old_task is not None:
                old_task.cancel()
                try:
                    await old_task
                except asyncio.CancelledError:
                    pass
            old_writer.close()
            try:
                await old_writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            stale = ServiceClosed("connection replaced during reconnect")
            for future in old_pending.values():
                if not future.done():
                    future.set_exception(stale)
            old_pending.clear()

    async def _call_with_retry(
        self, op: Op, attempt: Callable[[], Awaitable[_T]]
    ) -> _T:
        policy = self._retry
        if policy is None:
            return await attempt()
        attempt_no = 0
        while True:
            seen_gen = self._conn_gen
            try:
                if policy.attempt_timeout_s is not None:
                    return await asyncio.wait_for(attempt(), policy.attempt_timeout_s)
                return await attempt()
            except asyncio.TimeoutError:
                exc: Exception = DeadlineExceeded(
                    f"no response within {policy.attempt_timeout_s}s"
                )
            except Exception as caught:  # noqa: BLE001 - policy decides
                exc = caught
            can_reconnect = self._reconnect_factory is not None
            if not policy.should_retry(op, exc, attempt_no, can_reconnect):
                raise exc
            if can_reconnect and isinstance(exc, _CONNECTION_ERRORS):
                await self._reconnect(seen_gen)
            await asyncio.sleep(policy.backoff_s(attempt_no, self._rng))
            attempt_no += 1

    # ------------------------------------------------------------------

    async def keygen(
        self,
        spec: Any,
        seed: bytes | None = None,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> tuple[int, PublicKey | bytes]:
        """Generate and host a key pair; returns (key id, public key).

        ``spec`` is anything :func:`repro.schemes.resolve` accepts —
        a parameter object (:class:`LacParams`, the pre-PR-10
        signature), a :class:`~repro.schemes.ParamId`, a name
        (``"NewHope512"``) or a wire id.  LAC keys return a parsed
        :class:`PublicKey`; other schemes return the raw public-key
        wire bytes.

        ``deadline_s``/``tier`` attach a wire QoS extension — the
        server sheds the request rather than serve it past the budget.
        ``tenant`` declares the tenant the key (and request) belongs to.
        """
        _, params = resolve(spec)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        async def attempt() -> tuple[int, PublicKey | bytes]:
            frame = raise_for_status(
                await self.request(
                    Op.KEYGEN, wire_id_for_params(params), seed or b"",
                    qos=qos, tenant=tenant,
                )
            )
            key_id, pk_bytes = unpack_keygen_response(params, frame.payload)
            self._keys.register(key_id, params)
            if isinstance(params, LacParams):
                return key_id, PublicKey.from_bytes(params, pk_bytes)
            return key_id, pk_bytes

        return await self._call_with_retry(Op.KEYGEN, attempt)

    async def encaps(
        self,
        key_id: int,
        message: bytes | None = None,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> tuple[bytes, bytes]:
        """Encapsulate against a hosted key; returns (ct bytes, secret)."""
        params = self._keys.params(key_id)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        async def attempt() -> tuple[bytes, bytes]:
            frame = raise_for_status(
                await self.request(
                    Op.ENCAPS,
                    wire_id_for_params(params),
                    pack_encaps_request(key_id, message),
                    qos=qos,
                    tenant=tenant,
                )
            )
            return unpack_encaps_response(params, frame.payload)

        return await self._call_with_retry(Op.ENCAPS, attempt)

    async def decaps(
        self,
        key_id: int,
        ciphertext: bytes,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> bytes:
        """Decapsulate a ciphertext; returns the 32-byte shared secret.

        Not retried unless the policy sets ``retry_decaps=True``.
        """
        params = self._keys.params(key_id)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        async def attempt() -> bytes:
            frame = raise_for_status(
                await self.request(
                    Op.DECAPS,
                    wire_id_for_params(params),
                    pack_decaps_request(key_id, ciphertext),
                    qos=qos,
                    tenant=tenant,
                )
            )
            return frame.payload

        return await self._call_with_retry(Op.DECAPS, attempt)

    # -- the secure-channel session workload ---------------------------

    async def open_session(
        self,
        key_id: int,
        message: bytes | None = None,
        *,
        tenant: int | None = None,
    ) -> tuple[int, bytes, bytes]:
        """Open a secure channel on a hosted key.

        Returns ``(session id, kem ct bytes, shared secret)`` — the
        transcript prefix a :class:`repro.lac.hybrid.LacHybrid` opener
        needs.  The session is scoped to ``tenant``.
        """
        params = self._keys.params(key_id)

        async def attempt() -> tuple[int, bytes, bytes]:
            frame = raise_for_status(
                await self.request(
                    Op.SESSION_OPEN,
                    wire_id_for_params(params),
                    pack_session_open_request(key_id, message),
                    tenant=tenant,
                )
            )
            return unpack_session_open_response(params, frame.payload)

        return await self._call_with_retry(Op.SESSION_OPEN, attempt)

    async def seal(
        self,
        session_id: int,
        nonce: bytes,
        plaintext: bytes,
        *,
        tenant: int | None = None,
    ) -> bytes:
        """Seal ``plaintext`` on an open session; returns body ‖ tag."""

        async def attempt() -> bytes:
            frame = raise_for_status(
                await self.request(
                    Op.SEAL,
                    payload=pack_seal_request(session_id, nonce, plaintext),
                    tenant=tenant,
                )
            )
            return frame.payload

        return await self._call_with_retry(Op.SEAL, attempt)

    async def open_sealed(
        self,
        session_id: int,
        nonce: bytes,
        sealed: bytes,
        *,
        tenant: int | None = None,
    ) -> bytes:
        """Verify and decrypt ``sealed`` (body ‖ tag); returns plaintext.

        Raises :class:`BadRequest` on authentication failure.
        """

        async def attempt() -> bytes:
            frame = raise_for_status(
                await self.request(
                    Op.OPEN,
                    payload=pack_open_request(session_id, nonce, sealed),
                    tenant=tenant,
                )
            )
            return frame.payload

        return await self._call_with_retry(Op.OPEN, attempt)

    async def close_session(
        self, session_id: int, *, tenant: int | None = None
    ) -> None:
        """Close an open session (:class:`KeyNotFound` if absent)."""

        async def attempt() -> None:
            raise_for_status(
                await self.request(
                    Op.SESSION_CLOSE,
                    payload=pack_key_id(session_id),
                    tenant=tenant,
                )
            )

        await self._call_with_retry(Op.SESSION_CLOSE, attempt)

    async def info(self, text: bool = False) -> dict | str:
        """Fetch service metrics (dict, or the ``/metrics`` text dump)."""

        async def attempt() -> dict | str:
            frame = raise_for_status(
                await self.request(Op.INFO, payload=b"text" if text else b"")
            )
            if text:
                return frame.payload.decode()
            snapshot: dict = json.loads(frame.payload)
            return snapshot

        return await self._call_with_retry(Op.INFO, attempt)

    async def remove_key(self, key_id: int) -> None:
        """Stop hosting a key (raises :class:`KeyNotFound` if absent)."""

        async def attempt() -> None:
            raise_for_status(
                await self.request(Op.REMOVE_KEY, payload=pack_key_id(key_id))
            )

        await self._call_with_retry(Op.REMOVE_KEY, attempt)

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass


#: Blocking reconnect factory: yields a fresh connected socket.
SyncReconnect = Callable[[], socket.socket]


class KemClient:
    """The blocking client: one socket, one request in flight.

    Connect with a socket from
    :meth:`~repro.serve.server.ThreadedService.connect` or
    :meth:`KemClient.open_tcp`.  Usable as a context manager.

    Resilience mirrors :class:`AsyncKemClient`: pass ``retry`` (and a
    ``reconnect`` factory for connection failures — after a socket
    timeout or mid-frame drop the byte stream cannot be trusted, so
    the client always replaces the socket rather than resynchronizing).
    Tracing mirrors it too: pass an enabled
    :class:`repro.trace.Tracer` for wire-propagated trace contexts and
    ``client.request`` round-trip spans.
    """

    def __init__(
        self,
        sock: socket.socket,
        retry: RetryPolicy | None = None,
        reconnect: SyncReconnect | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        tracer: Tracer | None = None,
    ) -> None:
        self._sock = sock
        self._retry = retry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._reconnect_factory = reconnect
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._next_id = 0
        self._keys = _KeyRegistry()
        self._apply_timeout()

    @classmethod
    def open_tcp(
        cls,
        host: str,
        port: int,
        retry: RetryPolicy | None = None,
        auto_reconnect: bool = False,
    ) -> KemClient:
        """Connect to a TCP service endpoint (optionally re-dialing)."""

        def redial() -> socket.socket:
            return socket.create_connection((host, port))

        return cls(
            socket.create_connection((host, port)),
            retry=retry,
            reconnect=redial if auto_reconnect else None,
        )

    def _apply_timeout(self) -> None:
        if self._retry is not None and self._retry.attempt_timeout_s is not None:
            self._sock.settimeout(self._retry.attempt_timeout_s)

    def register_key(self, key_id: int, spec: Any) -> None:
        """Teach the client a hosted key's parameter set (``spec`` is
        anything :func:`repro.schemes.resolve` accepts)."""
        self._keys.register(key_id, spec)

    def request(
        self,
        op: Op,
        param_id: int = PARAM_NONE,
        payload: bytes = b"",
        *,
        qos: QosSpec | None = None,
        tenant: int | None = None,
    ) -> Frame:
        """Send one frame and block for its response (any status)."""
        request_id = self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        tracer = self._tracer
        trace: TraceContext | None = None
        t_start = 0.0
        if tracer.enabled:
            trace = TraceContext(tracer.new_trace_id(), tracer.new_span_id())
            t_start = tracer.clock()
        send_frame(
            self._sock,
            Frame(
                op, request_id, param_id, payload=payload, trace=trace,
                qos=qos, tenant=tenant,
            ),
        )
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ServiceClosed("connection closed mid-request")
            if frame.request_id == request_id:
                if trace is not None:
                    tracer.record_span(
                        "client.request",
                        t_start,
                        tracer.clock() - t_start,
                        trace.trace_id,
                        span_id=trace.span_id,
                        tags={"op": op.name, "status": frame.status.name},
                    )
                return frame

    def _call_with_retry(self, op: Op, attempt: Callable[[], _T]) -> _T:
        policy = self._retry
        if policy is None:
            return attempt()
        attempt_no = 0
        while True:
            try:
                return attempt()
            except socket.timeout:
                exc: Exception = DeadlineExceeded(
                    f"no response within {policy.attempt_timeout_s}s"
                )
            except Exception as caught:  # noqa: BLE001 - policy decides
                exc = caught
            can_reconnect = self._reconnect_factory is not None
            if not policy.should_retry(op, exc, attempt_no, can_reconnect):
                raise exc
            if can_reconnect and isinstance(exc, _CONNECTION_ERRORS):
                assert self._reconnect_factory is not None
                self._sock.close()
                self._sock = self._reconnect_factory()
                self._apply_timeout()
            self._sleep(policy.backoff_s(attempt_no, self._rng))
            attempt_no += 1

    def keygen(
        self,
        spec: Any,
        seed: bytes | None = None,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> tuple[int, PublicKey | bytes]:
        """Generate and host a key pair; returns (key id, public key).

        ``spec`` is anything :func:`repro.schemes.resolve` accepts;
        LAC keys return a parsed :class:`PublicKey`, other schemes the
        raw public-key wire bytes.
        """
        _, params = resolve(spec)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        def attempt() -> tuple[int, PublicKey | bytes]:
            frame = raise_for_status(
                self.request(
                    Op.KEYGEN, wire_id_for_params(params), seed or b"",
                    qos=qos, tenant=tenant,
                )
            )
            key_id, pk_bytes = unpack_keygen_response(params, frame.payload)
            self._keys.register(key_id, params)
            if isinstance(params, LacParams):
                return key_id, PublicKey.from_bytes(params, pk_bytes)
            return key_id, pk_bytes

        return self._call_with_retry(Op.KEYGEN, attempt)

    def encaps(
        self,
        key_id: int,
        message: bytes | None = None,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> tuple[bytes, bytes]:
        """Encapsulate against a hosted key; returns (ct bytes, secret)."""
        params = self._keys.params(key_id)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        def attempt() -> tuple[bytes, bytes]:
            frame = raise_for_status(
                self.request(
                    Op.ENCAPS,
                    wire_id_for_params(params),
                    pack_encaps_request(key_id, message),
                    qos=qos,
                    tenant=tenant,
                )
            )
            return unpack_encaps_response(params, frame.payload)

        return self._call_with_retry(Op.ENCAPS, attempt)

    def decaps(
        self,
        key_id: int,
        ciphertext: bytes,
        *,
        deadline_s: float | None = None,
        tier: int = 0,
        tenant: int | None = None,
    ) -> bytes:
        """Decapsulate a ciphertext; returns the 32-byte shared secret.

        Not retried unless the policy sets ``retry_decaps=True``.
        """
        params = self._keys.params(key_id)
        qos = qos_for(deadline_s=deadline_s, tier=tier)

        def attempt() -> bytes:
            frame = raise_for_status(
                self.request(
                    Op.DECAPS,
                    wire_id_for_params(params),
                    pack_decaps_request(key_id, ciphertext),
                    qos=qos,
                    tenant=tenant,
                )
            )
            return frame.payload

        return self._call_with_retry(Op.DECAPS, attempt)

    # -- the secure-channel session workload ---------------------------

    def open_session(
        self,
        key_id: int,
        message: bytes | None = None,
        *,
        tenant: int | None = None,
    ) -> tuple[int, bytes, bytes]:
        """Open a secure channel; returns (session id, kem ct, secret)."""
        params = self._keys.params(key_id)

        def attempt() -> tuple[int, bytes, bytes]:
            frame = raise_for_status(
                self.request(
                    Op.SESSION_OPEN,
                    wire_id_for_params(params),
                    pack_session_open_request(key_id, message),
                    tenant=tenant,
                )
            )
            return unpack_session_open_response(params, frame.payload)

        return self._call_with_retry(Op.SESSION_OPEN, attempt)

    def seal(
        self,
        session_id: int,
        nonce: bytes,
        plaintext: bytes,
        *,
        tenant: int | None = None,
    ) -> bytes:
        """Seal ``plaintext`` on an open session; returns body ‖ tag."""

        def attempt() -> bytes:
            frame = raise_for_status(
                self.request(
                    Op.SEAL,
                    payload=pack_seal_request(session_id, nonce, plaintext),
                    tenant=tenant,
                )
            )
            return frame.payload

        return self._call_with_retry(Op.SEAL, attempt)

    def open_sealed(
        self,
        session_id: int,
        nonce: bytes,
        sealed: bytes,
        *,
        tenant: int | None = None,
    ) -> bytes:
        """Verify and decrypt ``sealed`` (body ‖ tag); returns plaintext."""

        def attempt() -> bytes:
            frame = raise_for_status(
                self.request(
                    Op.OPEN,
                    payload=pack_open_request(session_id, nonce, sealed),
                    tenant=tenant,
                )
            )
            return frame.payload

        return self._call_with_retry(Op.OPEN, attempt)

    def close_session(
        self, session_id: int, *, tenant: int | None = None
    ) -> None:
        """Close an open session (:class:`KeyNotFound` if absent)."""

        def attempt() -> None:
            raise_for_status(
                self.request(
                    Op.SESSION_CLOSE,
                    payload=pack_key_id(session_id),
                    tenant=tenant,
                )
            )

        self._call_with_retry(Op.SESSION_CLOSE, attempt)

    def info(self, text: bool = False) -> dict | str:
        """Fetch service metrics (dict, or the ``/metrics`` text dump)."""

        def attempt() -> dict | str:
            frame = raise_for_status(
                self.request(Op.INFO, payload=b"text" if text else b"")
            )
            if text:
                return frame.payload.decode()
            snapshot: dict = json.loads(frame.payload)
            return snapshot

        return self._call_with_retry(Op.INFO, attempt)

    def remove_key(self, key_id: int) -> None:
        """Stop hosting a key (raises :class:`KeyNotFound` if absent)."""

        def attempt() -> None:
            raise_for_status(
                self.request(Op.REMOVE_KEY, payload=pack_key_id(key_id))
            )

        self._call_with_retry(Op.REMOVE_KEY, attempt)

    def close(self) -> None:
        """Close the socket."""
        self._sock.close()

    def __enter__(self) -> KemClient:
        """Context-manager entry (no-op)."""
        return self

    def __exit__(self, *exc) -> None:
        """Close on exit."""
        self.close()
