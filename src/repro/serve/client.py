"""Clients for the KEM service: asyncio (multiplexing) and blocking.

:class:`AsyncKemClient` pipelines many in-flight requests over one
connection — each request gets a fresh 4-byte id, a background reader
task matches responses back to their futures, so 64 concurrent
``encaps`` calls need one socket, not 64.  :class:`KemClient` is the
synchronous counterpart for scripts and examples: one blocking socket,
one outstanding request at a time.

Both speak the frames of :mod:`repro.serve.protocol` and translate
non-OK statuses into typed exceptions (:class:`ServiceBusy` for
backpressure rejects, :class:`RequestTimedOut`, …), so callers can
implement retry policies without looking at status bytes.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.lac.params import LacParams
from repro.lac.pke import PublicKey
from repro.serve.protocol import (
    PARAM_NONE,
    Frame,
    Op,
    Status,
    id_for_params,
    pack_decaps_request,
    pack_encaps_request,
    read_frame,
    recv_frame,
    send_frame,
    unpack_encaps_response,
    unpack_keygen_response,
    write_frame,
)


class ServiceError(Exception):
    """A non-OK response from the service (carries the status)."""

    status = Status.INTERNAL

    def __init__(self, message: str) -> None:
        super().__init__(f"{self.status.name}: {message}")


class ServiceBusy(ServiceError):
    """Rejected by backpressure: the request was never queued."""

    status = Status.BUSY


class RequestTimedOut(ServiceError):
    """Accepted but not served within the per-request timeout."""

    status = Status.TIMEOUT


class ServiceDraining(ServiceError):
    """The service is shutting down and takes no new work."""

    status = Status.SHUTTING_DOWN


class BadRequest(ServiceError):
    """The service rejected the request as malformed."""

    status = Status.BAD_REQUEST


class KeyNotFound(ServiceError):
    """The referenced key id is not hosted by the service."""

    status = Status.NOT_FOUND


class ServiceClosed(ServiceError):
    """The connection dropped with requests still in flight."""

    status = Status.INTERNAL


_ERRORS: dict[Status, type[ServiceError]] = {
    cls.status: cls
    for cls in (ServiceBusy, RequestTimedOut, ServiceDraining, BadRequest, KeyNotFound)
}


def raise_for_status(frame: Frame) -> Frame:
    """Return OK frames; raise the typed error for anything else."""
    if frame.status is Status.OK:
        return frame
    message = frame.payload.decode(errors="replace")
    raise _ERRORS.get(frame.status, ServiceError)(message)


class _KeyRegistry:
    """key id -> parameter set, learned from keygen or registered."""

    def __init__(self) -> None:
        self._params: dict[int, LacParams] = {}

    def register(self, key_id: int, params: LacParams) -> None:
        self._params[key_id] = params

    def params(self, key_id: int) -> LacParams:
        try:
            return self._params[key_id]
        except KeyError:
            raise KeyNotFound(
                f"key {key_id} unknown to this client; register_key() it"
            ) from None


class AsyncKemClient:
    """A pipelined asyncio client over one service connection.

    Create from streams (``KemService.connect`` or
    ``asyncio.open_connection``), then call :meth:`keygen`,
    :meth:`encaps`, :meth:`decaps`, :meth:`info` freely — including
    concurrently from many tasks.  Close with :meth:`aclose`.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._keys = _KeyRegistry()
        self._read_task: asyncio.Task | None = None

    @classmethod
    async def open_tcp(cls, host: str, port: int) -> "AsyncKemClient":
        """Connect to a TCP service endpoint."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    def register_key(self, key_id: int, params: LacParams) -> None:
        """Teach the client a hosted key's parameter set (for keys it
        did not create itself, e.g. pre-provisioned server keys)."""
        self._keys.register(key_id, params)

    # ------------------------------------------------------------------

    async def request(
        self, op: Op, param_id: int = PARAM_NONE, payload: bytes = b""
    ) -> Frame:
        """Send one frame and await its matching response (any status)."""
        if self._read_task is None:
            self._read_task = asyncio.create_task(self._read_loop())
        request_id = self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        write_frame(self._writer, Frame(op, request_id, param_id, payload=payload))
        await self._writer.drain()
        return await future

    async def _read_loop(self) -> None:
        error: Exception = ServiceClosed("connection closed")
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                future = self._pending.pop(frame.request_id, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception as exc:  # noqa: BLE001 - surfaced via futures
            error = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    # ------------------------------------------------------------------

    async def keygen(
        self, params: LacParams, seed: bytes | None = None
    ) -> tuple[int, PublicKey]:
        """Generate and host a key pair; returns (key id, public key)."""
        frame = raise_for_status(
            await self.request(Op.KEYGEN, id_for_params(params), seed or b"")
        )
        key_id, pk_bytes = unpack_keygen_response(params, frame.payload)
        self._keys.register(key_id, params)
        return key_id, PublicKey.from_bytes(params, pk_bytes)

    async def encaps(
        self, key_id: int, message: bytes | None = None
    ) -> tuple[bytes, bytes]:
        """Encapsulate against a hosted key; returns (ct bytes, secret)."""
        params = self._keys.params(key_id)
        frame = raise_for_status(
            await self.request(
                Op.ENCAPS, id_for_params(params), pack_encaps_request(key_id, message)
            )
        )
        return unpack_encaps_response(params, frame.payload)

    async def decaps(self, key_id: int, ciphertext: bytes) -> bytes:
        """Decapsulate a ciphertext; returns the 32-byte shared secret."""
        params = self._keys.params(key_id)
        frame = raise_for_status(
            await self.request(
                Op.DECAPS, id_for_params(params), pack_decaps_request(key_id, ciphertext)
            )
        )
        return frame.payload

    async def info(self, text: bool = False) -> dict | str:
        """Fetch service metrics (dict, or the ``/metrics`` text dump)."""
        frame = raise_for_status(
            await self.request(Op.INFO, payload=b"text" if text else b"")
        )
        return frame.payload.decode() if text else json.loads(frame.payload)

    async def aclose(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass


class KemClient:
    """The blocking client: one socket, one request in flight.

    Connect with a socket from
    :meth:`~repro.serve.server.ThreadedService.connect` or
    :meth:`KemClient.open_tcp`.  Usable as a context manager.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._next_id = 0
        self._keys = _KeyRegistry()

    @classmethod
    def open_tcp(cls, host: str, port: int) -> "KemClient":
        """Connect to a TCP service endpoint."""
        return cls(socket.create_connection((host, port)))

    def register_key(self, key_id: int, params: LacParams) -> None:
        """Teach the client a hosted key's parameter set."""
        self._keys.register(key_id, params)

    def request(
        self, op: Op, param_id: int = PARAM_NONE, payload: bytes = b""
    ) -> Frame:
        """Send one frame and block for its response (any status)."""
        request_id = self._next_id = (self._next_id + 1) & 0xFFFFFFFF
        send_frame(self._sock, Frame(op, request_id, param_id, payload=payload))
        while True:
            frame = recv_frame(self._sock)
            if frame is None:
                raise ServiceClosed("connection closed mid-request")
            if frame.request_id == request_id:
                return frame

    def keygen(
        self, params: LacParams, seed: bytes | None = None
    ) -> tuple[int, PublicKey]:
        """Generate and host a key pair; returns (key id, public key)."""
        frame = raise_for_status(
            self.request(Op.KEYGEN, id_for_params(params), seed or b"")
        )
        key_id, pk_bytes = unpack_keygen_response(params, frame.payload)
        self._keys.register(key_id, params)
        return key_id, PublicKey.from_bytes(params, pk_bytes)

    def encaps(
        self, key_id: int, message: bytes | None = None
    ) -> tuple[bytes, bytes]:
        """Encapsulate against a hosted key; returns (ct bytes, secret)."""
        params = self._keys.params(key_id)
        frame = raise_for_status(
            self.request(
                Op.ENCAPS, id_for_params(params), pack_encaps_request(key_id, message)
            )
        )
        return unpack_encaps_response(params, frame.payload)

    def decaps(self, key_id: int, ciphertext: bytes) -> bytes:
        """Decapsulate a ciphertext; returns the 32-byte shared secret."""
        params = self._keys.params(key_id)
        frame = raise_for_status(
            self.request(
                Op.DECAPS, id_for_params(params), pack_decaps_request(key_id, ciphertext)
            )
        )
        return frame.payload

    def info(self, text: bool = False) -> dict | str:
        """Fetch service metrics (dict, or the ``/metrics`` text dump)."""
        frame = raise_for_status(
            self.request(Op.INFO, payload=b"text" if text else b"")
        )
        return frame.payload.decode() if text else json.loads(frame.payload)

    def close(self) -> None:
        """Close the socket."""
        self._sock.close()

    def __enter__(self) -> "KemClient":
        """Context-manager entry (no-op)."""
        return self

    def __exit__(self, *exc) -> None:
        """Close on exit."""
        self.close()
