"""Frozen configuration for the KEM service.

:class:`ServiceConfig` replaces the flat keyword sprawl that
:class:`repro.serve.KemService` and :class:`ThreadedService`
constructors had accumulated — one immutable, validated value that can
be built once (from code, CLI flags or the environment) and handed to
any number of services.  The old flat kwargs still work through a
``DeprecationWarning`` shim on the constructors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping

from repro.backend.base import BACKEND_ENV_VAR, resolve_backend_name

#: Environment variable sizing the backend worker pool (``from_env``).
BACKEND_WORKERS_ENV_VAR = "REPRO_KEM_BACKEND_WORKERS"

#: Environment variable sizing the per-key transform cache (``from_env``);
#: ``0`` disables caching.
TRANSFORM_CACHE_ENV_VAR = "REPRO_KEM_TRANSFORM_CACHE"


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`repro.serve.KemService`.

    ``max_batch``
        flush-on-size threshold (matches the batch kernels' sweet
        spot);
    ``max_wait_us`` / ``min_wait_us``
        bounds of the adaptive flush deadline
        (:class:`~repro.serve.scheduler.AdaptiveDeadlinePolicy`);
    ``high_watermark``
        pending-request bound beyond which new work is rejected
        ``BUSY`` (the bounded queue);
    ``request_timeout``
        seconds an accepted request may wait before its batch runs;
        expired requests are answered ``TIMEOUT`` without executing
        (``None`` disables);
    ``backend``
        execution backend name (``"inline"``/``"thread"``/
        ``"process"``); ``None`` falls back to ``$REPRO_KEM_BACKEND``,
        then ``"thread"`` — see :mod:`repro.backend`;
    ``backend_workers``
        pool size of a backend the service creates (``None`` = the
        backend's default; a plain thread backend with no sizing
        shares the process-wide default pool);
    ``kernel_workers``
        intra-batch fan-out of the thread backend: each dispatched
        batch is split across this many threads (ignored by the
        process backend, which chunks batches across workers itself);
    ``transform_cache_entries``
        capacity of the per-key transform cache
        (:class:`repro.ring.KeyTransformCache`) the backend owns —
        ``0`` disables caching, ``None`` takes the backend default
        (see ``docs/PERFORMANCE.md``).
    """

    max_batch: int = 64
    max_wait_us: float = 2000.0
    min_wait_us: float = 50.0
    high_watermark: int = 4096
    request_timeout: float | None = 30.0
    backend: str | None = None
    backend_workers: int | None = None
    kernel_workers: int | None = None
    transform_cache_entries: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.high_watermark < 0:
            # 0 is legal: it rejects every request (used by backpressure
            # tests to force the BUSY path deterministically)
            raise ValueError("high_watermark must be >= 0")
        if self.max_wait_us < 0 or self.min_wait_us < 0:
            raise ValueError("wait bounds must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 or None")
        if self.backend_workers is not None and self.backend_workers < 1:
            raise ValueError("backend_workers must be >= 1")
        if self.kernel_workers is not None and self.kernel_workers < 1:
            raise ValueError("kernel_workers must be >= 1")
        if (
            self.transform_cache_entries is not None
            and self.transform_cache_entries < 0
        ):
            raise ValueError("transform_cache_entries must be >= 0")
        # validate eagerly so a typo'd name fails at config time, not
        # at service start (env fallback is deliberately not consulted
        # here — it is resolved when the service starts)
        if self.backend is not None:
            resolve_backend_name(self.backend)

    def resolved_backend(self) -> str:
        """The effective backend name (explicit, else env, else default)."""
        return resolve_backend_name(self.backend)

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None, **overrides: object
    ) -> "ServiceConfig":
        """A config picking up ``$REPRO_KEM_BACKEND`` (and pool size).

        Explicit ``overrides`` win over the environment.
        """
        env = os.environ if env is None else env
        kwargs: dict[str, object] = {}
        if env.get(BACKEND_ENV_VAR):
            kwargs["backend"] = env[BACKEND_ENV_VAR]
        if env.get(BACKEND_WORKERS_ENV_VAR):
            kwargs["backend_workers"] = int(env[BACKEND_WORKERS_ENV_VAR])
        if env.get(TRANSFORM_CACHE_ENV_VAR):
            kwargs["transform_cache_entries"] = int(env[TRANSFORM_CACHE_ENV_VAR])
        kwargs.update(overrides)
        return cls(**kwargs)  # type: ignore[arg-type]


def replace_config(config: ServiceConfig, **changes: object) -> ServiceConfig:
    """``dataclasses.replace`` for :class:`ServiceConfig` (re-validated)."""
    return replace(config, **changes)  # type: ignore[arg-type]


__all__ = [
    "BACKEND_WORKERS_ENV_VAR",
    "TRANSFORM_CACHE_ENV_VAR",
    "ServiceConfig",
    "replace_config",
]
