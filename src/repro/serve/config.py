"""Frozen configuration for the KEM service.

:class:`ServiceConfig` replaces the flat keyword sprawl that
:class:`repro.serve.KemService` and :class:`ThreadedService`
constructors had accumulated — one immutable, validated value that can
be built once (from code, CLI flags or the environment) and handed to
any number of services.  The old flat kwargs still work through a
``DeprecationWarning`` shim on the constructors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping

from repro.backend.base import BACKEND_ENV_VAR, resolve_backend_name
from repro.serve.slo import DEFAULT_CYCLE_PRIORS_HZ

#: Environment variable sizing the backend worker pool (``from_env``).
BACKEND_WORKERS_ENV_VAR = "REPRO_KEM_BACKEND_WORKERS"

#: Environment variable sizing the per-key transform cache (``from_env``);
#: ``0`` disables caching.
TRANSFORM_CACHE_ENV_VAR = "REPRO_KEM_TRANSFORM_CACHE"

#: Environment variable setting the default per-request deadline in
#: seconds for requests that carry no wire QoS (``from_env``).
DEADLINE_ENV_VAR = "REPRO_KEM_DEADLINE_S"

#: Environment variable enabling the worker autoscaler (``from_env``;
#: any non-empty value other than ``0``/``false`` turns it on).
AUTOSCALE_ENV_VAR = "REPRO_KEM_AUTOSCALE"

#: Environment variable naming the cycle-model profile that seeds the
#: SLO estimator with priors (``from_env``; empty = no priors).
CYCLE_PRIORS_ENV_VAR = "REPRO_KEM_CYCLE_PRIORS"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits enforced by the service.

    ``tenant`` is the wire tenant id the limits apply to.  ``None``
    for any limit means unlimited.  ``max_keys`` caps hosted keys
    (KEYGEN and programmatic registration both count);
    ``max_inflight`` caps accepted-but-unanswered requests;
    ``ops_per_s`` is a token-bucket rate with ``burst`` capacity
    (default: one second's worth).  Over-quota requests are answered
    ``BUSY`` and counted as ``kem_shed_total{reason="quota"}`` with
    the tenant label.  Tenants without a configured quota are admitted
    without limits (enforcement is opt-in per tenant).
    """

    tenant: int
    max_keys: int | None = None
    max_inflight: int | None = None
    ops_per_s: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.tenant <= 0xFF:
            raise ValueError("tenant id must fit one byte")
        if self.max_keys is not None and self.max_keys < 0:
            raise ValueError("max_keys must be >= 0 or None")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        if self.ops_per_s is not None and self.ops_per_s <= 0:
            raise ValueError("ops_per_s must be > 0 or None")
        if self.burst is not None and self.burst < 1:
            raise ValueError("burst must be >= 1 or None")

    @property
    def bucket_capacity(self) -> float:
        """Token-bucket capacity: ``burst``, else one second of rate."""
        if self.burst is not None:
            return self.burst
        return max(1.0, self.ops_per_s or 1.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`repro.serve.KemService`.

    ``max_batch``
        flush-on-size threshold (matches the batch kernels' sweet
        spot);
    ``max_wait_us`` / ``min_wait_us``
        bounds of the adaptive flush deadline
        (:class:`~repro.serve.scheduler.AdaptiveDeadlinePolicy`);
    ``high_watermark``
        pending-request bound beyond which new work is rejected
        ``BUSY`` (the bounded queue);
    ``request_timeout``
        seconds an accepted request may wait before its batch runs;
        expired requests are answered ``TIMEOUT`` without executing
        (``None`` disables);
    ``backend``
        execution backend name (``"inline"``/``"thread"``/
        ``"process"``); ``None`` falls back to ``$REPRO_KEM_BACKEND``,
        then ``"thread"`` — see :mod:`repro.backend`;
    ``backend_workers``
        pool size of a backend the service creates (``None`` = the
        backend's default; a plain thread backend with no sizing
        shares the process-wide default pool);
    ``kernel_workers``
        intra-batch fan-out of the thread backend: each dispatched
        batch is split across this many threads (ignored by the
        process backend, which chunks batches across workers itself);
    ``transform_cache_entries``
        capacity of the per-key transform cache
        (:class:`repro.ring.KeyTransformCache`) the backend owns —
        ``0`` disables caching, ``None`` takes the backend default
        (see ``docs/PERFORMANCE.md``);
    ``default_deadline_s``
        latency budget applied to requests that carry no wire QoS
        deadline (``None`` = such requests are never deadline-shed);
    ``shed_deadlines``
        master switch of deadline-aware shedding — when on, a request
        predicted to miss its deadline (``queue_wait + EWMA kernel
        estimate > deadline``, :func:`repro.serve.slo.predicted_miss`)
        is answered ``TIMEOUT``/``BUSY`` *without executing*;
    ``tier_watermarks``
        per-priority-tier admission fractions of ``high_watermark``
        (tier 0 first; requests of tier ``t`` are rejected ``BUSY``
        once pending work reaches ``high_watermark *
        tier_watermarks[t]``, so lower tiers shed first under
        pressure).  Wire tiers beyond the table map onto its last
        entry;
    ``autoscale`` and the ``autoscale_*`` knobs
        the worker autoscaler (:class:`repro.serve.slo.Autoscaler`):
        bounds of the pool, the evaluation period, the per-worker
        queue-depth thresholds of the hysteresis band, the
        post-resize cooldown and the consecutive-quiet-decisions
        requirement before shrinking;
    ``cycle_priors``
        cycle-model profile (``"ref"``/``"const_bch"``/``"ise"``) that
        seeds the SLO estimator with predicted per-``(op, parameter
        set)`` kernel costs before any batch has run
        (:class:`repro.serve.slo.CycleCostEstimator`); ``None`` (the
        default) keeps the classic cold-start EWMA.  Works with every
        backend — the prior describes the modelled core, the EWMA
        takes over as real observations arrive;
    ``cycle_priors_hz``
        the calibrated cycles-per-second figure converting cycle
        predictions into estimator seconds (see
        :data:`repro.serve.slo.DEFAULT_CYCLE_PRIORS_HZ`).
    """

    max_batch: int = 64
    max_wait_us: float = 2000.0
    min_wait_us: float = 50.0
    high_watermark: int = 4096
    request_timeout: float | None = 30.0
    backend: str | None = None
    backend_workers: int | None = None
    kernel_workers: int | None = None
    transform_cache_entries: int | None = None
    default_deadline_s: float | None = None
    shed_deadlines: bool = True
    tier_watermarks: tuple[float, ...] = (1.0, 0.75, 0.5)
    autoscale: bool = False
    autoscale_min_workers: int = 1
    autoscale_max_workers: int = 8
    autoscale_interval_s: float = 0.25
    autoscale_up_queue_per_worker: float = 4.0
    autoscale_down_queue_per_worker: float = 0.5
    autoscale_cooldown_s: float = 2.0
    autoscale_sustain: int = 3
    cycle_priors: str | None = None
    cycle_priors_hz: float = DEFAULT_CYCLE_PRIORS_HZ
    #: Per-tenant quotas (``()`` = no tenant is limited); see
    #: :class:`TenantQuota` and the "Tenants" section of
    #: ``docs/SERVICE.md``.
    tenant_quotas: tuple[TenantQuota, ...] = ()

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.high_watermark < 0:
            # 0 is legal: it rejects every request (used by backpressure
            # tests to force the BUSY path deterministically)
            raise ValueError("high_watermark must be >= 0")
        if self.max_wait_us < 0 or self.min_wait_us < 0:
            raise ValueError("wait bounds must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be > 0 or None")
        if self.backend_workers is not None and self.backend_workers < 1:
            raise ValueError("backend_workers must be >= 1")
        if self.kernel_workers is not None and self.kernel_workers < 1:
            raise ValueError("kernel_workers must be >= 1")
        if (
            self.transform_cache_entries is not None
            and self.transform_cache_entries < 0
        ):
            raise ValueError("transform_cache_entries must be >= 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0 or None")
        if not self.tier_watermarks:
            raise ValueError("tier_watermarks must name at least one tier")
        if any(not 0.0 < f <= 1.0 for f in self.tier_watermarks):
            raise ValueError("tier_watermarks fractions must be in (0, 1]")
        if self.autoscale_min_workers < 1:
            raise ValueError("autoscale_min_workers must be >= 1")
        if self.autoscale_max_workers < self.autoscale_min_workers:
            raise ValueError(
                "autoscale_max_workers must be >= autoscale_min_workers"
            )
        if self.autoscale_interval_s <= 0:
            raise ValueError("autoscale_interval_s must be > 0")
        if self.autoscale_down_queue_per_worker < 0:
            raise ValueError("autoscale_down_queue_per_worker must be >= 0")
        if (
            self.autoscale_up_queue_per_worker
            <= self.autoscale_down_queue_per_worker
        ):
            raise ValueError(
                "autoscale_up_queue_per_worker must exceed "
                "autoscale_down_queue_per_worker"
            )
        if self.autoscale_cooldown_s < 0:
            raise ValueError("autoscale_cooldown_s must be >= 0")
        if self.autoscale_sustain < 1:
            raise ValueError("autoscale_sustain must be >= 1")
        if self.cycle_priors_hz <= 0:
            raise ValueError("cycle_priors_hz must be > 0")
        seen_tenants = set()
        for quota in self.tenant_quotas:
            if not isinstance(quota, TenantQuota):
                raise ValueError("tenant_quotas entries must be TenantQuota")
            if quota.tenant in seen_tenants:
                raise ValueError(f"duplicate quota for tenant {quota.tenant}")
            seen_tenants.add(quota.tenant)
        if self.cycle_priors is not None:
            from repro.cosim import PROFILES

            if self.cycle_priors not in PROFILES:
                raise ValueError(
                    f"cycle_priors must be one of {PROFILES} or None"
                )
        # validate eagerly so a typo'd name fails at config time, not
        # at service start (env fallback is deliberately not consulted
        # here — it is resolved when the service starts)
        if self.backend is not None:
            resolve_backend_name(self.backend)

    def resolved_backend(self) -> str:
        """The effective backend name (explicit, else env, else default)."""
        return resolve_backend_name(self.backend)

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None, **overrides: object
    ) -> "ServiceConfig":
        """A config picking up ``$REPRO_KEM_BACKEND`` (and pool size).

        Explicit ``overrides`` win over the environment.
        """
        env = os.environ if env is None else env
        kwargs: dict[str, object] = {}
        if env.get(BACKEND_ENV_VAR):
            kwargs["backend"] = env[BACKEND_ENV_VAR]
        if env.get(BACKEND_WORKERS_ENV_VAR):
            kwargs["backend_workers"] = int(env[BACKEND_WORKERS_ENV_VAR])
        if env.get(TRANSFORM_CACHE_ENV_VAR):
            kwargs["transform_cache_entries"] = int(env[TRANSFORM_CACHE_ENV_VAR])
        if env.get(DEADLINE_ENV_VAR):
            kwargs["default_deadline_s"] = float(env[DEADLINE_ENV_VAR])
        if env.get(AUTOSCALE_ENV_VAR):
            kwargs["autoscale"] = env[AUTOSCALE_ENV_VAR].lower() not in (
                "0",
                "false",
            )
        if env.get(CYCLE_PRIORS_ENV_VAR):
            kwargs["cycle_priors"] = env[CYCLE_PRIORS_ENV_VAR]
        kwargs.update(overrides)
        return cls(**kwargs)  # type: ignore[arg-type]


def replace_config(config: ServiceConfig, **changes: object) -> ServiceConfig:
    """``dataclasses.replace`` for :class:`ServiceConfig` (re-validated)."""
    return replace(config, **changes)  # type: ignore[arg-type]


__all__ = [
    "AUTOSCALE_ENV_VAR",
    "BACKEND_WORKERS_ENV_VAR",
    "CYCLE_PRIORS_ENV_VAR",
    "DEADLINE_ENV_VAR",
    "TRANSFORM_CACHE_ENV_VAR",
    "ServiceConfig",
    "TenantQuota",
    "replace_config",
]
