"""Service metrics: counters, gauges and latency/batch histograms.

Follows the conventions of :mod:`repro.metrics` — free-form metric
names, no central registration, recording is cheap enough to leave on
— but measures the *serving* layer rather than modelled cycles:
request counts per (op, status), queue depth, in-flight batches, the
batch-size distribution the scheduler actually achieved, and
log-bucketed service-time histograms with p50/p99 estimates.

Two export formats, both served by the protocol's ``INFO`` op:

* :meth:`ServiceMetrics.snapshot` — a JSON-friendly dict (machine
  consumption: benchmarks, tests, dashboards);
* :meth:`ServiceMetrics.render_text` — a ``# HELP``-style plain-text
  dump in the spirit of a ``/metrics`` endpoint.

All mutators take an internal lock: the scheduler records from the
event loop while batch workers record from executor threads.
"""

from __future__ import annotations

import threading
from collections import Counter
from collections.abc import Callable


class LatencyHistogram:
    """Log2-bucketed latency histogram over microseconds.

    Bucket ``i`` counts observations in ``[2**i, 2**(i+1))`` µs (bucket
    0 also absorbs sub-microsecond values).  Quantiles are estimated at
    bucket upper bounds — coarse, but monotone, allocation-free and
    plenty for p50/p99 serving dashboards.
    """

    #: Buckets span 1 µs .. ~67 s; everything slower lands in the top bucket.
    BUCKETS = 26

    def __init__(self) -> None:
        self.counts = [0] * self.BUCKETS
        self.total = 0
        self.sum_us = 0.0

    def observe(self, micros: float) -> None:
        """Record one observation (in microseconds)."""
        micros = max(micros, 0.0)
        bucket = max(0, int(micros).bit_length() - 1) if micros >= 1 else 0
        self.counts[min(bucket, self.BUCKETS - 1)] += 1
        self.total += 1
        self.sum_us += micros

    def quantile(self, q: float) -> float:
        """Upper bound (µs) of the bucket holding the ``q`` quantile."""
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return float(2 ** (i + 1))
        return float(2**self.BUCKETS)

    def mean(self) -> float:
        """Exact mean of the observations (µs)."""
        return self.sum_us / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly summary (count, mean, p50/p99, populated buckets)."""
        return {
            "count": self.total,
            "mean_us": round(self.mean(), 3),
            "p50_us": self.quantile(0.50),
            "p99_us": self.quantile(0.99),
            "buckets_us": {
                str(2 ** (i + 1)): c for i, c in enumerate(self.counts) if c
            },
        }


class ServiceMetrics:
    """The service's metric registry (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: requests received, keyed by op name
        self.requests: Counter[str] = Counter()
        #: responses sent, keyed by (op name, status name)
        self.responses: Counter[tuple[str, str]] = Counter()
        #: flushes, keyed by what triggered them ("size"/"deadline"/"drain")
        self.flushes: Counter[str] = Counter()
        #: batch-size distribution actually dispatched, keyed by size
        self.batch_sizes: Counter[int] = Counter()
        #: injected faults, keyed by (site, kind) — fed by the fault
        #: plan's observer hook, so it accounts for every fired fault
        self.faults: Counter[tuple[str, str]] = Counter()
        #: connections torn down abnormally, keyed by reason
        #: ("protocol:<reason>", "disconnect", "internal", …)
        self.conn_errors: Counter[str] = Counter()
        #: requests shed to defend deadlines/tiers/quotas, keyed by
        #: (reason, tier, tenant) — "hopeless" (admission: the kernel
        #: estimate alone exceeds the deadline), "predicted-miss"
        #: (dispatch: queue wait + estimate exceeds it), "watermark" (a
        #: reduced per-tier admission limit rejected it), "missed"
        #: (completion: the batch finished past the budget, so the late
        #: OK became a TIMEOUT — KEYGEN exempt), "quota" (admission:
        #: the tenant exceeded its configured key/in-flight/ops-rate
        #: quota)
        self.sheds: Counter[tuple[str, int, int]] = Counter()
        #: requests received per tenant (the wire's tenant extension
        #: byte; 0 is the default tenant)
        self.tenant_requests: Counter[int] = Counter()
        #: worker-pool resizes applied by the autoscaler, keyed by
        #: direction ("up"/"down")
        self.autoscale_events: Counter[str] = Counter()
        self.latency: dict[str, LatencyHistogram] = {}
        #: per-stage request-path time, keyed by stage name
        #: ("admission"/"queue"/"dispatch"/"kernel"/"reply") — fed by
        #: the tracing layer, so populated only when tracing is on
        self.stage_seconds: dict[str, LatencyHistogram] = {}
        self.queue_depth = 0
        self.inflight_batches = 0
        #: high-watermark of queue depth over the service lifetime
        self.queue_depth_peak = 0
        #: execution-backend stats hook — the service points this at
        #: its :meth:`repro.backend.KemBackend.stats`, so snapshots and
        #: the text dump carry per-backend counters (submissions,
        #: failures, worker restarts) without the metrics layer knowing
        #: any backend internals
        self.backend_stats_provider: Callable[[], dict] | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_request(self, op: str) -> None:
        """Count one received request."""
        with self._lock:
            self.requests[op] += 1

    def record_response(self, op: str, status: str) -> None:
        """Count one sent response."""
        with self._lock:
            self.responses[op, status] += 1

    def record_batch(self, op: str, size: int, trigger: str) -> None:
        """Count one dispatched batch and what flushed it."""
        with self._lock:
            self.batch_sizes[size] += 1
            self.flushes[trigger] += 1

    def record_fault(self, site: str, kind: str) -> None:
        """Count one injected fault (the fault plan's observer hook)."""
        with self._lock:
            self.faults[site, kind] += 1

    def record_conn_error(self, reason: str) -> None:
        """Count one abnormally terminated connection."""
        with self._lock:
            self.conn_errors[reason] += 1

    def record_shed(self, reason: str, tier: int, tenant: int = 0) -> None:
        """Count one request shed to defend a deadline, tier or quota."""
        with self._lock:
            self.sheds[reason, tier, tenant] += 1

    def record_tenant_request(self, tenant: int) -> None:
        """Count one received request against its wire tenant."""
        with self._lock:
            self.tenant_requests[tenant] += 1

    def record_autoscale(self, direction: str) -> None:
        """Count one applied worker-pool resize (``"up"``/``"down"``)."""
        with self._lock:
            self.autoscale_events[direction] += 1

    def observe_latency(self, op: str, micros: float) -> None:
        """Record one request's queue-to-response service time (µs)."""
        with self._lock:
            histogram = self.latency.get(op)
            if histogram is None:
                histogram = self.latency[op] = LatencyHistogram()
            histogram.observe(micros)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one request's time in a serving stage (seconds)."""
        with self._lock:
            histogram = self.stage_seconds.get(stage)
            if histogram is None:
                histogram = self.stage_seconds[stage] = LatencyHistogram()
            histogram.observe(seconds * 1e6)

    def adjust_queue_depth(self, delta: int) -> None:
        """Move the queued-requests gauge (tracks its peak too)."""
        with self._lock:
            self.queue_depth += delta
            self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)

    def adjust_inflight(self, delta: int) -> None:
        """Move the in-flight-batches gauge."""
        with self._lock:
            self.inflight_batches += delta

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-friendly dict of every metric (served by ``INFO``)."""
        # read the provider outside the lock: it takes the backend's
        # own lock, and holding both invites an ordering deadlock
        provider = self.backend_stats_provider
        backend_stats = provider() if provider is not None else None
        with self._lock:
            batches = sum(self.batch_sizes.values())
            ops = sum(size * count for size, count in self.batch_sizes.items())
            return {
                "requests": dict(self.requests),
                "responses": {
                    f"{op}:{status}": count
                    for (op, status), count in self.responses.items()
                },
                "flushes": dict(self.flushes),
                "faults": {
                    f"{site}:{kind}": count
                    for (site, kind), count in sorted(self.faults.items())
                },
                "connection_errors": dict(self.conn_errors),
                "sheds": {
                    f"{reason}:{tier}:{tenant}": count
                    for (reason, tier, tenant), count in sorted(self.sheds.items())
                },
                "tenant_requests": {
                    str(tenant): count
                    for tenant, count in sorted(self.tenant_requests.items())
                },
                "autoscale_events": dict(self.autoscale_events),
                "batch_sizes": {
                    str(size): count
                    for size, count in sorted(self.batch_sizes.items())
                },
                "mean_batch_size": round(ops / batches, 3) if batches else 0.0,
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
                "inflight_batches": self.inflight_batches,
                "latency_us": {
                    op: histogram.to_dict()
                    for op, histogram in sorted(self.latency.items())
                },
                "stage_us": {
                    stage: histogram.to_dict()
                    for stage, histogram in sorted(self.stage_seconds.items())
                },
                "backend": backend_stats,
            }

    def render_text(self) -> str:
        """A ``/metrics``-style plain-text dump of the snapshot."""
        snap = self.snapshot()
        lines = [
            "# HELP kem_requests_total requests received, by op",
            "# TYPE kem_requests_total counter",
        ]
        for op, count in sorted(snap["requests"].items()):
            lines.append(f'kem_requests_total{{op="{op}"}} {count}')
        lines += [
            "# HELP kem_responses_total responses sent, by op and status",
            "# TYPE kem_responses_total counter",
        ]
        for key, count in sorted(snap["responses"].items()):
            op, status = key.split(":")
            lines.append(f'kem_responses_total{{op="{op}",status="{status}"}} {count}')
        lines += [
            "# HELP kem_injected_faults_total fault-plan fires, by site and kind",
            "# TYPE kem_injected_faults_total counter",
        ]
        for key, count in sorted(snap["faults"].items()):
            site, kind = key.split(":")
            lines.append(
                f'kem_injected_faults_total{{site="{site}",kind="{kind}"}} {count}'
            )
        lines += [
            "# HELP kem_connection_errors_total abnormal connection teardowns",
            "# TYPE kem_connection_errors_total counter",
        ]
        for reason, count in sorted(snap["connection_errors"].items()):
            lines.append(f'kem_connection_errors_total{{reason="{reason}"}} {count}')
        lines += [
            "# HELP kem_shed_total requests shed to defend deadlines,"
            " by reason, tier and tenant",
            "# TYPE kem_shed_total counter",
        ]
        for key, count in sorted(snap["sheds"].items()):
            rest, tenant = key.rsplit(":", 1)
            reason, tier = rest.rsplit(":", 1)
            lines.append(
                f'kem_shed_total{{reason="{reason}",tenant="{tenant}",'
                f'tier="{tier}"}} {count}'
            )
        lines += [
            "# HELP kem_tenant_requests_total requests received, by tenant",
            "# TYPE kem_tenant_requests_total counter",
        ]
        for tenant, count in sorted(snap["tenant_requests"].items()):
            lines.append(f'kem_tenant_requests_total{{tenant="{tenant}"}} {count}')
        lines += [
            "# HELP kem_autoscale_events_total applied worker-pool resizes,"
            " by direction",
            "# TYPE kem_autoscale_events_total counter",
        ]
        for direction, count in sorted(snap["autoscale_events"].items()):
            lines.append(
                f'kem_autoscale_events_total{{direction="{direction}"}} {count}'
            )
        lines += [
            "# HELP kem_batch_flushes_total dispatched batches, by trigger",
            "# TYPE kem_batch_flushes_total counter",
        ]
        for trigger, count in sorted(snap["flushes"].items()):
            lines.append(f'kem_batch_flushes_total{{trigger="{trigger}"}} {count}')
        lines += [
            "# HELP kem_batch_size dispatched batch sizes",
            "# TYPE kem_batch_size histogram",
        ]
        for size, count in snap["batch_sizes"].items():
            lines.append(f'kem_batch_size_bucket{{le="{size}"}} {count}')
        lines.append(f'kem_batch_size_mean {snap["mean_batch_size"]}')
        lines += [
            "# HELP kem_queue_depth requests currently queued",
            "# TYPE kem_queue_depth gauge",
            f"kem_queue_depth {snap['queue_depth']}",
            f"kem_queue_depth_peak {snap['queue_depth_peak']}",
            "# HELP kem_inflight_batches batches currently executing",
            "# TYPE kem_inflight_batches gauge",
            f"kem_inflight_batches {snap['inflight_batches']}",
        ]
        for op, histogram in snap["latency_us"].items():
            lines += [
                f"# HELP kem_latency_us_{op} service time (queue to response)",
                f"# TYPE kem_latency_us_{op} summary",
                f"kem_latency_us_{op}_count {histogram['count']}",
                f"kem_latency_us_{op}_mean {histogram['mean_us']}",
                f'kem_latency_us_{op}{{quantile="0.5"}} {histogram["p50_us"]}',
                f'kem_latency_us_{op}{{quantile="0.99"}} {histogram["p99_us"]}',
            ]
        backend = snap.get("backend")
        if backend:
            name = backend.get("name", "unknown")
            lines += [
                "# HELP kem_worker_restarts_total backend worker-pool restarts",
                "# TYPE kem_worker_restarts_total counter",
                f'kem_worker_restarts_total{{backend="{name}"}} '
                f'{backend.get("restarts", 0)}',
                "# HELP kem_backend_batches_total batches run by the backend",
                "# TYPE kem_backend_batches_total counter",
            ]
            for outcome in ("submitted", "completed", "failed"):
                lines.append(
                    f'kem_backend_batches_total{{backend="{name}",'
                    f'outcome="{outcome}"}} {backend.get(outcome, 0)}'
                )
            cache = backend.get("transform_cache")
            if cache:
                lines += [
                    "# HELP kem_transform_cache_total per-key transform cache"
                    " events",
                    "# TYPE kem_transform_cache_total counter",
                ]
                for event in ("hits", "misses", "evictions", "invalidations"):
                    lines.append(
                        f'kem_transform_cache_total{{backend="{name}",'
                        f'event="{event}"}} {cache.get(event, 0)}'
                    )
                if "entries" in cache:
                    lines += [
                        "# HELP kem_transform_cache_entries resident cache"
                        " entries",
                        "# TYPE kem_transform_cache_entries gauge",
                        f'kem_transform_cache_entries{{backend="{name}"}} '
                        f'{cache["entries"]}',
                    ]
            cosim = backend.get("cosim")
            if cosim and cosim.get("cycles"):
                profile = cosim.get("profile", "unknown")
                lines += [
                    "# HELP kem_cosim_cycles_total modelled cycles executed"
                    " on the simulated ISE core, by op and profile",
                    "# TYPE kem_cosim_cycles_total counter",
                    "# HELP kem_cosim_ops_total requests executed on the"
                    " simulated ISE core, by op and profile",
                    "# TYPE kem_cosim_ops_total counter",
                ]
                for key, record in sorted(cosim["cycles"].items()):
                    op, params = key.split(":", 1)
                    labels = (
                        f'op="{op}",profile="{profile}",params="{params}"'
                    )
                    lines.append(
                        f"kem_cosim_cycles_total{{{labels}}} "
                        f'{record.get("cycles", 0)}'
                    )
                    lines.append(
                        f"kem_cosim_ops_total{{{labels}}} "
                        f'{record.get("ops", 0)}'
                    )
        if snap["stage_us"]:
            lines += [
                "# HELP kem_stage_seconds request-path time per serving stage",
                "# TYPE kem_stage_seconds summary",
            ]
            for stage, histogram in snap["stage_us"].items():
                mean_s = histogram["mean_us"] / 1e6
                p50_s = histogram["p50_us"] / 1e6
                p99_s = histogram["p99_us"] / 1e6
                lines += [
                    f'kem_stage_seconds_count{{stage="{stage}"}} '
                    f'{histogram["count"]}',
                    f'kem_stage_seconds_mean{{stage="{stage}"}} {mean_s:.9f}',
                    f'kem_stage_seconds{{stage="{stage}",quantile="0.5"}} '
                    f"{p50_s:.9f}",
                    f'kem_stage_seconds{{stage="{stage}",quantile="0.99"}} '
                    f"{p99_s:.9f}",
                ]
        return "\n".join(lines) + "\n"
