"""Wire protocol of the KEM service: length-prefixed binary frames.

Every message — request or response — is one frame:

::

    offset  size  field
    0       2     magic   b"LK"
    2       1     version (1–8; ``version - 1`` is an extension bitmask)
    3       1     op      (Op: KEYGEN/ENCAPS/DECAPS/INFO/REMOVE_KEY/
                          SESSION_OPEN/SEAL/OPEN/SESSION_CLOSE)
    4       1     status  (Status; always OK in requests)
    5       1     param   (scheme-qualified parameter id, PARAM_NONE
                          for INFO)
    6       4     request id, big-endian (echoed in the response)
    10      4     payload length, big-endian
    14      ...   extensions (trace, then QoS, then tenant), payload

The ``param`` byte is scheme-qualified: the high nibble is the
:class:`repro.schemes.SchemeId` and the low nibble the parameter-set
index within that scheme (``scheme_id << 4 | param_index``).  LAC is
scheme 0, so the historical LAC wire ids 0/1/2 are unchanged;
NewHope512/1024 are 0x10/0x11.  The ``(scheme, param)`` pair is
declared once at KEYGEN and implied by the key id afterwards —
ENCAPS/DECAPS frames still carry it so the server can reject
key/parameter mismatches without a lookup round trip.

The version byte encodes which optional extensions sit *between* the
fixed header and the payload: ``version - 1`` is a bitmask with bit 0
for the trace extension, bit 1 for the QoS extension and bit 2 for
the tenant extension, so version 1 is the plain pre-extension frame,
2 is traced, 3 carries QoS, 4 carries both, and 5–8 add the tenant
byte to each of those shapes (extensions always serialize in
trace → QoS → tenant order).  The announced payload length never
includes extensions, and a version-1 frame is bit-identical to the
original protocol — every extension is strictly opt-in per frame.

**Trace extension** (bit 0): 12 bytes — an 8-byte trace id followed by
the 4-byte id of the span that caused the frame (both big-endian),
decoded into :class:`repro.trace.TraceContext`.  Clients emit it only
when they carry a live span, and servers echo a request's trace
context on its response so the caller can stitch the round trip into
one trace.

**QoS extension** (bit 1): 5 bytes — a 4-byte relative deadline in
microseconds (big-endian; 0 = no deadline, only a tier) followed by a
1-byte priority tier (0 = most latency-sensitive), decoded into
:class:`QosSpec`.  The deadline is a *budget*, not a wall-clock
timestamp: the server measures it from admission, so clients and
servers need no clock agreement.  Requests carry QoS; responses never
echo it (the server acted on it already).

**Tenant extension** (bit 2): 1 byte — the tenant id the request is
accounted against (0 is the default tenant; omitting the extension
means tenant 0).  The server enforces per-tenant quotas and
fair-share on it and labels its metrics/trace spans with it; like
QoS, responses never echo it.

The 4-byte request id lets one connection multiplex many in-flight
requests: responses carry the id of the request they answer and may
arrive in any order (the micro-batch scheduler freely reorders across
connections).  Payload layouts per op:

==========  ==========================================  =====================
op          request payload                             OK-response payload
==========  ==========================================  =====================
KEYGEN      optional seed (``seed_bytes + 32``, or      key id (4) || public
            empty for OS randomness)                    key bytes
ENCAPS      key id (4) || optional fixed message        ciphertext bytes ||
            (``message_bytes``, tests/KATs only)        shared secret (32)
DECAPS      key id (4) || ciphertext bytes              shared secret (32)
INFO        empty (JSON snapshot) or ``b"text"``        UTF-8 metrics dump
REMOVE_KEY  key id (4)                                  empty (``NOT_FOUND``
                                                        if not hosted)
SESSION_    key id (4) || optional fixed message        session id (4) ||
OPEN        (tests/KATs only)                           KEM ct bytes ||
                                                        shared secret (32)
SEAL        session id (4) || nonce (12) || plaintext   body || tag (32)
OPEN        session id (4) || nonce (12) || body ||     plaintext
            tag (32)
SESSION_    session id (4)                              empty (``NOT_FOUND``
CLOSE                                                   if unknown)
==========  ==========================================  =====================

The SESSION ops carry the stateful secure-channel workload:
SESSION_OPEN encapsulates under the named key (any registered scheme)
and derives the channel keys exactly as
:class:`repro.lac.hybrid.LacHybrid` does, so a transcript of
``KEM ct || nonce || body || tag`` is bit-identical to the offline
hybrid construction.  SEAL/OPEN then run the AEAD on the established
session without touching the KEM again.

Error responses (any non-OK :class:`Status`) carry a UTF-8 diagnostic
string as payload.  All sizes are fixed by the parameter set, so the
payloads need no internal framing.

This module is transport-agnostic: the same frames travel over asyncio
TCP streams, over an in-process socketpair (the test/benchmark
transport), or over a plain blocking socket (the sync client).
"""

from __future__ import annotations

import asyncio
import socket
import struct
import warnings
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Protocol

from repro.errors import ProtocolError
from repro.lac.params import ALL_PARAMS, LacParams
from repro.schemes import registry as _registry
from repro.schemes.registry import (
    params_for_wire_id as _params_for_wire_id,
    wire_id_for_params,
)
from repro.trace import TraceContext

#: First two bytes of every frame.
MAGIC = b"LK"

#: Protocol version carried in byte 2.
VERSION = 1

#: Version byte of a frame carrying the optional trace-context
#: extension (12 bytes between header and payload).
VERSION_TRACED = 2

#: Version byte of a frame carrying only the QoS extension.
VERSION_QOS = 3

#: Version byte of a frame carrying both extensions (trace bytes first).
VERSION_TRACED_QOS = 4

#: ``version - 1`` bitmask bits selecting the optional extensions.
_FLAG_TRACE = 0x1
_FLAG_QOS = 0x2
_FLAG_TENANT = 0x4

#: Highest version byte: all three extension bits set.
VERSION_MAX = VERSION + _FLAG_TRACE + _FLAG_QOS + _FLAG_TENANT

#: Upper bound on payload size; a frame announcing more is rejected
#: before any allocation (malformed peers must not balloon memory).
MAX_PAYLOAD = 1 << 20

#: ``param`` byte for ops that are not tied to a parameter set (INFO).
PARAM_NONE = 0xFF

_HEADER = struct.Struct(">2sBBBBII")

#: Size of the fixed frame header in bytes.
HEADER_SIZE = _HEADER.size

_TRACE_EXT = struct.Struct(">QI")

#: Size of the version-2 trace-context extension in bytes.
TRACE_EXT_SIZE = _TRACE_EXT.size

_QOS_EXT = struct.Struct(">IB")

#: Size of the QoS extension in bytes (deadline µs + tier).
QOS_EXT_SIZE = _QOS_EXT.size

#: Size of the tenant extension in bytes (one tenant id byte).
TENANT_EXT_SIZE = 1

#: The default tenant everything unlabelled is accounted against.
DEFAULT_TENANT = 0

#: Size of the AEAD nonce carried by SEAL/OPEN (LacHybrid's nonce).
SESSION_NONCE_SIZE = 12

#: Size of the AEAD tag carried by SEAL/OPEN (SHA-256 based HMAC-style).
SESSION_TAG_SIZE = 32

#: Largest deadline the 4-byte wire field can carry (µs; ~71 minutes).
MAX_DEADLINE_US = (1 << 32) - 1

_KEY_ID = struct.Struct(">I")


@dataclass(frozen=True)
class QosSpec:
    """Per-request quality-of-service hints carried by the QoS extension.

    ``deadline_us`` is a *relative* latency budget in microseconds
    (0 = no deadline); the server measures it from admission, sheds
    work predicted to miss it, and answers ``TIMEOUT``/``BUSY`` instead
    of burning kernel time on a response the client will discard.
    ``tier`` is the priority class (0 = interactive, higher = more
    sheddable); the server maps tiers beyond its configured watermark
    table onto the last (most sheddable) tier.
    """

    deadline_us: int = 0
    tier: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.deadline_us <= MAX_DEADLINE_US:
            raise ProtocolError(
                f"deadline_us must be in [0, {MAX_DEADLINE_US}]", "bad-qos"
            )
        if not 0 <= self.tier <= 0xFF:
            raise ProtocolError("tier must fit one byte", "bad-qos")

    @property
    def deadline_s(self) -> float | None:
        """The deadline budget in seconds (``None`` when unset)."""
        return self.deadline_us / 1e6 if self.deadline_us else None


def qos_for(deadline_s: float | None = None, tier: int = 0) -> QosSpec | None:
    """Build the wire QoS spec for client knobs (``None`` = no extension)."""
    if deadline_s is None and tier == 0:
        return None
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be > 0 or None")
    deadline_us = 0 if deadline_s is None else min(
        MAX_DEADLINE_US, max(1, round(deadline_s * 1e6))
    )
    return QosSpec(deadline_us, tier)


class Op(IntEnum):
    """Operation selector (byte 3 of the header)."""

    KEYGEN = 1
    ENCAPS = 2
    DECAPS = 3
    INFO = 4
    #: Stop hosting a key (the wire twin of
    #: :meth:`repro.serve.KemService.remove_keypair`; the cluster
    #: router uses it to pull keys off members during rebalancing).
    REMOVE_KEY = 5
    #: Open a secure-channel session: encapsulate under the named key
    #: and derive the channel keys (``LacHybrid``-compatible).
    SESSION_OPEN = 6
    #: Encrypt-and-MAC a plaintext on an open session.
    SEAL = 7
    #: Verify-and-decrypt a sealed body on an open session.
    OPEN = 8
    #: Discard an open session's channel keys.
    SESSION_CLOSE = 9


class Status(IntEnum):
    """Response status (byte 4 of the header; OK in requests)."""

    OK = 0
    #: Rejected by backpressure: pending work is beyond the service's
    #: high-watermark.  The request was *not* queued; retry later.
    BUSY = 1
    BAD_REQUEST = 2
    #: Queued but not served within the per-request timeout.
    TIMEOUT = 3
    #: The service is draining; no new work is accepted.
    SHUTTING_DOWN = 4
    INTERNAL = 5
    #: Unknown key id.
    NOT_FOUND = 6


class FrameReader(Protocol):
    """The read surface the frame codec needs (asyncio streams and the
    fault-injection wrappers of :mod:`repro.faults.transport` both
    provide it)."""

    async def readexactly(self, n: int) -> bytes:
        """Read exactly ``n`` bytes or raise ``IncompleteReadError``."""
        ...


class FrameWriter(Protocol):
    """The write surface the server holds per connection."""

    def write(self, data: bytes) -> None:
        """Queue bytes on the transport."""
        ...

    async def drain(self) -> None:
        """Flush the transport's write buffer."""
        ...

    def close(self) -> None:
        """Start closing the transport."""
        ...

    async def wait_closed(self) -> None:
        """Await the transport's teardown."""
        ...


#: LAC parameter-set ids on the wire, in ascending security order.
#: (Scheme 0's low nibble; kept for the legacy shims below.)
PARAM_IDS: dict[str, int] = {p.name: i for i, p in enumerate(ALL_PARAMS)}


def params_for_wire_id(wire_id: int) -> tuple[Any, Any]:
    """Decode a frame param byte into ``(scheme, params)``.

    Thin wrapper over :func:`repro.schemes.params_for_wire_id` that
    raises the protocol-typed error, since a bad param byte on the
    wire is a framing problem, not a library misuse.
    """
    try:
        return _params_for_wire_id(wire_id)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None


def id_for_params(params: LacParams) -> int:
    """Deprecated: the LAC-only wire id of a parameter set.

    Use :func:`repro.schemes.wire_id_for_params`, which qualifies the
    id with the scheme (identical values for LAC parameter sets).
    """
    warnings.warn(
        "id_for_params() is deprecated; use "
        "repro.schemes.wire_id_for_params()",
        DeprecationWarning,
        stacklevel=2,
    )
    return PARAM_IDS[params.name]


def params_for_id(param_id: int) -> LacParams:
    """Deprecated: the LAC parameter set behind a wire id.

    Use :func:`params_for_wire_id`, which returns the owning scheme
    alongside the parameter set and understands non-LAC ids.
    """
    warnings.warn(
        "params_for_id() is deprecated; use params_for_wire_id()",
        DeprecationWarning,
        stacklevel=2,
    )
    if not 0 <= param_id < len(ALL_PARAMS):
        raise ProtocolError(f"unknown parameter-set id {param_id}")
    return ALL_PARAMS[param_id]


@dataclass
class Frame:
    """One protocol message (either direction).

    ``trace`` is the optional propagated trace context, ``qos`` the
    optional per-request deadline/tier spec and ``tenant`` the
    optional tenant id (``None`` means the default tenant 0); each
    present extension sets its bit in the version byte (so a frame
    with none is bit-identical to the pre-extension protocol).
    """

    op: Op
    request_id: int
    param_id: int = PARAM_NONE
    status: Status = Status.OK
    payload: bytes = field(default=b"", repr=False)
    trace: TraceContext | None = None
    qos: QosSpec | None = None
    tenant: int | None = None

    def to_bytes(self) -> bytes:
        """Serialize header (+ optional extensions) + payload."""
        if len(self.payload) > MAX_PAYLOAD:
            raise ProtocolError(
                f"payload of {len(self.payload)} bytes too large", "oversized"
            )
        if self.tenant is not None and not 0 <= self.tenant <= 0xFF:
            raise ProtocolError("tenant id must fit one byte", "bad-tenant")
        version = VERSION
        if self.trace is not None:
            version += _FLAG_TRACE
        if self.qos is not None:
            version += _FLAG_QOS
        if self.tenant is not None:
            version += _FLAG_TENANT
        header = _HEADER.pack(
            MAGIC,
            version,
            int(self.op),
            int(self.status),
            self.param_id,
            self.request_id,
            len(self.payload),
        )
        extensions = b""
        if self.trace is not None:
            extensions += _TRACE_EXT.pack(self.trace.trace_id, self.trace.span_id)
        if self.qos is not None:
            extensions += _QOS_EXT.pack(self.qos.deadline_us, self.qos.tier)
        if self.tenant is not None:
            extensions += bytes([self.tenant])
        return header + extensions + self.payload


def parse_header(header: bytes) -> tuple[Frame, int]:
    """Decode a 14-byte header into a payload-less frame + payload length.

    Raises :class:`ProtocolError` on bad magic, version, op, status or
    an oversized announced payload.  Versions 1–8 are accepted; use
    :func:`header_has_trace` / :func:`header_has_qos` /
    :func:`header_has_tenant` to learn which extensions follow, and
    :func:`parse_trace_ext` / :func:`parse_qos_ext` to decode them
    into the frame.
    """
    if len(header) != HEADER_SIZE:
        raise ProtocolError(f"header must be {HEADER_SIZE} bytes", "truncated")
    magic, version, op, status, param_id, request_id, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}", "bad-magic")
    if not VERSION <= version <= VERSION_MAX:
        raise ProtocolError(f"unsupported version {version}", "bad-version")
    try:
        op = Op(op)
        status = Status(status)
    except ValueError as exc:
        raise ProtocolError(str(exc), "bad-enum") from None
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"announced payload of {length} bytes too large", "oversized"
        )
    return Frame(op, request_id, param_id, status), length


def header_has_trace(header: bytes) -> bool:
    """Whether this (already validated) header announces a trace extension."""
    return bool((header[2] - VERSION) & _FLAG_TRACE)


def header_has_qos(header: bytes) -> bool:
    """Whether this (already validated) header announces a QoS extension."""
    return bool((header[2] - VERSION) & _FLAG_QOS)


def header_has_tenant(header: bytes) -> bool:
    """Whether this (already validated) header announces a tenant byte."""
    return bool((header[2] - VERSION) & _FLAG_TENANT)


def parse_trace_ext(extension: bytes) -> TraceContext:
    """Decode the 12-byte trace extension."""
    if len(extension) != TRACE_EXT_SIZE:
        raise ProtocolError(
            f"trace extension must be {TRACE_EXT_SIZE} bytes", "truncated"
        )
    trace_id, span_id = _TRACE_EXT.unpack(extension)
    return TraceContext(trace_id, span_id)


def parse_qos_ext(extension: bytes) -> QosSpec:
    """Decode the 5-byte QoS extension."""
    if len(extension) != QOS_EXT_SIZE:
        raise ProtocolError(
            f"QoS extension must be {QOS_EXT_SIZE} bytes", "truncated"
        )
    deadline_us, tier = _QOS_EXT.unpack(extension)
    return QosSpec(deadline_us, tier)


def decode_frame(buf: bytes) -> tuple[Frame, int]:
    """Decode one frame from the head of ``buf``.

    Returns ``(frame, bytes_consumed)``; raises :class:`ProtocolError`
    if ``buf`` does not hold a complete frame (stream transports use
    the incremental readers instead).
    """
    if len(buf) < HEADER_SIZE:
        raise ProtocolError("truncated header", "truncated")
    frame, length = parse_header(buf[:HEADER_SIZE])
    offset = HEADER_SIZE
    if header_has_trace(buf[:HEADER_SIZE]):
        if len(buf) < offset + TRACE_EXT_SIZE:
            raise ProtocolError("truncated trace extension", "truncated")
        frame.trace = parse_trace_ext(buf[offset : offset + TRACE_EXT_SIZE])
        offset += TRACE_EXT_SIZE
    if header_has_qos(buf[:HEADER_SIZE]):
        if len(buf) < offset + QOS_EXT_SIZE:
            raise ProtocolError("truncated QoS extension", "truncated")
        frame.qos = parse_qos_ext(buf[offset : offset + QOS_EXT_SIZE])
        offset += QOS_EXT_SIZE
    if header_has_tenant(buf[:HEADER_SIZE]):
        if len(buf) < offset + TENANT_EXT_SIZE:
            raise ProtocolError("truncated tenant extension", "truncated")
        frame.tenant = buf[offset]
        offset += TENANT_EXT_SIZE
    end = offset + length
    if len(buf) < end:
        raise ProtocolError("truncated payload", "truncated")
    frame.payload = bytes(buf[offset:end])
    return frame, end


# ---------------------------------------------------------------------------
# stream transports
# ---------------------------------------------------------------------------


async def read_frame(reader: FrameReader) -> Frame | None:
    """Read one frame from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on garbage or a mid-frame disconnect.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header", "truncated") from None
    frame, length = parse_header(header)
    if header_has_trace(header):
        try:
            frame.trace = parse_trace_ext(await reader.readexactly(TRACE_EXT_SIZE))
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                "connection closed mid-trace-extension", "truncated"
            ) from None
    if header_has_qos(header):
        try:
            frame.qos = parse_qos_ext(await reader.readexactly(QOS_EXT_SIZE))
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                "connection closed mid-qos-extension", "truncated"
            ) from None
    if header_has_tenant(header):
        try:
            frame.tenant = (await reader.readexactly(TENANT_EXT_SIZE))[0]
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                "connection closed mid-tenant-extension", "truncated"
            ) from None
    if length:
        try:
            frame.payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-payload", "truncated") from None
    return frame


def write_frame(writer: FrameWriter, frame: Frame) -> None:
    """Queue one frame on an asyncio stream (caller drains)."""
    writer.write(frame.to_bytes())


def recv_frame(sock: socket.socket) -> Frame | None:
    """Blocking twin of :func:`read_frame` for the sync client."""
    header = _recv_exactly(sock, HEADER_SIZE, eof_ok=True)
    if header is None:
        return None
    frame, length = parse_header(header)
    if header_has_trace(header):
        extension = _recv_exactly(sock, TRACE_EXT_SIZE)
        assert extension is not None
        frame.trace = parse_trace_ext(extension)
    if header_has_qos(header):
        extension = _recv_exactly(sock, QOS_EXT_SIZE)
        assert extension is not None
        frame.qos = parse_qos_ext(extension)
    if header_has_tenant(header):
        extension = _recv_exactly(sock, TENANT_EXT_SIZE)
        assert extension is not None
        frame.tenant = extension[0]
    if length:
        payload = _recv_exactly(sock, length)
        assert payload is not None
        frame.payload = payload
    return frame


def send_frame(sock: socket.socket, frame: Frame) -> None:
    """Blocking send of one whole frame."""
    sock.sendall(frame.to_bytes())


def _recv_exactly(sock: socket.socket, n: int, eof_ok: bool = False) -> bytes | None:
    parts: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame", "truncated")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# payload packing/unpacking
# ---------------------------------------------------------------------------


def pack_key_id(key_id: int) -> bytes:
    """Big-endian 4-byte key id."""
    return _KEY_ID.pack(key_id)


def unpack_key_id(payload: bytes) -> tuple[int, bytes]:
    """Split a payload into its leading key id and the remainder."""
    if len(payload) < _KEY_ID.size:
        raise ProtocolError("payload too short for a key id")
    return _KEY_ID.unpack_from(payload)[0], payload[_KEY_ID.size:]


def pack_encaps_request(key_id: int, message: bytes | None = None) -> bytes:
    """ENCAPS request payload: key id plus an optional fixed message."""
    return pack_key_id(key_id) + (message or b"")


def unpack_encaps_response(params: Any, payload: bytes) -> tuple[bytes, bytes]:
    """Split an ENCAPS OK-payload into (ciphertext bytes, shared secret).

    ``params`` may be any registered scheme's parameter set (or a
    :class:`repro.schemes.ParamId`/name); the ciphertext size is read
    from the owning scheme's wire metadata.
    """
    scheme, resolved = _registry.resolve(params)
    ct_bytes = scheme.ciphertext_wire_bytes(resolved)
    expected = ct_bytes + scheme.shared_secret_bytes(resolved)
    if len(payload) != expected:
        raise ProtocolError(
            f"ENCAPS response must be {expected} bytes, got {len(payload)}"
        )
    return payload[:ct_bytes], payload[ct_bytes:]


def pack_decaps_request(key_id: int, ciphertext: bytes) -> bytes:
    """DECAPS request payload: key id plus the ciphertext bytes."""
    return pack_key_id(key_id) + ciphertext


def unpack_keygen_response(params: Any, payload: bytes) -> tuple[int, bytes]:
    """Split a KEYGEN OK-payload into (key id, public-key bytes)."""
    scheme, resolved = _registry.resolve(params)
    pk_bytes = scheme.public_key_wire_bytes(resolved)
    key_id, pk = unpack_key_id(payload)
    if len(pk) != pk_bytes:
        raise ProtocolError(f"KEYGEN response pk must be {pk_bytes} bytes")
    return key_id, pk


# ---------------------------------------------------------------------------
# secure-channel session payloads
# ---------------------------------------------------------------------------


def pack_session_open_request(key_id: int, message: bytes | None = None) -> bytes:
    """SESSION_OPEN request: key id plus an optional fixed KEM message."""
    return pack_key_id(key_id) + (message or b"")


def unpack_session_open_response(
    params: Any, payload: bytes
) -> tuple[int, bytes, bytes]:
    """Split a SESSION_OPEN OK-payload into (session id, KEM ct, shared)."""
    scheme, resolved = _registry.resolve(params)
    ct_bytes = scheme.ciphertext_wire_bytes(resolved)
    expected = _KEY_ID.size + ct_bytes + scheme.shared_secret_bytes(resolved)
    if len(payload) != expected:
        raise ProtocolError(
            f"SESSION_OPEN response must be {expected} bytes, got {len(payload)}"
        )
    session_id, rest = unpack_key_id(payload)
    return session_id, rest[:ct_bytes], rest[ct_bytes:]


def pack_seal_request(session_id: int, nonce: bytes, plaintext: bytes) -> bytes:
    """SEAL request: session id || nonce (12) || plaintext."""
    if len(nonce) != SESSION_NONCE_SIZE:
        raise ProtocolError(f"nonce must be {SESSION_NONCE_SIZE} bytes")
    return pack_key_id(session_id) + nonce + plaintext


def pack_open_request(session_id: int, nonce: bytes, sealed: bytes) -> bytes:
    """OPEN request: session id || nonce (12) || body || tag (32)."""
    if len(nonce) != SESSION_NONCE_SIZE:
        raise ProtocolError(f"nonce must be {SESSION_NONCE_SIZE} bytes")
    if len(sealed) < SESSION_TAG_SIZE:
        raise ProtocolError("sealed body shorter than its tag")
    return pack_key_id(session_id) + nonce + sealed


def unpack_session_request(payload: bytes) -> tuple[int, bytes, bytes]:
    """Split a SEAL/OPEN request into (session id, nonce, body)."""
    session_id, rest = unpack_key_id(payload)
    if len(rest) < SESSION_NONCE_SIZE:
        raise ProtocolError("payload too short for a session nonce")
    return session_id, rest[:SESSION_NONCE_SIZE], rest[SESSION_NONCE_SIZE:]
