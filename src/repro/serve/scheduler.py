"""Adaptive micro-batch scheduling: turning request streams into batches.

PR 1's ``encaps_many``/``decaps_many`` kernels are 11–14x faster than
the scalar loop, but only when fed whole batches.  Independent network
clients each carry one operation, so the serving layer must *coalesce*:
park each arriving request briefly, flush a whole batch to the
vectorized kernel, and fan the results back out — dynamic batching,
exactly as in inference servers.

The scheduler here is a **pure synchronous state machine**: it never
sleeps, spawns nothing, and takes the current time as an argument, so
unit tests drive it deterministically with a fake clock
(``tests/test_serve_scheduler.py``).  The asyncio server wraps it with
a real clock and one timer task.

A batch is keyed by ``(op, key id)`` — every entry of a batch shares
the public/secret key, which is what lets the batch kernels amortize
``GenA`` and the key digest.  A queue flushes when either

* it reaches ``max_batch`` (flush-on-size; reported to the caller
  straight from :meth:`MicroBatchScheduler.submit`), or
* its deadline expires (flush-on-deadline; collected by
  :meth:`MicroBatchScheduler.poll`).

The deadline is *adaptive*: :class:`AdaptiveDeadlinePolicy` tracks an
EWMA of request inter-arrival gaps and waits roughly as long as it
expects to take to fill the rest of the batch — under heavy load the
wait collapses toward ``min_wait_us`` (the batch fills on its own
anyway), under light load it is capped at ``max_wait_us`` so a lone
request never stalls more than one bounded beat.

**Multi-tenant fairness.**  With several tenants sharing one service
(PR 10), dispatch order must not let one chatty tenant starve the
others within a QoS tier.  :class:`DeficitRoundRobin` keeps a served-op
deficit per tenant; when the scheduler is given a ``tenant_of``
callable, batches flushing in the same beat are ordered by QoS tier
first (unchanged) and then by how *under-served* their tenant is, and
every dispatched batch charges its tenant's deficit.  The counters are
relative — only differences matter — so they are periodically
re-centred to stay bounded.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import Any


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


class AdaptiveDeadlinePolicy:
    """Tunes how long a fresh batch may wait for more arrivals.

    Maintains an exponentially weighted moving average of the gaps
    between consecutive arrivals (one per scheduler, i.e. across keys:
    the arrival *process* is global even when batches are per-key).
    The wait granted to a newly opened batch is::

        wait_us = clamp(min_wait_us,
                        ewma_gap_us * (max_batch - 1) * fill_factor,
                        max_wait_us)

    — the expected time for the remaining slots to fill, discounted by
    ``fill_factor`` (waiting for a *full* batch is rarely worth the
    tail latency; 75% of one nearly is).  Before any gap has been
    observed the policy is maximally patient (``max_wait_us``).

    **Idle gaps are not traffic.**  A pause longer than
    ``idle_reset_factor * max_wait_us`` (a burst ending, a quiet
    night) says nothing about the arrival rate of the *next* burst —
    folding it into the EWMA would poison the estimate for many
    arrivals afterwards (with the default ``alpha`` a single huge gap
    keeps the policy maximally patient long into a fast burst, the
    opposite of what the burst needs).  Such gaps therefore
    :meth:`reset` the estimator instead of feeding it: the next burst
    starts from the patient prior, exactly like the first one did.
    Gaps up to the threshold still feed the EWMA, so genuinely slow but
    steady traffic keeps adapting normally.
    """

    def __init__(
        self,
        max_wait_us: float = 2000.0,
        min_wait_us: float = 50.0,
        fill_factor: float = 0.75,
        alpha: float = 0.2,
        idle_reset_factor: float = 8.0,
    ) -> None:
        if min_wait_us > max_wait_us:
            raise ValueError("min_wait_us must not exceed max_wait_us")
        if idle_reset_factor <= 0:
            raise ValueError("idle_reset_factor must be positive")
        self.max_wait_us = max_wait_us
        self.min_wait_us = min_wait_us
        self.fill_factor = fill_factor
        self.alpha = alpha
        self.idle_reset_factor = idle_reset_factor
        self._ewma_gap_us: float | None = None
        self._last_arrival: float | None = None

    def observe_arrival(self, now: float) -> None:
        """Feed one arrival timestamp (seconds) into the gap EWMA.

        A gap beyond ``idle_reset_factor * max_wait_us`` is an idle
        period, not an inter-arrival time: it resets the estimator
        rather than feeding it (see the class docstring).
        """
        if self._last_arrival is not None:
            gap_us = max(0.0, (now - self._last_arrival) * 1e6)
            if gap_us > self.idle_reset_factor * self.max_wait_us:
                self.reset()
            elif self._ewma_gap_us is None:
                self._ewma_gap_us = gap_us
            else:
                self._ewma_gap_us += self.alpha * (gap_us - self._ewma_gap_us)
        self._last_arrival = now

    def reset(self) -> None:
        """Forget the learned arrival rate (used after idle periods)."""
        self._ewma_gap_us = None

    def wait_us(self, max_batch: int) -> float:
        """The wait budget (µs) to grant a batch opening now."""
        if self._ewma_gap_us is None:
            return self.max_wait_us
        expected_fill = self._ewma_gap_us * max(max_batch - 1, 1) * self.fill_factor
        return _clamp(expected_fill, self.min_wait_us, self.max_wait_us)

    @property
    def ewma_gap_us(self) -> float | None:
        """Current inter-arrival EWMA (µs), ``None`` before two arrivals."""
        return self._ewma_gap_us


class DeficitRoundRobin:
    """Deficit counters for tenant fair-share dispatch.

    Each tenant accumulates "work served" (ops) in :meth:`charge`;
    :meth:`balance` reports its counter relative to the *least*-served
    tenant, so a tenant that has been served less sorts first.  Tenants
    are created lazily at first sight with a deficit equal to the
    current minimum (a newcomer is neither favoured nor punished for
    history it was not part of).  Counters are re-centred whenever the
    minimum drifts past ``recenter_at`` to keep the floats bounded over
    long uptimes.
    """

    def __init__(self, recenter_at: float = 1e9) -> None:
        if recenter_at <= 0:
            raise ValueError("recenter_at must be positive")
        self.recenter_at = recenter_at
        self._served: dict[Hashable, float] = {}

    def _floor(self) -> float:
        return min(self._served.values()) if self._served else 0.0

    def _touch(self, tenant: Hashable) -> None:
        if tenant not in self._served:
            self._served[tenant] = self._floor()

    def charge(self, tenant: Hashable, ops: float) -> None:
        """Record ``ops`` units of service dispatched for ``tenant``."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        self._touch(tenant)
        self._served[tenant] += ops
        floor = self._floor()
        if floor > self.recenter_at:
            for key in self._served:
                self._served[key] -= floor

    def balance(self, tenant: Hashable) -> float:
        """``tenant``'s served count above the least-served tenant.

        0.0 means maximally under-served (dispatch first); larger means
        the tenant has already had more than its share this round.
        """
        self._touch(tenant)
        return self._served[tenant] - self._floor()

    def snapshot(self) -> dict[Hashable, float]:
        """Relative served counters per tenant (min-normalised)."""
        floor = self._floor()
        return {tenant: served - floor for tenant, served in self._served.items()}


@dataclass
class Batch:
    """A flushed batch: its key, entries, and what triggered the flush."""

    key: Hashable
    entries: list[Any]
    #: ``"size"``, ``"deadline"`` or ``"drain"`` — feeds the metrics.
    trigger: str


@dataclass
class _Queue:
    """One open (not yet flushed) batch."""

    entries: list[Any] = field(default_factory=list)
    deadline: float = 0.0


class MicroBatchScheduler:
    """Coalesces submitted entries into per-key batches.

    Entries are opaque to the scheduler (the server submits request
    records, the tests submit integers).  The driving contract:

    * call :meth:`submit` per arrival — a returned :class:`Batch`
      means flush-on-size, dispatch it now;
    * call :meth:`poll` whenever the clock passes
      :meth:`next_deadline` — returned batches are flush-on-deadline;
    * call :meth:`drain` exactly once at shutdown.

    ``priority_of`` makes flushing priority-aware: when several queues
    are due at once (``poll``) or everything flushes (``drain``), the
    batches come back ordered by their most urgent entry (smallest
    value first — the serving layer passes the request's QoS tier), so
    interactive work dispatches ahead of batch work that happened to
    expire in the same beat.  Entry order *within* a batch is
    untouched (a batch executes as one kernel call anyway).

    ``tenant_of`` adds deficit-round-robin fair-share *within* a
    priority level: ties on the QoS tier break toward the tenant whose
    :class:`DeficitRoundRobin` balance is lowest, and every batch
    returned from :meth:`poll`/:meth:`drain` (and flush-on-size from
    :meth:`submit`) charges its tenant one deficit unit per entry.
    """

    def __init__(
        self,
        max_batch: int = 64,
        policy: AdaptiveDeadlinePolicy | None = None,
        priority_of: Callable[[Any], int] | None = None,
        tenant_of: Callable[[Any], Hashable] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.max_batch = max_batch
        self.policy = policy if policy is not None else AdaptiveDeadlinePolicy()
        self.priority_of = priority_of
        self.tenant_of = tenant_of
        self.fair_share = DeficitRoundRobin() if tenant_of is not None else None
        self._queues: dict[Hashable, _Queue] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(q.entries) for q in self._queues.values())

    def submit(self, key: Hashable, entry: Any, now: float) -> Batch | None:
        """Queue one entry; returns a full :class:`Batch` on flush-on-size.

        ``now`` is the caller's clock reading (seconds); it feeds the
        adaptive policy and stamps the deadline of a newly opened
        batch.
        """
        self.policy.observe_arrival(now)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _Queue(
                deadline=now + self.policy.wait_us(self.max_batch) * 1e-6
            )
        queue.entries.append(entry)
        if len(queue.entries) >= self.max_batch:
            del self._queues[key]
            batch = Batch(key, queue.entries, "size")
            self._charge(batch)
            return batch
        return None

    def _batch_tenant(self, batch: Batch) -> Hashable:
        assert self.tenant_of is not None
        return self.tenant_of(batch.entries[0])

    def _charge(self, batch: Batch) -> None:
        """Charge a dispatched batch to its tenant's deficit counter."""
        if self.fair_share is not None:
            self.fair_share.charge(self._batch_tenant(batch), len(batch.entries))

    def _ordered(self, batches: list[Batch]) -> list[Batch]:
        """Order flushed batches most-urgent-first (stable without a
        ``priority_of``, so the default keeps submission order), with
        DRR fair-share breaking ties within a priority level, and
        charge every returned batch to its tenant."""
        if len(batches) >= 2 and (
            self.priority_of is not None or self.fair_share is not None
        ):
            priority = self.priority_of
            fair_share = self.fair_share

            def sort_key(batch: Batch) -> tuple[float, float]:
                tier = (
                    min(priority(e) for e in batch.entries)
                    if priority is not None
                    else 0.0
                )
                balance = (
                    fair_share.balance(self._batch_tenant(batch))
                    if fair_share is not None
                    else 0.0
                )
                return (tier, balance)

            batches = sorted(batches, key=sort_key)
        for batch in batches:
            self._charge(batch)
        return batches

    def poll(self, now: float) -> list[Batch]:
        """Flush every queue whose deadline has passed (urgent first)."""
        due = [key for key, q in self._queues.items() if q.deadline <= now]
        return self._ordered(
            [Batch(key, self._queues.pop(key).entries, "deadline") for key in due]
        )

    def next_deadline(self) -> float | None:
        """Earliest pending deadline (seconds), ``None`` when idle."""
        if not self._queues:
            return None
        return min(q.deadline for q in self._queues.values())

    def drain(self) -> list[Batch]:
        """Flush everything unconditionally (graceful shutdown)."""
        batches = [
            Batch(key, queue.entries, "drain")
            for key, queue in self._queues.items()
        ]
        self._queues.clear()
        return self._ordered(batches)
