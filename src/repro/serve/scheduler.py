"""Adaptive micro-batch scheduling: turning request streams into batches.

PR 1's ``encaps_many``/``decaps_many`` kernels are 11–14x faster than
the scalar loop, but only when fed whole batches.  Independent network
clients each carry one operation, so the serving layer must *coalesce*:
park each arriving request briefly, flush a whole batch to the
vectorized kernel, and fan the results back out — dynamic batching,
exactly as in inference servers.

The scheduler here is a **pure synchronous state machine**: it never
sleeps, spawns nothing, and takes the current time as an argument, so
unit tests drive it deterministically with a fake clock
(``tests/test_serve_scheduler.py``).  The asyncio server wraps it with
a real clock and one timer task.

A batch is keyed by ``(op, key id)`` — every entry of a batch shares
the public/secret key, which is what lets the batch kernels amortize
``GenA`` and the key digest.  A queue flushes when either

* it reaches ``max_batch`` (flush-on-size; reported to the caller
  straight from :meth:`MicroBatchScheduler.submit`), or
* its deadline expires (flush-on-deadline; collected by
  :meth:`MicroBatchScheduler.poll`).

The deadline is *adaptive*: :class:`AdaptiveDeadlinePolicy` tracks an
EWMA of request inter-arrival gaps and waits roughly as long as it
expects to take to fill the rest of the batch — under heavy load the
wait collapses toward ``min_wait_us`` (the batch fills on its own
anyway), under light load it is capped at ``max_wait_us`` so a lone
request never stalls more than one bounded beat.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import Any


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


class AdaptiveDeadlinePolicy:
    """Tunes how long a fresh batch may wait for more arrivals.

    Maintains an exponentially weighted moving average of the gaps
    between consecutive arrivals (one per scheduler, i.e. across keys:
    the arrival *process* is global even when batches are per-key).
    The wait granted to a newly opened batch is::

        wait_us = clamp(min_wait_us,
                        ewma_gap_us * (max_batch - 1) * fill_factor,
                        max_wait_us)

    — the expected time for the remaining slots to fill, discounted by
    ``fill_factor`` (waiting for a *full* batch is rarely worth the
    tail latency; 75% of one nearly is).  Before any gap has been
    observed the policy is maximally patient (``max_wait_us``).

    **Idle gaps are not traffic.**  A pause longer than
    ``idle_reset_factor * max_wait_us`` (a burst ending, a quiet
    night) says nothing about the arrival rate of the *next* burst —
    folding it into the EWMA would poison the estimate for many
    arrivals afterwards (with the default ``alpha`` a single huge gap
    keeps the policy maximally patient long into a fast burst, the
    opposite of what the burst needs).  Such gaps therefore
    :meth:`reset` the estimator instead of feeding it: the next burst
    starts from the patient prior, exactly like the first one did.
    Gaps up to the threshold still feed the EWMA, so genuinely slow but
    steady traffic keeps adapting normally.
    """

    def __init__(
        self,
        max_wait_us: float = 2000.0,
        min_wait_us: float = 50.0,
        fill_factor: float = 0.75,
        alpha: float = 0.2,
        idle_reset_factor: float = 8.0,
    ) -> None:
        if min_wait_us > max_wait_us:
            raise ValueError("min_wait_us must not exceed max_wait_us")
        if idle_reset_factor <= 0:
            raise ValueError("idle_reset_factor must be positive")
        self.max_wait_us = max_wait_us
        self.min_wait_us = min_wait_us
        self.fill_factor = fill_factor
        self.alpha = alpha
        self.idle_reset_factor = idle_reset_factor
        self._ewma_gap_us: float | None = None
        self._last_arrival: float | None = None

    def observe_arrival(self, now: float) -> None:
        """Feed one arrival timestamp (seconds) into the gap EWMA.

        A gap beyond ``idle_reset_factor * max_wait_us`` is an idle
        period, not an inter-arrival time: it resets the estimator
        rather than feeding it (see the class docstring).
        """
        if self._last_arrival is not None:
            gap_us = max(0.0, (now - self._last_arrival) * 1e6)
            if gap_us > self.idle_reset_factor * self.max_wait_us:
                self.reset()
            elif self._ewma_gap_us is None:
                self._ewma_gap_us = gap_us
            else:
                self._ewma_gap_us += self.alpha * (gap_us - self._ewma_gap_us)
        self._last_arrival = now

    def reset(self) -> None:
        """Forget the learned arrival rate (used after idle periods)."""
        self._ewma_gap_us = None

    def wait_us(self, max_batch: int) -> float:
        """The wait budget (µs) to grant a batch opening now."""
        if self._ewma_gap_us is None:
            return self.max_wait_us
        expected_fill = self._ewma_gap_us * max(max_batch - 1, 1) * self.fill_factor
        return _clamp(expected_fill, self.min_wait_us, self.max_wait_us)

    @property
    def ewma_gap_us(self) -> float | None:
        """Current inter-arrival EWMA (µs), ``None`` before two arrivals."""
        return self._ewma_gap_us


@dataclass
class Batch:
    """A flushed batch: its key, entries, and what triggered the flush."""

    key: Hashable
    entries: list[Any]
    #: ``"size"``, ``"deadline"`` or ``"drain"`` — feeds the metrics.
    trigger: str


@dataclass
class _Queue:
    """One open (not yet flushed) batch."""

    entries: list[Any] = field(default_factory=list)
    deadline: float = 0.0


class MicroBatchScheduler:
    """Coalesces submitted entries into per-key batches.

    Entries are opaque to the scheduler (the server submits request
    records, the tests submit integers).  The driving contract:

    * call :meth:`submit` per arrival — a returned :class:`Batch`
      means flush-on-size, dispatch it now;
    * call :meth:`poll` whenever the clock passes
      :meth:`next_deadline` — returned batches are flush-on-deadline;
    * call :meth:`drain` exactly once at shutdown.

    ``priority_of`` makes flushing priority-aware: when several queues
    are due at once (``poll``) or everything flushes (``drain``), the
    batches come back ordered by their most urgent entry (smallest
    value first — the serving layer passes the request's QoS tier), so
    interactive work dispatches ahead of batch work that happened to
    expire in the same beat.  Entry order *within* a batch is
    untouched (a batch executes as one kernel call anyway).
    """

    def __init__(
        self,
        max_batch: int = 64,
        policy: AdaptiveDeadlinePolicy | None = None,
        priority_of: Callable[[Any], int] | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.max_batch = max_batch
        self.policy = policy if policy is not None else AdaptiveDeadlinePolicy()
        self.priority_of = priority_of
        self._queues: dict[Hashable, _Queue] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(q.entries) for q in self._queues.values())

    def submit(self, key: Hashable, entry: Any, now: float) -> Batch | None:
        """Queue one entry; returns a full :class:`Batch` on flush-on-size.

        ``now`` is the caller's clock reading (seconds); it feeds the
        adaptive policy and stamps the deadline of a newly opened
        batch.
        """
        self.policy.observe_arrival(now)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _Queue(
                deadline=now + self.policy.wait_us(self.max_batch) * 1e-6
            )
        queue.entries.append(entry)
        if len(queue.entries) >= self.max_batch:
            del self._queues[key]
            return Batch(key, queue.entries, "size")
        return None

    def _ordered(self, batches: list[Batch]) -> list[Batch]:
        """Order flushed batches most-urgent-first (stable without a
        ``priority_of``, so the default keeps submission order)."""
        if self.priority_of is None or len(batches) < 2:
            return batches
        priority = self.priority_of
        return sorted(
            batches, key=lambda b: min(priority(e) for e in b.entries)
        )

    def poll(self, now: float) -> list[Batch]:
        """Flush every queue whose deadline has passed (urgent first)."""
        due = [key for key, q in self._queues.items() if q.deadline <= now]
        return self._ordered(
            [Batch(key, self._queues.pop(key).entries, "deadline") for key in due]
        )

    def next_deadline(self) -> float | None:
        """Earliest pending deadline (seconds), ``None`` when idle."""
        if not self._queues:
            return None
        return min(q.deadline for q in self._queues.values())

    def drain(self) -> list[Batch]:
        """Flush everything unconditionally (graceful shutdown)."""
        batches = [
            Batch(key, queue.entries, "drain")
            for key, queue in self._queues.items()
        ]
        self._queues.clear()
        return self._ordered(batches)
